//! Orthogonal Vectors (paper §7, fine-grained complexity).
//!
//! Given two sets of d-dimensional 0/1 vectors, decide whether some pair
//! (one from each set) is orthogonal. The OV conjecture — implied by the
//! SETH via the split-and-encode reduction in
//! `lb-reductions::sat_to_ov` — says the quadratic pair scan cannot be
//! improved to n^{2−ε}·poly(d). Vectors are bit-packed so a pair test costs
//! d/64 word-ANDs.

/// A set of bit-packed 0/1 vectors of common dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VectorSet {
    dim: usize,
    words: usize,
    data: Vec<u64>,
    len: usize,
}

impl VectorSet {
    /// Creates an empty set of vectors of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        VectorSet {
            dim,
            words: dim.div_ceil(64).max(1),
            data: Vec::new(),
            len: 0,
        }
    }

    /// Builds from explicit bool vectors.
    pub fn from_bools(dim: usize, vectors: &[Vec<bool>]) -> Self {
        let mut s = VectorSet::new(dim);
        for v in vectors {
            s.push_bools(v);
        }
        s
    }

    /// Appends a vector given as bools.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn push_bools(&mut self, v: &[bool]) {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        let mut words = vec![0u64; self.words];
        for (i, &b) in v.iter().enumerate() {
            if b {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        self.data.extend_from_slice(&words);
        self.len += 1;
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn words_of(&self, i: usize) -> &[u64] {
        &self.data[i * self.words..(i + 1) * self.words]
    }

    /// True iff vectors `i` (of self) and `j` (of other) are orthogonal.
    pub fn orthogonal(&self, i: usize, other: &VectorSet, j: usize) -> bool {
        self.words_of(i)
            .iter()
            .zip(other.words_of(j))
            .all(|(&a, &b)| a & b == 0)
    }
}

/// Finds an orthogonal pair (index into `a`, index into `b`) by the
/// quadratic scan — the algorithm the OV conjecture says is essentially
/// optimal.
pub fn find_orthogonal_pair(a: &VectorSet, b: &VectorSet) -> Option<(usize, usize)> {
    assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    for i in 0..a.len() {
        for j in 0..b.len() {
            if a.orthogonal(i, b, j) {
                return Some((i, j));
            }
        }
    }
    None
}

/// Counts orthogonal pairs.
pub fn count_orthogonal_pairs(a: &VectorSet, b: &VectorSet) -> u64 {
    assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    let mut n = 0u64;
    for i in 0..a.len() {
        for j in 0..b.len() {
            if a.orthogonal(i, b, j) {
                n += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(bits: &[u8]) -> Vec<bool> {
        bits.iter().map(|&b| b == 1).collect()
    }

    #[test]
    fn small_cases() {
        let a = VectorSet::from_bools(3, &[v(&[1, 0, 1]), v(&[0, 1, 0])]);
        let b = VectorSet::from_bools(3, &[v(&[0, 1, 0]), v(&[1, 1, 1])]);
        // a[0]·b[0] = 0 → orthogonal; every other pair overlaps.
        assert_eq!(find_orthogonal_pair(&a, &b), Some((0, 0)));
        assert_eq!(count_orthogonal_pairs(&a, &b), 1);
    }

    #[test]
    fn count_explicit() {
        let a = VectorSet::from_bools(2, &[v(&[1, 0]), v(&[0, 1])]);
        let b = VectorSet::from_bools(2, &[v(&[0, 1]), v(&[1, 0])]);
        // Orthogonal pairs: (a0,b0), (a1,b1).
        assert_eq!(count_orthogonal_pairs(&a, &b), 2);
    }

    #[test]
    fn no_orthogonal_pair() {
        let a = VectorSet::from_bools(2, &[v(&[1, 1])]);
        let b = VectorSet::from_bools(2, &[v(&[1, 0]), v(&[0, 1])]);
        assert_eq!(find_orthogonal_pair(&a, &b), None);
    }

    #[test]
    fn zero_vector_is_orthogonal_to_all() {
        let a = VectorSet::from_bools(4, &[v(&[0, 0, 0, 0])]);
        let b = VectorSet::from_bools(4, &[v(&[1, 1, 1, 1])]);
        assert!(find_orthogonal_pair(&a, &b).is_some());
    }

    #[test]
    fn wide_vectors_cross_word_boundary() {
        let dim = 130;
        let mut x = vec![false; dim];
        let mut y = vec![false; dim];
        x[129] = true;
        y[129] = true;
        let a = VectorSet::from_bools(dim, &[x.clone()]);
        let b = VectorSet::from_bools(dim, &[y]);
        assert_eq!(find_orthogonal_pair(&a, &b), None);
        // Flip one coordinate: now orthogonal.
        x[129] = false;
        let a2 = VectorSet::from_bools(dim, &[x]);
        assert!(find_orthogonal_pair(&a2, &b).is_some());
    }

    #[test]
    fn empty_sets() {
        let a = VectorSet::new(3);
        let b = VectorSet::from_bools(3, &[v(&[0, 0, 0])]);
        assert_eq!(find_orthogonal_pair(&a, &b), None);
        assert!(a.is_empty());
    }
}
