//! Orthogonal Vectors (paper §7, fine-grained complexity).
//!
//! Given two sets of d-dimensional 0/1 vectors, decide whether some pair
//! (one from each set) is orthogonal. The OV conjecture — implied by the
//! SETH via the split-and-encode reduction in
//! `lb-reductions::sat_to_ov` — says the quadratic pair scan cannot be
//! improved to n^{2−ε}·poly(d). Vectors are bit-packed so a pair test costs
//! d/64 word-ANDs.
//!
//! Engine mapping: the quadratic scans tick one [`RunStats::nodes`] per
//! pair tested, so the counter is exactly the n·m work the OV conjecture
//! says is unavoidable.
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes

use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// A set of bit-packed 0/1 vectors of common dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VectorSet {
    dim: usize,
    words: usize,
    data: Vec<u64>,
    len: usize,
}

impl VectorSet {
    /// Creates an empty set of vectors of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        VectorSet {
            dim,
            words: dim.div_ceil(64).max(1),
            data: Vec::new(),
            len: 0,
        }
    }

    /// Builds from explicit bool vectors.
    pub fn from_bools(dim: usize, vectors: &[Vec<bool>]) -> Self {
        let mut s = VectorSet::new(dim);
        for v in vectors {
            s.push_bools(v);
        }
        s
    }

    /// Appends a vector given as bools.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn push_bools(&mut self, v: &[bool]) {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        let mut words = vec![0u64; self.words];
        for (i, &b) in v.iter().enumerate() {
            if b {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        self.data.extend_from_slice(&words);
        self.len += 1;
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn words_of(&self, i: usize) -> &[u64] {
        &self.data[i * self.words..(i + 1) * self.words]
    }

    /// True iff vectors `i` (of self) and `j` (of other) are orthogonal.
    pub fn orthogonal(&self, i: usize, other: &VectorSet, j: usize) -> bool {
        self.words_of(i)
            .iter()
            .zip(other.words_of(j))
            .all(|(&a, &b)| a & b == 0)
    }
}

/// Finds an orthogonal pair (index into `a`, index into `b`) by the
/// quadratic scan — the algorithm the OV conjecture says is essentially
/// optimal. `Sat(pair)`, `Unsat`, or `Exhausted`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn find_orthogonal_pair(
    a: &VectorSet,
    b: &VectorSet,
    budget: &Budget,
) -> (Outcome<(usize, usize)>, RunStats) {
    assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    let mut ticker = Ticker::new(budget);
    let result = find_inner(a, b, &mut ticker);
    ticker.finish(result)
}

fn find_inner(
    a: &VectorSet,
    b: &VectorSet,
    ticker: &mut Ticker,
) -> Result<Option<(usize, usize)>, ExhaustReason> {
    for i in 0..a.len() {
        for j in 0..b.len() {
            ticker.node()?;
            if a.orthogonal(i, b, j) {
                return Ok(Some((i, j)));
            }
        }
    }
    Ok(None)
}

/// Counts orthogonal pairs. `Sat(count)` or `Exhausted`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn count_orthogonal_pairs(
    a: &VectorSet,
    b: &VectorSet,
    budget: &Budget,
) -> (Outcome<u64>, RunStats) {
    assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    let mut ticker = Ticker::new(budget);
    let result = count_inner(a, b, &mut ticker).map(Some);
    ticker.finish(result)
}

fn count_inner(a: &VectorSet, b: &VectorSet, ticker: &mut Ticker) -> Result<u64, ExhaustReason> {
    let mut n = 0u64;
    for i in 0..a.len() {
        for j in 0..b.len() {
            ticker.node()?;
            if a.orthogonal(i, b, j) {
                n += 1;
            }
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(bits: &[u8]) -> Vec<bool> {
        bits.iter().map(|&b| b == 1).collect()
    }

    fn find(a: &VectorSet, b: &VectorSet) -> Option<(usize, usize)> {
        find_orthogonal_pair(a, b, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    fn count(a: &VectorSet, b: &VectorSet) -> u64 {
        count_orthogonal_pairs(a, b, &Budget::unlimited())
            .0
            .unwrap_sat()
    }

    #[test]
    fn small_cases() {
        let a = VectorSet::from_bools(3, &[v(&[1, 0, 1]), v(&[0, 1, 0])]);
        let b = VectorSet::from_bools(3, &[v(&[0, 1, 0]), v(&[1, 1, 1])]);
        // a[0]·b[0] = 0 → orthogonal; every other pair overlaps.
        assert_eq!(find(&a, &b), Some((0, 0)));
        assert_eq!(count(&a, &b), 1);
    }

    #[test]
    fn count_explicit() {
        let a = VectorSet::from_bools(2, &[v(&[1, 0]), v(&[0, 1])]);
        let b = VectorSet::from_bools(2, &[v(&[0, 1]), v(&[1, 0])]);
        // Orthogonal pairs: (a0,b0), (a1,b1).
        assert_eq!(count(&a, &b), 2);
    }

    #[test]
    fn no_orthogonal_pair() {
        let a = VectorSet::from_bools(2, &[v(&[1, 1])]);
        let b = VectorSet::from_bools(2, &[v(&[1, 0]), v(&[0, 1])]);
        assert_eq!(find(&a, &b), None);
    }

    #[test]
    fn zero_vector_is_orthogonal_to_all() {
        let a = VectorSet::from_bools(4, &[v(&[0, 0, 0, 0])]);
        let b = VectorSet::from_bools(4, &[v(&[1, 1, 1, 1])]);
        assert!(find(&a, &b).is_some());
    }

    #[test]
    fn wide_vectors_cross_word_boundary() {
        let dim = 130;
        let mut x = vec![false; dim];
        let mut y = vec![false; dim];
        x[129] = true;
        y[129] = true;
        let a = VectorSet::from_bools(dim, &[x.clone()]);
        let b = VectorSet::from_bools(dim, &[y]);
        assert_eq!(find(&a, &b), None);
        // Flip one coordinate: now orthogonal.
        x[129] = false;
        let a2 = VectorSet::from_bools(dim, &[x]);
        assert!(find(&a2, &b).is_some());
    }

    #[test]
    fn empty_sets() {
        let a = VectorSet::new(3);
        let b = VectorSet::from_bools(3, &[v(&[0, 0, 0])]);
        assert_eq!(find(&a, &b), None);
        assert!(a.is_empty());
    }

    #[test]
    fn counter_is_the_pair_scan() {
        let a = VectorSet::from_bools(2, &[v(&[1, 1]), v(&[1, 1])]);
        let b = VectorSet::from_bools(2, &[v(&[1, 0]), v(&[0, 1]), v(&[1, 1])]);
        let (out, stats) = count_orthogonal_pairs(&a, &b, &Budget::unlimited());
        assert_eq!(out.unwrap_sat(), 0);
        assert_eq!(stats.nodes, 6); // the full n·m scan
    }

    #[test]
    fn tiny_budget_exhausts() {
        let a = VectorSet::from_bools(2, &[v(&[1, 1]), v(&[1, 1])]);
        let b = VectorSet::from_bools(2, &[v(&[1, 0]), v(&[0, 1])]);
        let budget = Budget::ticks(0); // the first pair test exhausts
        assert!(find_orthogonal_pair(&a, &b, &budget).0.is_exhausted());
        assert!(count_orthogonal_pairs(&a, &b, &budget).0.is_exhausted());
    }
}
