//! Edit distance (paper §7): the O(n²) DP that SETH makes optimal.
//!
//! Backurs–Indyk: an O(n^{2−ε}) algorithm for edit distance would refute
//! the SETH. This module implements the textbook dynamic program (with a
//! rolling row, so memory is O(n)) plus a banded variant that is
//! exact whenever the true distance is within the band — experiment E9
//! measures the quadratic scaling.
//!
//! Engine mapping: both DPs tick one [`RunStats::propagations`] per table
//! cell filled, so the counter is exactly the n·m (or band·n) work the
//! Backurs–Indyk bound speaks about. For the banded variant,
//! [`Outcome::Unsat`] means "the true distance exceeds the band".
//!
//! [`RunStats::propagations`]: lb_engine::RunStats::propagations
//! [`Outcome::Unsat`]: lb_engine::Outcome::Unsat

use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// Levenshtein distance between two byte strings (unit costs).
/// `Sat(distance)` or `Exhausted`.
pub fn edit_distance(a: &[u8], b: &[u8], budget: &Budget) -> (Outcome<usize>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = full_inner(a, b, &mut ticker).map(Some);
    ticker.finish(result)
}

fn full_inner(a: &[u8], b: &[u8], ticker: &mut Ticker) -> Result<usize, ExhaustReason> {
    let (a, b) = if a.len() < b.len() { (a, b) } else { (b, a) };
    let n = a.len();
    let mut prev: Vec<usize> = (0..=n).collect();
    let mut cur = vec![0usize; n + 1];
    for (j, &bc) in b.iter().enumerate() {
        cur[0] = j + 1;
        for (i, &ac) in a.iter().enumerate() {
            ticker.propagation()?;
            let sub = prev[i] + (ac != bc) as usize;
            let del = prev[i + 1] + 1;
            let ins = cur[i] + 1;
            cur[i + 1] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    Ok(prev[n])
}

/// Banded edit distance: `Sat(distance)` if the true distance is ≤ `band`,
/// `Unsat` if it exceeds the band, or `Exhausted`. Runs in
/// O(band · max(n, m)).
pub fn edit_distance_banded(
    a: &[u8],
    b: &[u8],
    band: usize,
    budget: &Budget,
) -> (Outcome<usize>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = banded_inner(a, b, band, &mut ticker);
    ticker.finish(result)
}

#[allow(clippy::needless_range_loop)] // index used across several arrays
fn banded_inner(
    a: &[u8],
    b: &[u8],
    band: usize,
    ticker: &mut Ticker,
) -> Result<Option<usize>, ExhaustReason> {
    let n = a.len();
    let m = b.len();
    if n.abs_diff(m) > band {
        return Ok(None);
    }
    const INF: usize = usize::MAX / 2;
    // dp over diagonally-banded rows: row i covers j in [i−band, i+band].
    let lo = |i: usize| i.saturating_sub(band);
    let hi = |i: usize| (i + band).min(m);
    let width = 2 * band + 1;
    let idx = |i: usize, j: usize| j - lo(i);
    let mut prev = vec![INF; width + 1];
    let mut cur = vec![INF; width + 1];
    for j in 0..=hi(0) {
        prev[j] = j; // row 0
    }
    for i in 1..=n {
        cur.iter_mut().for_each(|x| *x = INF);
        for j in lo(i)..=hi(i) {
            ticker.propagation()?;
            let mut best = INF;
            if j > 0 {
                // substitution / match from (i−1, j−1)
                if j > lo(i - 1) && j - 1 <= hi(i - 1) {
                    let c = prev[idx(i - 1, j - 1)] + (a[i - 1] != b[j - 1]) as usize;
                    best = best.min(c);
                }
                // insertion from (i, j−1)
                if j > lo(i) {
                    best = best.min(cur[idx(i, j - 1)] + 1);
                }
            }
            // deletion from (i−1, j)
            if j >= lo(i - 1) && j <= hi(i - 1) {
                best = best.min(prev[idx(i - 1, j)] + 1);
            }
            cur[idx(i, j)] = best;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[idx(n, m)];
    Ok((d <= band).then_some(d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ed(a: &[u8], b: &[u8]) -> usize {
        edit_distance(a, b, &Budget::unlimited()).0.unwrap_sat()
    }

    fn banded(a: &[u8], b: &[u8], band: usize) -> Option<usize> {
        edit_distance_banded(a, b, band, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    #[test]
    fn textbook_cases() {
        assert_eq!(ed(b"kitten", b"sitting"), 3);
        assert_eq!(ed(b"", b"abc"), 3);
        assert_eq!(ed(b"abc", b"abc"), 0);
        assert_eq!(ed(b"abc", b"acb"), 2);
        assert_eq!(ed(b"a", b""), 1);
    }

    #[test]
    fn symmetric() {
        assert_eq!(ed(b"flaw", b"lawn"), ed(b"lawn", b"flaw"));
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let s: Vec<Vec<u8>> = (0..3)
                .map(|_| {
                    (0..rng.gen_range(0..15))
                        .map(|_| rng.gen_range(b'a'..=b'c'))
                        .collect()
                })
                .collect();
            let dab = ed(&s[0], &s[1]);
            let dbc = ed(&s[1], &s[2]);
            let dac = ed(&s[0], &s[2]);
            assert!(dac <= dab + dbc);
        }
    }

    #[test]
    fn banded_matches_full_when_wide_enough() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let a: Vec<u8> = (0..rng.gen_range(0..20))
                .map(|_| rng.gen_range(b'a'..=b'd'))
                .collect();
            let b: Vec<u8> = (0..rng.gen_range(0..20))
                .map(|_| rng.gen_range(b'a'..=b'd'))
                .collect();
            let full = ed(&a, &b);
            let b_result = banded(&a, &b, 20).unwrap();
            assert_eq!(full, b_result, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn banded_rejects_distant_pairs() {
        assert_eq!(banded(b"aaaa", b"bbbb", 2), None);
        assert_eq!(banded(b"aaaaaaa", b"a", 2), None);
        assert_eq!(banded(b"abcd", b"abed", 2), Some(1));
    }

    #[test]
    fn counter_is_the_dp_table() {
        let (out, stats) = edit_distance(b"kitten", b"sitting", &Budget::unlimited());
        assert_eq!(out.unwrap_sat(), 3);
        assert_eq!(stats.propagations, 6 * 7); // every cell of the n·m table
    }

    #[test]
    fn tiny_budget_exhausts() {
        let b = Budget::ticks(0); // the first DP cell exhausts
        assert!(edit_distance(b"kitten", b"sitting", &b).0.is_exhausted());
        assert!(edit_distance_banded(b"kitten", b"sitting", 3, &b)
            .0
            .is_exhausted());
    }
}
