//! Partitioned subgraph isomorphism (paper §2.3).
//!
//! Given a pattern H, a host G, and a partition of V(G) into |V(H)| classes,
//! find a subgraph of G that takes exactly one vertex from each class and
//! has an edge wherever H does. This is precisely the graph-theoretic form
//! of a binary CSP (classes = variable domains, H = primal graph), and the
//! vehicle for the hardness results of §5–§6: Partitioned Clique ↔ CSP with
//! clique primal graph.
//!
//! Engine mapping: the backtracking search ticks one [`RunStats::nodes`]
//! per candidate host vertex tried and one [`RunStats::propagations`] per
//! adjacency check against an already-assigned pattern neighbor.
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::propagations`]: lb_engine::RunStats::propagations

use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};
use lb_graph::Graph;

/// Finds a mapping `f: V(H) → V(G)` with `f(i) ∈ classes[i]` and an edge
/// `f(i)f(j)` in G for every edge `ij` of H. `Sat(mapping)`, `Unsat`, or
/// `Exhausted`.
///
/// # Panics
/// Panics if `classes.len() != |V(H)|` or a class member is out of range.
pub fn partitioned_subgraph_iso(
    h: &Graph,
    g: &Graph,
    classes: &[Vec<usize>],
    budget: &Budget,
) -> (Outcome<Vec<usize>>, RunStats) {
    assert_eq!(
        classes.len(),
        h.num_vertices(),
        "one class per pattern vertex"
    );
    for c in classes {
        assert!(
            c.iter().all(|&v| v < g.num_vertices()),
            "class member out of range"
        );
    }
    let mut ticker = Ticker::new(budget);
    let mut assignment: Vec<Option<usize>> = vec![None; h.num_vertices()];
    // Order pattern vertices by descending degree (most constrained first).
    let mut order: Vec<usize> = (0..h.num_vertices()).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(h.degree(v)));
    let result = backtrack(h, g, classes, &order, 0, &mut assignment, &mut ticker);
    ticker.finish(result)
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    h: &Graph,
    g: &Graph,
    classes: &[Vec<usize>],
    order: &[usize],
    pos: usize,
    assignment: &mut Vec<Option<usize>>,
    ticker: &mut Ticker,
) -> Result<Option<Vec<usize>>, ExhaustReason> {
    if pos == order.len() {
        return Ok(Some(
            assignment
                .iter()
                // lb-lint: allow(no-panic) -- invariant: reaching full depth means every pattern vertex was assigned
                .map(|a| a.expect("complete"))
                .collect(),
        ));
    }
    let hv = order[pos];
    'candidates: for &gv in &classes[hv] {
        ticker.node()?;
        // Respect the partition: distinct classes may share vertices in a
        // degenerate input, so enforce injectivity explicitly.
        if assignment.contains(&Some(gv)) {
            continue;
        }
        for &hn in h.neighbors(hv) {
            if let Some(gn) = assignment[hn] {
                ticker.propagation()?;
                if !g.has_edge(gv, gn) {
                    continue 'candidates;
                }
            }
        }
        assignment[hv] = Some(gv);
        let hit = backtrack(h, g, classes, order, pos + 1, assignment, ticker);
        assignment[hv] = None;
        if let Some(sol) = hit? {
            return Ok(Some(sol));
        }
    }
    Ok(None)
}

/// The Partitioned Clique instance of a k-clique search (§2.3, §6): H = K_k,
/// G' = k copies of V(G) with edges between copies i ≠ j wherever G has an
/// edge. Returns `(host, classes)`; a partitioned K_k subgraph of the host
/// exists iff G has a k-clique.
pub fn partitioned_clique_instance(g: &Graph, k: usize) -> (Graph, Vec<Vec<usize>>) {
    let n = g.num_vertices();
    let mut host = Graph::new(n * k);
    let classes: Vec<Vec<usize>> = (0..k).map(|i| (i * n..(i + 1) * n).collect()).collect();
    for i in 0..k {
        for j in (i + 1)..k {
            for (u, v) in g.edges() {
                host.add_edge(i * n + u, j * n + v);
                host.add_edge(i * n + v, j * n + u);
            }
        }
    }
    (host, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;

    fn iso(h: &Graph, g: &Graph, classes: &[Vec<usize>]) -> Option<Vec<usize>> {
        partitioned_subgraph_iso(h, g, classes, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    #[test]
    fn triangle_in_tripartite() {
        // Host: proper tripartite triangle on classes {0},{1},{2}.
        let g = generators::clique(3);
        let h = generators::clique(3);
        let classes = vec![vec![0], vec![1], vec![2]];
        let f = iso(&h, &g, &classes).unwrap();
        assert_eq!(f, vec![0, 1, 2]);
    }

    #[test]
    fn partitioned_clique_reduction_is_correct() {
        for seed in 0..10u64 {
            let g = generators::gnp(9, 0.5, seed);
            for k in 2..=4 {
                let (host, classes) = partitioned_clique_instance(&g, k);
                let pattern = generators::clique(k);
                let found = iso(&pattern, &host, &classes);
                let expect = crate::clique::find_clique(&g, k, &Budget::unlimited())
                    .0
                    .is_sat();
                assert_eq!(found.is_some(), expect, "seed {seed}, k {k}");
                if let Some(f) = found {
                    // Decode: class i's vertex maps back to g-vertex f[i] mod n.
                    let verts: Vec<usize> = f.iter().map(|&x| x % g.num_vertices()).collect();
                    assert!(g.is_clique(&verts), "seed {seed}, k {k}");
                }
            }
        }
    }

    #[test]
    fn pattern_path_in_host() {
        // Pattern P3 (path on 3), host C4, classes chosen so the middle must
        // be vertex 1.
        let h = generators::path(3);
        let g = generators::cycle(4);
        let classes = vec![vec![0, 2], vec![1], vec![0, 2]];
        let f = iso(&h, &g, &classes).unwrap();
        assert_eq!(f[1], 1);
        assert!(g.has_edge(f[0], f[1]) && g.has_edge(f[1], f[2]));
        assert_ne!(f[0], f[2]);
    }

    #[test]
    fn infeasible_partition() {
        let h = generators::clique(2);
        let g = lb_graph::Graph::new(4); // no edges
        let classes = vec![vec![0, 1], vec![2, 3]];
        assert!(iso(&h, &g, &classes).is_none());
    }

    #[test]
    fn empty_pattern() {
        let h = lb_graph::Graph::new(0);
        let g = generators::clique(3);
        assert_eq!(iso(&h, &g, &[]), Some(vec![]));
    }

    #[test]
    fn tiny_budget_exhausts() {
        let g = generators::gnp(9, 0.5, 2);
        let (host, classes) = partitioned_clique_instance(&g, 3);
        let pattern = generators::clique(3);
        let b = Budget::ticks(0); // the first candidate vertex exhausts
        let (out, stats) = partitioned_subgraph_iso(&pattern, &host, &classes, &b);
        assert!(out.is_exhausted());
        assert_eq!(stats.total_ops(), 1);
    }
}
