//! The soak load generator behind `lb-serve bench`: N tenants submit M
//! mixed-family jobs each, honor typed backoff hints on rejection, poll
//! every job to a settled verdict, and compare each served verdict
//! against an in-process uninterrupted reference run.
//!
//! The generator is fully deterministic (chaos-instance sizes derive from
//! the seed), so the same invocation against a server that was
//! SIGKILLed and restarted mid-soak must produce byte-identical verdicts
//! — that comparison is the soak harness's core invariant.

use crate::client::{Backoff, Client, ClientError};
use crate::job::{JobFamily, JobSpec, Verdict};
use crate::runner;
use std::time::{Duration, Instant};

/// SplitMix64 behind the instance generators. Self-contained on purpose:
/// the load generator lives in the product crate, and the chaos harness
/// depends on *us* — reaching back into `lb-chaos` here would make the
/// dependency arrow point both ways.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Random 3-CNF in DIMACS text: `vars` variables, `3 * vars` clauses of
/// three distinct variables with random polarities.
fn gen_cnf(rng: &mut u64, vars: u64) -> String {
    let n = vars.max(3);
    let m = n * 3;
    let mut out = format!("p cnf {n} {m}\n");
    for _ in 0..m {
        let mut seen: Vec<u64> = Vec::new();
        while seen.len() < 3 {
            let v = 1 + splitmix(rng) % n;
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        for v in seen {
            let sign = if splitmix(rng).is_multiple_of(2) {
                ""
            } else {
                "-"
            };
            out.push_str(&format!("{sign}{v} "));
        }
        out.push_str("0\n");
    }
    out
}

/// Random binary CSP text: `vars` variables over a 3-value domain, one
/// constraint per adjacent pair, each allowing 3–6 random tuples.
fn gen_csp(rng: &mut u64, vars: u64) -> String {
    let n = vars.max(2);
    let domain = 3u64;
    let mut out = format!("csp {n} {domain}\n");
    for v in 0..n - 1 {
        let tuples = 3 + splitmix(rng) % 4;
        let list: Vec<String> = (0..tuples)
            .map(|_| format!("{},{}", splitmix(rng) % domain, splitmix(rng) % domain))
            .collect();
        out.push_str(&format!("con {} {} : {}\n", v, v + 1, list.join(" ")));
    }
    out
}

/// Random graph text: `n` vertices, each pair an edge with probability
/// one half.
fn gen_graph(rng: &mut u64, n: u64) -> String {
    let n = n.max(3);
    let mut out = format!("{n}\n");
    for u in 0..n {
        for v in (u + 1)..n {
            if splitmix(rng).is_multiple_of(2) {
                out.push_str(&format!("{u} {v}\n"));
            }
        }
    }
    out
}

/// Random triangle-join payload: the query line `R(a,b) S(b,c) T(c,a)`
/// followed by three relations of random pairs over `0..size`.
fn gen_join(rng: &mut u64, size: u64) -> String {
    let size = size.max(3);
    let mut out = "R(a,b) S(b,c) T(c,a)\n".to_string();
    for name in ["R", "S", "T"] {
        out.push_str(&format!("rel {name} 2\n"));
        for _ in 0..size * 2 {
            out.push_str(&format!(
                "{} {}\n",
                splitmix(rng) % size,
                splitmix(rng) % size
            ));
        }
    }
    out
}

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Server address.
    pub addr: String,
    /// Number of tenants.
    pub tenants: usize,
    /// Jobs submitted per tenant.
    pub jobs_per_tenant: usize,
    /// Instance-size seed.
    pub seed: u64,
    /// Per-operation socket timeout, ms.
    pub timeout_ms: u64,
    /// Overall deadline for the whole run, ms.
    pub deadline_ms: u64,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            addr: "127.0.0.1:7071".to_string(),
            tenants: 8,
            jobs_per_tenant: 4,
            seed: 1,
            timeout_ms: 5_000,
            deadline_ms: 120_000,
        }
    }
}

/// What one soak run observed.
#[derive(Debug, Default)]
pub struct BenchReport {
    /// Jobs acknowledged with `OK <id>`.
    pub submitted: usize,
    /// Typed rejections absorbed by honoring the backoff hint.
    pub backoffs: u64,
    /// `(job id, served verdict, preemptions)` per settled job.
    pub verdicts: Vec<(String, Verdict, u64)>,
    /// Sum of preemptions across all jobs.
    pub preemptions: u64,
    /// Human-readable mismatches vs the reference run (must stay empty).
    pub mismatches: Vec<String>,
}

/// Deterministically generates the soak job mix: families round-robin
/// across SAT / CSP / join / triangle / clique, sizes jittered by `seed`.
pub fn generate_specs(tenants: usize, jobs_per_tenant: usize, seed: u64) -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for t in 0..tenants {
        for j in 0..jobs_per_tenant {
            let index = t * jobs_per_tenant + j;
            let mut rng = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(index as u64 + 1);
            let wobble = splitmix(&mut rng) % 3;
            let (family, k, payload) = match index % 5 {
                0 => (JobFamily::Sat, 0, gen_cnf(&mut rng, 5 + wobble)),
                1 => (JobFamily::Csp, 0, gen_csp(&mut rng, 4 + wobble)),
                2 => (JobFamily::Triangle, 0, gen_graph(&mut rng, 6 + wobble)),
                3 => (JobFamily::Clique, 3, gen_graph(&mut rng, 6 + wobble)),
                _ => (JobFamily::Join, 0, gen_join(&mut rng, 4 + wobble)),
            };
            specs.push(JobSpec {
                tenant: format!("tenant{t}"),
                family,
                k,
                budget: None,
                payload,
            });
        }
    }
    specs
}

/// The uninterrupted in-process reference verdict for a spec.
pub fn reference_verdict(spec: &JobSpec) -> Result<Verdict, String> {
    let inst = spec.instance().map_err(|e| e.to_string())?;
    let (v, _stats, _slices) =
        runner::solve_to_verdict(&inst, u64::MAX, spec.budget).map_err(|e| e.to_string())?;
    Ok(v)
}

/// Connects, retrying briefly — the soak harness calls this right after
/// spawning (or restarting) the server process.
pub fn connect_patiently(
    addr: &str,
    timeout: Duration,
    deadline: Duration,
) -> Result<Client, ClientError> {
    let start = Instant::now();
    loop {
        match Client::connect(addr, timeout) {
            Ok(c) => return Ok(c),
            Err(e) if start.elapsed() >= deadline => return Err(e),
            Err(_retry) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// One resilient operation: on a typed rejection with a backoff hint,
/// sleep the jittered [`Backoff`] delay (never less than the hint) and
/// retry; on a socket error, reconnect (the server may have been killed
/// and restarted under us) and retry. Only the overall deadline ends the
/// loop — the soak rides out arbitrarily long storms.
fn with_retry<T>(
    client: &mut Option<Client>,
    cfg: &BenchConfig,
    deadline: Instant,
    backoffs: &mut u64,
    mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let policy = Backoff {
        seed: cfg.seed,
        ..Backoff::default()
    };
    let mut attempt: u32 = 0;
    loop {
        if client.is_none() {
            *client = Some(connect_patiently(
                &cfg.addr,
                Duration::from_millis(cfg.timeout_ms),
                deadline.saturating_duration_since(Instant::now()),
            )?);
        }
        let Some(c) = client.as_mut() else {
            return Err(ClientError::Io("not connected".to_string()));
        };
        match op(c) {
            Ok(v) => return Ok(v),
            Err(ClientError::Rejected {
                line,
                retry_after_ms: Some(ms),
            }) => {
                if Instant::now() >= deadline {
                    return Err(ClientError::Rejected {
                        line,
                        retry_after_ms: Some(ms),
                    });
                }
                *backoffs += 1;
                std::thread::sleep(policy.delay(attempt, Some(ms)));
                attempt = attempt.saturating_add(1);
            }
            Err(ClientError::Io(_)) if Instant::now() < deadline => {
                *client = None;
                std::thread::sleep(policy.delay(attempt, None));
                attempt = attempt.saturating_add(1);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Drives a full soak: submit everything (absorbing typed backoff), poll
/// every job to `done`, and diff served verdicts against the reference.
pub fn run(cfg: &BenchConfig) -> Result<BenchReport, ClientError> {
    let deadline = Instant::now() + Duration::from_millis(cfg.deadline_ms);
    let specs = generate_specs(cfg.tenants, cfg.jobs_per_tenant, cfg.seed);
    let mut report = BenchReport::default();
    let mut client: Option<Client> = None;
    let mut ids: Vec<(String, JobSpec)> = Vec::new();
    for spec in specs {
        let id = with_retry(&mut client, cfg, deadline, &mut report.backoffs, |c| {
            c.submit(&spec)
        })?;
        report.submitted += 1;
        ids.push((id, spec));
    }
    for (id, spec) in ids {
        let served = loop {
            let status = with_retry(&mut client, cfg, deadline, &mut report.backoffs, |c| {
                c.status(&id)
            })?;
            // "quarantined" is terminal too: the poll must not spin on a
            // dead-lettered job waiting for a verdict that will never come.
            if status.state == "done" || status.state == "quarantined" {
                break status;
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Io(format!("deadline waiting on {id}")));
            }
            std::thread::sleep(Duration::from_millis(25));
        };
        if served.state == "quarantined" {
            // Under a clean-weather bench a quarantine is a failure: no
            // fault was injected, so nothing should have climbed the
            // ladder. (The chaos storm harness has its own, laxer
            // invariant: verdict-or-quarantine-with-evidence.)
            report.mismatches.push(format!(
                "{id}: quarantined instead of settling: {}",
                served.evidence.as_deref().unwrap_or("(no evidence)")
            ));
            continue;
        }
        let verdict = match served.verdict {
            Some(v) => v,
            None => {
                report
                    .mismatches
                    .push(format!("{id}: done without a verdict"));
                continue;
            }
        };
        report.preemptions += served.preemptions;
        match reference_verdict(&spec) {
            Ok(reference) if reference == verdict => {}
            Ok(reference) => report.mismatches.push(format!(
                "{id} ({} {}): served `{}` but reference says `{}`",
                spec.tenant,
                spec.family,
                verdict.to_line(),
                reference.to_line()
            )),
            Err(e) => report
                .mismatches
                .push(format!("{id}: reference run failed: {e}")),
        }
        report.verdicts.push((id, verdict, served.preemptions));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_are_deterministic_and_valid() {
        let a = generate_specs(8, 3, 7);
        let b = generate_specs(8, 3, 7);
        assert_eq!(a.len(), 24);
        assert_eq!(a, b);
        for spec in &a {
            spec.instance().expect("generated spec must parse");
            reference_verdict(spec).expect("reference run must settle");
        }
    }
}
