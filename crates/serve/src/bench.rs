//! The soak load generator behind `lb-serve bench`: N tenants submit M
//! mixed-family jobs each, honor typed backoff hints on rejection, poll
//! every job to a settled verdict, and compare each served verdict
//! against an in-process uninterrupted reference run.
//!
//! The generator is fully deterministic (chaos-instance sizes derive from
//! the seed), so the same invocation against a server that was
//! SIGKILLed and restarted mid-soak must produce byte-identical verdicts
//! — that comparison is the soak harness's core invariant.

use crate::client::{Client, ClientError};
use crate::job::{JobFamily, JobSpec, Verdict};
use crate::runner;
use std::time::{Duration, Instant};

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Server address.
    pub addr: String,
    /// Number of tenants.
    pub tenants: usize,
    /// Jobs submitted per tenant.
    pub jobs_per_tenant: usize,
    /// Instance-size seed.
    pub seed: u64,
    /// Per-operation socket timeout, ms.
    pub timeout_ms: u64,
    /// Overall deadline for the whole run, ms.
    pub deadline_ms: u64,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            addr: "127.0.0.1:7071".to_string(),
            tenants: 8,
            jobs_per_tenant: 4,
            seed: 1,
            timeout_ms: 5_000,
            deadline_ms: 120_000,
        }
    }
}

/// What one soak run observed.
#[derive(Debug, Default)]
pub struct BenchReport {
    /// Jobs acknowledged with `OK <id>`.
    pub submitted: usize,
    /// Typed rejections absorbed by honoring the backoff hint.
    pub backoffs: u64,
    /// `(job id, served verdict, preemptions)` per settled job.
    pub verdicts: Vec<(String, Verdict, u64)>,
    /// Sum of preemptions across all jobs.
    pub preemptions: u64,
    /// Human-readable mismatches vs the reference run (must stay empty).
    pub mismatches: Vec<String>,
}

/// Deterministically generates the soak job mix: families round-robin
/// across SAT / CSP / join / triangle / clique, sizes jittered by `seed`.
pub fn generate_specs(tenants: usize, jobs_per_tenant: usize, seed: u64) -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for t in 0..tenants {
        for j in 0..jobs_per_tenant {
            let index = t * jobs_per_tenant + j;
            let wobble = seed.wrapping_mul(31).wrapping_add(index as u64) % 3;
            let spec = match index % 5 {
                0 => JobSpec {
                    tenant: format!("tenant{t}"),
                    family: JobFamily::Sat,
                    k: 0,
                    budget: None,
                    payload: lb_chaos::hostile::cnf(5 + wobble).to_dimacs(),
                },
                1 => JobSpec {
                    tenant: format!("tenant{t}"),
                    family: JobFamily::Csp,
                    k: 0,
                    budget: None,
                    payload: crate::formats::format_csp(&lb_chaos::hostile::csp(4 + wobble)),
                },
                2 => JobSpec {
                    tenant: format!("tenant{t}"),
                    family: JobFamily::Triangle,
                    k: 0,
                    budget: None,
                    payload: crate::formats::format_graph(&lb_chaos::hostile::graph(6 + wobble)),
                },
                3 => JobSpec {
                    tenant: format!("tenant{t}"),
                    family: JobFamily::Clique,
                    k: 3,
                    budget: None,
                    payload: crate::formats::format_graph(&lb_chaos::hostile::graph(6 + wobble)),
                },
                _ => {
                    let (q, db) = lb_chaos::hostile::join_instance(4 + wobble);
                    JobSpec {
                        tenant: format!("tenant{t}"),
                        family: JobFamily::Join,
                        k: 0,
                        budget: None,
                        payload: format!(
                            "{}\n{}",
                            crate::formats::format_query(&q),
                            crate::formats::format_db(&q, &db)
                        ),
                    }
                }
            };
            specs.push(spec);
        }
    }
    specs
}

/// The uninterrupted in-process reference verdict for a spec.
pub fn reference_verdict(spec: &JobSpec) -> Result<Verdict, String> {
    let inst = spec.instance().map_err(|e| e.to_string())?;
    let (v, _stats, _slices) =
        runner::solve_to_verdict(&inst, u64::MAX, spec.budget).map_err(|e| e.to_string())?;
    Ok(v)
}

/// Connects, retrying briefly — the soak harness calls this right after
/// spawning (or restarting) the server process.
pub fn connect_patiently(
    addr: &str,
    timeout: Duration,
    deadline: Duration,
) -> Result<Client, ClientError> {
    let start = Instant::now();
    loop {
        match Client::connect(addr, timeout) {
            Ok(c) => return Ok(c),
            Err(e) if start.elapsed() >= deadline => return Err(e),
            Err(_retry) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// One resilient operation: on a typed rejection with a backoff hint,
/// sleep the hint and retry; on a socket error, reconnect (the server may
/// have been killed and restarted under us) and retry.
fn with_retry<T>(
    client: &mut Option<Client>,
    cfg: &BenchConfig,
    deadline: Instant,
    backoffs: &mut u64,
    mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    loop {
        if client.is_none() {
            *client = Some(connect_patiently(
                &cfg.addr,
                Duration::from_millis(cfg.timeout_ms),
                deadline.saturating_duration_since(Instant::now()),
            )?);
        }
        let Some(c) = client.as_mut() else {
            return Err(ClientError::Io("not connected".to_string()));
        };
        match op(c) {
            Ok(v) => return Ok(v),
            Err(ClientError::Rejected {
                line,
                retry_after_ms: Some(ms),
            }) => {
                if Instant::now() >= deadline {
                    return Err(ClientError::Rejected {
                        line,
                        retry_after_ms: Some(ms),
                    });
                }
                *backoffs += 1;
                std::thread::sleep(Duration::from_millis(ms.clamp(1, 2_000)));
            }
            Err(ClientError::Io(_)) if Instant::now() < deadline => {
                *client = None;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Drives a full soak: submit everything (absorbing typed backoff), poll
/// every job to `done`, and diff served verdicts against the reference.
pub fn run(cfg: &BenchConfig) -> Result<BenchReport, ClientError> {
    let deadline = Instant::now() + Duration::from_millis(cfg.deadline_ms);
    let specs = generate_specs(cfg.tenants, cfg.jobs_per_tenant, cfg.seed);
    let mut report = BenchReport::default();
    let mut client: Option<Client> = None;
    let mut ids: Vec<(String, JobSpec)> = Vec::new();
    for spec in specs {
        let id = with_retry(&mut client, cfg, deadline, &mut report.backoffs, |c| {
            c.submit(&spec)
        })?;
        report.submitted += 1;
        ids.push((id, spec));
    }
    for (id, spec) in ids {
        let served = loop {
            let status = with_retry(&mut client, cfg, deadline, &mut report.backoffs, |c| {
                c.status(&id)
            })?;
            if status.state == "done" {
                break status;
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Io(format!("deadline waiting on {id}")));
            }
            std::thread::sleep(Duration::from_millis(25));
        };
        let verdict = match served.verdict {
            Some(v) => v,
            None => {
                report
                    .mismatches
                    .push(format!("{id}: done without a verdict"));
                continue;
            }
        };
        report.preemptions += served.preemptions;
        match reference_verdict(&spec) {
            Ok(reference) if reference == verdict => {}
            Ok(reference) => report.mismatches.push(format!(
                "{id} ({} {}): served `{}` but reference says `{}`",
                spec.tenant,
                spec.family,
                verdict.to_line(),
                reference.to_line()
            )),
            Err(e) => report
                .mismatches
                .push(format!("{id}: reference run failed: {e}")),
        }
        report.verdicts.push((id, verdict, served.preemptions));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_are_deterministic_and_valid() {
        let a = generate_specs(8, 3, 7);
        let b = generate_specs(8, 3, 7);
        assert_eq!(a.len(), 24);
        assert_eq!(a, b);
        for spec in &a {
            spec.instance().expect("generated spec must parse");
            reference_verdict(spec).expect("reference run must settle");
        }
    }
}
