//! A small blocking client for the `lb-serve` line protocol — used by
//! `lbtool submit`, the bench load generator, and the soak harness.

use crate::job::JobSpec;
use crate::protocol::StatusReport;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A typed client-side failure.
#[derive(Clone, Debug)]
pub enum ClientError {
    /// Socket-level trouble (connect, read, write, server gone).
    Io(String),
    /// The server answered with an `ERR` line; `retry_after_ms` is the
    /// backoff hint when the rejection carried one.
    Rejected {
        /// The full `ERR ...` response line.
        line: String,
        /// Parsed `retry-after-ms=` hint, if present.
        retry_after_ms: Option<u64>,
    },
    /// The server answered, but not with a line this call understands.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Rejected { line, .. } => write!(f, "rejected: {line}"),
            ClientError::Unexpected(line) => write!(f, "unexpected response: {line}"),
        }
    }
}

fn io_err(e: std::io::Error) -> ClientError {
    ClientError::Io(e.to_string())
}

/// Pulls the `retry-after-ms=<n>` hint out of an `ERR` line, if any.
pub fn retry_after_hint(line: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix("retry-after-ms="))
        .and_then(|v| v.parse().ok())
}

/// One protocol connection. Requests are strictly sequential: send, then
/// read exactly one response line.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects with a read timeout so a wedged server surfaces as a typed
    /// error rather than a hang.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_read_timeout(Some(timeout)).map_err(io_err)?;
        stream.set_write_timeout(Some(timeout)).map_err(io_err)?;
        let reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends raw request text (caller supplies the trailing newlines) and
    /// reads one response line.
    pub fn roundtrip(&mut self, request: &str) -> Result<String, ClientError> {
        self.writer.write_all(request.as_bytes()).map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(io_err)?;
        if n == 0 {
            return Err(ClientError::Io("server closed the connection".to_string()));
        }
        Ok(line.trim_end().to_string())
    }

    fn expect_ok(line: String) -> Result<String, ClientError> {
        if let Some(hint) = line.strip_prefix("ERR ") {
            return Err(ClientError::Rejected {
                retry_after_ms: retry_after_hint(hint),
                line,
            });
        }
        Ok(line)
    }

    /// `PING` → `PONG`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let line = Self::expect_ok(self.roundtrip("PING\n")?)?;
        if line == "PONG" {
            Ok(())
        } else {
            Err(ClientError::Unexpected(line))
        }
    }

    /// `STATS` → the raw counters line.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        Self::expect_ok(self.roundtrip("STATS\n")?)
    }

    /// `DRAIN` → graceful shutdown begins server-side.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        Self::expect_ok(self.roundtrip("DRAIN\n")?).map(|_line| ())
    }

    /// Submits a job, returning the acknowledged id. The id only comes
    /// back once the server has the record durably spooled.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<String, ClientError> {
        let request = render_submit(spec);
        let line = Self::expect_ok(self.roundtrip(&request)?)?;
        match line.strip_prefix("OK ") {
            Some(id) => Ok(id.to_string()),
            None => Err(ClientError::Unexpected(line)),
        }
    }

    /// `STATUS <id>` → the parsed report.
    pub fn status(&mut self, job_id: &str) -> Result<StatusReport, ClientError> {
        let line = Self::expect_ok(self.roundtrip(&format!("STATUS {job_id}\n"))?)?;
        StatusReport::from_line(&line).ok_or(ClientError::Unexpected(line))
    }
}

/// Renders a [`JobSpec`] as the wire request (`SUBMIT` header + payload).
pub fn render_submit(spec: &JobSpec) -> String {
    let payload: Vec<&str> = spec.payload.lines().collect();
    let mut request = format!("SUBMIT {} {} {}", spec.tenant, spec.family, payload.len());
    if spec.k > 0 {
        request.push_str(&format!(" k={}", spec.k));
    }
    if let Some(b) = spec.budget {
        request.push_str(&format!(" budget={b}"));
    }
    request.push('\n');
    for line in payload {
        request.push_str(line);
        request.push('\n');
    }
    request
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobFamily;
    use crate::protocol::{parse_request_bytes, Request};

    #[test]
    fn rendered_submit_parses_back() {
        let spec = JobSpec {
            tenant: "acme".into(),
            family: JobFamily::Clique,
            k: 3,
            budget: Some(500),
            payload: "3\n0 1\n1 2\n0 2\n".into(),
        };
        let wire = render_submit(&spec);
        match parse_request_bytes(wire.as_bytes()) {
            Ok(Request::Submit(parsed)) => assert_eq!(parsed, spec),
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn retry_hint_is_extracted() {
        assert_eq!(retry_after_hint("overload retry-after-ms=250"), Some(250));
        assert_eq!(retry_after_hint("draining"), None);
    }
}
