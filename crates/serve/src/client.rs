//! A small blocking client for the `lb-serve` line protocol — used by
//! `lbtool submit`, the bench load generator, and the soak harness.

use crate::job::JobSpec;
use crate::protocol::StatusReport;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A typed client-side failure.
#[derive(Clone, Debug)]
pub enum ClientError {
    /// Socket-level trouble (connect, read, write, server gone).
    Io(String),
    /// The server answered with an `ERR` line; `retry_after_ms` is the
    /// backoff hint when the rejection carried one.
    Rejected {
        /// The full `ERR ...` response line.
        line: String,
        /// Parsed `retry-after-ms=` hint, if present.
        retry_after_ms: Option<u64>,
    },
    /// The server answered, but not with a line this call understands.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Rejected { line, .. } => write!(f, "rejected: {line}"),
            ClientError::Unexpected(line) => write!(f, "unexpected response: {line}"),
        }
    }
}

fn io_err(e: std::io::Error) -> ClientError {
    ClientError::Io(e.to_string())
}

/// Pulls the `retry-after-ms=<n>` hint out of an `ERR` line, if any.
pub fn retry_after_hint(line: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix("retry-after-ms="))
        .and_then(|v| v.parse().ok())
}

/// Client-side retry policy: exponential backoff with deterministic
/// seeded jitter, honoring server `retry-after-ms` hints.
///
/// The jitter is a pure function of `seed` and the attempt number — two
/// clients with different seeds spread out, one client replays exactly.
/// When the server's rejection carries a `retry-after-ms` hint, the wait
/// is at least that long: the server knows its own backlog better than
/// any client-side curve does.
#[derive(Clone, Debug)]
pub struct Backoff {
    /// First delay, in ms (later delays double, pre-jitter).
    pub base_ms: u64,
    /// Hard per-delay cap, in ms.
    pub cap_ms: u64,
    /// Total tries before giving up with the last error.
    pub attempts: u32,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff {
            base_ms: 25,
            cap_ms: 2_000,
            attempts: 6,
            seed: 0,
        }
    }
}

impl Backoff {
    /// The wait after failed try `attempt` (0-based), folding in the
    /// server's `retry-after-ms` hint when one came back.
    pub fn delay(&self, attempt: u32, hint_ms: Option<u64>) -> Duration {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cap_ms);
        // Deterministic jitter in [3/4, 5/4] of the exponential step.
        let mut state = self.seed ^ (u64::from(attempt) << 32) ^ 0x00ba_c0ff;
        let jittered = exp.saturating_sub(exp / 4) + splitmix(&mut state) % (exp / 2).max(1);
        Duration::from_millis(jittered.max(hint_ms.unwrap_or(0)).min(self.cap_ms))
    }
}

/// Whether an error is worth retrying: rejections that carry a backoff
/// hint (overload, quota, draining) and socket-level trouble (the server
/// may be mid-restart). Typed rejections without a hint — parse errors,
/// unknown jobs — are permanent and surface immediately.
fn retryable(e: &ClientError) -> Option<Option<u64>> {
    match e {
        ClientError::Io(_) => Some(None),
        ClientError::Rejected {
            retry_after_ms: Some(ms),
            ..
        } => Some(Some(*ms)),
        _ => None,
    }
}

/// Runs `op` under `policy`, sleeping the jittered backoff between
/// retryable failures. `op` receives the 0-based attempt number (callers
/// reconnect per try). Returns the value and how many backoffs were
/// taken; the last error when every try failed.
pub fn retry_with_backoff<T>(
    policy: &Backoff,
    mut op: impl FnMut(u32) -> Result<T, ClientError>,
) -> Result<(T, u32), ClientError> {
    let mut backoffs = 0u32;
    let tries = policy.attempts.max(1);
    let mut attempt = 0u32;
    loop {
        match op(attempt) {
            Ok(v) => return Ok((v, backoffs)),
            Err(e) => {
                let Some(hint) = retryable(&e) else {
                    return Err(e);
                };
                if attempt + 1 >= tries {
                    return Err(e);
                }
                std::thread::sleep(policy.delay(attempt, hint));
                backoffs += 1;
                attempt += 1;
            }
        }
    }
}

/// SplitMix64, same generator as `lb_engine::fault` (kept private — the
/// client must not grow a public RNG surface).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One protocol connection. Requests are strictly sequential: send, then
/// read exactly one response line.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects with a read timeout so a wedged server surfaces as a typed
    /// error rather than a hang.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_read_timeout(Some(timeout)).map_err(io_err)?;
        stream.set_write_timeout(Some(timeout)).map_err(io_err)?;
        let reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends raw request text (caller supplies the trailing newlines) and
    /// reads one response line.
    pub fn roundtrip(&mut self, request: &str) -> Result<String, ClientError> {
        self.writer.write_all(request.as_bytes()).map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(io_err)?;
        if n == 0 {
            return Err(ClientError::Io("server closed the connection".to_string()));
        }
        // A response without its newline is a torn write (the server died
        // mid-line): `OK j3` delivered as `OK j` would otherwise be
        // trusted as an ack for the wrong job id. Typed I/O error instead
        // — the retry layer reconnects and reissues.
        if !line.ends_with('\n') {
            return Err(ClientError::Io(format!(
                "connection closed mid-response (torn line `{}`)",
                line.trim_end()
            )));
        }
        Ok(line.trim_end().to_string())
    }

    fn expect_ok(line: String) -> Result<String, ClientError> {
        if let Some(hint) = line.strip_prefix("ERR ") {
            return Err(ClientError::Rejected {
                retry_after_ms: retry_after_hint(hint),
                line,
            });
        }
        Ok(line)
    }

    /// `PING` → `PONG`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let line = Self::expect_ok(self.roundtrip("PING\n")?)?;
        if line == "PONG" {
            Ok(())
        } else {
            Err(ClientError::Unexpected(line))
        }
    }

    /// `STATS` → the raw counters line.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        Self::expect_ok(self.roundtrip("STATS\n")?)
    }

    /// `DRAIN` → graceful shutdown begins server-side.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        Self::expect_ok(self.roundtrip("DRAIN\n")?).map(|_line| ())
    }

    /// Submits a job, returning the acknowledged id. The id only comes
    /// back once the server has the record durably spooled.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<String, ClientError> {
        let request = render_submit(spec);
        let line = Self::expect_ok(self.roundtrip(&request)?)?;
        match line.strip_prefix("OK ") {
            Some(id) => Ok(id.to_string()),
            None => Err(ClientError::Unexpected(line)),
        }
    }

    /// `STATUS <id>` → the parsed report.
    pub fn status(&mut self, job_id: &str) -> Result<StatusReport, ClientError> {
        let line = Self::expect_ok(self.roundtrip(&format!("STATUS {job_id}\n"))?)?;
        StatusReport::from_line(&line).ok_or(ClientError::Unexpected(line))
    }
}

/// Renders a [`JobSpec`] as the wire request (`SUBMIT` header + payload).
pub fn render_submit(spec: &JobSpec) -> String {
    let payload: Vec<&str> = spec.payload.lines().collect();
    let mut request = format!("SUBMIT {} {} {}", spec.tenant, spec.family, payload.len());
    if spec.k > 0 {
        request.push_str(&format!(" k={}", spec.k));
    }
    if let Some(b) = spec.budget {
        request.push_str(&format!(" budget={b}"));
    }
    request.push('\n');
    for line in payload {
        request.push_str(line);
        request.push('\n');
    }
    request
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobFamily;
    use crate::protocol::{parse_request_bytes, Request};

    #[test]
    fn rendered_submit_parses_back() {
        let spec = JobSpec {
            tenant: "acme".into(),
            family: JobFamily::Clique,
            k: 3,
            budget: Some(500),
            payload: "3\n0 1\n1 2\n0 2\n".into(),
        };
        let wire = render_submit(&spec);
        match parse_request_bytes(wire.as_bytes()) {
            Ok(Request::Submit(parsed)) => assert_eq!(parsed, spec),
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn retry_hint_is_extracted() {
        assert_eq!(retry_after_hint("overload retry-after-ms=250"), Some(250));
        assert_eq!(retry_after_hint("draining"), None);
    }

    #[test]
    fn backoff_is_deterministic_and_honors_hints() {
        let policy = Backoff {
            base_ms: 100,
            cap_ms: 1_000,
            attempts: 5,
            seed: 42,
        };
        for attempt in 0..5 {
            assert_eq!(
                policy.delay(attempt, None),
                policy.delay(attempt, None),
                "same seed and attempt must give the same delay"
            );
            let d = policy.delay(attempt, None).as_millis() as u64;
            assert!(d <= 1_000, "delay {d} exceeds the cap");
        }
        // A server hint is a floor (still capped).
        assert!(policy.delay(0, Some(400)).as_millis() >= 400);
        assert_eq!(policy.delay(0, Some(9_999)).as_millis(), 1_000);
        // Different seeds spread out somewhere on the curve.
        let other = Backoff { seed: 43, ..policy };
        assert!((0..5).any(|a| policy.delay(a, None) != other.delay(a, None)));
    }

    #[test]
    fn retry_gives_up_on_permanent_rejections() {
        let policy = Backoff {
            base_ms: 1,
            cap_ms: 1,
            attempts: 4,
            seed: 7,
        };
        let mut calls = 0u32;
        let result: Result<((), u32), _> = retry_with_backoff(&policy, |_attempt| {
            calls += 1;
            Err(ClientError::Rejected {
                line: "ERR parse".into(),
                retry_after_ms: None,
            })
        });
        assert!(result.is_err());
        assert_eq!(calls, 1, "a hint-less rejection must not be retried");
    }

    #[test]
    fn retry_retries_io_then_succeeds() {
        let policy = Backoff {
            base_ms: 1,
            cap_ms: 1,
            attempts: 4,
            seed: 7,
        };
        let mut calls = 0u32;
        let (value, backoffs) = retry_with_backoff(&policy, |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(ClientError::Io("refused".into()))
            } else {
                Ok("up")
            }
        })
        .unwrap();
        assert_eq!((value, backoffs, calls), ("up", 2, 3));
    }
}
