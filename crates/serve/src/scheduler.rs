//! The multi-tenant scheduler: per-tenant FIFO queues drained round-robin
//! by a worker pool, with **preemption through the checkpoint layer** —
//! every job runs in fixed-size budget slices, and a job whose slice
//! exhausts is suspended to an LBCK blob in the spool and re-queued behind
//! its tenant's other work. One adversarial AGM-worst-case query can hold
//! a worker for at most one slice.
//!
//! Admission control is typed and immediate: a tenant over its quota, a
//! full server, or a draining server each get a distinct [`Reject`] with a
//! client-visible retry-after hint — load is shed, connections never hang
//! waiting for queue space.
//!
//! Every state transition that must survive `kill -9` goes through the
//! [`Spool`] before it is acknowledged: records before `OK`, checkpoints
//! before re-queueing, verdicts before a job is reported `done`.

use crate::job::{Instance, JobRecord, JobSpec, JobStatus, Verdict};
use crate::protocol::{Reject, StatusReport};
use crate::runner::{self, SliceOutcome};
use crate::spool::Spool;
use lb_engine::{exhaustion_diagnostic, Budget, Checkpoint};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;

/// Scheduler tuning knobs.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Ticks per slice — the preemption quantum.
    pub slice_ticks: u64,
    /// Worker threads.
    pub workers: usize,
    /// Max unsettled jobs a single tenant may hold queued/running.
    pub tenant_quota: usize,
    /// Max unsettled jobs server-wide (admission cap).
    pub max_active: usize,
    /// Base client backoff hint for quota/overload rejections, ms.
    pub retry_after_ms: u64,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            slice_ticks: 65_536,
            workers: 2,
            tenant_quota: 16,
            max_active: 256,
            retry_after_ms: 100,
        }
    }
}

/// One job's in-memory state alongside its persisted record.
struct Entry {
    rec: JobRecord,
    instance: Option<Arc<Instance>>,
    running: bool,
    resume: Option<Checkpoint>,
}

#[derive(Default)]
struct Counters {
    slices: u64,
    preemptions: u64,
    rejected: u64,
    done: u64,
    ticks: u64,
}

struct State {
    jobs: BTreeMap<String, Entry>,
    queues: BTreeMap<String, VecDeque<String>>,
    ring: VecDeque<String>,
    active: usize,
    per_tenant: BTreeMap<String, usize>,
    draining: bool,
    next_job_number: u64,
    counters: Counters,
}

/// The scheduler: shared by the accept loop (submissions, status) and the
/// worker pool (slices).
pub struct Scheduler {
    spool: Spool,
    cfg: SchedulerConfig,
    state: Mutex<State>,
    wake: Condvar,
}

fn lock_state<'a>(m: &'a Mutex<State>) -> MutexGuard<'a, State> {
    // A worker that panicked mid-slice poisons the mutex; the state it
    // guards is still consistent (transitions happen under the lock), so
    // recover rather than cascade the panic through every connection.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Scheduler {
    /// Opens the spool, replays every surviving record, and returns the
    /// scheduler with recovered jobs queued exactly where they left off.
    pub fn recover(
        spool: Spool,
        cfg: SchedulerConfig,
    ) -> Result<(Arc<Scheduler>, RecoveryReport), crate::spool::SpoolError> {
        let recovered = spool.recover()?;
        let mut report = RecoveryReport {
            resumed: 0,
            settled: 0,
            stale_tmp_removed: recovered.stale_tmp_removed,
            skipped: recovered
                .skipped
                .iter()
                .map(|(p, e)| format!("{}: {e}", p.display()))
                .collect(),
            discarded_checkpoints: Vec::new(),
        };
        let mut state = State {
            jobs: BTreeMap::new(),
            queues: BTreeMap::new(),
            ring: VecDeque::new(),
            active: 0,
            per_tenant: BTreeMap::new(),
            draining: false,
            next_job_number: recovered.next_job_number,
            counters: Counters::default(),
        };
        for rec in recovered.records {
            let id = rec.id.clone();
            match &rec.status {
                JobStatus::Done(_) => {
                    // Settled: serve STATUS from the record, never re-run —
                    // the no-duplicated-verdicts half of the invariant.
                    report.settled += 1;
                    state.jobs.insert(
                        id,
                        Entry {
                            rec,
                            instance: None,
                            running: false,
                            resume: None,
                        },
                    );
                }
                JobStatus::Queued => {
                    let (resume, discarded) = spool.resume_point(&rec);
                    if let Some(why) = discarded {
                        report
                            .discarded_checkpoints
                            .push(format!("{}: {why}", rec.id));
                    }
                    let instance = match rec.spec.instance() {
                        Ok(i) => Arc::new(i),
                        Err(e) => {
                            // A complete record whose payload no longer
                            // parses (format drift): settle it as a typed
                            // UNKNOWN rather than wedge the queue.
                            let mut rec = rec;
                            rec.status = JobStatus::Done(Verdict::Unknown(format!(
                                "payload no longer parses: {e}"
                            )));
                            spool.save_record(&rec)?;
                            report.settled += 1;
                            state.jobs.insert(
                                rec.id.clone(),
                                Entry {
                                    rec,
                                    instance: None,
                                    running: false,
                                    resume: None,
                                },
                            );
                            continue;
                        }
                    };
                    report.resumed += 1;
                    enqueue(&mut state, &id, &rec.spec.tenant);
                    state.active += 1;
                    *state.per_tenant.entry(rec.spec.tenant.clone()).or_insert(0) += 1;
                    state.jobs.insert(
                        id,
                        Entry {
                            rec,
                            instance: Some(instance),
                            running: false,
                            resume,
                        },
                    );
                }
            }
        }
        Ok((
            Arc::new(Scheduler {
                spool,
                cfg,
                state: Mutex::new(state),
                wake: Condvar::new(),
            }),
            report,
        ))
    }

    /// Spawns the worker pool. Workers exit after [`Scheduler::drain`].
    pub fn spawn_workers(self: &Arc<Self>) -> Vec<thread::JoinHandle<()>> {
        (0..self.cfg.workers.max(1))
            .map(|_| {
                let sched = Arc::clone(self);
                thread::spawn(move || sched.worker_loop())
            })
            .collect()
    }

    /// Admission control + durable enqueue. `OK <id>` semantics: the id is
    /// returned only after the record is atomically on disk, so an
    /// acknowledged job is never lost.
    pub fn submit(&self, spec: JobSpec) -> Result<String, Reject> {
        let instance = match spec.instance() {
            Ok(i) => Arc::new(i),
            Err(e) => return Err(Reject::Parse(e)),
        };
        let (id, rec) = {
            let mut state = lock_state(&self.state);
            if state.draining {
                state.counters.rejected += 1;
                return Err(Reject::Draining);
            }
            if state.active >= self.cfg.max_active {
                state.counters.rejected += 1;
                let hint = self.backoff_hint(&state);
                return Err(Reject::Overload {
                    retry_after_ms: hint,
                });
            }
            let held = state.per_tenant.get(&spec.tenant).copied().unwrap_or(0);
            if held >= self.cfg.tenant_quota {
                state.counters.rejected += 1;
                let hint = self.backoff_hint(&state);
                return Err(Reject::Quota {
                    tenant: spec.tenant.clone(),
                    limit: self.cfg.tenant_quota,
                    retry_after_ms: hint,
                });
            }
            let n = state.next_job_number;
            state.next_job_number += 1;
            let id = format!("j{n}");
            let rec = JobRecord {
                id: id.clone(),
                spec,
                status: JobStatus::Queued,
                preemptions: 0,
                spent: 0,
            };
            (id, rec)
        };
        // Persist outside the lock: fsync latency must not serialize the
        // whole scheduler. The id was reserved atomically above.
        if let Err(e) = self.spool.save_record(&rec) {
            return Err(Reject::Parse(lb_engine::ParseError::new(
                1,
                1,
                lb_engine::ParseErrorKind::Malformed {
                    what: format!("spool write failed: {e}"),
                },
            )));
        }
        let tenant = rec.spec.tenant.clone();
        let mut state = lock_state(&self.state);
        state.active += 1;
        *state.per_tenant.entry(tenant.clone()).or_insert(0) += 1;
        enqueue(&mut state, &id, &tenant);
        state.jobs.insert(
            id.clone(),
            Entry {
                rec,
                instance: Some(instance),
                running: false,
                resume: None,
            },
        );
        drop(state);
        self.wake.notify_one();
        Ok(id)
    }

    /// Scales the retry hint with load: the deeper the backlog per worker,
    /// the longer clients are told to back off.
    fn backoff_hint(&self, state: &State) -> u64 {
        let per_worker = state.active as u64 / self.cfg.workers.max(1) as u64;
        self.cfg.retry_after_ms.saturating_mul(1 + per_worker / 4)
    }

    /// One job's state, or `None` for an id this spool never issued.
    pub fn status(&self, id: &str) -> Option<StatusReport> {
        let state = lock_state(&self.state);
        let entry = state.jobs.get(id)?;
        let (status, verdict) = match &entry.rec.status {
            JobStatus::Done(v) => ("done", Some(v.clone())),
            JobStatus::Queued if entry.running => ("running", None),
            JobStatus::Queued => ("queued", None),
        };
        Some(StatusReport {
            job_id: id.to_string(),
            state: status.to_string(),
            preemptions: entry.rec.preemptions,
            spent: entry.rec.spent,
            verdict,
        })
    }

    /// The one-line `STATS` response.
    pub fn stats_line(&self) -> String {
        let state = lock_state(&self.state);
        let running = state.jobs.values().filter(|e| e.running).count();
        let queued = state.active - running;
        format!(
            "STATS jobs={} queued={} running={} done={} tenants={} slices={} preemptions={} rejected={} ticks={}",
            state.jobs.len(),
            queued,
            running,
            state.counters.done,
            state.per_tenant.values().filter(|&&n| n > 0).count(),
            state.counters.slices,
            state.counters.preemptions,
            state.counters.rejected,
            state.counters.ticks,
        )
    }

    /// Begins graceful drain: admission closes immediately, workers stop
    /// picking up slices, and every unsettled job stays spooled for the
    /// next start. Idempotent.
    pub fn drain(&self) {
        let mut state = lock_state(&self.state);
        state.draining = true;
        drop(state);
        self.wake.notify_all();
    }

    /// True once drain was requested and no slice is still in flight.
    pub fn drained(&self) -> bool {
        let state = lock_state(&self.state);
        state.draining && state.jobs.values().all(|e| !e.running)
    }

    fn worker_loop(&self) {
        loop {
            let (id, instance, resume, slice) = {
                let mut state = lock_state(&self.state);
                loop {
                    if state.draining {
                        return;
                    }
                    if let Some(id) = pick_next(&mut state) {
                        let Some(entry) = state.jobs.get_mut(&id) else {
                            continue;
                        };
                        let Some(instance) = entry.instance.clone() else {
                            continue;
                        };
                        entry.running = true;
                        let resume = entry.resume.take();
                        break (id, instance, resume, self.cfg.slice_ticks.max(1));
                    }
                    state = self.wake.wait(state).unwrap_or_else(|e| e.into_inner());
                }
            };
            let result = runner::solve_slice(&instance, &Budget::ticks(slice), resume.as_ref());
            self.settle_slice(&id, result);
        }
    }

    /// Applies one finished slice's outcome under the lock, persisting
    /// whatever must survive a crash before the job becomes visible in its
    /// new state.
    fn settle_slice(
        &self,
        id: &str,
        result: Result<(SliceOutcome, lb_engine::RunStats), runner::SliceError>,
    ) {
        let mut state = lock_state(&self.state);
        state.counters.slices += 1;
        {
            let Some(entry) = state.jobs.get_mut(id) else {
                return;
            };
            entry.running = false;
        }
        match result {
            Ok((SliceOutcome::Done(v), stats)) => {
                let ticks = stats.total_ops();
                if let Some(entry) = state.jobs.get_mut(id) {
                    entry.rec.spent += ticks;
                }
                state.counters.ticks += ticks;
                self.finish(&mut state, id, v);
            }
            Ok((SliceOutcome::Suspended { reason, checkpoint }, stats)) => {
                let ticks = stats.total_ops();
                state.counters.ticks += ticks;
                let (over_budget, tenant) = {
                    let Some(entry) = state.jobs.get_mut(id) else {
                        return;
                    };
                    entry.rec.spent += ticks;
                    (
                        entry.rec.spec.budget.is_some_and(|t| entry.rec.spent >= t),
                        entry.rec.spec.tenant.clone(),
                    )
                };
                if over_budget {
                    // Terminal exhaustion: the job's own budget is gone.
                    // Same shared diagnostic lbtool prints on exit 3.
                    let why = exhaustion_diagnostic(&reason.to_string(), None);
                    self.finish(&mut state, id, Verdict::Unknown(why));
                    return;
                }
                state.counters.preemptions += 1;
                // Persist frontier then record; only then re-queue. A crash
                // between the two replays from the older frontier — slower,
                // never wrong.
                if let Err(e) = self.spool.save_checkpoint(id, &checkpoint) {
                    eprintln!("warning: {id}: could not spool checkpoint: {e}");
                }
                if let Some(entry) = state.jobs.get_mut(id) {
                    entry.rec.preemptions += 1;
                    if let Err(e) = self.spool.save_record(&entry.rec) {
                        eprintln!("warning: {id}: could not update record: {e}");
                    }
                    entry.resume = Some(checkpoint);
                }
                enqueue(&mut state, id, &tenant);
                drop(state);
                self.wake.notify_one();
            }
            Err(e) => {
                // A typed solver/checkpoint failure settles the job as
                // UNKNOWN — reported, never swallowed, never panicked.
                self.finish(&mut state, id, Verdict::Unknown(format!("error: {e}")));
            }
        }
    }

    /// Settles a job: verdict into the record, record onto disk, frontier
    /// artifacts cleaned, accounting updated.
    fn finish(&self, state: &mut State, id: &str, verdict: Verdict) {
        let Some(entry) = state.jobs.get_mut(id) else {
            return;
        };
        entry.rec.status = JobStatus::Done(verdict);
        entry.resume = None;
        entry.instance = None;
        if let Err(e) = self.spool.save_record(&entry.rec) {
            eprintln!("warning: {id}: could not persist verdict: {e}");
        }
        if let Err(e) = self.spool.remove_checkpoint(id) {
            eprintln!("warning: {id}: could not remove checkpoint: {e}");
        }
        let tenant = entry.rec.spec.tenant.clone();
        state.active = state.active.saturating_sub(1);
        if let Some(n) = state.per_tenant.get_mut(&tenant) {
            *n = n.saturating_sub(1);
        }
        state.counters.done += 1;
    }
}

/// What [`Scheduler::recover`] found and did.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Jobs re-queued (resuming from a spooled frontier where one decoded).
    pub resumed: usize,
    /// Jobs already settled on disk (served from the record, never re-run).
    pub settled: usize,
    /// Stale `.tmp` files swept.
    pub stale_tmp_removed: usize,
    /// Undecodable record files, with their typed errors.
    pub skipped: Vec<String>,
    /// Checkpoints discarded as undecodable (job restarts from scratch).
    pub discarded_checkpoints: Vec<String>,
}

/// Appends a job to its tenant's queue, registering the tenant in the
/// round-robin ring if it just became runnable.
fn enqueue(state: &mut State, id: &str, tenant: &str) {
    let queue = state.queues.entry(tenant.to_string()).or_default();
    if queue.is_empty() && !state.ring.iter().any(|t| t == tenant) {
        state.ring.push_back(tenant.to_string());
    }
    queue.push_back(id.to_string());
}

/// Round-robin across tenants: take the front tenant's front job, then
/// rotate the tenant to the back (or drop it from the ring when its queue
/// emptied). Each tenant gets one slice per ring pass no matter how deep
/// any single tenant's backlog is.
fn pick_next(state: &mut State) -> Option<String> {
    for _ in 0..state.ring.len() {
        let tenant = state.ring.pop_front()?;
        let Some(queue) = state.queues.get_mut(&tenant) else {
            continue;
        };
        let id = queue.pop_front();
        if !queue.is_empty() {
            state.ring.push_back(tenant);
        }
        if let Some(id) = id {
            return Some(id);
        }
    }
    None
}
