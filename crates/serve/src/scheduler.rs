//! The multi-tenant scheduler: per-tenant FIFO queues drained round-robin
//! by a worker pool, with **preemption through the checkpoint layer** —
//! every job runs in fixed-size budget slices, and a job whose slice
//! exhausts is suspended to an LBCK blob in the spool and re-queued behind
//! its tenant's other work. One adversarial AGM-worst-case query can hold
//! a worker for at most one slice.
//!
//! Admission control is typed and immediate: a tenant over its quota, a
//! full server, or a draining server each get a distinct [`Reject`] with a
//! client-visible retry-after hint — load is shed, connections never hang
//! waiting for queue space.
//!
//! Every state transition that must survive `kill -9` goes through the
//! [`Spool`] before it is acknowledged: records before `OK`, checkpoints
//! before re-queueing, verdicts before a job is reported `done`.

use crate::job::{Instance, JobRecord, JobSpec, JobStatus, Verdict};
use crate::protocol::{Reject, StatusReport};
use crate::runner::{self, SliceError, SliceOutcome};
use crate::spool::Spool;
use crate::sync::{cond_wait, cond_wait_timeout, lock_recover};
use lb_engine::fault::{with_io_plan, IoFaultPlan};
use lb_engine::{exhaustion_diagnostic, Budget, Checkpoint};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Scheduler tuning knobs.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Ticks per slice — the preemption quantum.
    pub slice_ticks: u64,
    /// Worker threads.
    pub workers: usize,
    /// Max unsettled jobs a single tenant may hold queued/running.
    pub tenant_quota: usize,
    /// Max unsettled jobs server-wide (admission cap).
    pub max_active: usize,
    /// Base client backoff hint for quota/overload rejections, ms.
    pub retry_after_ms: u64,
    /// Failed attempts before a job is quarantined (min 1).
    pub max_attempts: u64,
    /// Base server-side backoff between a job's failed attempt and its
    /// next slice, ms; doubles per attempt, capped at 5 s.
    pub retry_backoff_ms: u64,
    /// Chaos knob: seed for deterministic [`IoFaultPlan`]s injected into
    /// every fourth slice's settle path. `None` (the default) injects
    /// nothing — production runs never fault themselves.
    pub io_fault_seed: Option<u64>,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            slice_ticks: 65_536,
            workers: 2,
            tenant_quota: 16,
            max_active: 256,
            retry_after_ms: 100,
            max_attempts: 3,
            retry_backoff_ms: 50,
            io_fault_seed: None,
        }
    }
}

/// One job's in-memory state alongside its persisted record.
struct Entry {
    rec: JobRecord,
    instance: Option<Arc<Instance>>,
    running: bool,
    resume: Option<Checkpoint>,
    /// Earliest moment the job may take its next slice (retry backoff).
    not_before: Option<Instant>,
    /// One line per failed attempt — flushed to the quarantine evidence
    /// file if the job dead-letters.
    evidence: Vec<String>,
    /// Consecutive suspended slices with zero tick progress (the budget
    /// livelock detector).
    stalled: u64,
}

#[derive(Default)]
struct Counters {
    slices: u64,
    preemptions: u64,
    rejected: u64,
    done: u64,
    ticks: u64,
    retries: u64,
    quarantined: u64,
}

struct State {
    jobs: BTreeMap<String, Entry>,
    queues: BTreeMap<String, VecDeque<String>>,
    ring: VecDeque<String>,
    active: usize,
    per_tenant: BTreeMap<String, usize>,
    draining: bool,
    next_job_number: u64,
    /// Raw dead-lettered ids (the record itself was corrupt): id →
    /// evidence line, so `STATUS` can still answer for them.
    dead_lettered: BTreeMap<String, String>,
    counters: Counters,
}

/// The scheduler: shared by the accept loop (submissions, status) and the
/// worker pool (slices).
pub struct Scheduler {
    spool: Spool,
    cfg: SchedulerConfig,
    state: Mutex<State>,
    wake: Condvar,
    /// Slices handed out so far — the deterministic index the chaos
    /// io-fault schedule keys on.
    slices_started: AtomicU64,
}

/// Acquires the scheduler state lock. All poison recovery lives in
/// [`crate::sync`]; this wrapper only pins the receiver name R14 keys on.
fn lock_state(m: &Mutex<State>) -> MutexGuard<'_, State> {
    lock_recover(m)
}

impl Scheduler {
    /// Opens the spool, replays every surviving record, and returns the
    /// scheduler with recovered jobs queued exactly where they left off.
    pub fn recover(
        spool: Spool,
        cfg: SchedulerConfig,
    ) -> Result<(Arc<Scheduler>, RecoveryReport), crate::spool::SpoolError> {
        let recovered = spool.recover()?;
        let mut report = RecoveryReport {
            resumed: 0,
            settled: 0,
            quarantined: recovered.quarantined.len(),
            restarted_from_scratch: 0,
            stale_tmp_removed: recovered.stale_tmp_removed,
            skipped: recovered
                .skipped
                .iter()
                .map(|(p, e)| format!("{}: {e}", p.display()))
                .collect(),
            dead_lettered: recovered
                .dead_lettered
                .iter()
                .map(|(id, e)| format!("{id}: {e}"))
                .collect(),
            discarded_checkpoints: Vec::new(),
        };
        let mut state = State {
            jobs: BTreeMap::new(),
            queues: BTreeMap::new(),
            ring: VecDeque::new(),
            active: 0,
            per_tenant: BTreeMap::new(),
            draining: false,
            next_job_number: recovered.next_job_number,
            dead_lettered: recovered.dead_lettered.into_iter().collect(),
            counters: Counters::default(),
        };
        let settled_entry = |rec: JobRecord| Entry {
            rec,
            instance: None,
            running: false,
            resume: None,
            not_before: None,
            evidence: Vec::new(),
            stalled: 0,
        };
        for rec in recovered.quarantined {
            // Terminal: serve STATUS from the dead-letter record, never
            // re-run. Not counted active — the tenant's quota is free.
            state.jobs.insert(rec.id.clone(), settled_entry(rec));
        }
        for rec in recovered.records {
            let id = rec.id.clone();
            match &rec.status {
                JobStatus::Done(_) => {
                    // Settled: serve STATUS from the record, never re-run —
                    // the no-duplicated-verdicts half of the invariant.
                    report.settled += 1;
                    state.jobs.insert(id, settled_entry(rec));
                }
                JobStatus::Quarantined { .. } => {
                    // A quarantined record still under jobs/ (legacy or a
                    // hand-edited spool): honor it as terminal.
                    report.quarantined += 1;
                    state.jobs.insert(id, settled_entry(rec));
                }
                JobStatus::Queued => {
                    let (resume, discarded) = spool.resume_point(&rec);
                    let mut rec = rec;
                    let mut evidence = Vec::new();
                    if let Some(why) = discarded {
                        // Degraded-checkpoint recovery: the frontier blob
                        // failed typed decode, so the job restarts from
                        // scratch — one rung up the ladder, never lost,
                        // never wedging the queue.
                        rec.attempts += 1;
                        evidence.push(format!(
                            "attempt {}: checkpoint discarded on recovery: {why}",
                            rec.attempts
                        ));
                        report
                            .discarded_checkpoints
                            .push(format!("{}: {why}", rec.id));
                        if rec.attempts >= cfg.max_attempts.max(1) {
                            let reason = format!(
                                "{} attempts exhausted; last: checkpoint discarded on recovery: {why}",
                                rec.attempts
                            );
                            rec.status = JobStatus::Quarantined { reason };
                            let mut text = evidence.join("\n");
                            text.push('\n');
                            spool.quarantine(&rec, &text)?;
                            report.quarantined += 1;
                            state.jobs.insert(rec.id.clone(), settled_entry(rec));
                            continue;
                        }
                        report.restarted_from_scratch += 1;
                        spool.save_record(&rec)?;
                    }
                    let instance = match rec.spec.instance() {
                        Ok(i) => Arc::new(i),
                        Err(e) => {
                            // A complete record whose payload no longer
                            // parses (format drift): settle it as a typed
                            // UNKNOWN rather than wedge the queue.
                            rec.status = JobStatus::Done(Verdict::Unknown(format!(
                                "payload no longer parses: {e}"
                            )));
                            spool.save_record(&rec)?;
                            report.settled += 1;
                            state.jobs.insert(rec.id.clone(), settled_entry(rec));
                            continue;
                        }
                    };
                    report.resumed += 1;
                    enqueue(&mut state, &id, &rec.spec.tenant);
                    state.active += 1;
                    *state.per_tenant.entry(rec.spec.tenant.clone()).or_insert(0) += 1;
                    state.jobs.insert(
                        id,
                        Entry {
                            rec,
                            instance: Some(instance),
                            running: false,
                            resume,
                            not_before: None,
                            evidence,
                            stalled: 0,
                        },
                    );
                }
            }
        }
        Ok((
            Arc::new(Scheduler {
                spool,
                cfg,
                state: Mutex::new(state),
                wake: Condvar::new(),
                slices_started: AtomicU64::new(0),
            }),
            report,
        ))
    }

    /// Spawns the worker pool. Workers exit after [`Scheduler::drain`].
    pub fn spawn_workers(self: &Arc<Self>) -> Vec<thread::JoinHandle<()>> {
        (0..self.cfg.workers.max(1))
            .map(|_| {
                let sched = Arc::clone(self);
                thread::spawn(move || sched.worker_loop())
            })
            .collect()
    }

    /// Admission control + durable enqueue. `OK <id>` semantics: the id is
    /// returned only after the record is atomically on disk, so an
    /// acknowledged job is never lost.
    pub fn submit(&self, spec: JobSpec) -> Result<String, Reject> {
        let instance = match spec.instance() {
            Ok(i) => Arc::new(i),
            Err(e) => return Err(Reject::Parse(e)),
        };
        let (id, rec) = {
            let mut state = lock_state(&self.state);
            if state.draining {
                state.counters.rejected += 1;
                // This instance never reopens admission, but its successor
                // will recover the spool — tell clients when to retry.
                let hint = self.backoff_hint(&state);
                return Err(Reject::Draining {
                    retry_after_ms: hint,
                });
            }
            if state.active >= self.cfg.max_active {
                state.counters.rejected += 1;
                let hint = self.backoff_hint(&state);
                return Err(Reject::Overload {
                    retry_after_ms: hint,
                });
            }
            let held = state.per_tenant.get(&spec.tenant).copied().unwrap_or(0);
            if held >= self.cfg.tenant_quota {
                state.counters.rejected += 1;
                let hint = self.backoff_hint(&state);
                return Err(Reject::Quota {
                    tenant: spec.tenant.clone(),
                    limit: self.cfg.tenant_quota,
                    retry_after_ms: hint,
                });
            }
            let n = state.next_job_number;
            state.next_job_number += 1;
            let id = format!("j{n}");
            let rec = JobRecord {
                id: id.clone(),
                spec,
                status: JobStatus::Queued,
                preemptions: 0,
                spent: 0,
                attempts: 0,
            };
            (id, rec)
        };
        // Persist outside the lock: fsync latency must not serialize the
        // whole scheduler. The id was reserved atomically above.
        if let Err(e) = self.spool.save_record(&rec) {
            return Err(Reject::Parse(lb_engine::ParseError::new(
                1,
                1,
                lb_engine::ParseErrorKind::Malformed {
                    what: format!("spool write failed: {e}"),
                },
            )));
        }
        let tenant = rec.spec.tenant.clone();
        let mut state = lock_state(&self.state);
        state.active += 1;
        *state.per_tenant.entry(tenant.clone()).or_insert(0) += 1;
        enqueue(&mut state, &id, &tenant);
        state.jobs.insert(
            id.clone(),
            Entry {
                rec,
                instance: Some(instance),
                running: false,
                resume: None,
                not_before: None,
                evidence: Vec::new(),
                stalled: 0,
            },
        );
        drop(state);
        self.wake.notify_one();
        Ok(id)
    }

    /// Scales the retry hint with load: the deeper the backlog per worker,
    /// the longer clients are told to back off.
    fn backoff_hint(&self, state: &State) -> u64 {
        let per_worker = state.active as u64 / self.cfg.workers.max(1) as u64;
        self.cfg.retry_after_ms.saturating_mul(1 + per_worker / 4)
    }

    /// One job's state, or `None` for an id this spool never issued.
    pub fn status(&self, id: &str) -> Option<StatusReport> {
        let state = lock_state(&self.state);
        let Some(entry) = state.jobs.get(id) else {
            // A raw dead-lettered id (its record never decoded) still
            // answers: quarantined, with the decode error as evidence.
            let why = state.dead_lettered.get(id)?;
            return Some(StatusReport {
                job_id: id.to_string(),
                state: "quarantined".to_string(),
                preemptions: 0,
                spent: 0,
                attempts: 0,
                verdict: None,
                evidence: Some(why.clone()),
            });
        };
        let (status, verdict, evidence) = match &entry.rec.status {
            JobStatus::Done(v) => ("done", Some(v.clone()), None),
            JobStatus::Quarantined { reason } => ("quarantined", None, Some(reason.clone())),
            JobStatus::Queued if entry.running => ("running", None, None),
            JobStatus::Queued => ("queued", None, None),
        };
        Some(StatusReport {
            job_id: id.to_string(),
            state: status.to_string(),
            preemptions: entry.rec.preemptions,
            spent: entry.rec.spent,
            attempts: entry.rec.attempts,
            verdict,
            evidence,
        })
    }

    /// The one-line `STATS` response.
    pub fn stats_line(&self) -> String {
        let state = lock_state(&self.state);
        let running = state.jobs.values().filter(|e| e.running).count();
        let queued = state.active - running;
        let quarantined = state
            .jobs
            .values()
            .filter(|e| matches!(e.rec.status, JobStatus::Quarantined { .. }))
            .count()
            + state.dead_lettered.len();
        format!(
            "STATS jobs={} queued={} running={} done={} quarantined={} tenants={} slices={} preemptions={} retries={} rejected={} ticks={}",
            state.jobs.len() + state.dead_lettered.len(),
            queued,
            running,
            state.counters.done,
            quarantined,
            state.per_tenant.values().filter(|&&n| n > 0).count(),
            state.counters.slices,
            state.counters.preemptions,
            state.counters.retries,
            state.counters.rejected,
            state.counters.ticks,
        )
    }

    /// Begins graceful drain: admission closes immediately, workers stop
    /// picking up slices, and every unsettled job stays spooled for the
    /// next start. Idempotent.
    pub fn drain(&self) {
        let mut state = lock_state(&self.state);
        state.draining = true;
        drop(state);
        self.wake.notify_all();
    }

    /// True once drain was requested and no slice is still in flight.
    pub fn drained(&self) -> bool {
        let state = lock_state(&self.state);
        state.draining && state.jobs.values().all(|e| !e.running)
    }

    fn worker_loop(&self) {
        loop {
            let (id, instance, resume, slice) = {
                let mut state = lock_state(&self.state);
                loop {
                    if state.draining {
                        return;
                    }
                    let now = Instant::now();
                    let (pick, wake_at) = pick_next(&mut state, now);
                    if let Some(id) = pick {
                        let Some(entry) = state.jobs.get_mut(&id) else {
                            continue;
                        };
                        let Some(instance) = entry.instance.clone() else {
                            continue;
                        };
                        entry.running = true;
                        entry.not_before = None;
                        let resume = entry.resume.take();
                        break (id, instance, resume, self.cfg.slice_ticks.max(1));
                    }
                    // Park until new work arrives — or until the earliest
                    // backing-off job becomes runnable again.
                    state = match wake_at {
                        Some(at) => {
                            let wait = at.saturating_duration_since(now);
                            cond_wait_timeout(&self.wake, state, wait)
                        }
                        None => cond_wait(&self.wake, state),
                    };
                }
            };
            let slice_no = self.slices_started.fetch_add(1, Ordering::SeqCst) + 1;
            let result = runner::solve_slice(&instance, &Budget::ticks(slice), resume.as_ref());
            match self.cfg.io_fault_seed {
                // Chaos mode: every fourth settle runs under a seeded
                // I/O fault schedule, so spool writes fail on a
                // deterministic (per slice index) plan.
                Some(seed) if slice_no.is_multiple_of(4) => {
                    let plan = IoFaultPlan::from_seed(seed ^ slice_no);
                    with_io_plan(&plan, || self.settle_slice(&id, result));
                }
                _ => self.settle_slice(&id, result),
            }
        }
    }

    /// Exponential per-attempt backoff: base doubles each rung, capped.
    fn backoff_after(&self, attempts: u64) -> Duration {
        let base = self.cfg.retry_backoff_ms.max(1);
        let exp = attempts.saturating_sub(1).min(16) as u32;
        Duration::from_millis(base.saturating_mul(1u64 << exp).min(5_000))
    }

    /// One rung up the retry ladder: bump the attempt counter, log the
    /// evidence line, and either re-queue with exponential backoff or —
    /// once `max_attempts` is reached — dead-letter the job. Set
    /// `discard_resume` when the in-memory frontier itself is suspect
    /// (corrupt checkpoint): the retry then restarts from scratch.
    fn fail_attempt(&self, state: &mut State, id: &str, why: &str, discard_resume: bool) {
        let (attempts, tenant) = {
            let Some(entry) = state.jobs.get_mut(id) else {
                return;
            };
            entry.rec.attempts += 1;
            entry
                .evidence
                .push(format!("attempt {}: {why}", entry.rec.attempts));
            if discard_resume {
                entry.resume = None;
            }
            (entry.rec.attempts, entry.rec.spec.tenant.clone())
        };
        if discard_resume {
            if let Err(e) = self.spool.remove_checkpoint(id) {
                eprintln!("warning: {id}: could not remove checkpoint: {e}");
            }
        }
        if attempts >= self.cfg.max_attempts.max(1) {
            self.quarantine_job(
                state,
                id,
                &format!("{attempts} attempts exhausted; last: {why}"),
            );
            return;
        }
        state.counters.retries += 1;
        let delay = self.backoff_after(attempts);
        if let Some(entry) = state.jobs.get_mut(id) {
            // Persist the bumped counter so a crash cannot reset the
            // ladder; a failed write here only delays quarantine by one
            // restart — sound either way.
            if let Err(e) = self.spool.save_record(&entry.rec) {
                eprintln!("warning: {id}: could not persist attempt count: {e}");
            }
            entry.not_before = Some(Instant::now() + delay);
        }
        enqueue(state, id, &tenant);
        // notify_all: parked workers must recompute their wait deadline.
        self.wake.notify_all();
    }

    /// Terminal dead-lettering: the record flips to `Quarantined`, moves
    /// (with its accumulated evidence) into the spool's quarantine area,
    /// and the tenant's quota slot frees up. The job is never re-run.
    fn quarantine_job(&self, state: &mut State, id: &str, reason: &str) {
        let Some(entry) = state.jobs.get_mut(id) else {
            return;
        };
        entry.rec.status = JobStatus::Quarantined {
            reason: reason.to_string(),
        };
        entry.resume = None;
        entry.instance = None;
        entry.not_before = None;
        let mut evidence = entry.evidence.join("\n");
        evidence.push('\n');
        let rec = entry.rec.clone();
        let tenant = rec.spec.tenant.clone();
        if let Err(e) = self.spool.quarantine(&rec, &evidence) {
            // Disk may still say `queued`: after a crash the job re-runs
            // and climbs the ladder again — sound, merely slower.
            eprintln!("warning: {id}: could not dead-letter: {e}");
        }
        state.active = state.active.saturating_sub(1);
        if let Some(n) = state.per_tenant.get_mut(&tenant) {
            *n = n.saturating_sub(1);
        }
        state.counters.quarantined += 1;
    }

    /// Applies one finished slice's outcome under the lock, persisting
    /// whatever must survive a crash before the job becomes visible in its
    /// new state.
    fn settle_slice(
        &self,
        id: &str,
        result: Result<(SliceOutcome, lb_engine::RunStats), runner::SliceError>,
    ) {
        // lb-lint: allow(lock-discipline) -- persistence ordering: the slice
        // outcome, its checkpoint, and the job's new state must land in the
        // spool atomically with respect to concurrent submit/steal, so the
        // saves happen under the state lock; contention is bounded because
        // settle runs once per finished slice, not per request.
        let mut state = lock_state(&self.state);
        state.counters.slices += 1;
        {
            let Some(entry) = state.jobs.get_mut(id) else {
                return;
            };
            entry.running = false;
        }
        match result {
            Ok((SliceOutcome::Done(v), stats)) => {
                let ticks = stats.total_ops();
                if let Some(entry) = state.jobs.get_mut(id) {
                    entry.rec.spent += ticks;
                }
                state.counters.ticks += ticks;
                self.finish(&mut state, id, v);
            }
            Ok((SliceOutcome::Suspended { reason, checkpoint }, stats)) => {
                let ticks = stats.total_ops();
                state.counters.ticks += ticks;
                let (over_budget, stalled, tenant) = {
                    let Some(entry) = state.jobs.get_mut(id) else {
                        return;
                    };
                    entry.rec.spent += ticks;
                    if ticks == 0 {
                        entry.stalled += 1;
                    } else {
                        entry.stalled = 0;
                    }
                    (
                        entry.rec.spec.budget.is_some_and(|t| entry.rec.spent >= t),
                        entry.stalled,
                        entry.rec.spec.tenant.clone(),
                    )
                };
                if over_budget {
                    // Terminal exhaustion: the job's own budget is gone.
                    // Same shared diagnostic lbtool prints on exit 3.
                    let why = exhaustion_diagnostic(&reason.to_string(), None);
                    self.finish(&mut state, id, Verdict::Unknown(why));
                    return;
                }
                if stalled >= self.cfg.max_attempts.max(1) {
                    // Budget livelock: slices keep suspending without a
                    // single tick of progress. Keep the frontier (it is
                    // not corrupt, just stuck) and climb the ladder.
                    if let Some(entry) = state.jobs.get_mut(id) {
                        entry.stalled = 0;
                        entry.resume = Some(checkpoint);
                    }
                    self.fail_attempt(
                        &mut state,
                        id,
                        &format!("budget livelock: {stalled} consecutive zero-progress slices"),
                        false,
                    );
                    return;
                }
                state.counters.preemptions += 1;
                // Persist frontier then record; only then re-queue. A crash
                // between the two replays from the older frontier — slower,
                // never wrong. A *failed* save is a ladder rung: the job
                // keeps its in-memory frontier, but repeated spool faults
                // quarantine it instead of silently degrading forever.
                let saved_ckpt = self.spool.save_checkpoint(id, &checkpoint);
                let saved_rec = match state.jobs.get_mut(id) {
                    Some(entry) => {
                        entry.rec.preemptions += 1;
                        entry.resume = Some(checkpoint);
                        self.spool.save_record(&entry.rec)
                    }
                    None => return,
                };
                if let Err(e) = saved_ckpt.and(saved_rec) {
                    self.fail_attempt(
                        &mut state,
                        id,
                        &format!("could not spool progress: {e}"),
                        false,
                    );
                    return;
                }
                enqueue(&mut state, id, &tenant);
                drop(state);
                self.wake.notify_one();
            }
            Err(SliceError::Checkpoint(e)) => {
                // The frontier blob failed to decode or re-encode: discard
                // it and retry from scratch — repeated corruption
                // quarantines the job with the typed error as evidence.
                self.fail_attempt(&mut state, id, &format!("checkpoint: {e}"), true);
            }
            Err(SliceError::Instance(e)) => {
                // The solver rejected the instance itself (e.g. a join
                // query naming a relation the database does not hold):
                // deterministic, so retrying cannot help. Settle as a
                // typed UNKNOWN — reported, never swallowed.
                self.finish(
                    &mut state,
                    id,
                    Verdict::Unknown(format!("error: instance: {e}")),
                );
            }
        }
    }

    /// Settles a job: verdict into the record, record onto disk, frontier
    /// artifacts cleaned, accounting updated.
    fn finish(&self, state: &mut State, id: &str, verdict: Verdict) {
        let Some(entry) = state.jobs.get_mut(id) else {
            return;
        };
        entry.rec.status = JobStatus::Done(verdict);
        entry.resume = None;
        entry.instance = None;
        if let Err(e) = self.spool.save_record(&entry.rec) {
            eprintln!("warning: {id}: could not persist verdict: {e}");
        }
        if let Err(e) = self.spool.remove_checkpoint(id) {
            eprintln!("warning: {id}: could not remove checkpoint: {e}");
        }
        let tenant = entry.rec.spec.tenant.clone();
        state.active = state.active.saturating_sub(1);
        if let Some(n) = state.per_tenant.get_mut(&tenant) {
            *n = n.saturating_sub(1);
        }
        state.counters.done += 1;
    }
}

/// What [`Scheduler::recover`] found and did.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Jobs re-queued (resuming from a spooled frontier where one decoded).
    pub resumed: usize,
    /// Jobs already settled on disk (served from the record, never re-run).
    pub settled: usize,
    /// Stale `.tmp` files swept.
    pub stale_tmp_removed: usize,
    /// Undecodable record files, with their typed errors.
    pub skipped: Vec<String>,
    /// Checkpoints discarded as undecodable (job restarts from scratch).
    pub discarded_checkpoints: Vec<String>,
    /// Jobs already quarantined on disk, plus jobs quarantined *during*
    /// this recovery because the discarded checkpoint exhausted their
    /// attempt ladder.
    pub quarantined: usize,
    /// Jobs whose checkpoint was discarded but whose ladder still had
    /// rungs left: re-queued from scratch with `attempts` bumped.
    pub restarted_from_scratch: usize,
    /// Undecodable record files moved to the quarantine dead-letter area,
    /// as `"<id>: <evidence>"` lines.
    pub dead_lettered: Vec<String>,
}

/// Appends a job to its tenant's queue, registering the tenant in the
/// round-robin ring if it just became runnable.
fn enqueue(state: &mut State, id: &str, tenant: &str) {
    let queue = state.queues.entry(tenant.to_string()).or_default();
    if queue.is_empty() && !state.ring.iter().any(|t| t == tenant) {
        state.ring.push_back(tenant.to_string());
    }
    queue.push_back(id.to_string());
}

/// Round-robin across tenants: take the front tenant's front job, then
/// rotate the tenant to the back (or drop it from the ring when its queue
/// emptied). Each tenant gets one slice per ring pass no matter how deep
/// any single tenant's backlog is.
///
/// Jobs parked behind a retry backoff (`not_before` in the future) are
/// skipped in place: the second return value is the earliest instant any
/// skipped job becomes runnable, so a worker with nothing to do knows how
/// long to sleep instead of spinning.
fn pick_next(state: &mut State, now: Instant) -> (Option<String>, Option<Instant>) {
    let mut wake_at: Option<Instant> = None;
    let State {
        ring, queues, jobs, ..
    } = state;
    for _ in 0..ring.len() {
        let Some(tenant) = ring.pop_front() else {
            break;
        };
        let Some(queue) = queues.get_mut(&tenant) else {
            continue;
        };
        let id = queue.pop_front();
        let Some(id) = id else {
            if !queue.is_empty() {
                ring.push_back(tenant);
            }
            continue;
        };
        let parked_until = jobs
            .get(&id)
            .and_then(|e| e.not_before)
            .filter(|&t| t > now);
        if let Some(until) = parked_until {
            // Still cooling off: put the job back where it was and give
            // the rest of the ring a chance this pass.
            queue.push_front(id);
            ring.push_back(tenant);
            wake_at = Some(match wake_at {
                Some(t) => t.min(until),
                None => until,
            });
            continue;
        }
        if !queue.is_empty() {
            ring.push_back(tenant);
        }
        return (Some(id), wake_at);
    }
    (None, wake_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobFamily;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(test: &str) -> (PathBuf, Spool) {
        let dir = std::env::temp_dir().join(format!("lbserve-sched-{test}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spool = Spool::open(&dir).unwrap();
        (dir, spool)
    }

    fn spec(tenant: &str) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            family: JobFamily::Triangle,
            k: 0,
            budget: None,
            payload: "3\n0 1\n1 2\n0 2\n".into(),
        }
    }

    fn cfg(max_attempts: u64) -> SchedulerConfig {
        SchedulerConfig {
            max_attempts,
            retry_backoff_ms: 10,
            ..SchedulerConfig::default()
        }
    }

    #[test]
    fn fail_attempt_backs_off_then_quarantines_with_evidence() {
        let (dir, spool) = scratch("ladder");
        let (sched, _) = Scheduler::recover(spool.clone(), cfg(2)).unwrap();
        let id = sched.submit(spec("acme")).unwrap();

        // First strike: re-queued behind a backoff, counter persisted.
        {
            let mut state = lock_state(&sched.state);
            sched.fail_attempt(&mut state, &id, "checkpoint: bad magic", true);
        }
        let status = sched.status(&id).unwrap();
        assert_eq!((status.state.as_str(), status.attempts), ("queued", 1));
        let on_disk = JobRecord::decode(&fs::read_to_string(spool.job_path(&id)).unwrap()).unwrap();
        assert_eq!(on_disk.attempts, 1, "ladder rung must survive a crash");
        {
            let state = lock_state(&sched.state);
            assert!(
                state.jobs[&id].not_before.is_some(),
                "a failed attempt must park the job behind a backoff"
            );
            assert_eq!(state.counters.retries, 1);
        }

        // Second strike exhausts max_attempts=2: terminal quarantine.
        {
            let mut state = lock_state(&sched.state);
            sched.fail_attempt(&mut state, &id, "checkpoint: bad magic", true);
        }
        let status = sched.status(&id).unwrap();
        assert_eq!(status.state, "quarantined");
        assert!(status.evidence.unwrap().contains("2 attempts exhausted"));
        // Durable dead-letter: record moved, both attempt lines in the
        // evidence file, tenant quota slot freed.
        assert!(!spool.job_path(&id).exists());
        let evidence = spool.load_evidence(&id).unwrap();
        assert!(evidence.contains("attempt 1:") && evidence.contains("attempt 2:"));
        {
            let state = lock_state(&sched.state);
            assert_eq!(state.active, 0, "quarantine frees the admission slot");
            assert_eq!(state.per_tenant["acme"], 0);
            assert_eq!(state.counters.quarantined, 1);
        }
        assert!(sched.stats_line().contains("quarantined=1"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_doubles_per_attempt_and_caps() {
        let (dir, spool) = scratch("backoff");
        let (sched, _) = Scheduler::recover(spool, cfg(10)).unwrap();
        assert_eq!(sched.backoff_after(1), Duration::from_millis(10));
        assert_eq!(sched.backoff_after(2), Duration::from_millis(20));
        assert_eq!(sched.backoff_after(4), Duration::from_millis(80));
        assert_eq!(sched.backoff_after(60), Duration::from_millis(5_000));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pick_next_skips_parked_jobs_and_reports_the_wake_time() {
        let (dir, spool) = scratch("park");
        let (sched, _) = Scheduler::recover(spool, cfg(3)).unwrap();
        let parked = sched.submit(spec("slow")).unwrap();
        let runnable = sched.submit(spec("fast")).unwrap();
        let now = Instant::now();
        let until = now + Duration::from_millis(500);
        let mut state = lock_state(&sched.state);
        state.jobs.get_mut(&parked).unwrap().not_before = Some(until);

        // The parked tenant is skipped in place; the runnable one is
        // handed out, and the wake hint points at the parked job.
        let (pick, wake) = pick_next(&mut state, now);
        assert_eq!(pick.as_deref(), Some(runnable.as_str()));
        let (pick2, wake2) = pick_next(&mut state, now);
        assert_eq!(pick2, None, "only the parked job remains");
        assert_eq!(wake.or(wake2), Some(until));

        // Once the backoff expires the job is runnable again.
        let (pick3, _) = pick_next(&mut state, until + Duration::from_millis(1));
        assert_eq!(pick3.as_deref(), Some(parked.as_str()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_livelock_climbs_the_ladder_but_keeps_the_frontier() {
        let (dir, spool) = scratch("livelock");
        let (sched, _) = Scheduler::recover(spool, cfg(3)).unwrap();
        let id = sched.submit(spec("acme")).unwrap();
        let suspend = || {
            // A suspended slice that made zero tick progress.
            let instance = {
                let state = lock_state(&sched.state);
                Arc::clone(state.jobs[&id].instance.as_ref().unwrap())
            };
            let ck = runner::solve_slice(&instance, &Budget::ticks(1), None);
            let checkpoint = match ck {
                Ok((SliceOutcome::Suspended { checkpoint, .. }, _)) => checkpoint,
                other => panic!("expected a suspension, got {other:?}"),
            };
            {
                let mut state = lock_state(&sched.state);
                state.jobs.get_mut(&id).unwrap().running = true;
            }
            sched.settle_slice(
                &id,
                Ok((
                    SliceOutcome::Suspended {
                        reason: lb_engine::ExhaustReason::Ticks { limit: 1 },
                        checkpoint,
                    },
                    lb_engine::RunStats::default(),
                )),
            );
        };
        // Two zero-progress suspensions just count; the third (max_attempts
        // = 3) is the livelock strike: attempts bumps, frontier kept.
        suspend();
        suspend();
        {
            let state = lock_state(&sched.state);
            assert_eq!(state.jobs[&id].stalled, 2);
            assert_eq!(state.jobs[&id].rec.attempts, 0);
        }
        suspend();
        let status = sched.status(&id).unwrap();
        assert_eq!(status.attempts, 1, "livelock is one rung up the ladder");
        assert_eq!(status.state, "queued");
        {
            let state = lock_state(&sched.state);
            assert_eq!(state.jobs[&id].stalled, 0, "counter resets per strike");
            assert!(
                state.jobs[&id].resume.is_some(),
                "the frontier is stuck, not corrupt: it must be kept"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
