//! `lb-serve` — run the solver service or drive a soak against one.
//!
//! ```text
//! lb-serve run   --spool DIR [--addr HOST:PORT] [--slice-ticks N] [--workers N]
//!                [--tenant-quota N] [--max-active N] [--retry-after-ms MS]
//!                [--max-attempts N] [--retry-backoff-ms MS]
//!                [--io-fault-seed N] [--net-fault-seed N]
//!                [--idle-timeout-ms MS] [--read-timeout-ms MS] [--max-conns N]
//! lb-serve bench --addr HOST:PORT [--tenants N] [--jobs N] [--seed N]
//!                [--timeout-ms MS] [--deadline-ms MS]
//! ```
//!
//! Exit codes: 0 success, 1 runtime failure, 2 usage, 4 soak invariant
//! violated (verdict mismatch vs the uninterrupted reference).

use lb_serve::bench::{self, BenchConfig};
use lb_serve::scheduler::SchedulerConfig;
use lb_serve::server::{Server, ServerConfig};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: lb-serve <run|bench> [options]
  run   --spool DIR [--addr HOST:PORT] [--slice-ticks N] [--workers N]
        [--tenant-quota N] [--max-active N] [--retry-after-ms MS]
        [--max-attempts N] [--retry-backoff-ms MS]
        [--io-fault-seed N] [--net-fault-seed N]
        [--idle-timeout-ms MS] [--read-timeout-ms MS] [--max-conns N]
  bench --addr HOST:PORT [--tenants N] [--jobs N] [--seed N]
        [--timeout-ms MS] [--deadline-ms MS]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("lb-serve: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Pulls `--flag value` out of `args`, if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

fn take_num<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
    default: T,
) -> Result<T, String> {
    match take_flag(args, flag)? {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_bad| format!("{flag} wants a number, got `{v}`")),
    }
}

/// Pulls an optional `--flag N` seed out of `args`: absent means "off".
fn take_seed(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, String> {
    match take_flag(args, flag)? {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_bad| format!("{flag} wants a number, got `{v}`")),
    }
}

fn cmd_run(mut args: Vec<String>) -> Result<ExitCode, String> {
    let spool = take_flag(&mut args, "--spool")?.ok_or("run needs --spool DIR")?;
    let defaults = ServerConfig::default();
    let sched_defaults = SchedulerConfig::default();
    let cfg = ServerConfig {
        addr: take_flag(&mut args, "--addr")?.unwrap_or(defaults.addr),
        spool: PathBuf::from(spool),
        sched: SchedulerConfig {
            slice_ticks: take_num(&mut args, "--slice-ticks", sched_defaults.slice_ticks)?,
            workers: take_num(&mut args, "--workers", sched_defaults.workers)?,
            tenant_quota: take_num(&mut args, "--tenant-quota", sched_defaults.tenant_quota)?,
            max_active: take_num(&mut args, "--max-active", sched_defaults.max_active)?,
            retry_after_ms: take_num(&mut args, "--retry-after-ms", sched_defaults.retry_after_ms)?,
            max_attempts: take_num(&mut args, "--max-attempts", sched_defaults.max_attempts)?,
            retry_backoff_ms: take_num(
                &mut args,
                "--retry-backoff-ms",
                sched_defaults.retry_backoff_ms,
            )?,
            io_fault_seed: take_seed(&mut args, "--io-fault-seed")?,
        },
        idle_timeout_ms: take_num(&mut args, "--idle-timeout-ms", defaults.idle_timeout_ms)?,
        read_timeout_ms: take_num(&mut args, "--read-timeout-ms", defaults.read_timeout_ms)?,
        max_conns: take_num(&mut args, "--max-conns", defaults.max_conns)?,
        net_fault_seed: take_seed(&mut args, "--net-fault-seed")?,
    };
    if let Some(stray) = args.first() {
        return Err(format!("unknown argument `{stray}`"));
    }
    let server = Server::bind(cfg).map_err(|e| e.to_string())?;
    if let Some(addr) = server.local_addr() {
        // The soak harness parses this line to find the picked port.
        println!("listening on {addr}");
        std::io::stdout().flush().map_err(|e| e.to_string())?;
    }
    server.run().map_err(|e| e.to_string())?;
    eprintln!("drained; all unsettled jobs remain spooled");
    Ok(ExitCode::SUCCESS)
}

fn cmd_bench(mut args: Vec<String>) -> Result<ExitCode, String> {
    let defaults = BenchConfig::default();
    let cfg = BenchConfig {
        addr: take_flag(&mut args, "--addr")?.unwrap_or(defaults.addr),
        tenants: take_num(&mut args, "--tenants", defaults.tenants)?,
        jobs_per_tenant: take_num(&mut args, "--jobs", defaults.jobs_per_tenant)?,
        seed: take_num(&mut args, "--seed", defaults.seed)?,
        timeout_ms: take_num(&mut args, "--timeout-ms", defaults.timeout_ms)?,
        deadline_ms: take_num(&mut args, "--deadline-ms", defaults.deadline_ms)?,
    };
    if let Some(stray) = args.first() {
        return Err(format!("unknown argument `{stray}`"));
    }
    let report = bench::run(&cfg).map_err(|e| e.to_string())?;
    println!(
        "soak: {} jobs submitted, {} settled, {} preemptions, {} backoffs honored",
        report.submitted,
        report.verdicts.len(),
        report.preemptions,
        report.backoffs
    );
    if report.mismatches.is_empty() {
        println!("soak: every served verdict matches the uninterrupted reference");
        Ok(ExitCode::SUCCESS)
    } else {
        for m in &report.mismatches {
            eprintln!("soak MISMATCH: {m}");
        }
        Ok(ExitCode::from(4))
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage("missing subcommand");
    }
    let sub = args.remove(0);
    let result = match sub.as_str() {
        "run" => cmd_run(args),
        "bench" => cmd_bench(args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => return usage(&format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            if msg.contains("needs") || msg.contains("wants") || msg.contains("unknown argument") {
                usage(&msg)
            } else {
                eprintln!("lb-serve: {msg}");
                ExitCode::FAILURE
            }
        }
    }
}
