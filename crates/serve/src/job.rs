//! The unit of work `lb-serve` schedules: a tenant's solver job, its
//! family, payload, verdict — and the versioned on-disk record that makes
//! all of it survive `kill -9`.
//!
//! A job record is a small line-oriented text file written only through
//! [`lb_engine::atomic_write`], so a record on disk is always complete:
//! either the previous version or the new one, never a torn one. The
//! record is the server's source of truth across restarts; the LBCK
//! checkpoint blob next to it (see [`crate::spool`]) carries the search
//! frontier itself.

use crate::formats;
use lb_csp::CspInstance;
use lb_engine::parse::{tokens, ParseError, ParseErrorKind};
use lb_graph::Graph;
use lb_join::{Database, JoinQuery};
use lb_sat::CnfFormula;
use std::fmt;

/// Record format version: bump when the encoding below changes shape.
/// Version 2 added the `attempts` field and the `quarantined` status.
pub const RECORD_VERSION: u32 = 2;

/// The solver families a job can ask for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobFamily {
    /// DPLL satisfiability on a DIMACS CNF payload.
    Sat,
    /// Backtracking CSP solving on a `csp`/`con` payload.
    Csp,
    /// Worst-case-optimal join counting; payload line 1 is the query,
    /// the rest is the database.
    Join,
    /// Triangle counting on a graph payload.
    Triangle,
    /// k-clique search on a graph payload (k rides in the job spec).
    Clique,
}

impl JobFamily {
    /// The stable wire/record name.
    pub fn name(self) -> &'static str {
        match self {
            JobFamily::Sat => "sat",
            JobFamily::Csp => "csp",
            JobFamily::Join => "join",
            JobFamily::Triangle => "triangle",
            JobFamily::Clique => "clique",
        }
    }

    /// Parses a wire/record name.
    pub fn from_name(name: &str) -> Option<JobFamily> {
        match name {
            "sat" => Some(JobFamily::Sat),
            "csp" => Some(JobFamily::Csp),
            "join" => Some(JobFamily::Join),
            "triangle" => Some(JobFamily::Triangle),
            "clique" => Some(JobFamily::Clique),
            _ => None,
        }
    }

    /// Every family, for enumeration in tests and the bench mix.
    pub const ALL: [JobFamily; 5] = [
        JobFamily::Sat,
        JobFamily::Csp,
        JobFamily::Join,
        JobFamily::Triangle,
        JobFamily::Clique,
    ];
}

impl fmt::Display for JobFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully validated job submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// The tenant the job bills to and queues under.
    pub tenant: String,
    /// Which solver runs it.
    pub family: JobFamily,
    /// Clique size for [`JobFamily::Clique`]; 0 otherwise.
    pub k: usize,
    /// Optional per-job total tick budget; `None` runs to completion.
    pub budget: Option<u64>,
    /// The textual instance, in the [`formats`] encodings.
    pub payload: String,
}

impl JobSpec {
    /// Parses and validates the payload into a runnable [`Instance`].
    /// Positioned errors are payload-relative (line 1 = first payload
    /// line); callers that know the payload's position in a larger stream
    /// offset `err.line` themselves.
    pub fn instance(&self) -> Result<Instance, ParseError> {
        match self.family {
            JobFamily::Sat => Ok(Instance::Sat(CnfFormula::from_dimacs(&self.payload)?)),
            JobFamily::Csp => Ok(Instance::Csp(formats::parse_csp(&self.payload)?)),
            JobFamily::Join => {
                let mut lines = self.payload.splitn(2, '\n');
                let query_line = lines.next().unwrap_or("");
                let db_text = lines.next().unwrap_or("");
                let q = formats::parse_query(query_line)?;
                let db = formats::parse_db(db_text).map_err(|mut e| {
                    e.line += 1; // db starts on payload line 2
                    e
                })?;
                Ok(Instance::Join(q, db))
            }
            JobFamily::Triangle => Ok(Instance::Triangle(formats::parse_graph(&self.payload)?)),
            JobFamily::Clique => {
                if self.k == 0 {
                    return Err(ParseError::new(
                        1,
                        1,
                        ParseErrorKind::OutOfRange {
                            what: "clique size k".to_string(),
                            token: "0".to_string(),
                            limit: "at least 1".to_string(),
                        },
                    ));
                }
                Ok(Instance::Clique(
                    formats::parse_graph(&self.payload)?,
                    self.k,
                ))
            }
        }
    }
}

/// A parsed, validated instance ready for the runner.
#[derive(Clone, Debug)]
pub enum Instance {
    /// A CNF formula for DPLL.
    Sat(CnfFormula),
    /// A CSP instance for backtracking search.
    Csp(CspInstance),
    /// A join query and its database.
    Join(JoinQuery, Database),
    /// A graph for triangle counting.
    Triangle(Graph),
    /// A graph and the clique size to search for.
    Clique(Graph, usize),
}

/// A job's final answer, rendered as one stable line so verdicts can be
/// persisted, compared against reference runs, and shipped over the wire
/// without a serializer per family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// A witness was found; the string is the family's rendering (SAT
    /// literals, CSP values, clique vertices — space-separated).
    Sat(String),
    /// Provably no witness.
    Unsat,
    /// A counting family's count.
    Count(u64),
    /// The job's total budget ran out (or the solver reported a typed
    /// error); the string is the shared exhaustion diagnostic.
    Unknown(String),
}

impl Verdict {
    /// Renders the verdict as the single record/wire line.
    pub fn to_line(&self) -> String {
        match self {
            Verdict::Sat(w) if w.is_empty() => "SAT".to_string(),
            Verdict::Sat(w) => format!("SAT {w}"),
            Verdict::Unsat => "UNSAT".to_string(),
            Verdict::Count(n) => format!("COUNT {n}"),
            Verdict::Unknown(why) => format!("UNKNOWN {why}"),
        }
    }

    /// Parses [`Verdict::to_line`] output.
    pub fn from_line(line: &str) -> Option<Verdict> {
        let line = line.trim();
        let (head, rest) = match line.split_once(' ') {
            Some((h, r)) => (h, r),
            None => (line, ""),
        };
        match head {
            "SAT" => Some(Verdict::Sat(rest.to_string())),
            "UNSAT" if rest.is_empty() => Some(Verdict::Unsat),
            "COUNT" => rest.parse().ok().map(Verdict::Count),
            "UNKNOWN" => Some(Verdict::Unknown(rest.to_string())),
            _ => None,
        }
    }
}

/// Where a job is in its lifecycle, as persisted. `Running` never hits
/// disk: a SIGKILL mid-slice must find the job re-queueable, so on disk a
/// job is either still owed work (`Queued`), settled (`Done`), or
/// dead-lettered (`Quarantined`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Owed work; may have a spooled checkpoint to resume from.
    Queued,
    /// Settled with a verdict; never re-run (the no-duplicate-verdicts
    /// invariant).
    Done(Verdict),
    /// Terminal without a verdict: the job climbed the whole retry ladder
    /// and was dead-lettered. The one-line reason rides in the record; the
    /// full per-attempt evidence lives next to it in the quarantine area.
    Quarantined {
        /// One-line summary of what sent the job to the dead-letter area.
        reason: String,
    },
}

/// One job's persisted state: the spec plus scheduling progress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobRecord {
    /// The job id (`j<N>`), unique within a spool directory.
    pub id: String,
    /// The validated submission.
    pub spec: JobSpec,
    /// Lifecycle position.
    pub status: JobStatus,
    /// How many times the job was preempted (suspended and re-queued).
    pub preemptions: u64,
    /// Ticks spent so far across all slices (the metering unit).
    pub spent: u64,
    /// Failed attempts so far (slice errors, spool faults, livelocked
    /// slices, discarded checkpoints) — the retry-ladder rung. Reaching
    /// the configured maximum quarantines the job.
    pub attempts: u64,
}

impl JobRecord {
    /// Encodes the record as the versioned text format [`decode`] reads.
    ///
    /// [`decode`]: JobRecord::decode
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("lbjob {RECORD_VERSION}\n"));
        out.push_str(&format!("id {}\n", self.id));
        out.push_str(&format!("tenant {}\n", self.spec.tenant));
        out.push_str(&format!("family {}\n", self.spec.family));
        out.push_str(&format!("k {}\n", self.spec.k));
        out.push_str(&format!("budget {}\n", self.spec.budget.unwrap_or(0)));
        out.push_str(&format!("preemptions {}\n", self.preemptions));
        out.push_str(&format!("spent {}\n", self.spent));
        out.push_str(&format!("attempts {}\n", self.attempts));
        match &self.status {
            JobStatus::Queued => out.push_str("status queued\n"),
            JobStatus::Done(v) => {
                out.push_str("status done\n");
                out.push_str(&format!("verdict {}\n", v.to_line()));
            }
            JobStatus::Quarantined { reason } => {
                out.push_str("status quarantined\n");
                // The reason is free text but must stay one line.
                out.push_str(&format!(
                    "reason {}\n",
                    reason.replace(['\n', '\r'], " ").trim()
                ));
            }
        }
        let payload_lines = self.spec.payload.lines().count();
        out.push_str(&format!("payload {payload_lines}\n"));
        for line in self.spec.payload.lines() {
            out.push_str(line);
            out.push('\n');
        }
        // Trailer: lets `decode` tell a complete record from a torn prefix
        // even when the tear falls exactly on a payload line boundary.
        out.push_str("end\n");
        out
    }

    /// Decodes a record. Corruption is a positioned, typed [`ParseError`]
    /// — a half-written or tampered record must never panic or conjure a
    /// verdict.
    pub fn decode(text: &str) -> Result<JobRecord, ParseError> {
        let mut lines = text.lines().enumerate();
        let mut field = |name: &str| -> Result<(usize, String), ParseError> {
            let (idx, raw) = lines.next().ok_or_else(|| {
                ParseError::at_eof(
                    text.lines().count() + 1,
                    ParseErrorKind::Missing {
                        what: format!("`{name}` line"),
                    },
                )
            })?;
            let lineno = idx + 1;
            let mut toks = tokens(raw);
            let Some((col, kw)) = toks.next() else {
                return Err(ParseError::new(
                    lineno,
                    1,
                    ParseErrorKind::Missing {
                        what: format!("`{name}` line"),
                    },
                ));
            };
            if kw != name {
                return Err(ParseError::new(
                    lineno,
                    col,
                    ParseErrorKind::Malformed {
                        what: format!("record line `{kw}` (expected `{name}`)"),
                    },
                ));
            }
            let rest = raw
                .split_once(name)
                .map(|(_, r)| r.trim().to_string())
                .unwrap_or_default();
            Ok((lineno, rest))
        };

        let (lineno, version) = field("lbjob")?;
        let version: u32 = formats::parse_num(lineno, 7, &version, "record version")?;
        if version != RECORD_VERSION {
            return Err(ParseError::new(
                lineno,
                7,
                ParseErrorKind::OutOfRange {
                    what: "record version".to_string(),
                    token: version.to_string(),
                    limit: format!("exactly {RECORD_VERSION}"),
                },
            ));
        }
        let (_, id) = field("id")?;
        if id.is_empty() {
            return Err(ParseError::new(
                2,
                1,
                ParseErrorKind::Missing {
                    what: "job id".to_string(),
                },
            ));
        }
        let (_, tenant) = field("tenant")?;
        let (lineno, family) = field("family")?;
        let family = JobFamily::from_name(&family).ok_or_else(|| {
            ParseError::new(
                lineno,
                8,
                ParseErrorKind::Malformed {
                    what: format!("job family `{family}`"),
                },
            )
        })?;
        let (lineno, k) = field("k")?;
        let k: usize = formats::parse_num(lineno, 3, &k, "clique size")?;
        let (lineno, budget) = field("budget")?;
        let budget: u64 = formats::parse_num(lineno, 8, &budget, "job budget")?;
        let budget = if budget == 0 { None } else { Some(budget) };
        let (lineno, preemptions) = field("preemptions")?;
        let preemptions: u64 = formats::parse_num(lineno, 13, &preemptions, "preemption count")?;
        let (lineno, spent) = field("spent")?;
        let spent: u64 = formats::parse_num(lineno, 7, &spent, "spent ticks")?;
        let (lineno, attempts) = field("attempts")?;
        let attempts: u64 = formats::parse_num(lineno, 10, &attempts, "attempt count")?;
        let (lineno, status) = field("status")?;
        let status = match status.as_str() {
            "queued" => JobStatus::Queued,
            "done" => {
                let (vline, verdict) = field("verdict")?;
                let v = Verdict::from_line(&verdict).ok_or_else(|| {
                    ParseError::new(
                        vline,
                        9,
                        ParseErrorKind::Malformed {
                            what: format!("verdict `{verdict}`"),
                        },
                    )
                })?;
                JobStatus::Done(v)
            }
            "quarantined" => {
                let (_, reason) = field("reason")?;
                JobStatus::Quarantined { reason }
            }
            other => {
                return Err(ParseError::new(
                    lineno,
                    8,
                    ParseErrorKind::Malformed {
                        what: format!("job status `{other}`"),
                    },
                ));
            }
        };
        let (lineno, payload_count) = field("payload")?;
        let payload_count: usize =
            formats::parse_num(lineno, 9, &payload_count, "payload line count")?;
        let mut payload = String::new();
        let mut got = 0usize;
        let mut end_seen = false;
        for (idx, raw) in lines {
            if got < payload_count {
                payload.push_str(raw);
                payload.push('\n');
                got += 1;
                continue;
            }
            if !end_seen {
                if raw.trim() != "end" {
                    return Err(ParseError::new(
                        idx + 1,
                        1,
                        ParseErrorKind::Malformed {
                            what: "record trailer (expected `end`)".to_string(),
                        },
                    ));
                }
                end_seen = true;
                continue;
            }
            return Err(ParseError::new(
                idx + 1,
                1,
                ParseErrorKind::TrailingGarbage {
                    token: raw.chars().take(20).collect(),
                },
            ));
        }
        if got != payload_count {
            return Err(ParseError::new(
                lineno,
                9,
                ParseErrorKind::CountMismatch {
                    what: "payload lines".to_string(),
                    declared: payload_count,
                    found: got,
                },
            ));
        }
        if !end_seen {
            return Err(ParseError::at_eof(
                lineno + payload_count + 1,
                ParseErrorKind::Missing {
                    what: "record trailer `end`".to_string(),
                },
            ));
        }
        Ok(JobRecord {
            id,
            spec: JobSpec {
                tenant,
                family,
                k,
                budget,
                payload,
            },
            status,
            preemptions,
            spent,
            attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(status: JobStatus) -> JobRecord {
        JobRecord {
            id: "j7".into(),
            spec: JobSpec {
                tenant: "acme".into(),
                family: JobFamily::Clique,
                k: 3,
                budget: Some(500),
                payload: "4\n0 1\n1 2\n0 2\n".into(),
            },
            status,
            preemptions: 4,
            spent: 321,
            attempts: 2,
        }
    }

    #[test]
    fn record_round_trips() {
        for status in [
            JobStatus::Queued,
            JobStatus::Done(Verdict::Sat("0 1 2".into())),
            JobStatus::Done(Verdict::Unsat),
            JobStatus::Done(Verdict::Count(42)),
            JobStatus::Done(Verdict::Unknown("tick budget of 500 exhausted".into())),
            JobStatus::Quarantined {
                reason: "3 attempts exhausted: checkpoint: bad magic".into(),
            },
        ] {
            let rec = sample(status);
            let back = JobRecord::decode(&rec.encode()).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn truncated_record_is_a_typed_error() {
        let full = sample(JobStatus::Queued).encode();
        let original = sample(JobStatus::Queued);
        for cut in 0..full.len() {
            let torn = &full[..cut];
            // Any strict prefix must decode to a typed error — never a
            // panic, never a *different* record. (Cutting only the final
            // newline leaves a byte-equivalent record; that is fine.)
            match JobRecord::decode(torn) {
                Err(_) => {}
                Ok(rec) => assert_eq!(
                    rec, original,
                    "prefix of {cut} bytes decoded to a different record"
                ),
            }
        }
    }

    #[test]
    fn quarantine_reason_is_flattened_to_one_line() {
        let mut rec = sample(JobStatus::Quarantined {
            reason: "line one\nline two".into(),
        });
        let back = JobRecord::decode(&rec.encode()).unwrap();
        match back.status {
            JobStatus::Quarantined { ref reason } => assert_eq!(reason, "line one line two"),
            ref other => panic!("expected quarantined, got {other:?}"),
        }
        // Encoding is stable once flattened.
        rec.status = back.status.clone();
        assert_eq!(JobRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn verdict_lines_round_trip() {
        for v in [
            Verdict::Sat("1 -2".into()),
            Verdict::Sat(String::new()),
            Verdict::Unsat,
            Verdict::Count(0),
            Verdict::Unknown("deadline".into()),
        ] {
            assert_eq!(Verdict::from_line(&v.to_line()), Some(v));
        }
    }
}
