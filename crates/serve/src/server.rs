//! The blocking-socket server: a `TcpListener` accept loop handing each
//! connection to a short-lived handler thread, all solving delegated to
//! the shared [`Scheduler`].
//!
//! Robustness posture, in order of preference: **reject with a typed
//! line, never hang.** Admission control runs before any queueing; the
//! connection cap sheds excess connections with `ERR overload` at accept
//! time; idle and mid-request read timeouts bound how long a silent or
//! trickling client can hold a handler thread. `DRAIN` stops admission
//! immediately, lets in-flight slices finish (each is bounded by the
//! slice budget), spools everything, and exits.

use crate::netfault::{FaultStream, NetFaultPlan, SessionStream};
use crate::protocol::{self, Command, Reject, Request, MAX_LINE_BYTES};
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::spool::{Spool, SpoolError};
use lb_engine::parse::{ParseError, ParseErrorKind};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Server tuning knobs (scheduler knobs ride along).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7071` (`:0` picks a free port).
    pub addr: String,
    /// Spool directory root.
    pub spool: PathBuf,
    /// Scheduler configuration.
    pub sched: SchedulerConfig,
    /// How long a connection may sit idle before its command line, ms.
    pub idle_timeout_ms: u64,
    /// How long one read may block mid-request, ms.
    pub read_timeout_ms: u64,
    /// Max simultaneous connections; excess get `ERR overload`.
    pub max_conns: usize,
    /// Chaos knob: when set, every second accepted connection is served
    /// through a [`FaultStream`] whose [`NetFaultPlan`] derives from
    /// `seed ^ connection-index` — deterministic torn writes, disconnects,
    /// trickles, and read timeouts on the server's own side of the wire.
    /// Even-indexed connections stay clean so well-behaved clients keep
    /// making progress through the storm.
    pub net_fault_seed: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7071".to_string(),
            spool: PathBuf::from("lb-spool"),
            sched: SchedulerConfig::default(),
            idle_timeout_ms: 30_000,
            read_timeout_ms: 10_000,
            max_conns: 64,
            net_fault_seed: None,
        }
    }
}

/// One line read off the wire, capped at [`MAX_LINE_BYTES`].
enum LineRead {
    /// A complete line (newline stripped; may be the final unterminated one).
    Line(Vec<u8>),
    /// The peer closed with nothing pending.
    Eof,
    /// The line exceeded the cap; the rest was not buffered.
    Oversize(usize),
    /// The read timed out.
    TimedOut,
}

/// Reads one `\n`-terminated line without ever buffering more than the cap:
/// a tenant streaming gigabytes without a newline costs us one buffer, not
/// their patience's worth of memory.
fn read_line_capped<R: BufRead>(reader: &mut R) -> io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    let mut seen = 0usize;
    loop {
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(LineRead::TimedOut);
            }
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(if line.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(line)
            });
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            seen += pos;
            if seen > MAX_LINE_BYTES {
                reader.consume(pos + 1);
                return Ok(LineRead::Oversize(seen));
            }
            line.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            return Ok(LineRead::Line(line));
        }
        let len = buf.len();
        seen += len;
        if seen > MAX_LINE_BYTES {
            // Drop what we have and drain-to-cap: the line is rejected
            // regardless, so stop accumulating.
            line.clear();
            reader.consume(len);
            return Ok(LineRead::Oversize(seen));
        }
        line.extend_from_slice(buf);
        reader.consume(len);
    }
}

fn oversize_error(lineno: usize, bytes: usize) -> ParseError {
    ParseError::new(
        lineno,
        MAX_LINE_BYTES + 1,
        ParseErrorKind::OutOfRange {
            what: "request line length".to_string(),
            token: format!("over {bytes} bytes"),
            limit: format!("at most {MAX_LINE_BYTES} bytes"),
        },
    )
}

fn timeout_error(lineno: usize, what: &str) -> ParseError {
    ParseError::at_eof(
        lineno,
        ParseErrorKind::Missing {
            what: format!("{what} (read timed out)"),
        },
    )
}

/// The running server: owns the listener, the scheduler, and the worker
/// pool; [`Server::run`] blocks until drained.
pub struct Server {
    listener: TcpListener,
    sched: Arc<Scheduler>,
    cfg: ServerConfig,
    conns: Arc<AtomicUsize>,
}

impl Server {
    /// Binds the listener, opens/recovers the spool, and reports what
    /// recovery found on stderr. Does not accept yet — call [`Server::run`].
    pub fn bind(cfg: ServerConfig) -> Result<Server, SpoolError> {
        let spool = Spool::open(&cfg.spool)?;
        let (sched, report) = Scheduler::recover(spool, cfg.sched.clone())?;
        if report.resumed + report.settled + report.quarantined + report.restarted_from_scratch > 0
            || report.stale_tmp_removed > 0
        {
            eprintln!(
                "recovered spool: {} resumed, {} settled, {} quarantined, \
                 {} restarted from scratch, {} stale tmp swept",
                report.resumed,
                report.settled,
                report.quarantined,
                report.restarted_from_scratch,
                report.stale_tmp_removed
            );
        }
        for line in report
            .skipped
            .iter()
            .chain(report.discarded_checkpoints.iter())
        {
            eprintln!("recovery: skipped {line}");
        }
        for line in &report.dead_lettered {
            eprintln!("recovery: dead-lettered {line}");
        }
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| SpoolError::Io {
            path: cfg.addr.clone(),
            error: e.to_string(),
        })?;
        Ok(Server {
            listener,
            sched,
            cfg,
            conns: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// The actually-bound address (resolves `:0`).
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        self.listener.local_addr().ok()
    }

    /// Accepts connections until a `DRAIN` request lands, then waits for
    /// workers to park and returns. Every connection gets its own handler
    /// thread; over-cap connections are shed with a typed overload line.
    pub fn run(self) -> Result<(), SpoolError> {
        let workers = self.sched.spawn_workers();
        // Polling accept so the loop notices drain promptly even when no
        // connection arrives to tell it.
        self.listener
            .set_nonblocking(true)
            .map_err(|e| SpoolError::Io {
                path: self.cfg.addr.clone(),
                error: e.to_string(),
            })?;
        let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
        let mut conn_index: u64 = 0;
        loop {
            if self.sched.drained() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    conn_index += 1;
                    let live = self.conns.fetch_add(1, Ordering::SeqCst);
                    if live >= self.cfg.max_conns {
                        self.conns.fetch_sub(1, Ordering::SeqCst);
                        shed_connection(stream, self.cfg.sched.retry_after_ms);
                        continue;
                    }
                    let sched = Arc::clone(&self.sched);
                    let cfg = self.cfg.clone();
                    let conns = Arc::clone(&self.conns);
                    // Odd-indexed connections get the fault wrapper when
                    // the chaos knob is on; the plan is a pure function of
                    // seed and index, so a storm replays exactly.
                    let wrap = match self.cfg.net_fault_seed {
                        Some(seed) if conn_index % 2 == 1 => {
                            Some(NetFaultPlan::from_seed(seed ^ conn_index))
                        }
                        _ => None,
                    };
                    handlers.push(thread::spawn(move || {
                        match wrap {
                            Some(plan) => {
                                handle_connection(FaultStream::new(stream, &plan), &sched, &cfg)
                            }
                            None => handle_connection(stream, &sched, &cfg),
                        }
                        conns.fetch_sub(1, Ordering::SeqCst);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    eprintln!("accept error: {e}");
                    thread::sleep(Duration::from_millis(20));
                }
            }
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _join = h.join();
        }
        for w in workers {
            let _join = w.join();
        }
        Ok(())
    }
}

/// Timeout configuration is best-effort — a socket that rejects the option
/// is still served — but the typed error is logged, never discarded, so
/// R12/R16 see every timeout site honestly.
fn log_timeout_err(what: &str, configured: io::Result<()>) {
    if let Err(e) = configured {
        eprintln!("timeout config failed ({what}), continuing untimed: {e}");
    }
}

/// Over-cap accept path: one typed line, then close. The write gets a
/// short timeout so a hostile unread socket cannot wedge the accept loop.
fn shed_connection(stream: TcpStream, retry_after_ms: u64) {
    log_timeout_err(
        "shed write",
        stream.set_write_timeout(Some(Duration::from_millis(500))),
    );
    let mut stream = stream;
    let line = Reject::Overload { retry_after_ms }.to_line();
    let _shed = writeln!(stream, "{line}");
}

fn respond<W: Write>(stream: &mut W, line: &str) -> bool {
    writeln!(stream, "{line}").is_ok() && stream.flush().is_ok()
}

/// Serves one connection: requests in a loop until the peer closes, the
/// idle timeout fires with nothing pending, or an unrecoverable read error.
/// Generic over [`SessionStream`] so the same handler serves clean sockets
/// and fault-injected ones — the robustness posture is identical either way.
fn handle_connection<S: SessionStream>(stream: S, sched: &Arc<Scheduler>, cfg: &ServerConfig) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = stream;
    log_timeout_err(
        "write",
        write_half.set_write_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1)))),
    );
    let mut reader = BufReader::new(read_half);
    loop {
        // Idle timeout while waiting for a command line: silent close.
        log_timeout_err(
            "idle read",
            reader
                .get_ref()
                .set_read_timeout(Some(Duration::from_millis(cfg.idle_timeout_ms.max(1)))),
        );
        let cmd_raw = match read_line_capped(&mut reader) {
            Ok(LineRead::Line(l)) => l,
            Ok(LineRead::Eof) | Ok(LineRead::TimedOut) => return,
            Ok(LineRead::Oversize(n)) => {
                let reject = Reject::Parse(oversize_error(1, n));
                let _sent = respond(&mut write_half, &reject.to_line());
                return;
            }
            Err(_) => return,
        };
        // Tighter timeout once a request is in flight.
        log_timeout_err(
            "request read",
            reader
                .get_ref()
                .set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1)))),
        );
        let cmd = match protocol::parse_command(&cmd_raw) {
            Ok(c) => c,
            Err(e) => {
                // A malformed command line gets its typed error; the
                // connection stays usable (the next line starts a fresh
                // request).
                if !respond(&mut write_half, &Reject::Parse(e).to_line()) {
                    return;
                }
                continue;
            }
        };
        let wanted = match &cmd {
            Command::Submit { payload_lines, .. } => *payload_lines,
            _ => 0,
        };
        let mut payload: Vec<Vec<u8>> = Vec::new();
        let mut failed: Option<Reject> = None;
        while payload.len() < wanted {
            match read_line_capped(&mut reader) {
                Ok(LineRead::Line(l)) => payload.push(l),
                Ok(LineRead::Eof) => {
                    failed = Some(Reject::Parse(ParseError::at_eof(
                        2 + payload.len(),
                        ParseErrorKind::CountMismatch {
                            what: "payload lines".to_string(),
                            declared: wanted,
                            found: payload.len(),
                        },
                    )));
                    break;
                }
                Ok(LineRead::TimedOut) => {
                    failed = Some(Reject::Parse(timeout_error(
                        2 + payload.len(),
                        "payload line",
                    )));
                    break;
                }
                Ok(LineRead::Oversize(n)) => {
                    failed = Some(Reject::Parse(oversize_error(2 + payload.len(), n)));
                    break;
                }
                Err(_) => return,
            }
        }
        if let Some(reject) = failed {
            // A truncated or oversized submission poisons stream framing:
            // answer with the typed error, then close.
            let _sent = respond(&mut write_half, &reject.to_line());
            return;
        }
        let request = match protocol::assemble(cmd, &payload, 2) {
            Ok(r) => r,
            Err(e) => {
                if !respond(&mut write_half, &Reject::Parse(e).to_line()) {
                    return;
                }
                continue;
            }
        };
        let reply = match request {
            Request::Ping => "PONG".to_string(),
            Request::Stats => sched.stats_line(),
            Request::Drain => {
                sched.drain();
                "OK draining".to_string()
            }
            Request::Status { job_id } => match sched.status(&job_id) {
                Some(report) => report.to_line(),
                None => Reject::UnknownJob { job_id }.to_line(),
            },
            Request::Submit(spec) => match sched.submit(spec) {
                Ok(id) => format!("OK {id}"),
                Err(reject) => reject.to_line(),
            },
        };
        if !respond(&mut write_half, &reply) {
            return;
        }
    }
}
