//! The textual instance formats shared by `lbtool` files and `lb-serve`
//! job payloads — one parser per family, one canonical serializer per
//! family, moved here from `lbtool` so the CLI and the server can never
//! drift apart on what an instance looks like.
//!
//! ```text
//! CSP files:     header `csp <num_vars> <domain_size>`, then one
//!                constraint per line: `con <v1> <v2> ... : <t>,<t> ...`
//! Database:      `rel <name> <arity>` opens a relation; each following
//!                numeric line is one row (set semantics)
//! Graph:         first line `n`, then one `u v` edge per line (0-based)
//! Query:         whitespace-separated atoms like `R(a,b) S(a,c) T(b,c)`
//! ```
//!
//! Malformed input never panics: every parser reports a positioned, typed
//! [`ParseError`] in the same `line:col` discipline as the DIMACS parser.
//! The serializers emit text the matching parser round-trips exactly, so
//! the load generator can ship chaos-generated instances over the wire.

use lb_csp::{Constraint, CspInstance, Relation};
use lb_engine::parse::{tokens, ParseError, ParseErrorKind};
use lb_graph::Graph;
use lb_join::{Atom, Database, JoinQuery, Table};
use std::sync::Arc;

/// A numeric token, or a positioned [`ParseError`] naming what it was.
pub fn parse_num<T: std::str::FromStr>(
    line: usize,
    col: usize,
    tok: &str,
    what: &str,
) -> Result<T, ParseError> {
    tok.parse().map_err(|_| {
        ParseError::new(
            line,
            col,
            ParseErrorKind::InvalidNumber {
                what: what.to_string(),
                token: tok.to_string(),
            },
        )
    })
}

/// Parses the CSP file format (see the module docs). Every structural
/// mistake — dangling scope variables, wrong-arity or out-of-domain
/// tuples, a missing `:` — is a positioned [`ParseError`]; the constructed
/// instance always satisfies `CspInstance`'s invariants, so its
/// (panicking) constructors are never fed bad data.
pub fn parse_csp(text: &str) -> Result<CspInstance, ParseError> {
    use lb_csp::Value;
    let mut inst: Option<CspInstance> = None;
    let mut last_line = 0;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        last_line = lineno;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<(usize, &str)> = tokens(raw).collect();
        let (kw_col, kw) = toks[0];
        match kw {
            "csp" => {
                if inst.is_some() {
                    return Err(ParseError::new(
                        lineno,
                        kw_col,
                        ParseErrorKind::Duplicate {
                            what: "`csp` header".to_string(),
                        },
                    ));
                }
                if toks.len() != 3 {
                    return Err(ParseError::new(
                        lineno,
                        kw_col,
                        ParseErrorKind::Malformed {
                            what: "header (expected `csp <num_vars> <domain_size>`)".to_string(),
                        },
                    ));
                }
                let num_vars: usize = parse_num(lineno, toks[1].0, toks[1].1, "variable count")?;
                let domain: usize = parse_num(lineno, toks[2].0, toks[2].1, "domain size")?;
                if domain > Value::MAX as usize {
                    return Err(ParseError::new(
                        lineno,
                        toks[2].0,
                        ParseErrorKind::OutOfRange {
                            what: "domain size".to_string(),
                            token: toks[2].1.to_string(),
                            limit: format!("at most {}", Value::MAX),
                        },
                    ));
                }
                inst = Some(CspInstance::new(num_vars, domain));
            }
            "con" => {
                let Some(inst) = inst.as_mut() else {
                    return Err(ParseError::new(
                        lineno,
                        kw_col,
                        ParseErrorKind::Missing {
                            what: "`csp` header before constraints".to_string(),
                        },
                    ));
                };
                let Some(sep) = toks.iter().position(|&(_, t)| t == ":") else {
                    return Err(ParseError::new(
                        lineno,
                        kw_col,
                        ParseErrorKind::Missing {
                            what: "`:` between scope and tuples".to_string(),
                        },
                    ));
                };
                let scope_toks = &toks[1..sep];
                if scope_toks.is_empty() {
                    return Err(ParseError::new(
                        lineno,
                        kw_col,
                        ParseErrorKind::Missing {
                            what: "constraint scope variables".to_string(),
                        },
                    ));
                }
                let mut scope = Vec::with_capacity(scope_toks.len());
                for &(col, tok) in scope_toks {
                    let v: usize = parse_num(lineno, col, tok, "scope variable")?;
                    if v >= inst.num_vars {
                        return Err(ParseError::new(
                            lineno,
                            col,
                            ParseErrorKind::OutOfRange {
                                what: "scope variable".to_string(),
                                token: tok.to_string(),
                                limit: format!("{} variables declared", inst.num_vars),
                            },
                        ));
                    }
                    scope.push(v);
                }
                let mut tuples = Vec::new();
                for &(col, tok) in &toks[sep + 1..] {
                    let mut tuple = Vec::with_capacity(scope.len());
                    for part in tok.split(',') {
                        let v: Value = parse_num(lineno, col, part, "tuple value")?;
                        if (v as usize) >= inst.domain_size {
                            return Err(ParseError::new(
                                lineno,
                                col,
                                ParseErrorKind::OutOfRange {
                                    what: "tuple value".to_string(),
                                    token: part.to_string(),
                                    limit: format!("domain size {}", inst.domain_size),
                                },
                            ));
                        }
                        tuple.push(v);
                    }
                    if tuple.len() != scope.len() {
                        return Err(ParseError::new(
                            lineno,
                            col,
                            ParseErrorKind::CountMismatch {
                                what: "tuple values".to_string(),
                                declared: scope.len(),
                                found: tuple.len(),
                            },
                        ));
                    }
                    tuples.push(tuple);
                }
                let arity = scope.len();
                inst.add_constraint(Constraint::new(
                    scope,
                    Arc::new(Relation::new(arity, tuples)),
                ));
            }
            _ => {
                return Err(ParseError::new(
                    lineno,
                    kw_col,
                    ParseErrorKind::Malformed {
                        what: format!("directive `{kw}` (expected `csp` or `con`)"),
                    },
                ));
            }
        }
    }
    inst.ok_or_else(|| {
        ParseError::at_eof(
            last_line + 1,
            ParseErrorKind::Missing {
                what: "`csp` header".to_string(),
            },
        )
    })
}

/// Serializes a [`CspInstance`] in the format [`parse_csp`] reads.
pub fn format_csp(inst: &CspInstance) -> String {
    let mut out = format!("csp {} {}\n", inst.num_vars, inst.domain_size);
    for c in &inst.constraints {
        let scope: Vec<String> = c.scope.iter().map(usize::to_string).collect();
        let tuples: Vec<String> = c
            .relation
            .tuples()
            .iter()
            .map(|t| {
                t.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<String>>()
                    .join(",")
            })
            .collect();
        out.push_str(&format!("con {} : {}\n", scope.join(" "), tuples.join(" ")));
    }
    out
}

/// Parses the relational database format (see the module docs). Every row
/// is validated against its relation's declared arity before it reaches
/// [`Table`], whose constructors assert on mismatches; rows load with set
/// semantics (sorted, deduplicated).
pub fn parse_db(text: &str) -> Result<Database, ParseError> {
    use lb_join::Value;
    let mut db = Database::new();
    let mut open: Option<(String, usize, Table)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<(usize, &str)> = tokens(raw).collect();
        let (kw_col, kw) = toks[0];
        if kw == "rel" {
            if toks.len() != 3 {
                return Err(ParseError::new(
                    lineno,
                    kw_col,
                    ParseErrorKind::Malformed {
                        what: "relation header (expected `rel <name> <arity>`)".to_string(),
                    },
                ));
            }
            let name = toks[1].1.to_string();
            let arity: usize = parse_num(lineno, toks[2].0, toks[2].1, "relation arity")?;
            if arity == 0 {
                return Err(ParseError::new(
                    lineno,
                    toks[2].0,
                    ParseErrorKind::OutOfRange {
                        what: "relation arity".to_string(),
                        token: toks[2].1.to_string(),
                        limit: "at least 1".to_string(),
                    },
                ));
            }
            if let Some((prev_name, _, mut prev_table)) =
                open.replace((name, arity, Table::new(arity)))
            {
                prev_table.normalize();
                db.insert(&prev_name, prev_table);
            }
            continue;
        }
        let Some((_, arity, table)) = open.as_mut() else {
            return Err(ParseError::new(
                lineno,
                kw_col,
                ParseErrorKind::Missing {
                    what: "`rel` header before rows".to_string(),
                },
            ));
        };
        if toks.len() != *arity {
            return Err(ParseError::new(
                lineno,
                kw_col,
                ParseErrorKind::CountMismatch {
                    what: "row values".to_string(),
                    declared: *arity,
                    found: toks.len(),
                },
            ));
        }
        let mut row = Vec::with_capacity(*arity);
        for &(col, tok) in &toks {
            row.push(parse_num::<Value>(lineno, col, tok, "row value")?);
        }
        table.push(row);
    }
    if let Some((name, _, mut table)) = open {
        table.normalize();
        db.insert(&name, table);
    }
    Ok(db)
}

/// Serializes the relations a query mentions, in first-mention order, in
/// the format [`parse_db`] reads. Relations the database does not hold are
/// skipped — the join engine reports those as its own typed error.
pub fn format_db(q: &JoinQuery, db: &Database) -> String {
    let mut out = String::new();
    let mut seen: Vec<&str> = Vec::new();
    for atom in &q.atoms {
        let name = atom.relation.as_str();
        if seen.contains(&name) {
            continue;
        }
        seen.push(name);
        let Some(table) = db.table(name) else {
            continue;
        };
        out.push_str(&format!("rel {} {}\n", name, table.arity()));
        for row in table.rows() {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(" "));
            out.push('\n');
        }
    }
    out
}

/// Parses the first line as a vertex count `n`, every following line as a
/// `u v` edge with both endpoints `< n`.
pub fn parse_graph(text: &str) -> Result<Graph, ParseError> {
    let mut n: Option<usize> = None;
    let mut edges = Vec::new();
    let mut last_line = 0;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        last_line = lineno;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<(usize, &str)> = tokens(raw).collect();
        let Some(nv) = n else {
            let (col, tok) = toks[0];
            if toks.len() != 1 {
                return Err(ParseError::new(
                    lineno,
                    toks[1].0,
                    ParseErrorKind::TrailingGarbage {
                        token: toks[1].1.to_string(),
                    },
                ));
            }
            n = Some(parse_num(lineno, col, tok, "vertex count")?);
            continue;
        };
        if toks.len() != 2 {
            let (col, _) = toks.get(2).copied().unwrap_or(toks[0]);
            return Err(ParseError::new(
                lineno,
                col,
                ParseErrorKind::Malformed {
                    what: "edge line (expected `u v`)".to_string(),
                },
            ));
        }
        let endpoint = |&(col, tok): &(usize, &str)| -> Result<usize, ParseError> {
            let v: usize = parse_num(lineno, col, tok, "edge endpoint")?;
            if v >= nv {
                return Err(ParseError::new(
                    lineno,
                    col,
                    ParseErrorKind::OutOfRange {
                        what: "edge endpoint".to_string(),
                        token: tok.to_string(),
                        limit: format!("{nv} vertices declared"),
                    },
                ));
            }
            Ok(v)
        };
        edges.push((endpoint(&toks[0])?, endpoint(&toks[1])?));
    }
    let Some(n) = n else {
        return Err(ParseError::at_eof(
            last_line + 1,
            ParseErrorKind::Missing {
                what: "vertex count line".to_string(),
            },
        ));
    };
    Ok(Graph::from_edges(n, &edges))
}

/// Serializes a [`Graph`] in the format [`parse_graph`] reads.
pub fn format_graph(g: &Graph) -> String {
    let mut out = format!("{}\n", g.num_vertices());
    for (u, v) in g.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

/// Parses `R(a,b) S(a,c) T(b,c)` into a [`JoinQuery`]. The "line" of a
/// reported error is always 1 (the query is a single string); the column
/// points into that string.
pub fn parse_query(spec: &str) -> Result<JoinQuery, ParseError> {
    let mut atoms = Vec::new();
    for (col, token) in tokens(spec) {
        let malformed = |why: &str| {
            ParseError::new(
                1,
                col,
                ParseErrorKind::Malformed {
                    what: format!("atom `{token}` ({why})"),
                },
            )
        };
        let open = token.find('(').ok_or_else(|| malformed("missing `(`"))?;
        if !token.ends_with(')') {
            return Err(malformed("missing `)`"));
        }
        let name = &token[..open];
        let inner = &token[open + 1..token.len() - 1];
        if name.is_empty() {
            return Err(malformed("missing relation name"));
        }
        let attrs: Vec<&str> = inner.split(',').map(str::trim).collect();
        if attrs.iter().any(|a| a.is_empty()) {
            return Err(malformed("empty attribute"));
        }
        atoms.push(Atom::new(name, &attrs));
    }
    if atoms.is_empty() {
        return Err(ParseError::at_eof(
            1,
            ParseErrorKind::Missing {
                what: "query atoms".to_string(),
            },
        ));
    }
    Ok(JoinQuery::new(atoms))
}

/// Serializes a [`JoinQuery`] in the one-line format [`parse_query`] reads.
pub fn format_query(q: &JoinQuery) -> String {
    let atoms: Vec<String> = q
        .atoms
        .iter()
        .map(|a| format!("{}({})", a.relation, a.attrs.join(",")))
        .collect();
    atoms.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csp_round_trips() {
        let inst = lb_chaos::hostile::csp(7);
        let text = format_csp(&inst);
        let back = parse_csp(&text).unwrap();
        assert_eq!(back.num_vars, inst.num_vars);
        assert_eq!(back.domain_size, inst.domain_size);
        assert_eq!(back.constraints.len(), inst.constraints.len());
    }

    #[test]
    fn graph_round_trips() {
        let g = lb_chaos::hostile::graph(11);
        let text = format_graph(&g);
        let back = parse_graph(&text).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn join_round_trips() {
        let (q, db) = lb_chaos::hostile::join_instance(3);
        let qtext = format_query(&q);
        let dbtext = format_db(&q, &db);
        let q2 = parse_query(&qtext).unwrap();
        let db2 = parse_db(&dbtext).unwrap();
        assert_eq!(q2.atoms.len(), q.atoms.len());
        for atom in &q.atoms {
            let orig = db.table(&atom.relation).map(|t| t.rows().to_vec());
            let back = db2.table(&atom.relation).map(|t| t.rows().to_vec());
            assert_eq!(orig, back, "relation {} drifted", atom.relation);
        }
    }

    #[test]
    fn parse_errors_are_positioned() {
        let err = parse_csp("csp 2 2\ncon 0 9 : 0,0\n").unwrap_err();
        assert_eq!((err.line, err.col), (2, 7));
        let err = parse_graph("3\n0 7\n").unwrap_err();
        assert_eq!((err.line, err.col), (2, 3));
        let err = parse_db("rel R 2\n1\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_query("R(a,b) S(").unwrap_err();
        assert_eq!((err.line, err.col), (1, 8));
    }
}
