//! The `lb-serve` line protocol: requests in, single-line responses out.
//!
//! ```text
//! PING                                     → PONG
//! STATS                                    → STATS jobs=.. active=.. ...
//! DRAIN                                    → OK draining
//! STATUS <job-id>                          → STATUS <id> <state> preemptions=.. spent=.. attempts=..
//!                                                   [verdict=..] [evidence=..]
//! SUBMIT <tenant> <family> <nlines> [k=<n>] [budget=<ticks>]
//! <nlines payload lines>                   → OK <job-id>
//! ```
//!
//! Every malformed, oversized, or truncated request is a positioned, typed
//! [`ParseError`] — the same `line:col` discipline as the DIMACS parser —
//! rendered as `ERR parse <line>:<col>: <message>`. Line 1 is the command
//! line; payload lines are numbered from 2, so a bad tuple deep inside a
//! submitted CSP still points at the exact request line that carried it.
//! Overload and quota rejections are their own typed responses carrying a
//! client-visible `retry-after-ms` backoff hint: the server sheds load, it
//! never hangs.

use crate::job::{JobFamily, JobSpec, Verdict};
use lb_engine::parse::{tokens, ParseError, ParseErrorKind};

/// Hard cap on one request line, bytes. Longer lines are rejected (and the
/// server stops reading them at the cap): memory stays bounded no matter
/// what a tenant sends.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Hard cap on declared payload lines per submission.
pub const MAX_PAYLOAD_LINES: usize = 4096;

/// Longest accepted tenant / job-id token.
pub const MAX_NAME_BYTES: usize = 64;

/// A parsed command line (request line 1), before any payload arrives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Liveness probe.
    Ping,
    /// One-line server counters.
    Stats,
    /// Begin graceful drain.
    Drain,
    /// Query one job.
    Status {
        /// The `j<N>` id being queried.
        job_id: String,
    },
    /// A submission header; `payload_lines` more lines follow.
    Submit {
        /// Tenant the job queues under.
        tenant: String,
        /// Solver family.
        family: JobFamily,
        /// Clique size (`k=<n>`), 0 when absent.
        k: usize,
        /// Per-job total tick budget (`budget=<n>`), `None` when absent.
        budget: Option<u64>,
        /// Declared payload line count.
        payload_lines: usize,
    },
}

/// A complete, validated request (payload included and parse-checked).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// One-line server counters.
    Stats,
    /// Begin graceful drain.
    Drain,
    /// Query one job.
    Status {
        /// The `j<N>` id being queried.
        job_id: String,
    },
    /// A fully validated submission.
    Submit(JobSpec),
}

fn malformed(line: usize, col: usize, what: String) -> ParseError {
    ParseError::new(line, col, ParseErrorKind::Malformed { what })
}

/// Decodes one request line as UTF-8, rejecting embedded NUL and oversized
/// lines with positioned errors. `lineno` is the 1-based stream line.
fn decode_line(lineno: usize, raw: &[u8]) -> Result<&str, ParseError> {
    if raw.len() > MAX_LINE_BYTES {
        return Err(ParseError::new(
            lineno,
            MAX_LINE_BYTES + 1,
            ParseErrorKind::OutOfRange {
                what: "request line length".to_string(),
                token: format!("{} bytes", raw.len()),
                limit: format!("at most {MAX_LINE_BYTES} bytes"),
            },
        ));
    }
    let s = std::str::from_utf8(raw).map_err(|e| {
        malformed(
            lineno,
            e.valid_up_to() + 1,
            "byte (invalid UTF-8)".to_string(),
        )
    })?;
    if let Some(pos) = s.find('\0') {
        return Err(malformed(
            lineno,
            pos + 1,
            "NUL byte in request".to_string(),
        ));
    }
    Ok(s.trim_end_matches('\r'))
}

/// Validates a tenant or job-id token: short, non-empty, `[A-Za-z0-9._-]`.
fn check_name(lineno: usize, col: usize, what: &str, tok: &str) -> Result<String, ParseError> {
    if tok.len() > MAX_NAME_BYTES {
        return Err(ParseError::new(
            lineno,
            col,
            ParseErrorKind::OutOfRange {
                what: what.to_string(),
                token: format!("{} bytes", tok.len()),
                limit: format!("at most {MAX_NAME_BYTES} bytes"),
            },
        ));
    }
    let ok = !tok.is_empty()
        && tok
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if !ok {
        return Err(malformed(
            lineno,
            col,
            format!("{what} `{tok}` (allowed: ASCII letters, digits, `.`, `_`, `-`)"),
        ));
    }
    Ok(tok.to_string())
}

/// Parses a command line (stream line `lineno`, normally 1).
pub fn parse_command_at(lineno: usize, raw: &[u8]) -> Result<Command, ParseError> {
    let line = decode_line(lineno, raw)?;
    let mut toks = tokens(line);
    let Some((col, verb)) = toks.next() else {
        return Err(ParseError::new(
            lineno,
            1,
            ParseErrorKind::Missing {
                what: "command verb".to_string(),
            },
        ));
    };
    let rest: Vec<(usize, &str)> = toks.collect();
    let no_args = |rest: &[(usize, &str)]| -> Result<(), ParseError> {
        match rest.first() {
            Some(&(c, t)) => Err(ParseError::new(
                lineno,
                c,
                ParseErrorKind::TrailingGarbage {
                    token: t.to_string(),
                },
            )),
            None => Ok(()),
        }
    };
    match verb {
        "PING" => {
            no_args(&rest)?;
            Ok(Command::Ping)
        }
        "STATS" => {
            no_args(&rest)?;
            Ok(Command::Stats)
        }
        "DRAIN" => {
            no_args(&rest)?;
            Ok(Command::Drain)
        }
        "STATUS" => {
            let Some(&(c, id)) = rest.first() else {
                return Err(ParseError::new(
                    lineno,
                    col,
                    ParseErrorKind::Missing {
                        what: "job id after STATUS".to_string(),
                    },
                ));
            };
            no_args(rest.get(1..).unwrap_or_default())?;
            Ok(Command::Status {
                job_id: check_name(lineno, c, "job id", id)?,
            })
        }
        "SUBMIT" => parse_submit(lineno, col, &rest),
        other => Err(malformed(
            lineno,
            col,
            format!("command `{other}` (expected PING, STATS, DRAIN, STATUS, or SUBMIT)"),
        )),
    }
}

fn parse_submit(
    lineno: usize,
    verb_col: usize,
    rest: &[(usize, &str)],
) -> Result<Command, ParseError> {
    let mut fixed = rest.iter();
    let missing = |what: &str| {
        ParseError::new(
            lineno,
            verb_col,
            ParseErrorKind::Missing {
                what: what.to_string(),
            },
        )
    };
    let &(tcol, tenant) = fixed.next().ok_or_else(|| missing("tenant after SUBMIT"))?;
    let tenant = check_name(lineno, tcol, "tenant", tenant)?;
    let &(fcol, family) = fixed.next().ok_or_else(|| missing("family after tenant"))?;
    let family = JobFamily::from_name(family).ok_or_else(|| {
        malformed(
            lineno,
            fcol,
            format!("family `{family}` (expected sat, csp, join, triangle, or clique)"),
        )
    })?;
    let &(ncol, nlines) = fixed.next().ok_or_else(|| missing("payload line count"))?;
    let payload_lines: usize =
        crate::formats::parse_num(lineno, ncol, nlines, "payload line count")?;
    if payload_lines > MAX_PAYLOAD_LINES {
        return Err(ParseError::new(
            lineno,
            ncol,
            ParseErrorKind::OutOfRange {
                what: "payload line count".to_string(),
                token: nlines.to_string(),
                limit: format!("at most {MAX_PAYLOAD_LINES}"),
            },
        ));
    }
    let mut k = 0usize;
    let mut budget = None;
    for &(ocol, opt) in fixed {
        let Some((key, value)) = opt.split_once('=') else {
            return Err(malformed(
                lineno,
                ocol,
                format!("option `{opt}` (expected k=<n> or budget=<ticks>)"),
            ));
        };
        match key {
            "k" => k = crate::formats::parse_num(lineno, ocol, value, "clique size k")?,
            "budget" => {
                let b: u64 = crate::formats::parse_num(lineno, ocol, value, "job budget")?;
                if b == 0 {
                    return Err(ParseError::new(
                        lineno,
                        ocol,
                        ParseErrorKind::OutOfRange {
                            what: "job budget".to_string(),
                            token: value.to_string(),
                            limit: "at least 1 tick".to_string(),
                        },
                    ));
                }
                budget = Some(b);
            }
            other => {
                return Err(malformed(
                    lineno,
                    ocol,
                    format!("option `{other}` (expected k or budget)"),
                ));
            }
        }
    }
    if family == JobFamily::Clique && k == 0 {
        return Err(missing("k=<n> for a clique job"));
    }
    if family != JobFamily::Clique && k != 0 {
        return Err(malformed(
            lineno,
            verb_col,
            format!("k option on a {family} job (only clique takes k)"),
        ));
    }
    Ok(Command::Submit {
        tenant,
        family,
        k,
        budget,
        payload_lines,
    })
}

/// Parses a command line as stream line 1.
pub fn parse_command(raw: &[u8]) -> Result<Command, ParseError> {
    parse_command_at(1, raw)
}

/// Assembles a [`Request`] from a parsed command plus the raw payload
/// lines that followed it (empty for non-SUBMIT commands). The payload is
/// decoded and parse-validated here — admission rejects a malformed
/// instance before it ever reaches a queue — with errors positioned in
/// *stream* coordinates: payload line `i` is stream line `first_payload_line
/// + i - 1`.
pub fn assemble(
    cmd: Command,
    payload: &[Vec<u8>],
    first_payload_line: usize,
) -> Result<Request, ParseError> {
    match cmd {
        Command::Ping => Ok(Request::Ping),
        Command::Stats => Ok(Request::Stats),
        Command::Drain => Ok(Request::Drain),
        Command::Status { job_id } => Ok(Request::Status { job_id }),
        Command::Submit {
            tenant,
            family,
            k,
            budget,
            payload_lines,
        } => {
            if payload.len() != payload_lines {
                return Err(ParseError::at_eof(
                    first_payload_line + payload.len(),
                    ParseErrorKind::CountMismatch {
                        what: "payload lines".to_string(),
                        declared: payload_lines,
                        found: payload.len(),
                    },
                ));
            }
            let mut text = String::new();
            for (i, raw) in payload.iter().enumerate() {
                let line = decode_line(first_payload_line + i, raw)?;
                text.push_str(line);
                text.push('\n');
            }
            let spec = JobSpec {
                tenant,
                family,
                k,
                budget,
                payload: text,
            };
            // Payload-relative error lines shift to stream coordinates.
            spec.instance().map_err(|mut e| {
                e.line += first_payload_line - 1;
                e
            })?;
            Ok(Request::Submit(spec))
        }
    }
}

/// Parses one complete request from a raw byte stream (the fixture-corpus
/// entry point): line 1 is the command, any declared payload lines follow,
/// and nothing may trail the request.
pub fn parse_request_bytes(bytes: &[u8]) -> Result<Request, ParseError> {
    let mut lines = bytes.split(|&b| b == b'\n');
    let first = lines.next().unwrap_or_default();
    let cmd = parse_command(first)?;
    let wanted = match &cmd {
        Command::Submit { payload_lines, .. } => *payload_lines,
        _ => 0,
    };
    let mut payload: Vec<Vec<u8>> = Vec::new();
    let mut extra: Option<usize> = None;
    for (i, chunk) in lines.enumerate() {
        if payload.len() < wanted {
            payload.push(chunk.to_vec());
        } else if !chunk.is_empty() {
            extra = Some(i + 2);
            break;
        }
    }
    if let Some(lineno) = extra {
        return Err(ParseError::new(
            lineno,
            1,
            ParseErrorKind::TrailingGarbage {
                token: "extra request line".to_string(),
            },
        ));
    }
    assemble(cmd, &payload, 2)
}

/// A typed rejection, rendered as an `ERR` line. Quota and overload carry
/// the client-visible backoff hint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reject {
    /// Malformed request: `ERR parse <line>:<col>: <msg>`.
    Parse(ParseError),
    /// Tenant exceeded its queued-jobs quota; retry after the hint.
    Quota {
        /// The tenant that hit its limit.
        tenant: String,
        /// The per-tenant active-jobs quota.
        limit: usize,
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u64,
    },
    /// Server-wide admission cap hit; retry after the hint.
    Overload {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u64,
    },
    /// Server is draining; this instance refuses new submissions, but a
    /// restarted one will take them — the hint tells clients when to try.
    Draining {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u64,
    },
    /// STATUS for an id this spool has never seen.
    UnknownJob {
        /// The unknown id.
        job_id: String,
    },
}

impl Reject {
    /// Renders the single `ERR` response line.
    pub fn to_line(&self) -> String {
        match self {
            Reject::Parse(e) => format!("ERR parse {e}"),
            Reject::Quota {
                tenant,
                limit,
                retry_after_ms,
            } => format!("ERR quota tenant={tenant} limit={limit} retry-after-ms={retry_after_ms}"),
            Reject::Overload { retry_after_ms } => {
                format!("ERR overload retry-after-ms={retry_after_ms}")
            }
            Reject::Draining { retry_after_ms } => {
                format!("ERR draining retry-after-ms={retry_after_ms}")
            }
            Reject::UnknownJob { job_id } => format!("ERR unknown-job {job_id}"),
        }
    }

    /// The backoff hint, when this rejection carries one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            Reject::Quota { retry_after_ms, .. }
            | Reject::Overload { retry_after_ms }
            | Reject::Draining { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

/// A job's state as reported by `STATUS`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatusReport {
    /// The job id.
    pub job_id: String,
    /// `queued`, `running`, `done`, or `quarantined`.
    pub state: String,
    /// Preemption count so far.
    pub preemptions: u64,
    /// Ticks spent so far (the metering unit).
    pub spent: u64,
    /// Failed-attempt count so far (the retry-ladder rung).
    pub attempts: u64,
    /// The verdict, once done.
    pub verdict: Option<Verdict>,
    /// The one-line quarantine reason, once quarantined.
    pub evidence: Option<String>,
}

impl StatusReport {
    /// Renders the single `STATUS` response line. A report carries a
    /// verdict or evidence, never both; evidence is trailing free text.
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "STATUS {} {} preemptions={} spent={} attempts={}",
            self.job_id, self.state, self.preemptions, self.spent, self.attempts
        );
        if let Some(v) = &self.verdict {
            line.push_str(" verdict=");
            line.push_str(&v.to_line());
        } else if let Some(e) = &self.evidence {
            line.push_str(" evidence=");
            line.push_str(&e.replace(['\n', '\r'], " "));
        }
        line
    }

    /// Parses [`StatusReport::to_line`] output (the client side).
    pub fn from_line(line: &str) -> Option<StatusReport> {
        let rest = line.strip_prefix("STATUS ")?;
        let (head, verdict, evidence) = if let Some((h, v)) = rest.split_once(" verdict=") {
            (h, Some(Verdict::from_line(v)?), None)
        } else if let Some((h, e)) = rest.split_once(" evidence=") {
            (h, None, Some(e.to_string()))
        } else {
            (rest, None, None)
        };
        let mut parts = head.split_whitespace();
        let job_id = parts.next()?.to_string();
        let state = parts.next()?.to_string();
        let preemptions = parts.next()?.strip_prefix("preemptions=")?.parse().ok()?;
        let spent = parts.next()?.strip_prefix("spent=")?.parse().ok()?;
        let attempts = parts.next()?.strip_prefix("attempts=")?.parse().ok()?;
        Some(StatusReport {
            job_id,
            state,
            preemptions,
            spent,
            attempts,
            verdict,
            evidence,
        })
    }
}
