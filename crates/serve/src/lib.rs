//! `lb-serve`: a crash-safe multi-tenant solver service.
//!
//! The crate turns the workspace's resumable solvers (SAT, CSP, worst-case
//! optimal join, triangle counting, clique search) into a long-running
//! server with:
//!
//! - **preemptive fair scheduling** — every job runs in fixed budget
//!   slices through the engine's checkpoint layer; an exhausted slice
//!   suspends the job to an LBCK blob and re-queues it behind other
//!   tenants ([`scheduler`]);
//! - **typed admission control** — per-tenant quotas and a global cap
//!   shed load with client-visible retry-after hints instead of hanging
//!   ([`protocol::Reject`]);
//! - **crash safety** — all job state persists atomically in a spool
//!   directory, so a `kill -9` loses no acknowledged job and duplicates
//!   no verdict ([`spool`]);
//! - **a survival ladder** — jobs that repeatedly fail (corrupt
//!   checkpoints, injected I/O faults, budget livelock) climb an
//!   attempt/backoff ladder and land in a durable quarantine with
//!   evidence instead of retrying forever ([`scheduler`], [`spool`]);
//! - **deterministic network chaos** — seeded connection-level fault
//!   injection (torn writes, disconnects, slow-loris trickle, read
//!   timeouts) for soaking the server through hostile weather
//!   ([`netfault`]);
//! - **a line protocol** with the same positioned typed-error discipline
//!   as the DIMACS parser ([`protocol`]).
//!
//! The `lb-serve` binary runs the server (`run`) and the soak load
//! generator (`bench`); `lbtool serve` / `lbtool submit` wrap the same
//! entry points.

#![forbid(unsafe_code)]

pub mod bench;
pub mod client;
pub mod formats;
pub mod job;
pub mod netfault;
pub mod protocol;
pub mod runner;
pub mod scheduler;
pub mod server;
pub mod spool;
pub mod sync;

pub use job::{Instance, JobFamily, JobRecord, JobSpec, JobStatus, Verdict};
pub use protocol::{Command, Reject, Request, StatusReport};
pub use scheduler::{Scheduler, SchedulerConfig};
pub use server::{Server, ServerConfig};
pub use spool::{Spool, SpoolError};
