//! `lb-serve`: a crash-safe multi-tenant solver service.
//!
//! The crate turns the workspace's resumable solvers (SAT, CSP, worst-case
//! optimal join, triangle counting, clique search) into a long-running
//! server with:
//!
//! - **preemptive fair scheduling** — every job runs in fixed budget
//!   slices through the engine's checkpoint layer; an exhausted slice
//!   suspends the job to an LBCK blob and re-queues it behind other
//!   tenants ([`scheduler`]);
//! - **typed admission control** — per-tenant quotas and a global cap
//!   shed load with client-visible retry-after hints instead of hanging
//!   ([`protocol::Reject`]);
//! - **crash safety** — all job state persists atomically in a spool
//!   directory, so a `kill -9` loses no acknowledged job and duplicates
//!   no verdict ([`spool`]);
//! - **a line protocol** with the same positioned typed-error discipline
//!   as the DIMACS parser ([`protocol`]).
//!
//! The `lb-serve` binary runs the server (`run`) and the soak load
//! generator (`bench`); `lbtool serve` / `lbtool submit` wrap the same
//! entry points.

#![forbid(unsafe_code)]

pub mod bench;
pub mod client;
pub mod formats;
pub mod job;
pub mod protocol;
pub mod runner;
pub mod scheduler;
pub mod server;
pub mod spool;

pub use job::{Instance, JobFamily, JobRecord, JobSpec, JobStatus, Verdict};
pub use protocol::{Command, Reject, Request, StatusReport};
pub use scheduler::{Scheduler, SchedulerConfig};
pub use server::{Server, ServerConfig};
pub use spool::{Spool, SpoolError};
