//! Deterministic network-fault injection for connection streams.
//!
//! The same failpoint discipline as [`lb_engine::fault`], lifted to the
//! socket layer: a [`NetFaultPlan`] is a seeded, serializable schedule of
//! connection misbehaviors, each pinned to an exact I/O *operation count*
//! on the connection — never to wall-clock time. Wrapping a stream in
//! [`FaultStream`] makes every `read`/`write` call consult the schedule.
//!
//! Four fault kinds cover the hostile-network repertoire the chaos soak
//! exercises:
//!
//! * [`NetFaultKind::TornWrite`] — the Nth I/O op (if a write) delivers
//!   only a prefix of the buffer, then the connection dies: the peer sees
//!   a half-written line followed by a reset. On a read op it degrades to
//!   a plain disconnect (there is no "torn read" on a byte stream).
//! * [`NetFaultKind::Disconnect`] — the Nth I/O op fails with
//!   `ConnectionReset`; every later op on either half fails the same way.
//! * [`NetFaultKind::Trickle`] — from the Nth op onward the stream goes
//!   slow-loris: every read and write transfers at most one byte. The
//!   stream still makes progress, so only timeout discipline saves the
//!   peer — exactly the property the server's read timeouts must carry.
//! * [`NetFaultKind::ReadTimeout`] — the Nth I/O op fails once with
//!   `TimedOut`, as if the socket deadline expired without data.
//!
//! # Determinism contract
//!
//! A plan never consults time or randomness at fire-time: given the same
//! plan and the same *sequence of I/O calls* (same order, same buffer
//! sizes), a [`FaultStream`] produces byte-for-byte identical outcomes.
//! Both halves of a cloned stream share one operation counter (the clone
//! shares the schedule via `Arc`), so read/write interleaving within a
//! connection is counted once, in program order. Replay a failing storm
//! by replaying its seed; the fault schedule is a pure function of it.

use crate::sync::lock_recover;
use lb_engine::parse::{ParseError, ParseErrorKind};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What a scheduled network fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NetFaultKind {
    /// Deliver a prefix of the buffer on the Nth op, then kill the
    /// connection (reads degrade to a plain disconnect).
    TornWrite,
    /// Fail the Nth op with `ConnectionReset`; the connection stays dead.
    Disconnect,
    /// From the Nth op onward, transfer at most one byte per call.
    Trickle,
    /// Fail the Nth op once with `TimedOut`.
    ReadTimeout,
}

impl NetFaultKind {
    /// The stable name used in the serialized plan spec.
    pub fn name(self) -> &'static str {
        match self {
            NetFaultKind::TornWrite => "torn-write",
            NetFaultKind::Disconnect => "disconnect",
            NetFaultKind::Trickle => "trickle",
            NetFaultKind::ReadTimeout => "read-timeout",
        }
    }

    /// Parses a spec name.
    pub fn from_name(name: &str) -> Option<NetFaultKind> {
        match name {
            "torn-write" => Some(NetFaultKind::TornWrite),
            "disconnect" => Some(NetFaultKind::Disconnect),
            "trickle" => Some(NetFaultKind::Trickle),
            "read-timeout" => Some(NetFaultKind::ReadTimeout),
            _ => None,
        }
    }
}

/// One scheduled fault: `kind` fires at I/O operation count `at` (1-based,
/// reads and writes counted together in program order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetFaultPoint {
    /// The 1-based I/O operation count at which the fault fires.
    pub at: u64,
    /// What happens when it fires.
    pub kind: NetFaultKind,
}

/// A seeded, serializable schedule of connection faults.
///
/// Value type like [`lb_engine::fault::FaultPlan`]: build with
/// [`NetFaultPlan::new`] + [`NetFaultPlan::with_point`], derive from a seed
/// with [`NetFaultPlan::from_seed`], or parse the `kind@count` spec emitted
/// by [`fmt::Display`] (round-trips exactly). Install by wrapping a stream
/// in [`FaultStream::new`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    points: Vec<NetFaultPoint>,
}

impl NetFaultPlan {
    /// The empty plan: the stream behaves normally.
    pub fn new() -> NetFaultPlan {
        NetFaultPlan::default()
    }

    /// Adds a scheduled fault (builder style). `at` is 1-based; an `at` of
    /// zero never fires.
    pub fn with_point(mut self, kind: NetFaultKind, at: u64) -> NetFaultPlan {
        self.points.push(NetFaultPoint { at, kind });
        self
    }

    /// Derives a plan deterministically from a seed: one to three fault
    /// points within the first dozen I/O operations (a protocol exchange
    /// is only a handful of reads and writes, so small counts are the
    /// interesting ones). The same seed always yields the same plan.
    pub fn from_seed(seed: u64) -> NetFaultPlan {
        let mut state = seed ^ 0x7e1e_fa17;
        let mut plan = NetFaultPlan::new();
        let count = 1 + splitmix(&mut state) % 3;
        for _ in 0..count {
            let kind = match splitmix(&mut state) % 4 {
                0 => NetFaultKind::TornWrite,
                1 => NetFaultKind::Disconnect,
                2 => NetFaultKind::Trickle,
                _ => NetFaultKind::ReadTimeout,
            };
            let at = 1 + splitmix(&mut state) % 12;
            plan.points.push(NetFaultPoint { at, kind });
        }
        plan
    }

    /// The scheduled fault points, in insertion order.
    pub fn points(&self) -> &[NetFaultPoint] {
        &self.points
    }

    /// True iff no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Parses the textual spec produced by [`fmt::Display`]:
    /// comma-separated `kind@count` entries, e.g. `trickle@3,disconnect@9`.
    /// The empty string is the empty plan.
    pub fn parse(spec: &str) -> Result<NetFaultPlan, ParseError> {
        let mut plan = NetFaultPlan::new();
        let mut col = 1usize;
        for entry in spec.split(',') {
            let entry_col = col;
            col += entry.len() + 1;
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((name, at)) = entry.split_once('@') else {
                return Err(ParseError::new(
                    1,
                    entry_col,
                    ParseErrorKind::Malformed {
                        what: format!("net fault point `{entry}` (expected `kind@count`)"),
                    },
                ));
            };
            let kind = NetFaultKind::from_name(name.trim()).ok_or_else(|| {
                ParseError::new(
                    1,
                    entry_col,
                    ParseErrorKind::Malformed {
                        what: format!("unknown net fault kind `{}`", name.trim()),
                    },
                )
            })?;
            let at: u64 = at.trim().parse().map_err(|_| {
                ParseError::new(
                    1,
                    entry_col,
                    ParseErrorKind::InvalidNumber {
                        what: "net fault operation count".into(),
                        token: at.trim().to_string(),
                    },
                )
            })?;
            plan.points.push(NetFaultPoint { at, kind });
        }
        Ok(plan)
    }
}

impl fmt::Display for NetFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}@{}", p.kind.name(), p.at)?;
        }
        Ok(())
    }
}

impl std::str::FromStr for NetFaultPlan {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<NetFaultPlan, ParseError> {
        NetFaultPlan::parse(s)
    }
}

/// SplitMix64, same generator as `lb_engine::fault`.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A one-shot firing schedule: fires when the op count reaches or passes
/// the next point (`<=`, so a skipped count cannot step over a fault).
#[derive(Debug, Default)]
struct Schedule {
    at: Vec<u64>,
    next: usize,
}

impl Schedule {
    fn fire(&mut self, count: u64) -> bool {
        if self.next < self.at.len() && self.at[self.next] <= count {
            self.next += 1;
            true
        } else {
            false
        }
    }
}

/// Shared mutable fault state: one per connection, shared by both cloned
/// halves so reads and writes consume one operation counter.
#[derive(Debug)]
struct FaultState {
    torn: Schedule,
    disconnect: Schedule,
    trickle: Schedule,
    timeout: Schedule,
    ops: u64,
    /// Once dead, every op on either half fails with `ConnectionReset`.
    dead: bool,
    /// Once trickling, every op transfers at most one byte.
    trickling: bool,
}

impl FaultState {
    fn compile(plan: &NetFaultPlan) -> FaultState {
        let mut s = FaultState {
            torn: Schedule::default(),
            disconnect: Schedule::default(),
            trickle: Schedule::default(),
            timeout: Schedule::default(),
            ops: 0,
            dead: false,
            trickling: false,
        };
        for p in plan.points() {
            if p.at == 0 {
                continue; // 1-based counts: zero never fires
            }
            match p.kind {
                NetFaultKind::TornWrite => s.torn.at.push(p.at),
                NetFaultKind::Disconnect => s.disconnect.at.push(p.at),
                NetFaultKind::Trickle => s.trickle.at.push(p.at),
                NetFaultKind::ReadTimeout => s.timeout.at.push(p.at),
            }
        }
        s.torn.at.sort_unstable();
        s.disconnect.at.sort_unstable();
        s.trickle.at.sort_unstable();
        s.timeout.at.sort_unstable();
        s
    }
}

/// What the schedule says the current op must do.
enum Verdict {
    /// Behave normally.
    Pass,
    /// Transfer at most one byte.
    OneByte,
    /// Deliver `len/2` bytes (writes only), then die.
    Tear,
    /// Fail once with `TimedOut`.
    TimeOut,
    /// Fail with `ConnectionReset`, now and forever.
    Dead,
}

fn reset() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "injected disconnect")
}

/// A stream wrapper that injects the plan's faults into every I/O call.
///
/// Cloned halves (via [`SessionStream::try_clone`]) share the schedule, the
/// operation counter, and the dead/trickling latches through an
/// `Arc<Mutex<_>>`, mirroring how both halves of a real `TcpStream` share
/// one kernel socket.
#[derive(Debug)]
pub struct FaultStream<S> {
    inner: S,
    state: Arc<Mutex<FaultState>>,
}

impl<S> FaultStream<S> {
    /// Wraps `inner`, compiling `plan` into the connection's schedule.
    pub fn new(inner: S, plan: &NetFaultPlan) -> FaultStream<S> {
        FaultStream {
            inner,
            state: Arc::new(Mutex::new(FaultState::compile(plan))),
        }
    }

    /// Counts one op and resolves what it must do. A panicked sibling half
    /// poisons the shared latch; the schedule it guards only ever mutates
    /// under the lock, so recover it (via the blessed [`crate::sync`]
    /// helper) instead of propagating the panic across halves.
    fn begin_op(&self, is_write: bool) -> Verdict {
        let mut st = lock_recover(&self.state);
        if st.dead {
            return Verdict::Dead;
        }
        st.ops += 1;
        let ops = st.ops;
        if st.trickle.fire(ops) {
            st.trickling = true;
        }
        if st.disconnect.fire(ops) {
            st.dead = true;
            return Verdict::Dead;
        }
        if st.torn.fire(ops) {
            st.dead = true;
            // A read cannot tear; the connection just dies under it.
            return if is_write {
                Verdict::Tear
            } else {
                Verdict::Dead
            };
        }
        if st.timeout.fire(ops) {
            return Verdict::TimeOut;
        }
        if st.trickling {
            return Verdict::OneByte;
        }
        Verdict::Pass
    }
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.begin_op(false) {
            Verdict::Pass => self.inner.read(buf),
            Verdict::OneByte => {
                let n = buf.len().min(1);
                self.inner.read(&mut buf[..n])
            }
            Verdict::TimeOut => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "injected read timeout",
            )),
            Verdict::Tear | Verdict::Dead => Err(reset()),
        }
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.begin_op(true) {
            Verdict::Pass => self.inner.write(buf),
            Verdict::OneByte => self.inner.write(&buf[..buf.len().min(1)]),
            Verdict::Tear => {
                let half = buf.len() / 2;
                if half > 0 {
                    // Best-effort: the peer may see the prefix before the
                    // reset, exactly like a crashed writer mid-line.
                    let _torn = self.inner.write(&buf[..half]);
                    // lb-lint: allow(swallowed-result) -- injecting a torn write; the flush outcome is irrelevant to the reset we return
                    let _torn = self.inner.flush();
                }
                Err(reset())
            }
            Verdict::TimeOut => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "injected write timeout",
            )),
            Verdict::Dead => Err(reset()),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        // Not a counted op: flush carries no new bytes, and counting it
        // would make operation counts depend on BufWriter internals.
        if lock_recover(&self.state).dead {
            return Err(reset());
        }
        self.inner.flush()
    }
}

/// The stream surface a connection handler needs, abstracted so handlers
/// serve real sockets and fault-wrapped ones identically.
pub trait SessionStream: Read + Write + Send + Sized + 'static {
    /// Clones a second handle to the same connection (read/write halves).
    fn try_clone(&self) -> io::Result<Self>;
    /// Bounds how long one read may block.
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
    /// Bounds how long one write may block.
    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
}

impl SessionStream for TcpStream {
    fn try_clone(&self) -> io::Result<TcpStream> {
        TcpStream::try_clone(self)
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }

    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, dur)
    }
}

impl<S: SessionStream> SessionStream for FaultStream<S> {
    fn try_clone(&self) -> io::Result<FaultStream<S>> {
        Ok(FaultStream {
            inner: self.inner.try_clone()?,
            state: Arc::clone(&self.state),
        })
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(dur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory loopback: writes land in a buffer, reads serve a
    /// script. Good enough to pin FaultStream semantics without sockets.
    #[derive(Debug, Default)]
    struct Loopback {
        script: Vec<u8>,
        pos: usize,
        written: Vec<u8>,
    }

    impl Read for Loopback {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(self.script.len() - self.pos);
            buf[..n].copy_from_slice(&self.script[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl Write for Loopback {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn spec_round_trips() {
        let plan = NetFaultPlan::new()
            .with_point(NetFaultKind::TornWrite, 4)
            .with_point(NetFaultKind::Disconnect, 9)
            .with_point(NetFaultKind::Trickle, 2)
            .with_point(NetFaultKind::ReadTimeout, 1);
        let spec = plan.to_string();
        assert_eq!(spec, "torn-write@4,disconnect@9,trickle@2,read-timeout@1");
        assert_eq!(NetFaultPlan::parse(&spec).unwrap(), plan);
        assert!(NetFaultPlan::parse("").unwrap().is_empty());
        assert!(NetFaultPlan::parse("torn-write").is_err());
        assert!(NetFaultPlan::parse("nosuch@2").is_err());
        assert!(NetFaultPlan::parse("trickle@x").is_err());
    }

    #[test]
    fn from_seed_is_deterministic_and_nonempty() {
        for seed in 0..50u64 {
            let a = NetFaultPlan::from_seed(seed);
            assert_eq!(a, NetFaultPlan::from_seed(seed));
            assert!(!a.is_empty());
            assert!(a.points().iter().all(|p| p.at >= 1));
        }
        assert_ne!(NetFaultPlan::from_seed(1), NetFaultPlan::from_seed(2));
    }

    #[test]
    fn disconnect_kills_the_connection_permanently() {
        let plan = NetFaultPlan::new().with_point(NetFaultKind::Disconnect, 2);
        let mut s = FaultStream::new(
            Loopback {
                script: b"abcdef".to_vec(),
                ..Loopback::default()
            },
            &plan,
        );
        let mut buf = [0u8; 3];
        assert_eq!(s.read(&mut buf).unwrap(), 3); // op 1 passes
        let err = s.read(&mut buf).unwrap_err(); // op 2 fires
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Dead is a latch: writes fail too, forever.
        assert!(s.write(b"x").is_err());
        assert!(s.flush().is_err());
    }

    #[test]
    fn torn_write_delivers_half_then_dies() {
        let plan = NetFaultPlan::new().with_point(NetFaultKind::TornWrite, 1);
        let mut s = FaultStream::new(Loopback::default(), &plan);
        let err = s.write(b"STATUS j1\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(&s.inner.written, b"STATU"); // the torn prefix landed
        assert!(s.write(b"again").is_err());
    }

    #[test]
    fn trickle_latches_one_byte_transfers() {
        let plan = NetFaultPlan::new().with_point(NetFaultKind::Trickle, 2);
        let mut s = FaultStream::new(
            Loopback {
                script: b"abcdef".to_vec(),
                ..Loopback::default()
            },
            &plan,
        );
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 4); // op 1: full speed
        assert_eq!(s.read(&mut buf).unwrap(), 1); // op 2 onward: one byte
        assert_eq!(s.write(b"xyz").unwrap(), 1);
    }

    #[test]
    fn read_timeout_fires_once_then_recovers() {
        let plan = NetFaultPlan::new().with_point(NetFaultKind::ReadTimeout, 1);
        let mut s = FaultStream::new(
            Loopback {
                script: b"ok".to_vec(),
                ..Loopback::default()
            },
            &plan,
        );
        let mut buf = [0u8; 2];
        assert_eq!(
            s.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
        assert_eq!(s.read(&mut buf).unwrap(), 2); // one-shot: next op passes
    }

    #[test]
    fn cloned_halves_share_one_op_counter() {
        let plan = NetFaultPlan::new().with_point(NetFaultKind::Disconnect, 3);
        let mut a = FaultStream::new(Loopback::default(), &plan);
        // Loopback has no kernel-level clone; share the state by hand the
        // way SessionStream::try_clone does for real sockets.
        let mut b = FaultStream {
            inner: Loopback::default(),
            state: Arc::clone(&a.state),
        };
        assert!(a.write(b"1").is_ok()); // op 1 on half a
        assert!(b.write(b"2").is_ok()); // op 2 on half b
        assert!(a.write(b"3").is_err()); // op 3 fires, whichever half
        assert!(b.write(b"4").is_err()); // and the latch holds for both
    }

    #[test]
    fn skipped_counts_cannot_step_over_a_fault() {
        // Points at op 1 and 2 of the *same* kind: the op-2 call must fire
        // the op-1 point first (<= semantics), not skip it.
        let plan = NetFaultPlan::new()
            .with_point(NetFaultKind::ReadTimeout, 1)
            .with_point(NetFaultKind::ReadTimeout, 2);
        let mut s = FaultStream::new(
            Loopback {
                script: b"abc".to_vec(),
                ..Loopback::default()
            },
            &plan,
        );
        let mut buf = [0u8; 1];
        assert!(s.read(&mut buf).is_err());
        assert!(s.read(&mut buf).is_err());
        assert_eq!(s.read(&mut buf).unwrap(), 1);
    }
}
