//! The spool directory: everything the server must not lose across
//! `kill -9`.
//!
//! ```text
//! <spool>/jobs/<id>.job    versioned text record (see [`crate::job`])
//! <spool>/ckpt/<id>.lbck   the job's LBCK frontier, absent when none
//! ```
//!
//! **Recovery invariant.** Every write lands through
//! [`lb_engine::atomic_write`] (tmp + fsync + rename), so after a crash
//! each file is either absent or a complete previous version — at worst a
//! stale `.tmp` sibling survives, which [`Spool::open`] sweeps. A job whose
//! submission was acknowledged (`OK <id>` is only sent after its record is
//! on disk) is therefore never lost; a job whose record says `done` is
//! never re-run (no duplicated verdicts); a `queued` record resumes from
//! its spooled checkpoint, or from scratch when the checkpoint is absent
//! or fails to decode — losing at most one slice of work, never soundness.

use crate::job::{JobRecord, JobStatus};
use lb_engine::checkpoint::{atomic_write, cleanup_artifacts, Checkpoint, CheckpointError};
use std::fs;
use std::path::{Path, PathBuf};

/// A typed spool failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpoolError {
    /// Filesystem trouble, with the path involved.
    Io {
        /// The path the operation touched.
        path: String,
        /// The OS error text.
        error: String,
    },
    /// A checkpoint-layer failure (atomic write, LBCK decode).
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for SpoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpoolError::Io { path, error } => write!(f, "{path}: {error}"),
            SpoolError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl From<CheckpointError> for SpoolError {
    fn from(e: CheckpointError) -> SpoolError {
        SpoolError::Checkpoint(e)
    }
}

fn io_err(path: &Path) -> impl Fn(std::io::Error) -> SpoolError + '_ {
    move |e| SpoolError::Io {
        path: path.display().to_string(),
        error: e.to_string(),
    }
}

/// What [`Spool::recover`] found on disk.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Every decodable record, `done` and `queued` alike.
    pub records: Vec<JobRecord>,
    /// Files that failed to decode, with the typed error rendered —
    /// logged and skipped, never panicked over.
    pub skipped: Vec<(PathBuf, String)>,
    /// Stale `.tmp` siblings removed by the startup sweep.
    pub stale_tmp_removed: usize,
    /// The next fresh job number (max recovered id + 1).
    pub next_job_number: u64,
}

/// Handle on a spool directory (creates `jobs/` and `ckpt/` on open).
#[derive(Clone, Debug)]
pub struct Spool {
    jobs: PathBuf,
    ckpt: PathBuf,
}

impl Spool {
    /// Opens (creating if needed) the spool under `root`.
    pub fn open(root: &Path) -> Result<Spool, SpoolError> {
        let jobs = root.join("jobs");
        let ckpt = root.join("ckpt");
        fs::create_dir_all(&jobs).map_err(io_err(&jobs))?;
        fs::create_dir_all(&ckpt).map_err(io_err(&ckpt))?;
        Ok(Spool { jobs, ckpt })
    }

    /// The record path for a job id.
    pub fn job_path(&self, id: &str) -> PathBuf {
        self.jobs.join(format!("{id}.job"))
    }

    /// The checkpoint path for a job id.
    pub fn ckpt_path(&self, id: &str) -> PathBuf {
        self.ckpt.join(format!("{id}.lbck"))
    }

    /// Atomically persists a job record. Once this returns, the job
    /// survives any crash.
    pub fn save_record(&self, rec: &JobRecord) -> Result<(), SpoolError> {
        atomic_write(&self.job_path(&rec.id), rec.encode().as_bytes())?;
        Ok(())
    }

    /// Atomically persists a job's frontier checkpoint.
    pub fn save_checkpoint(&self, id: &str, ck: &Checkpoint) -> Result<(), SpoolError> {
        ck.save(&self.ckpt_path(id))?;
        Ok(())
    }

    /// Loads a job's frontier, if one was spooled. `Ok(None)` when absent;
    /// a present-but-undecodable blob is the typed error (the caller
    /// restarts the job from scratch — sound, merely slower).
    pub fn load_checkpoint(&self, id: &str) -> Result<Option<Checkpoint>, CheckpointError> {
        let path = self.ckpt_path(id);
        if !path.exists() {
            return Ok(None);
        }
        Checkpoint::load(&path).map(Some)
    }

    /// Removes a settled job's checkpoint and any stale `.tmp` sibling.
    pub fn remove_checkpoint(&self, id: &str) -> Result<(), SpoolError> {
        cleanup_artifacts(&self.ckpt_path(id))?;
        Ok(())
    }

    /// Sweeps `.tmp` siblings left by a save that was killed between
    /// tmp-write and rename. Returns how many were removed.
    fn sweep_stale_tmp(&self) -> Result<usize, SpoolError> {
        let mut removed = 0;
        for dir in [&self.jobs, &self.ckpt] {
            let entries = fs::read_dir(dir).map_err(io_err(dir))?;
            for entry in entries {
                let entry = entry.map_err(io_err(dir))?;
                let path = entry.path();
                let is_tmp = path.extension().is_some_and(|e| e.to_str() == Some("tmp"));
                if is_tmp {
                    fs::remove_file(&path).map_err(io_err(&path))?;
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }

    /// Scans the spool after a (possibly violent) restart: sweeps stale
    /// `.tmp` files, decodes every record, and reports what survived.
    /// Undecodable records are skipped with their typed error — corruption
    /// never panics and never conjures a verdict.
    pub fn recover(&self) -> Result<Recovered, SpoolError> {
        let mut out = Recovered {
            stale_tmp_removed: self.sweep_stale_tmp()?,
            ..Recovered::default()
        };
        let entries = fs::read_dir(&self.jobs).map_err(io_err(&self.jobs))?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(io_err(&self.jobs))?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e.to_str() == Some("job")) {
                paths.push(path);
            }
        }
        paths.sort();
        for path in paths {
            let text = match fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    out.skipped.push((path, e.to_string()));
                    continue;
                }
            };
            match JobRecord::decode(&text) {
                Ok(rec) => {
                    let n = rec
                        .id
                        .strip_prefix('j')
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or(0);
                    out.next_job_number = out.next_job_number.max(n + 1);
                    out.records.push(rec);
                }
                Err(e) => out.skipped.push((path, e.to_string())),
            }
        }
        if out.next_job_number == 0 {
            out.next_job_number = 1;
        }
        Ok(out)
    }

    /// A `queued` record's resume point: its spooled checkpoint when it
    /// decodes, otherwise none (restart from scratch) plus the rendered
    /// reason it was discarded.
    pub fn resume_point(&self, rec: &JobRecord) -> (Option<Checkpoint>, Option<String>) {
        if !matches!(rec.status, JobStatus::Queued) {
            return (None, None);
        }
        match self.load_checkpoint(&rec.id) {
            Ok(found) => (found, None),
            Err(e) => (None, Some(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobFamily, JobSpec, Verdict};

    fn rec(id: &str, status: JobStatus) -> JobRecord {
        JobRecord {
            id: id.into(),
            spec: JobSpec {
                tenant: "t0".into(),
                family: JobFamily::Triangle,
                k: 0,
                budget: None,
                payload: "3\n0 1\n1 2\n0 2\n".into(),
            },
            status,
            preemptions: 0,
            spent: 0,
        }
    }

    #[test]
    fn records_survive_and_ids_advance() {
        let dir = std::env::temp_dir().join(format!("lbserve-spool-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spool = Spool::open(&dir).unwrap();
        spool.save_record(&rec("j1", JobStatus::Queued)).unwrap();
        spool
            .save_record(&rec("j4", JobStatus::Done(Verdict::Count(1))))
            .unwrap();
        // A stale tmp sibling, as a killed save would leave it.
        fs::write(spool.job_path("j9").with_extension("job.tmp"), b"half").unwrap();
        // A torn record that must be skipped with a typed error.
        fs::write(spool.job_path("j5"), "lbjob 1\nid j5\n").unwrap();

        let recovered = spool.recover().unwrap();
        assert_eq!(recovered.records.len(), 2);
        assert_eq!(recovered.skipped.len(), 1);
        assert_eq!(recovered.stale_tmp_removed, 1);
        assert_eq!(recovered.next_job_number, 5);
        let _ = fs::remove_dir_all(&dir);
    }
}
