//! The spool directory: everything the server must not lose across
//! `kill -9`.
//!
//! ```text
//! <spool>/jobs/<id>.job                versioned text record (see [`crate::job`])
//! <spool>/ckpt/<id>.lbck               the job's LBCK frontier, absent when none
//! <spool>/quarantine/<id>.job          a dead-lettered record (or raw bytes when
//!                                      the record itself failed to decode)
//! <spool>/quarantine/<id>.evidence     the per-attempt evidence that sent it there
//! ```
//!
//! **Recovery invariant.** Every write lands through
//! [`lb_engine::atomic_write`] (tmp + fsync + rename), so after a crash
//! each file is either absent or a complete previous version — at worst a
//! stale `.tmp` sibling survives, which [`Spool::open`] sweeps. A job whose
//! submission was acknowledged (`OK <id>` is only sent after its record is
//! on disk) is therefore never lost; a job whose record says `done` is
//! never re-run (no duplicated verdicts); a `queued` record resumes from
//! its spooled checkpoint, or from scratch when the checkpoint is absent
//! or fails to decode — losing at most one slice of work, never soundness.

use crate::job::{JobRecord, JobStatus};
use lb_engine::checkpoint::{atomic_write, cleanup_artifacts, Checkpoint, CheckpointError};
use std::fs;
use std::path::{Path, PathBuf};

/// A typed spool failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpoolError {
    /// Filesystem trouble, with the path involved.
    Io {
        /// The path the operation touched.
        path: String,
        /// The OS error text.
        error: String,
    },
    /// A checkpoint-layer failure (atomic write, LBCK decode).
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for SpoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpoolError::Io { path, error } => write!(f, "{path}: {error}"),
            SpoolError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl From<CheckpointError> for SpoolError {
    fn from(e: CheckpointError) -> SpoolError {
        SpoolError::Checkpoint(e)
    }
}

fn io_err(path: &Path) -> impl Fn(std::io::Error) -> SpoolError + '_ {
    move |e| SpoolError::Io {
        path: path.display().to_string(),
        error: e.to_string(),
    }
}

/// What [`Spool::recover`] found on disk.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Every decodable record, `done` and `queued` alike.
    pub records: Vec<JobRecord>,
    /// Decodable records already in the quarantine area — terminal, served
    /// for `STATUS`, never re-run.
    pub quarantined: Vec<JobRecord>,
    /// Jobs dead-lettered *during this recovery*: a `jobs/*.job` file that
    /// failed to decode was moved raw into quarantine with its typed error
    /// as evidence. `(id, evidence)` per job.
    pub dead_lettered: Vec<(String, String)>,
    /// Files that could not even be read or moved, with the error rendered
    /// — logged and skipped, never panicked over.
    pub skipped: Vec<(PathBuf, String)>,
    /// Stale `.tmp` siblings removed by the startup sweep.
    pub stale_tmp_removed: usize,
    /// The next fresh job number (max recovered id + 1, quarantine
    /// included so a dead-lettered id is never reissued).
    pub next_job_number: u64,
}

/// Handle on a spool directory (creates `jobs/`, `ckpt/`, and
/// `quarantine/` on open).
#[derive(Clone, Debug)]
pub struct Spool {
    jobs: PathBuf,
    ckpt: PathBuf,
    quarantine: PathBuf,
}

impl Spool {
    /// Opens (creating if needed) the spool under `root`.
    pub fn open(root: &Path) -> Result<Spool, SpoolError> {
        let jobs = root.join("jobs");
        let ckpt = root.join("ckpt");
        let quarantine = root.join("quarantine");
        fs::create_dir_all(&jobs).map_err(io_err(&jobs))?;
        fs::create_dir_all(&ckpt).map_err(io_err(&ckpt))?;
        fs::create_dir_all(&quarantine).map_err(io_err(&quarantine))?;
        Ok(Spool {
            jobs,
            ckpt,
            quarantine,
        })
    }

    /// The record path for a job id.
    pub fn job_path(&self, id: &str) -> PathBuf {
        self.jobs.join(format!("{id}.job"))
    }

    /// The checkpoint path for a job id.
    pub fn ckpt_path(&self, id: &str) -> PathBuf {
        self.ckpt.join(format!("{id}.lbck"))
    }

    /// The dead-letter record path for a job id.
    pub fn quarantine_path(&self, id: &str) -> PathBuf {
        self.quarantine.join(format!("{id}.job"))
    }

    /// The dead-letter evidence path for a job id.
    pub fn evidence_path(&self, id: &str) -> PathBuf {
        self.quarantine.join(format!("{id}.evidence"))
    }

    /// Atomically persists a job record. Once this returns, the job
    /// survives any crash.
    pub fn save_record(&self, rec: &JobRecord) -> Result<(), SpoolError> {
        atomic_write(&self.job_path(&rec.id), rec.encode().as_bytes())?;
        Ok(())
    }

    /// Atomically persists a job's frontier checkpoint.
    pub fn save_checkpoint(&self, id: &str, ck: &Checkpoint) -> Result<(), SpoolError> {
        ck.save(&self.ckpt_path(id))?;
        Ok(())
    }

    /// Loads a job's frontier, if one was spooled. `Ok(None)` when absent;
    /// a present-but-undecodable blob is the typed error (the caller
    /// restarts the job from scratch — sound, merely slower).
    pub fn load_checkpoint(&self, id: &str) -> Result<Option<Checkpoint>, CheckpointError> {
        let path = self.ckpt_path(id);
        if !path.exists() {
            return Ok(None);
        }
        Checkpoint::load(&path).map(Some)
    }

    /// Removes a settled job's checkpoint and any stale `.tmp` sibling.
    pub fn remove_checkpoint(&self, id: &str) -> Result<(), SpoolError> {
        cleanup_artifacts(&self.ckpt_path(id))?;
        Ok(())
    }

    /// Dead-letters a job: atomically writes the (already `Quarantined`)
    /// record and its evidence into `quarantine/`, then removes the live
    /// record and checkpoint. Write-before-remove ordering means a crash
    /// in between leaves the job in *both* places; [`Spool::recover`]
    /// prefers the quarantine copy, so the job stays terminal.
    pub fn quarantine(&self, rec: &JobRecord, evidence: &str) -> Result<(), SpoolError> {
        atomic_write(&self.quarantine_path(&rec.id), rec.encode().as_bytes())?;
        atomic_write(&self.evidence_path(&rec.id), evidence.as_bytes())?;
        let live = self.job_path(&rec.id);
        if live.exists() {
            fs::remove_file(&live).map_err(io_err(&live))?;
        }
        self.remove_checkpoint(&rec.id)?;
        Ok(())
    }

    /// Dead-letters a `jobs/*.job` file that failed to decode: the raw
    /// bytes move into quarantine under the same stem, the typed decode
    /// error becomes the evidence, and any orphaned checkpoint blob is
    /// removed (it is unusable without its record). Returns the id
    /// (derived from the filename stem).
    pub fn dead_letter_raw(
        &self,
        path: &Path,
        raw: &str,
        error: &str,
    ) -> Result<String, SpoolError> {
        let id = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unknown")
            .to_string();
        let evidence = format!("record failed to decode: {error}\n");
        atomic_write(&self.quarantine_path(&id), raw.as_bytes())?;
        atomic_write(&self.evidence_path(&id), evidence.as_bytes())?;
        fs::remove_file(path).map_err(io_err(path))?;
        self.remove_checkpoint(&id)?;
        Ok(id)
    }

    /// Reads a quarantined job's evidence file, if present.
    pub fn load_evidence(&self, id: &str) -> Option<String> {
        fs::read_to_string(self.evidence_path(id)).ok()
    }

    /// Sweeps `.tmp` siblings left by a save that was killed between
    /// tmp-write and rename. Returns how many were removed.
    fn sweep_stale_tmp(&self) -> Result<usize, SpoolError> {
        let mut removed = 0;
        for dir in [&self.jobs, &self.ckpt, &self.quarantine] {
            let entries = fs::read_dir(dir).map_err(io_err(dir))?;
            for entry in entries {
                let entry = entry.map_err(io_err(dir))?;
                let path = entry.path();
                let is_tmp = path.extension().is_some_and(|e| e.to_str() == Some("tmp"));
                if is_tmp {
                    fs::remove_file(&path).map_err(io_err(&path))?;
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }

    /// Lists the `.job` files under `dir`, sorted for deterministic replay.
    fn job_files(&self, dir: &Path) -> Result<Vec<PathBuf>, SpoolError> {
        let entries = fs::read_dir(dir).map_err(io_err(dir))?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(io_err(dir))?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e.to_str() == Some("job")) {
                paths.push(path);
            }
        }
        paths.sort();
        Ok(paths)
    }

    /// Scans the spool after a (possibly violent) restart: sweeps stale
    /// `.tmp` files, replays the quarantine area, decodes every live
    /// record, and reports what survived. A live record that fails to
    /// decode is dead-lettered on the spot — moved raw into quarantine
    /// with its typed error as evidence. Corruption never panics and
    /// never conjures a verdict.
    pub fn recover(&self) -> Result<Recovered, SpoolError> {
        let mut out = Recovered {
            stale_tmp_removed: self.sweep_stale_tmp()?,
            ..Recovered::default()
        };
        let note_id = |out: &mut Recovered, id: &str| {
            let n = id
                .strip_prefix('j')
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0);
            out.next_job_number = out.next_job_number.max(n + 1);
        };
        // Quarantine first: a job present in both areas (a crash between
        // the quarantine write and the live-record removal) stays terminal.
        let mut in_quarantine: Vec<String> = Vec::new();
        for path in self.job_files(&self.quarantine)? {
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("unknown")
                .to_string();
            in_quarantine.push(stem.clone());
            note_id(&mut out, &stem);
            let text = match fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    out.skipped.push((path, e.to_string()));
                    continue;
                }
            };
            match JobRecord::decode(&text) {
                Ok(rec) => out.quarantined.push(rec),
                Err(_raw) => {
                    // A raw dead-lettered file (the record itself was the
                    // corruption); its evidence file says why.
                    let evidence = self
                        .load_evidence(&stem)
                        .unwrap_or_else(|| "evidence file missing".to_string());
                    out.dead_lettered.push((stem, evidence));
                }
            }
        }
        for path in self.job_files(&self.jobs)? {
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            if in_quarantine.iter().any(|q| q == stem) {
                // Quarantine already owns this id; the live copy is the
                // leftover of an interrupted dead-lettering.
                if let Err(e) = fs::remove_file(&path) {
                    out.skipped.push((path, e.to_string()));
                }
                continue;
            }
            let text = match fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    out.skipped.push((path, e.to_string()));
                    continue;
                }
            };
            match JobRecord::decode(&text) {
                Ok(rec) => {
                    note_id(&mut out, &rec.id);
                    out.records.push(rec);
                }
                Err(e) => match self.dead_letter_raw(&path, &text, &e.to_string()) {
                    Ok(id) => {
                        note_id(&mut out, &id);
                        out.dead_lettered
                            .push((id, format!("record failed to decode: {e}")));
                    }
                    Err(move_err) => out.skipped.push((path, format!("{e}; then {move_err}"))),
                },
            }
        }
        if out.next_job_number == 0 {
            out.next_job_number = 1;
        }
        Ok(out)
    }

    /// A `queued` record's resume point: its spooled checkpoint when it
    /// decodes, otherwise none (restart from scratch) plus the rendered
    /// reason it was discarded.
    pub fn resume_point(&self, rec: &JobRecord) -> (Option<Checkpoint>, Option<String>) {
        if !matches!(rec.status, JobStatus::Queued) {
            return (None, None);
        }
        match self.load_checkpoint(&rec.id) {
            Ok(found) => (found, None),
            Err(e) => (None, Some(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobFamily, JobSpec, Verdict};

    fn rec(id: &str, status: JobStatus) -> JobRecord {
        JobRecord {
            id: id.into(),
            spec: JobSpec {
                tenant: "t0".into(),
                family: JobFamily::Triangle,
                k: 0,
                budget: None,
                payload: "3\n0 1\n1 2\n0 2\n".into(),
            },
            status,
            preemptions: 0,
            spent: 0,
            attempts: 0,
        }
    }

    #[test]
    fn records_survive_and_ids_advance() {
        let dir = std::env::temp_dir().join(format!("lbserve-spool-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spool = Spool::open(&dir).unwrap();
        spool.save_record(&rec("j1", JobStatus::Queued)).unwrap();
        spool
            .save_record(&rec("j4", JobStatus::Done(Verdict::Count(1))))
            .unwrap();
        // A stale tmp sibling, as a killed save would leave it.
        fs::write(spool.job_path("j9").with_extension("job.tmp"), b"half").unwrap();
        // A torn record that must be dead-lettered with a typed error.
        fs::write(spool.job_path("j5"), "lbjob 2\nid j5\n").unwrap();

        let recovered = spool.recover().unwrap();
        assert_eq!(recovered.records.len(), 2);
        assert_eq!(recovered.dead_lettered.len(), 1);
        assert_eq!(recovered.dead_lettered[0].0, "j5");
        assert!(recovered.skipped.is_empty());
        assert_eq!(recovered.stale_tmp_removed, 1);
        assert_eq!(recovered.next_job_number, 6);
        // The torn record moved into quarantine, bytes intact, with
        // evidence beside it.
        assert!(!spool.job_path("j5").exists());
        assert_eq!(
            fs::read_to_string(spool.quarantine_path("j5")).unwrap(),
            "lbjob 2\nid j5\n"
        );
        assert!(spool
            .load_evidence("j5")
            .unwrap()
            .contains("failed to decode"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantined_records_stay_terminal_across_recoveries() {
        let dir = std::env::temp_dir().join(format!("lbserve-spoolq-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spool = Spool::open(&dir).unwrap();
        let mut bad = rec("j3", JobStatus::Queued);
        spool.save_record(&bad).unwrap();
        bad.status = JobStatus::Quarantined {
            reason: "repeated checkpoint decode failure".into(),
        };
        bad.attempts = 3;
        spool
            .quarantine(&bad, "attempt 1: bad magic\nattempt 2: bad magic\n")
            .unwrap();
        assert!(!spool.job_path("j3").exists());

        // Two recoveries in a row: the job stays quarantined, is never
        // resurrected into records, and its id is never reissued.
        for _ in 0..2 {
            let recovered = spool.recover().unwrap();
            assert!(recovered.records.is_empty());
            assert_eq!(recovered.quarantined.len(), 1);
            assert_eq!(recovered.quarantined[0].id, "j3");
            assert_eq!(recovered.next_job_number, 4);
        }
        assert!(spool.load_evidence("j3").unwrap().contains("attempt 2"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_dead_lettering_prefers_the_quarantine_copy() {
        let dir = std::env::temp_dir().join(format!("lbserve-spooli-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spool = Spool::open(&dir).unwrap();
        // Crash between quarantine write and live-record removal: the job
        // exists in both areas.
        let mut r = rec("j2", JobStatus::Queued);
        spool.save_record(&r).unwrap();
        r.status = JobStatus::Quarantined {
            reason: "livelock".into(),
        };
        atomic_write(&spool.quarantine_path("j2"), r.encode().as_bytes()).unwrap();
        atomic_write(&spool.evidence_path("j2"), b"slice made no progress\n").unwrap();

        let recovered = spool.recover().unwrap();
        assert!(recovered.records.is_empty(), "quarantine copy must win");
        assert_eq!(recovered.quarantined.len(), 1);
        assert!(!spool.job_path("j2").exists(), "live leftover swept");
        let _ = fs::remove_dir_all(&dir);
    }
}
