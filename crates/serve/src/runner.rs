//! Dispatch from a parsed [`Instance`] to the family's resumable solver —
//! one slice at a time, under the engine's budget/checkpoint contract.
//!
//! This is where the server meets the solvers: [`solve_slice`] runs
//! exactly one budget slice (fresh or resumed from an LBCK checkpoint) and
//! reports either a final [`Verdict`] or a suspension carrying the next
//! checkpoint; [`solve_to_verdict`] drives slices to completion in-process
//! — the *uninterrupted reference run* the soak harness compares every
//! served verdict against.

use crate::job::{Instance, Verdict};
use lb_engine::checkpoint::{Checkpoint, CheckpointError, ResumableOutcome};
use lb_engine::{exhaustion_diagnostic, Budget, ExhaustReason, RunStats};
use std::fmt;

/// The result of one slice: settled, or suspended with the frontier.
#[derive(Clone, Debug)]
pub enum SliceOutcome {
    /// The job finished with this verdict.
    Done(Verdict),
    /// The slice budget ran out; the checkpoint resumes the run.
    Suspended {
        /// Why the slice stopped.
        reason: ExhaustReason,
        /// The serialized frontier.
        checkpoint: Checkpoint,
    },
}

/// A typed slice failure: the solver itself never panics, so everything
/// that can go wrong arrives here as data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SliceError {
    /// A checkpoint failed to decode or re-encode (corrupt spool blob,
    /// version skew, instance mismatch).
    Checkpoint(CheckpointError),
    /// The instance was rejected by the solver (e.g. a join query naming a
    /// relation the database does not hold).
    Instance(String),
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            SliceError::Instance(msg) => write!(f, "instance: {msg}"),
        }
    }
}

impl From<CheckpointError> for SliceError {
    fn from(e: CheckpointError) -> SliceError {
        SliceError::Checkpoint(e)
    }
}

fn render_sat_model(model: &[bool]) -> String {
    let lits: Vec<String> = model
        .iter()
        .enumerate()
        .map(|(v, &b)| format!("{}{}", if b { "" } else { "-" }, v + 1))
        .collect();
    lits.join(" ")
}

fn render_values<T: fmt::Display>(vals: &[T]) -> String {
    let vals: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
    vals.join(" ")
}

fn map_outcome<W>(out: ResumableOutcome<W>, sat: impl FnOnce(W) -> Verdict) -> SliceOutcome {
    match out {
        ResumableOutcome::Sat(w) => SliceOutcome::Done(sat(w)),
        ResumableOutcome::Unsat => SliceOutcome::Done(Verdict::Unsat),
        ResumableOutcome::Suspended { reason, checkpoint } => {
            SliceOutcome::Suspended { reason, checkpoint }
        }
    }
}

/// Runs exactly one budget slice of `inst`, resuming `from` when given.
/// This is the scheduler's preemption point: a `Suspended` outcome is a
/// job giving up the worker, not a failure.
#[must_use = "a dropped slice outcome loses the frontier checkpoint"]
pub fn solve_slice(
    inst: &Instance,
    slice: &Budget,
    from: Option<&Checkpoint>,
) -> Result<(SliceOutcome, RunStats), SliceError> {
    match inst {
        Instance::Sat(f) => {
            let solver = lb_sat::DpllSolver::default();
            let (out, stats) = solver.solve_resumable(f, slice, from)?;
            Ok((
                map_outcome(out, |m| Verdict::Sat(render_sat_model(&m))),
                stats,
            ))
        }
        Instance::Csp(c) => {
            let (out, stats) = lb_csp::solver::backtracking::solve_resumable(
                c,
                lb_csp::solver::BacktrackConfig::default(),
                slice,
                from,
            )?;
            Ok((map_outcome(out, |a| Verdict::Sat(render_values(&a))), stats))
        }
        Instance::Join(q, db) => {
            let (out, stats) =
                lb_join::wcoj::count_resumable(q, db, None, slice, from).map_err(|e| match e {
                    lb_join::wcoj::ResumeError::Join(j) => SliceError::Instance(j.to_string()),
                    lb_join::wcoj::ResumeError::Checkpoint(c) => SliceError::Checkpoint(c),
                })?;
            Ok((map_outcome(out, Verdict::Count), stats))
        }
        Instance::Triangle(g) => {
            let (out, stats) = lb_graphalg::triangle::count_triangles_resumable(g, slice, from)?;
            Ok((map_outcome(out, Verdict::Count), stats))
        }
        Instance::Clique(g, k) => {
            let (out, stats) = lb_graphalg::clique::find_clique_resumable(g, *k, slice, from)?;
            Ok((
                map_outcome(out, |vs| Verdict::Sat(render_values(&vs))),
                stats,
            ))
        }
    }
}

/// Drives `inst` through repeated slices to a settled verdict in-process,
/// with no spool and no scheduler: the uninterrupted reference run. A
/// `total_budget` turns exhaustion into a terminal [`Verdict::Unknown`]
/// carrying the shared resumable-vs-terminal diagnostic. Returns the
/// verdict, summed stats, and how many slices were preempted.
#[must_use = "the reference verdict is the point of the run"]
pub fn solve_to_verdict(
    inst: &Instance,
    slice_ticks: u64,
    total_budget: Option<u64>,
) -> Result<(Verdict, RunStats, u64), SliceError> {
    let slice_ticks = slice_ticks.max(1);
    let mut from: Option<Checkpoint> = None;
    let mut total = RunStats::default();
    let mut preemptions = 0u64;
    loop {
        let ticks = match total_budget {
            None => slice_ticks,
            Some(t) => {
                let remaining = t.saturating_sub(total.total_ops());
                if remaining == 0 && from.is_some() {
                    let why = format!("tick budget of {t} exhausted");
                    return Ok((
                        Verdict::Unknown(exhaustion_diagnostic(&why, None)),
                        total,
                        preemptions,
                    ));
                }
                remaining.min(slice_ticks)
            }
        };
        let (out, stats) = solve_slice(inst, &Budget::ticks(ticks), from.as_ref())?;
        total.absorb(&stats);
        match out {
            SliceOutcome::Done(v) => return Ok((v, total, preemptions)),
            SliceOutcome::Suspended { checkpoint, .. } => {
                preemptions += 1;
                from = Some(checkpoint);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobFamily, JobSpec};

    fn spec(family: JobFamily, k: usize, payload: &str) -> JobSpec {
        JobSpec {
            tenant: "t".into(),
            family,
            k,
            budget: None,
            payload: payload.into(),
        }
    }

    fn payload_for(family: JobFamily, seed: u64) -> (usize, String) {
        match family {
            JobFamily::Sat => (0, lb_chaos::hostile::cnf(seed).to_dimacs()),
            JobFamily::Csp => (0, crate::formats::format_csp(&lb_chaos::hostile::csp(seed))),
            JobFamily::Triangle => (
                0,
                crate::formats::format_graph(&lb_chaos::hostile::graph(seed)),
            ),
            JobFamily::Clique => (
                3,
                crate::formats::format_graph(&lb_chaos::hostile::graph(seed)),
            ),
            JobFamily::Join => {
                let (q, db) = lb_chaos::hostile::join_instance(seed);
                (
                    0,
                    format!(
                        "{}\n{}",
                        crate::formats::format_query(&q),
                        crate::formats::format_db(&q, &db)
                    ),
                )
            }
        }
    }

    #[test]
    fn sliced_run_matches_uninterrupted_for_every_family() {
        for family in crate::job::JobFamily::ALL {
            // Chaos seeds can generate near-trivial instances; scan for one
            // with enough work that a 2-tick slice must suspend.
            let mut checked = false;
            for seed in 1..64u64 {
                let (k, payload) = payload_for(family, seed);
                let s = spec(family, k, &payload);
                let inst = s.instance().unwrap();
                let (reference, ref_stats, _) = solve_to_verdict(&inst, u64::MAX, None).unwrap();
                if ref_stats.total_ops() < 8 {
                    continue;
                }
                let (sliced, sliced_stats, preemptions) = solve_to_verdict(&inst, 2, None).unwrap();
                assert_eq!(sliced, reference, "family {family} verdict drifted");
                assert!(
                    preemptions > 0,
                    "family {family} never suspended with 2-tick slices"
                );
                assert!(
                    ref_stats.eq_allowing_poisoned_intermediate(&sliced_stats)
                        || ref_stats.total_ops() == sliced_stats.total_ops(),
                    "family {family} stats drifted: {ref_stats:?} vs {sliced_stats:?}"
                );
                checked = true;
                break;
            }
            assert!(checked, "no chaos seed in 1..64 gave {family} real work");
        }
    }

    #[test]
    fn total_budget_yields_terminal_unknown() {
        let s = spec(JobFamily::Sat, 0, &lb_chaos::hostile::cnf(9).to_dimacs());
        let inst = s.instance().unwrap();
        let (v, _, _) = solve_to_verdict(&inst, 4, Some(8)).unwrap();
        match v {
            Verdict::Unknown(why) => assert!(why.contains("terminal"), "diagnostic: {why}"),
            other => {
                // A tiny instance may legitimately finish inside 8 ticks.
                let (reference, _, _) = solve_to_verdict(&inst, u64::MAX, None).unwrap();
                assert_eq!(other, reference);
            }
        }
    }
}
