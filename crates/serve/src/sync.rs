//! The one blessed home for poisoned-lock recovery.
//!
//! A worker that panics mid-slice poisons whatever mutex it held. Every
//! mutex in this crate guards state whose invariants are re-established
//! *before* the guard is released (transitions happen under the lock), so
//! a poisoned guard is still consistent and the right move is to recover
//! it rather than cascade the panic through every connection.
//!
//! That argument is easy to get wrong for a new mutex, so R14
//! (`lock-discipline`) only accepts the `into_inner` recovery idiom inside
//! this file: all acquisitions route through [`lock_recover`] /
//! [`cond_wait`] / [`cond_wait_timeout`], and a bare
//! `unwrap_or_else(|e| e.into_inner())` anywhere else is a lint error.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Acquires `m`, recovering the guard if a panicking holder poisoned it.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// `Condvar::wait` with the same poison-recovery policy as
/// [`lock_recover`]: a panicking waiter elsewhere must not wedge this one.
pub fn cond_wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// `Condvar::wait_timeout` with poison recovery; the timed-out flag is
/// dropped because every caller re-checks its predicate under the lock.
pub fn cond_wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    wait: Duration,
) -> MutexGuard<'a, T> {
    cv.wait_timeout(guard, wait).unwrap_or_else(|e| e.into_inner()).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);
    }
}
