//! Recovery behavior pinned against hand-written hostile spool trees
//! (`fixtures/spool/`): a corrupt checkpoint restarts its job from
//! scratch one rung up the retry ladder, a corrupt record dead-letters
//! raw into quarantine, and a recovery-time discard that exhausts the
//! ladder quarantines the job without ever re-queueing it.

use lb_serve::job::JobRecord;
use lb_serve::scheduler::{Scheduler, SchedulerConfig};
use lb_serve::spool::Spool;
use std::fs;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures/spool")
        .join(name)
}

fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &dst);
        } else {
            fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

/// Copies a fixture spool into a scratch dir named for the test, so
/// parallel tests never collide.
fn scratch_spool(fixture_name: &str, test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lbserve-fix-{test}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    copy_tree(&fixture(fixture_name), &dir);
    dir
}

fn config() -> SchedulerConfig {
    SchedulerConfig {
        max_attempts: 3,
        retry_backoff_ms: 1,
        ..SchedulerConfig::default()
    }
}

#[test]
fn corrupt_checkpoint_restarts_from_scratch_with_attempt_bumped() {
    let dir = scratch_spool("corrupt-checkpoint", "ckpt");
    let spool = Spool::open(&dir).unwrap();
    let (sched, report) = Scheduler::recover(spool.clone(), config()).unwrap();

    assert_eq!(report.resumed, 1, "the job must re-queue: {report:?}");
    assert_eq!(report.restarted_from_scratch, 1);
    assert_eq!(report.quarantined, 0);
    assert!(report.discarded_checkpoints[0].starts_with("j1:"));

    // The ladder rung is persisted before any slice runs: a second crash
    // cannot reset the attempt counter.
    let on_disk = JobRecord::decode(&fs::read_to_string(spool.job_path("j1")).unwrap()).unwrap();
    assert_eq!(on_disk.attempts, 1);
    assert_eq!(on_disk.preemptions, 2, "history survives the restart");

    let status = sched.status("j1").unwrap();
    assert_eq!(status.state, "queued");
    assert_eq!(status.attempts, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_record_dead_letters_raw_with_typed_evidence() {
    let dir = scratch_spool("corrupt-record", "rec");
    let spool = Spool::open(&dir).unwrap();
    let (sched, report) = Scheduler::recover(spool.clone(), config()).unwrap();

    assert_eq!(report.resumed, 0);
    assert_eq!(report.dead_lettered.len(), 1, "{report:?}");
    assert!(report.dead_lettered[0].starts_with("j2:"));

    // Raw bytes preserved in quarantine, live record and orphan
    // checkpoint gone.
    assert!(!spool.job_path("j2").exists());
    assert!(!spool.ckpt_path("j2").exists(), "orphan checkpoint swept");
    let raw = fs::read_to_string(spool.quarantine_path("j2")).unwrap();
    assert!(
        raw.starts_with("lbjob 2\nid j2\n"),
        "bytes kept for forensics"
    );
    assert!(spool
        .load_evidence("j2")
        .unwrap()
        .contains("failed to decode"));

    // STATUS still answers for the id, as quarantined with evidence.
    let status = sched.status("j2").unwrap();
    assert_eq!(status.state, "quarantined");
    assert!(status.evidence.unwrap().contains("failed to decode"));

    // The dead-lettered id is never reissued to a new submission.
    assert!(report.dead_lettered[0].starts_with("j2"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_discard_that_exhausts_the_ladder_quarantines() {
    let dir = scratch_spool("exhausted-ladder", "ladder");
    let spool = Spool::open(&dir).unwrap();
    let (sched, report) = Scheduler::recover(spool.clone(), config()).unwrap();

    // attempts was already 2 on disk; the recovery-time discard is the
    // third strike under max_attempts=3.
    assert_eq!(report.resumed, 0, "an exhausted job must not re-queue");
    assert_eq!(report.restarted_from_scratch, 0);
    assert_eq!(report.quarantined, 1, "{report:?}");

    let status = sched.status("j3").unwrap();
    assert_eq!(status.state, "quarantined");
    assert_eq!(status.attempts, 3);
    assert!(status.evidence.unwrap().contains("attempts exhausted"));

    // Durably dead-lettered: record moved into quarantine with evidence.
    assert!(!spool.job_path("j3").exists());
    let q = JobRecord::decode(&fs::read_to_string(spool.quarantine_path("j3")).unwrap()).unwrap();
    assert_eq!(q.attempts, 3);
    assert!(spool
        .load_evidence("j3")
        .unwrap()
        .contains("checkpoint discarded on recovery"));

    // A second recovery honors the quarantine copy and never resurrects
    // the job.
    drop(sched);
    let spool2 = Spool::open(&dir).unwrap();
    let (sched2, report2) = Scheduler::recover(spool2, config()).unwrap();
    assert_eq!(report2.resumed, 0);
    assert_eq!(report2.quarantined, 1);
    assert_eq!(sched2.status("j3").unwrap().state, "quarantined");
    let _ = fs::remove_dir_all(&dir);
}
