//! The kill-tolerant soak harness (tier-1).
//!
//! Spawns the real `lb-serve` binary, drives it with 8 tenants of mixed
//! solver jobs under a slice budget small enough to force repeated
//! preemption, SIGKILLs the server mid-soak, restarts it on the same
//! spool, and then checks the service's headline invariant:
//!
//! * **no lost jobs** — every acknowledged id reaches `done`;
//! * **no duplicated or drifted verdicts** — every served verdict equals
//!   the uninterrupted in-process reference run, and verdicts observed
//!   before the kill are byte-identical after the restart;
//! * **real preemption** — every job was suspended at least 3 times;
//! * **typed overload** — quota, capacity, and drain rejections arrive as
//!   `ERR` lines with backoff hints, never as a hang.

use lb_serve::bench;
use lb_serve::client::{Client, ClientError};
use lb_serve::job::{JobFamily, JobSpec};
use lb_serve::runner;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(spool: &PathBuf, extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_lb-serve"))
            .arg("run")
            .arg("--spool")
            .arg(spool)
            .arg("--addr")
            .arg("127.0.0.1:0")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn lb-serve");
        let stdout = child.stdout.take().expect("server stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("server prints its address")
            .expect("readable server stdout");
        let addr = first
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {first}"))
            .to_string();
        Server { child, addr }
    }

    fn connect(&self) -> Client {
        bench::connect_patiently(
            &self.addr,
            Duration::from_millis(5_000),
            Duration::from_secs(20),
        )
        .expect("connect to spawned server")
    }

    fn sigkill(&mut self) {
        self.child.kill().expect("SIGKILL the server");
        let _status = self.child.wait();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _cleanup = self.child.kill();
        let _status = self.child.wait();
    }
}

fn scratch_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lb-soak-{tag}-{}", std::process::id()));
    let _fresh = std::fs::remove_dir_all(&dir);
    dir
}

fn lcg_next(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s >> 33
}

/// `n`, then every `u v` with u < v — the complete graph K_n.
fn complete_graph(n: usize) -> String {
    let mut out = format!("{n}\n");
    for u in 0..n {
        for v in (u + 1)..n {
            out.push_str(&format!("{u} {v}\n"));
        }
    }
    out
}

/// K_{m,m}: triangle-free, so clique search must exhaust every branch.
fn bipartite_graph(m: usize) -> String {
    let mut out = format!("{}\n", 2 * m);
    for u in 0..m {
        for v in 0..m {
            out.push_str(&format!("{u} {}\n", m + v));
        }
    }
    out
}

/// A random 3-SAT instance near the hard clause/variable ratio.
fn random_3sat(vars: usize, seed: u64) -> String {
    let clauses = vars * 43 / 10;
    let mut s = seed ^ 0x5eed_cafe;
    let mut out = format!("p cnf {vars} {clauses}\n");
    for _ in 0..clauses {
        let mut picked = std::collections::BTreeSet::new();
        while picked.len() < 3 {
            picked.insert((lcg_next(&mut s) % vars as u64) as i64 + 1);
        }
        for var in &picked {
            let lit = if lcg_next(&mut s).is_multiple_of(2) {
                *var
            } else {
                -var
            };
            out.push_str(&format!("{lit} "));
        }
        out.push_str("0\n");
    }
    out
}

/// `free` unconstrained boolean variables in front of an unsatisfiable
/// odd cycle: chronological backtracking re-proves the cycle hopeless
/// under every one of the 2^free pad assignments.
fn padded_unsat_csp(free: usize) -> String {
    let cyc = 7;
    let n = free + cyc;
    let mut out = format!("csp {n} 2\n");
    for i in 0..cyc {
        let a = free + i;
        let b = free + (i + 1) % cyc;
        out.push_str(&format!("con {a} {b} : 0,1 1,0\n"));
    }
    out
}

/// The triangle query over the complete digraph on `m` nodes: the worst
/// case of the AGM bound, m(m-1)(m-2) output tuples.
fn triangle_join(m: usize) -> String {
    let mut out = String::from("R(a,b) S(b,c) T(c,a)\n");
    for rel in ["R", "S", "T"] {
        out.push_str(&format!("rel {rel} 2\n"));
        for u in 0..m {
            for v in 0..m {
                if u != v {
                    out.push_str(&format!("{u} {v}\n"));
                }
            }
        }
    }
    out
}

/// A deterministic synthetic spec whose uninterrupted reference run costs
/// at least `min_ops` ticks — guaranteeing real preemption under a small
/// slice budget. Instance sizes grow until the floor is met.
fn heavy_spec(tenant: &str, family: JobFamily, min_ops: u64, variant: u64) -> JobSpec {
    for attempt in 0..24u64 {
        let (k, payload) = match family {
            JobFamily::Sat => (
                0,
                random_3sat(14 + (variant % 3 + 2 * attempt) as usize, variant + attempt),
            ),
            JobFamily::Csp => (0, padded_unsat_csp(4 + (variant % 2 + attempt) as usize)),
            JobFamily::Triangle => {
                // The counter ticks once per edge: C(n,2) ops on K_n.
                let mut n = 10 + (variant % 3) as usize + attempt as usize;
                while ((n * (n - 1)) as u64) < 2 * min_ops {
                    n += 1;
                }
                (0, complete_graph(n))
            }
            JobFamily::Clique => (3, bipartite_graph(6 + (variant % 2 + attempt) as usize)),
            JobFamily::Join => (0, triangle_join(5 + (variant % 2 + attempt) as usize)),
        };
        let spec = JobSpec {
            tenant: tenant.to_string(),
            family,
            k,
            budget: None,
            payload,
        };
        let inst = spec.instance().expect("synthetic spec parses");
        let (_v, stats, _p) =
            runner::solve_to_verdict(&inst, u64::MAX, None).expect("reference settles");
        if stats.total_ops() >= min_ops {
            return spec;
        }
    }
    panic!("synthetic {family} never reached {min_ops} ops");
}

fn poll_done(client: &mut Client, id: &str, deadline: Instant) -> lb_serve::protocol::StatusReport {
    loop {
        match client.status(id) {
            Ok(s) if s.state == "done" => return s,
            Ok(_running) => {}
            Err(e) => panic!("{id}: status failed: {e}"),
        }
        assert!(Instant::now() < deadline, "{id} never settled");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkill_mid_soak_loses_no_jobs_and_duplicates_no_verdicts() {
    let spool = scratch_spool("kill");
    // 16-tick slices against jobs of ≥64 ops force ≥3 preemptions each.
    let knobs = [
        "--slice-ticks",
        "16",
        "--workers",
        "3",
        "--tenant-quota",
        "4",
        "--max-active",
        "64",
    ];
    let mut server = Server::spawn(&spool, &knobs);
    let mut client = server.connect();

    // 8 tenants × 2 jobs, families round-robin, all heavy enough to slice.
    let mut specs: Vec<JobSpec> = Vec::new();
    for t in 0..8 {
        for j in 0..2 {
            let family = JobFamily::ALL[(t + j) % JobFamily::ALL.len()];
            specs.push(heavy_spec(
                &format!("tenant{t}"),
                family,
                64,
                1 + (t * 2 + j) as u64,
            ));
        }
    }
    let mut ids: Vec<(String, JobSpec)> = Vec::new();
    for spec in specs {
        let id = client.submit(&spec).expect("submission acknowledged");
        ids.push((id, spec));
    }
    assert_eq!(ids.len(), 16);
    let unique: std::collections::BTreeSet<&str> = ids.iter().map(|(id, _)| id.as_str()).collect();
    assert_eq!(unique.len(), 16, "job ids must be unique");

    // Let the scheduler make some progress, remember any verdicts already
    // settled, then SIGKILL mid-flight.
    std::thread::sleep(Duration::from_millis(150));
    let mut pre_kill: BTreeMap<String, String> = BTreeMap::new();
    for (id, _) in &ids {
        if let Ok(s) = client.status(id) {
            if s.state == "done" {
                if let Some(v) = s.verdict {
                    pre_kill.insert(id.clone(), v.to_line());
                }
            }
        }
    }
    server.sigkill();

    // Restart on the same spool: every acknowledged job must come back.
    let mut server = Server::spawn(&spool, &knobs);
    let mut client = server.connect();
    let deadline = Instant::now() + Duration::from_secs(120);
    for (id, spec) in &ids {
        let status = poll_done(&mut client, id, deadline);
        let verdict = status.verdict.unwrap_or_else(|| {
            panic!("{id}: done without a verdict");
        });
        // No duplicated verdicts: a job settled before the kill reports
        // the same verdict after the restart, not a re-run's.
        if let Some(before) = pre_kill.get(id) {
            assert_eq!(
                &verdict.to_line(),
                before,
                "{id}: verdict changed across restart"
            );
        }
        // No drifted verdicts: the served answer equals the uninterrupted
        // in-process reference run.
        let reference = bench::reference_verdict(spec).expect("reference settles");
        assert_eq!(
            verdict, reference,
            "{id} ({} {}): served verdict drifted from reference",
            spec.tenant, spec.family
        );
        assert!(
            status.preemptions >= 3,
            "{id}: only {} preemptions; scheduler is not slicing",
            status.preemptions
        );
    }

    // Graceful drain shuts the server down cleanly.
    client.drain().expect("drain acknowledged");
    let _done = server.child.wait();
    std::mem::forget(server); // child already reaped
}

#[test]
fn admission_rejections_are_typed_and_never_hang() {
    let spool = scratch_spool("admission");
    let mut server = Server::spawn(
        &spool,
        &[
            "--slice-ticks",
            "8",
            "--workers",
            "1",
            "--tenant-quota",
            "1",
            "--max-active",
            "2",
            "--retry-after-ms",
            "70",
            "--idle-timeout-ms",
            "300",
        ],
    );
    let mut client = server.connect();

    // A heavy job occupies tenant0's whole quota for a while.
    let slow = heavy_spec("tenant0", JobFamily::Triangle, 2_000, 1);
    let _id0 = client.submit(&slow).expect("first job admitted");

    // Quota: same tenant again → typed rejection with a backoff hint.
    match client.submit(&slow) {
        Err(ClientError::Rejected {
            line,
            retry_after_ms,
        }) => {
            assert!(line.contains("quota"), "expected quota rejection: {line}");
            assert!(line.contains("tenant0"), "names the tenant: {line}");
            assert!(retry_after_ms.is_some(), "carries retry-after: {line}");
        }
        other => panic!("expected quota rejection, got {other:?}"),
    }

    // Capacity: a second tenant fills the server, a third is shed.
    let mut slow1 = slow.clone();
    slow1.tenant = "tenant1".to_string();
    let _id1 = client.submit(&slow1).expect("second tenant admitted");
    let mut slow2 = slow.clone();
    slow2.tenant = "tenant2".to_string();
    match client.submit(&slow2) {
        Err(ClientError::Rejected {
            line,
            retry_after_ms,
        }) => {
            assert!(line.contains("overload"), "expected overload: {line}");
            assert!(retry_after_ms.is_some(), "carries retry-after: {line}");
        }
        other => panic!("expected overload rejection, got {other:?}"),
    }

    // A malformed command gets its typed line; the connection survives.
    let reply = client.roundtrip("FROB\n").expect("typed parse error");
    assert!(reply.starts_with("ERR parse 1:1:"), "got `{reply}`");
    client.ping().expect("connection still usable after ERR");

    // Draining: admission closes immediately with its own typed line.
    client.drain().expect("drain acknowledged");
    let mut slow3 = slow.clone();
    slow3.tenant = "tenant3".to_string();
    match client.submit(&slow3) {
        Err(ClientError::Rejected { line, .. }) => {
            assert!(line.contains("draining"), "expected draining: {line}");
        }
        other => panic!("expected draining rejection, got {other:?}"),
    }

    // A silent connection is closed at the idle timeout, not held forever.
    // (Last: waiting out the 300ms idle window would close `client` too.)
    let idle = std::net::TcpStream::connect(&server.addr);
    if let Ok(idle) = idle {
        idle.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("set timeout");
        let mut idle = idle;
        let mut buf = [0u8; 16];
        // EOF or reset both prove the socket was shed; a hang would hit
        // the 10s read timeout below as WouldBlock/TimedOut.
        match idle.read(&mut buf) {
            Ok(n) => assert_eq!(n, 0, "idle socket should see EOF, got {n} bytes"),
            Err(e) => assert!(
                !matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ),
                "idle socket hung: {e}"
            ),
        }
    }
    let _done = server.child.wait();
    std::mem::forget(server); // child already reaped
}

#[test]
fn oversized_request_line_is_shed_with_a_typed_error() {
    let spool = scratch_spool("oversize");
    let server = Server::spawn(&spool, &["--workers", "1"]);
    let mut stream = std::net::TcpStream::connect(&server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    // 80 KiB of garbage with no newline: the server must answer with a
    // positioned oversize rejection, not buffer forever.
    let garbage = vec![b'x'; 80 * 1024];
    stream.write_all(&garbage).expect("write garbage");
    stream.write_all(b"\n").expect("terminate line");
    let mut reply = String::new();
    BufReader::new(&stream)
        .read_line(&mut reply)
        .expect("typed reply");
    assert!(
        reply.starts_with("ERR parse 1:"),
        "expected oversize rejection, got `{reply}`"
    );
}

#[test]
fn drain_settles_or_requeues_every_job_and_hints_retry() {
    let spool = scratch_spool("drain");
    // Pre-poison the spool: a queued record already at attempts 2 whose
    // checkpoint blob is garbage. Recovery's discard is the third strike
    // under the default max_attempts=3, so the server starts with one
    // quarantined job alongside the live ones.
    {
        let sp = lb_serve::spool::Spool::open(&spool).expect("open spool");
        let poisoned = lb_serve::job::JobRecord {
            id: "j90".into(),
            spec: heavy_spec("tenant9", JobFamily::Triangle, 64, 3),
            status: lb_serve::job::JobStatus::Queued,
            preemptions: 4,
            spent: 77,
            attempts: 2,
        };
        sp.save_record(&poisoned).expect("seed poisoned record");
        std::fs::write(sp.ckpt_path("j90"), b"definitely not an LBCK blob")
            .expect("seed garbage checkpoint");
    }
    let knobs = [
        "--slice-ticks",
        "16",
        "--workers",
        "2",
        "--retry-after-ms",
        "40",
    ];
    let mut server = Server::spawn(&spool, &knobs);
    let mut client = server.connect();

    // The poisoned job surfaces as quarantined-with-evidence: not lost,
    // not hung, not silently re-run.
    let q = client.status("j90").expect("status answers for quarantine");
    assert_eq!(q.state, "quarantined");
    assert!(
        q.evidence
            .expect("quarantine carries evidence")
            .contains("checkpoint discarded"),
        "evidence must name the discard"
    );

    // Two live in-flight jobs, then drain mid-flight.
    let specs = [
        heavy_spec("tenant0", JobFamily::Sat, 256, 5),
        heavy_spec("tenant1", JobFamily::Join, 256, 6),
    ];
    let ids: Vec<String> = specs
        .iter()
        .map(|spec| client.submit(spec).expect("submission acknowledged"))
        .collect();
    client.drain().expect("drain acknowledged");

    // New work is shed with the typed draining line AND a retry hint —
    // the successor process will recover the spool, so clients should
    // come back, not give up.
    match client.submit(&heavy_spec("tenant2", JobFamily::Csp, 64, 7)) {
        Err(ClientError::Rejected {
            line,
            retry_after_ms,
        }) => {
            assert!(line.contains("draining"), "expected draining: {line}");
            assert!(
                retry_after_ms.is_some(),
                "draining must carry retry-after-ms: {line}"
            );
        }
        other => panic!("expected draining rejection, got {other:?}"),
    }

    // While the server settles its in-flight slices, every acknowledged
    // job answers STATUS in a defined state — settled or requeued, never
    // limbo. (Bounded: the server waits for this connection to hang up
    // before it exits, so the poll must not be open-ended.)
    'alive: for _ in 0..20 {
        for id in &ids {
            match client.status(id) {
                Ok(s) => assert!(
                    matches!(
                        s.state.as_str(),
                        "queued" | "running" | "done" | "quarantined"
                    ),
                    "{id}: undefined drain-time state `{}`",
                    s.state
                ),
                // Server already shut this connection down mid-poll.
                Err(_exited) => break 'alive,
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // Hang up; the drained server must now exit on its own, promptly.
    drop(client);
    let exit_deadline = Instant::now() + Duration::from_secs(30);
    while server.child.try_wait().expect("try_wait").is_none() {
        assert!(
            Instant::now() < exit_deadline,
            "draining server never exited"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    std::mem::forget(server); // child already reaped

    // Restart on the same spool: the requeued jobs settle to the exact
    // reference verdict, the quarantined one stays terminal. Every job
    // ends verdict-or-quarantine — drain loses nothing in between.
    let mut server = Server::spawn(&spool, &knobs);
    let mut client = server.connect();
    let deadline = Instant::now() + Duration::from_secs(120);
    for (id, spec) in ids.iter().zip(&specs) {
        let status = poll_done(&mut client, id, deadline);
        let reference = bench::reference_verdict(spec).expect("reference settles");
        assert_eq!(
            status.verdict.expect("done carries a verdict"),
            reference,
            "{id}: verdict drifted across a drain + restart"
        );
    }
    let q = client.status("j90").expect("status answers after restart");
    assert_eq!(q.state, "quarantined", "quarantine must survive restarts");
    client.drain().expect("second drain acknowledged");
    let _done = server.child.wait();
    std::mem::forget(server); // child already reaped
}
