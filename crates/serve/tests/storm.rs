//! A small in-tree leg of the network chaos soak (tier-1). CI's
//! dedicated storm job runs 100+ seeds through `lb-chaos serve`; this
//! keeps a handful in `cargo test` so a regression in the survival layer
//! is caught before any workflow runs.
//!
//! The seed range deliberately covers both storm flavors: even seeds
//! SIGKILL the server mid-storm and restart it on the same spool, odd
//! seeds run straight through the socket/spool fault injection.

use lb_chaos::storm::{run_storms, StormConfig};
use std::path::PathBuf;

#[test]
fn seeded_storms_end_every_job_verdict_or_quarantine() {
    let cfg = StormConfig {
        base_seed: 11,
        storms: 3,
        ..StormConfig::new(PathBuf::from(env!("CARGO_BIN_EXE_lb-serve")))
    };
    let report = run_storms(&cfg);
    assert!(
        report.failures.is_empty(),
        "storm failures (each line carries its replay seed):\n{}",
        report.failures.join("\n")
    );
    assert_eq!(report.storms, 3);
    // 2 tenants × 2 jobs per storm; torn-ack retries may legitimately
    // admit extras, so this is a floor, not an exact count.
    assert!(report.jobs >= 12, "only {} jobs acknowledged", report.jobs);
    assert!(report.kills >= 1, "the even seed must kill/restart");
}
