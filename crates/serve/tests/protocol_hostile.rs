//! The hostile-bytes corpus for the wire protocol, pinned as a tier-1
//! test: every `*.req` fixture under `fixtures/protocol/` must parse
//! without panicking — files named `valid-*` to a complete [`Request`],
//! everything else to a positioned, typed [`ParseError`] whose rendering
//! carries the `line:col:` position a client can act on.

use lb_serve::protocol::{
    parse_command, parse_request_bytes, Reject, Request, MAX_LINE_BYTES, MAX_PAYLOAD_LINES,
};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/protocol")
}

#[test]
fn every_corpus_file_parses_to_a_typed_outcome() {
    let mut seen = 0usize;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("fixture corpus directory must exist")
        .map(|e| e.expect("readable fixture entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "req"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 25,
        "corpus shrank to {} files; hostile coverage regressed",
        entries.len()
    );
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        let bytes = std::fs::read(&path).expect("readable fixture");
        let outcome = parse_request_bytes(&bytes);
        seen += 1;
        if name.starts_with("valid-") {
            assert!(outcome.is_ok(), "{name}: expected Ok, got {outcome:?}");
            continue;
        }
        let err = match outcome {
            Err(e) => e,
            Ok(req) => panic!("{name}: hostile fixture parsed as {req:?}"),
        };
        // Positioned: line and column are both 1-based and present in the
        // rendering (the `ERR parse <line>:<col>: <msg>` client contract).
        assert!(err.line >= 1, "{name}: unpositioned line in {err}");
        assert!(err.col >= 1, "{name}: unpositioned col in {err}");
        let rendered = Reject::Parse(err).to_line();
        assert!(
            rendered.starts_with("ERR parse "),
            "{name}: rendered as `{rendered}`"
        );
    }
    assert!(seen >= 25, "corpus loop ran dry");
}

#[test]
fn positions_point_at_the_offending_token() {
    let read = |name: &str| std::fs::read(corpus_dir().join(name)).expect("fixture");

    // Command-line errors are on line 1 at the bad token's column.
    let e = parse_request_bytes(&read("submit-bad-family.req")).expect_err("bad family");
    assert_eq!((e.line, e.col), (1, 13), "family token column: {e}");

    // A payload error is reported in stream coordinates: payload line i is
    // stream line 1 + i.
    let e = parse_request_bytes(&read("submit-bad-dimacs.req")).expect_err("bad literal");
    assert_eq!(e.line, 3, "second payload line is stream line 3: {e}");

    // Truncation is an EOF-positioned count mismatch.
    let e = parse_request_bytes(&read("submit-truncated-payload.req")).expect_err("truncated");
    assert_eq!(e.line, 4, "truncation points past the last line: {e}");
    assert!(
        e.to_string().contains("declared 3"),
        "count mismatch names the declared count: {e}"
    );
}

#[test]
fn oversized_lines_are_rejected_at_the_cap() {
    let mut raw = b"SUBMIT acme sat 1 ".to_vec();
    raw.extend(std::iter::repeat_n(b'x', MAX_LINE_BYTES + 10));
    let e = parse_command(&raw).expect_err("oversized command line");
    assert_eq!((e.line, e.col), (1, MAX_LINE_BYTES + 1), "cap column: {e}");

    let declared_too_many = format!("SUBMIT acme sat {}\n", MAX_PAYLOAD_LINES + 1);
    let e = parse_request_bytes(declared_too_many.as_bytes()).expect_err("payload cap");
    assert!(e.to_string().contains("payload line count"), "{e}");
}

#[test]
fn valid_submissions_round_trip_through_the_parser() {
    let bytes = std::fs::read(corpus_dir().join("valid-submit-clique.req")).expect("fixture");
    match parse_request_bytes(&bytes).expect("valid fixture parses") {
        Request::Submit(spec) => {
            assert_eq!(spec.tenant, "acme");
            assert_eq!(spec.k, 3);
            assert_eq!(spec.budget, Some(500));
            spec.instance().expect("validated payload re-parses");
        }
        other => panic!("expected Submit, got {other:?}"),
    }
}
