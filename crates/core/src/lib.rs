//! `lowerbounds` — a working reproduction of Dániel Marx,
//! *"Modern Lower Bound Techniques in Database Theory and Constraint
//! Satisfaction"* (PODS 2021).
//!
//! The paper is a tutorial: its "results" are theorems pairing an algorithm
//! (an upper bound) with a conditional lower bound showing the algorithm is
//! essentially optimal under a complexity hypothesis. This workspace makes
//! all of that *executable*:
//!
//! * every algorithm the paper discusses is implemented
//!   ([`join`]: worst-case optimal joins; [`csp`]: Freuder's treewidth DP;
//!   [`graphalg`]: clique via matrix multiplication, AYZ triangles,
//!   FPT vertex cover, dominating set, edit distance, orthogonal vectors;
//!   [`sat`]: DPLL, 2SAT, Schaefer's dichotomy);
//! * every reduction the paper uses is an instance-level transformer with
//!   solution mapping ([`reductions`]);
//! * the hypotheses themselves form a typed registry with their implication
//!   structure ([`hypotheses`]), and every theorem of the paper is a typed
//!   [`claims::LowerBoundClaim`] connecting a hypothesis to the running
//!   time it rules out and the experiment that demonstrates the matching
//!   upper bound;
//! * [`experiments`] provides the shared measurement harness (timing,
//!   log–log exponent fitting, table printing) used by the `lb-bench`
//!   binaries that regenerate every experiment in `EXPERIMENTS.md`;
//! * every solver entry point runs under the [`engine`] layer: it accepts a
//!   tick/deadline [`engine::Budget`], returns a three-valued
//!   [`engine::Outcome`] (`Sat` / `Unsat` / `Exhausted`), and reports
//!   machine-independent [`engine::RunStats`] operation counters.
//!
//! # Quick start
//!
//! ```
//! use lowerbounds::engine::Budget;
//! use lowerbounds::join::{JoinQuery, agm, wcoj};
//!
//! // The paper's running example: the triangle query, ρ* = 3/2.
//! let q = JoinQuery::triangle();
//! assert_eq!(agm::rho_star(&q).unwrap().to_string(), "3/2");
//!
//! // Build the AGM worst-case database (Theorem 3.2) and join it
//! // worst-case optimally (Theorem 3.3).
//! let (db, expected) = agm::worst_case_database(&q, 100).unwrap();
//! let (outcome, stats) = wcoj::join(&q, &db, None, &Budget::unlimited()).unwrap();
//! let answer = outcome.unwrap_sat();
//! assert_eq!(answer.len() as u128, expected); // = 1000 = 100^{3/2}
//! assert!(stats.tuples >= 1000); // machine-independent work counters
//! ```

#![forbid(unsafe_code)]

pub mod claims;
pub mod experiments;
pub mod hypotheses;

/// CSP instances and solvers (re-export of `lb-csp`).
pub use lb_csp as csp;
/// Budgets, outcomes, and run telemetry (re-export of `lb-engine`).
pub use lb_engine as engine;
/// Graphs, hypergraphs, treewidth (re-export of `lb-graph`).
pub use lb_graph as graph;
/// Graph algorithms under study (re-export of `lb-graphalg`).
pub use lb_graphalg as graphalg;
/// Join queries, AGM bound, worst-case optimal joins (re-export of `lb-join`).
pub use lb_join as join;
/// Exact LP: fractional covers (re-export of `lb-lp`).
pub use lb_lp as lp;
/// Executable reductions (re-export of `lb-reductions`).
pub use lb_reductions as reductions;
/// SAT toolkit (re-export of `lb-sat`).
pub use lb_sat as sat;
/// Relational structures, homomorphisms, cores (re-export of `lb-structure`).
pub use lb_structure as structure;

pub use claims::{all_claims, LowerBoundClaim};
pub use hypotheses::Hypothesis;
