//! `lbtool` — command-line access to the workspace's solvers.
//!
//! ```text
//! lbtool sat <file.cnf>            solve a DIMACS CNF with DPLL
//! lbtool 2sat <file.cnf>           solve a width-≤2 DIMACS CNF in linear time
//! lbtool count <file.cnf>          count the models of a DIMACS CNF
//! lbtool treewidth <file.graph>    treewidth bounds (exact when n ≤ 22)
//! lbtool rho-star "<query>"        ρ* and the AGM bound of a join query
//! lbtool claims [hypothesis]       the paper's lower-bound claims
//! ```
//!
//! Solver commands accept `--budget <ticks>`: the run stops with exit code 3
//! and prints `UNKNOWN` once the solver has spent that many counted
//! operations. Without the flag the solver runs to completion.
//!
//! Graph files: first line `n`, then one `u v` edge per line (0-based).
//! Query syntax: whitespace-separated atoms like `R(a,b) S(a,c) T(b,c)`.

use lowerbounds::engine::{Budget, Outcome, RunStats};
use lowerbounds::graph::{treewidth, Graph};
use lowerbounds::hypotheses::Hypothesis;
use lowerbounds::join::{agm, Atom, JoinQuery};
use lowerbounds::sat::{solve_2sat, CnfFormula, DpllSolver};
use std::process::ExitCode;

/// Distinguishes "wrong input" from "budget ran out" for the process exit
/// code.
enum CmdError {
    Usage(String),
    Exhausted(String),
}

impl From<String> for CmdError {
    fn from(msg: String) -> CmdError {
        CmdError::Usage(msg)
    }
}

impl From<&str> for CmdError {
    fn from(msg: &str) -> CmdError {
        CmdError::Usage(msg.to_string())
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let budget = match extract_budget(&mut args) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("sat") => cmd_sat(&args[1..], false, &budget),
        Some("2sat") => cmd_sat(&args[1..], true, &budget),
        Some("count") => cmd_count(&args[1..], &budget),
        Some("treewidth") => cmd_treewidth(&args[1..]),
        Some("rho-star") => cmd_rho_star(&args[1..]),
        Some("claims") => cmd_claims(&args[1..]),
        _ => {
            eprintln!(
                "usage: lbtool <sat|2sat|count|treewidth|rho-star|claims> [--budget <ticks>] ..."
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CmdError::Usage(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
        Err(CmdError::Exhausted(reason)) => {
            println!("UNKNOWN");
            eprintln!("{reason}");
            ExitCode::from(3)
        }
    }
}

/// Removes `--budget <ticks>` from the argument list and builds the
/// corresponding [`Budget`]; unlimited when the flag is absent.
fn extract_budget(args: &mut Vec<String>) -> Result<Budget, String> {
    let Some(pos) = args.iter().position(|a| a == "--budget") else {
        return Ok(Budget::unlimited());
    };
    if pos + 1 >= args.len() {
        return Err("--budget needs a tick count".into());
    }
    let ticks: u64 = args[pos + 1]
        .parse()
        .map_err(|e| format!("bad --budget value `{}`: {e}", args[pos + 1]))?;
    args.drain(pos..=pos + 1);
    Ok(Budget::ticks(ticks))
}

fn report_stats(stats: &RunStats) {
    eprintln!(
        "nodes: {}, propagations: {}, backtracks: {}",
        stats.nodes, stats.propagations, stats.backtracks
    );
}

fn cmd_sat(args: &[String], two: bool, budget: &Budget) -> Result<(), CmdError> {
    let path = args.first().ok_or("missing CNF file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let f = CnfFormula::from_dimacs(&text)?;
    let (outcome, stats) = if two {
        if !f.is_ksat(2) {
            return Err("formula has clauses wider than 2; use `lbtool sat`".into());
        }
        solve_2sat(&f, budget)
    } else {
        DpllSolver::default().solve(&f, budget)
    };
    report_stats(&stats);
    match outcome {
        Outcome::Sat(m) => {
            let lits: Vec<String> = m
                .iter()
                .enumerate()
                .map(|(v, &b)| format!("{}{}", if b { "" } else { "-" }, v + 1))
                .collect();
            println!("SATISFIABLE\nv {} 0", lits.join(" "));
        }
        Outcome::Unsat => println!("UNSATISFIABLE"),
        Outcome::Exhausted(r) => return Err(CmdError::Exhausted(r.to_string())),
    }
    Ok(())
}

fn cmd_count(args: &[String], budget: &Budget) -> Result<(), CmdError> {
    let path = args.first().ok_or("missing CNF file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let f = CnfFormula::from_dimacs(&text)?;
    let (outcome, stats) = lowerbounds::sat::count_models(&f, budget);
    report_stats(&stats);
    match outcome {
        Outcome::Sat(count) => println!("{count}"),
        // lb-lint: allow(no-panic) -- invariant: model counting completes with Sat or exhausts
        Outcome::Unsat => unreachable!("count_models has no Unsat outcome"),
        Outcome::Exhausted(r) => return Err(CmdError::Exhausted(r.to_string())),
    }
    Ok(())
}

fn parse_graph(text: &str) -> Result<Graph, String> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let n: usize = lines
        .next()
        .ok_or("empty graph file")?
        .parse()
        .map_err(|e| format!("bad vertex count: {e}"))?;
    let mut edges = Vec::new();
    for line in lines {
        let mut it = line.split_whitespace();
        let u: usize = it
            .next()
            .ok_or("bad edge line")?
            .parse()
            .map_err(|e| format!("bad edge: {e}"))?;
        let v: usize = it
            .next()
            .ok_or("bad edge line")?
            .parse()
            .map_err(|e| format!("bad edge: {e}"))?;
        edges.push((u, v));
    }
    if edges.iter().any(|&(u, v)| u >= n || v >= n) {
        return Err("edge endpoint out of range".into());
    }
    Ok(Graph::from_edges(n, &edges))
}

fn cmd_treewidth(args: &[String]) -> Result<(), CmdError> {
    let path = args.first().ok_or("missing graph file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let g = parse_graph(&text)?;
    let lo = treewidth::treewidth_lower_bound(&g);
    let (hi, td) = treewidth::treewidth_upper_bound(&g);
    println!("n = {}, m = {}", g.num_vertices(), g.num_edges());
    println!("MMD lower bound:        {lo}");
    println!("heuristic upper bound:  {hi} ({} bags)", td.num_bags());
    if g.num_vertices() <= treewidth::exact::MAX_EXACT_N {
        let tw = treewidth::treewidth_exact(&g);
        println!("exact treewidth:        {tw}");
    } else {
        println!(
            "exact treewidth:        (skipped, n > {})",
            treewidth::exact::MAX_EXACT_N
        );
    }
    Ok(())
}

/// Parses `R(a,b) S(a,c) T(b,c)` into a [`JoinQuery`].
fn parse_query(spec: &str) -> Result<JoinQuery, String> {
    let mut atoms = Vec::new();
    for token in spec.split_whitespace() {
        let open = token
            .find('(')
            .ok_or_else(|| format!("atom `{token}` missing ("))?;
        if !token.ends_with(')') {
            return Err(format!("atom `{token}` missing )"));
        }
        let name = &token[..open];
        let inner = &token[open + 1..token.len() - 1];
        if name.is_empty() || inner.is_empty() {
            return Err(format!("malformed atom `{token}`"));
        }
        let attrs: Vec<&str> = inner.split(',').map(str::trim).collect();
        atoms.push(Atom::new(name, &attrs));
    }
    if atoms.is_empty() {
        return Err("empty query".into());
    }
    Ok(JoinQuery::new(atoms))
}

fn cmd_rho_star(args: &[String]) -> Result<(), CmdError> {
    let spec = args.first().ok_or("missing query string")?;
    let q = parse_query(spec)?;
    let rho = agm::rho_star(&q).map_err(|e| e.to_string())?;
    println!("query:   {spec}");
    println!("ρ*:      {rho} (= {:.4})", rho.to_f64());
    for n in [1000u64, 1_000_000] {
        println!(
            "AGM bound at N = {n}: {:.0} tuples",
            agm::agm_bound(&q, n).map_err(|e| e.to_string())?
        );
    }
    Ok(())
}

fn cmd_claims(args: &[String]) -> Result<(), CmdError> {
    let claims = match args.first().map(String::as_str) {
        None => lowerbounds::claims::all_claims(),
        Some(name) => {
            let h = Hypothesis::ALL
                .into_iter()
                .find(|h| {
                    h.name().eq_ignore_ascii_case(name)
                        || format!("{h:?}").eq_ignore_ascii_case(name)
                })
                .ok_or_else(|| {
                    format!(
                        "unknown hypothesis `{name}`; known: {:?}",
                        Hypothesis::ALL.map(|h| format!("{h:?}"))
                    )
                })?;
            lowerbounds::claims::claims_under(h)
        }
    };
    for c in claims {
        let hyp = c
            .hypothesis
            .map_or("unconditional".to_string(), |h| h.name().to_string());
        println!("{:<44} [{hyp}]", c.id);
        println!("    {}", c.statement);
        println!("    rules out: {} | witness: {}", c.rules_out, c.witness);
    }
    Ok(())
}
