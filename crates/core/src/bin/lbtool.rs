//! `lbtool` — command-line access to the workspace's solvers.
//!
//! ```text
//! lbtool sat <file.cnf>            solve a DIMACS CNF with DPLL
//! lbtool 2sat <file.cnf>           solve a width-≤2 DIMACS CNF in linear time
//! lbtool treewidth <file.graph>    treewidth bounds (exact when n ≤ 22)
//! lbtool rho-star "<query>"        ρ* and the AGM bound of a join query
//! lbtool claims [hypothesis]       the paper's lower-bound claims
//! ```
//!
//! Graph files: first line `n`, then one `u v` edge per line (0-based).
//! Query syntax: whitespace-separated atoms like `R(a,b) S(a,c) T(b,c)`.

use lowerbounds::graph::{treewidth, Graph};
use lowerbounds::hypotheses::Hypothesis;
use lowerbounds::join::{agm, Atom, JoinQuery};
use lowerbounds::sat::{solve_2sat, CnfFormula, DpllSolver};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("sat") => cmd_sat(&args[1..], false),
        Some("2sat") => cmd_sat(&args[1..], true),
        Some("count") => cmd_count(&args[1..]),
        Some("treewidth") => cmd_treewidth(&args[1..]),
        Some("rho-star") => cmd_rho_star(&args[1..]),
        Some("claims") => cmd_claims(&args[1..]),
        _ => {
            eprintln!("usage: lbtool <sat|2sat|count|treewidth|rho-star|claims> ...");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_sat(args: &[String], two: bool) -> Result<(), String> {
    let path = args.first().ok_or("missing CNF file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let f = CnfFormula::from_dimacs(&text)?;
    let model = if two {
        if !f.is_ksat(2) {
            return Err("formula has clauses wider than 2; use `lbtool sat`".into());
        }
        solve_2sat(&f)
    } else {
        let (model, stats) = DpllSolver::default().solve(&f);
        eprintln!(
            "decisions: {}, propagations: {}, conflicts: {}",
            stats.decisions, stats.propagations, stats.conflicts
        );
        model
    };
    match model {
        Some(m) => {
            let lits: Vec<String> = m
                .iter()
                .enumerate()
                .map(|(v, &b)| format!("{}{}", if b { "" } else { "-" }, v + 1))
                .collect();
            println!("SATISFIABLE\nv {} 0", lits.join(" "));
        }
        None => println!("UNSATISFIABLE"),
    }
    Ok(())
}

fn cmd_count(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing CNF file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let f = CnfFormula::from_dimacs(&text)?;
    let count = lowerbounds::sat::count_models(&f);
    println!("{count}");
    Ok(())
}

fn parse_graph(text: &str) -> Result<Graph, String> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let n: usize = lines
        .next()
        .ok_or("empty graph file")?
        .parse()
        .map_err(|e| format!("bad vertex count: {e}"))?;
    let mut edges = Vec::new();
    for line in lines {
        let mut it = line.split_whitespace();
        let u: usize = it
            .next()
            .ok_or("bad edge line")?
            .parse()
            .map_err(|e| format!("bad edge: {e}"))?;
        let v: usize = it
            .next()
            .ok_or("bad edge line")?
            .parse()
            .map_err(|e| format!("bad edge: {e}"))?;
        edges.push((u, v));
    }
    if edges.iter().any(|&(u, v)| u >= n || v >= n) {
        return Err("edge endpoint out of range".into());
    }
    Ok(Graph::from_edges(n, &edges))
}

fn cmd_treewidth(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing graph file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let g = parse_graph(&text)?;
    let lo = treewidth::treewidth_lower_bound(&g);
    let (hi, td) = treewidth::treewidth_upper_bound(&g);
    println!("n = {}, m = {}", g.num_vertices(), g.num_edges());
    println!("MMD lower bound:        {lo}");
    println!("heuristic upper bound:  {hi} ({} bags)", td.num_bags());
    if g.num_vertices() <= treewidth::exact::MAX_EXACT_N {
        let tw = treewidth::treewidth_exact(&g);
        println!("exact treewidth:        {tw}");
    } else {
        println!(
            "exact treewidth:        (skipped, n > {})",
            treewidth::exact::MAX_EXACT_N
        );
    }
    Ok(())
}

/// Parses `R(a,b) S(a,c) T(b,c)` into a [`JoinQuery`].
fn parse_query(spec: &str) -> Result<JoinQuery, String> {
    let mut atoms = Vec::new();
    for token in spec.split_whitespace() {
        let open = token
            .find('(')
            .ok_or_else(|| format!("atom `{token}` missing ("))?;
        if !token.ends_with(')') {
            return Err(format!("atom `{token}` missing )"));
        }
        let name = &token[..open];
        let inner = &token[open + 1..token.len() - 1];
        if name.is_empty() || inner.is_empty() {
            return Err(format!("malformed atom `{token}`"));
        }
        let attrs: Vec<&str> = inner.split(',').map(str::trim).collect();
        atoms.push(Atom::new(name, &attrs));
    }
    if atoms.is_empty() {
        return Err("empty query".into());
    }
    Ok(JoinQuery::new(atoms))
}

fn cmd_rho_star(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("missing query string")?;
    let q = parse_query(spec)?;
    let rho = agm::rho_star(&q).map_err(|e| e.to_string())?;
    println!("query:   {spec}");
    println!("ρ*:      {rho} (= {:.4})", rho.to_f64());
    for n in [1000u64, 1_000_000] {
        println!(
            "AGM bound at N = {n}: {:.0} tuples",
            agm::agm_bound(&q, n).map_err(|e| e.to_string())?
        );
    }
    Ok(())
}

fn cmd_claims(args: &[String]) -> Result<(), String> {
    let claims = match args.first().map(String::as_str) {
        None => lowerbounds::claims::all_claims(),
        Some(name) => {
            let h = Hypothesis::ALL
                .into_iter()
                .find(|h| {
                    h.name().eq_ignore_ascii_case(name)
                        || format!("{h:?}").eq_ignore_ascii_case(name)
                })
                .ok_or_else(|| {
                    format!(
                        "unknown hypothesis `{name}`; known: {:?}",
                        Hypothesis::ALL.map(|h| format!("{h:?}"))
                    )
                })?;
            lowerbounds::claims::claims_under(h)
        }
    };
    for c in claims {
        let hyp = c
            .hypothesis
            .map_or("unconditional".to_string(), |h| h.name().to_string());
        println!("{:<44} [{hyp}]", c.id);
        println!("    {}", c.statement);
        println!("    rules out: {} | witness: {}", c.rules_out, c.witness);
    }
    Ok(())
}
