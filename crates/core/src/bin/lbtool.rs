//! `lbtool` — command-line access to the workspace's solvers.
//!
//! ```text
//! lbtool sat <file.cnf>            solve a DIMACS CNF with DPLL
//! lbtool 2sat <file.cnf>           solve a width-≤2 DIMACS CNF in linear time
//! lbtool count <file.cnf>          count the models of a DIMACS CNF
//! lbtool csp <file.csp>            solve a CSP instance by backtracking
//! lbtool treewidth <file.graph>    treewidth bounds (exact when n ≤ 22)
//! lbtool rho-star "<query>"        ρ* and the AGM bound of a join query
//! lbtool claims [hypothesis]       the paper's lower-bound claims
//! ```
//!
//! Solver commands accept `--budget <ticks>`: the run stops with exit code 3
//! and prints `UNKNOWN` once the solver has spent that many counted
//! operations. Without the flag the solver runs to completion.
//!
//! Graph files: first line `n`, then one `u v` edge per line (0-based).
//! Query syntax: whitespace-separated atoms like `R(a,b) S(a,c) T(b,c)`.
//! CSP files: header `csp <num_vars> <domain_size>`, then one constraint
//! per line, `con <v1> <v2> ... : <t>,<t> <t>,<t> ...` (0-based variables,
//! tuples comma-separated; `#` starts a comment).
//!
//! Malformed input never panics: every parser reports a typed
//! [`ParseError`] printed as `file:line:col: message`, exit code 1.

use lowerbounds::engine::{Budget, Outcome, ParseError, ParseErrorKind, RunStats};
use lowerbounds::graph::{treewidth, Graph};
use lowerbounds::hypotheses::Hypothesis;
use lowerbounds::join::{agm, Atom, JoinQuery};
use lowerbounds::sat::{solve_2sat, CnfFormula, DpllSolver};
use std::process::ExitCode;
use std::sync::Arc;

/// Distinguishes "wrong input" from "budget ran out" for the process exit
/// code. Parse failures keep their source position so every diagnostic is
/// printed in the one conventional `file:line:col: message` shape.
enum CmdError {
    Usage(String),
    Parse { path: String, err: ParseError },
    Exhausted(String),
}

impl From<String> for CmdError {
    fn from(msg: String) -> CmdError {
        CmdError::Usage(msg)
    }
}

impl From<&str> for CmdError {
    fn from(msg: &str) -> CmdError {
        CmdError::Usage(msg.to_string())
    }
}

/// Attaches a file path to a [`ParseError`] for diagnostics.
fn in_file(path: &str) -> impl Fn(ParseError) -> CmdError + '_ {
    move |err| CmdError::Parse {
        path: path.to_string(),
        err,
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let budget = match extract_budget(&mut args) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("sat") => cmd_sat(&args[1..], false, &budget),
        Some("2sat") => cmd_sat(&args[1..], true, &budget),
        Some("count") => cmd_count(&args[1..], &budget),
        Some("csp") => cmd_csp(&args[1..], &budget),
        Some("treewidth") => cmd_treewidth(&args[1..]),
        Some("rho-star") => cmd_rho_star(&args[1..]),
        Some("claims") => cmd_claims(&args[1..]),
        _ => {
            eprintln!(
                "usage: lbtool <sat|2sat|count|csp|treewidth|rho-star|claims> [--budget <ticks>] ..."
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CmdError::Usage(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
        Err(CmdError::Parse { path, err }) => {
            eprintln!("{path}:{err}");
            ExitCode::FAILURE
        }
        Err(CmdError::Exhausted(reason)) => {
            println!("UNKNOWN");
            eprintln!("{reason}");
            ExitCode::from(3)
        }
    }
}

/// Removes `--budget <ticks>` from the argument list and builds the
/// corresponding [`Budget`]; unlimited when the flag is absent.
fn extract_budget(args: &mut Vec<String>) -> Result<Budget, String> {
    let Some(pos) = args.iter().position(|a| a == "--budget") else {
        return Ok(Budget::unlimited());
    };
    if pos + 1 >= args.len() {
        return Err("--budget needs a tick count".into());
    }
    let ticks: u64 = args[pos + 1]
        .parse()
        .map_err(|e| format!("bad --budget value `{}`: {e}", args[pos + 1]))?;
    args.drain(pos..=pos + 1);
    Ok(Budget::ticks(ticks))
}

fn report_stats(stats: &RunStats) {
    eprintln!(
        "nodes: {}, propagations: {}, backtracks: {}",
        stats.nodes, stats.propagations, stats.backtracks
    );
}

fn cmd_sat(args: &[String], two: bool, budget: &Budget) -> Result<(), CmdError> {
    let path = args.first().ok_or("missing CNF file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let f = CnfFormula::from_dimacs(&text).map_err(in_file(path))?;
    let (outcome, stats) = if two {
        if !f.is_ksat(2) {
            return Err("formula has clauses wider than 2; use `lbtool sat`".into());
        }
        solve_2sat(&f, budget)
    } else {
        DpllSolver::default().solve(&f, budget)
    };
    report_stats(&stats);
    match outcome {
        Outcome::Sat(m) => {
            let lits: Vec<String> = m
                .iter()
                .enumerate()
                .map(|(v, &b)| format!("{}{}", if b { "" } else { "-" }, v + 1))
                .collect();
            println!("SATISFIABLE\nv {} 0", lits.join(" "));
        }
        Outcome::Unsat => println!("UNSATISFIABLE"),
        Outcome::Exhausted(r) => return Err(CmdError::Exhausted(r.to_string())),
    }
    Ok(())
}

fn cmd_count(args: &[String], budget: &Budget) -> Result<(), CmdError> {
    let path = args.first().ok_or("missing CNF file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let f = CnfFormula::from_dimacs(&text).map_err(in_file(path))?;
    let (outcome, stats) = lowerbounds::sat::count_models(&f, budget);
    report_stats(&stats);
    match outcome {
        Outcome::Sat(count) => println!("{count}"),
        // lb-lint: allow(no-panic) -- invariant: model counting completes with Sat or exhausts
        Outcome::Unsat => unreachable!("count_models has no Unsat outcome"),
        Outcome::Exhausted(r) => return Err(CmdError::Exhausted(r.to_string())),
    }
    Ok(())
}

/// Shared tokenizer from the engine's validated-ingestion layer.
use lowerbounds::engine::parse::tokens;

/// Parses the `lbtool csp` file format:
///
/// ```text
/// # comment
/// csp <num_vars> <domain_size>
/// con <v1> <v2> ... : <t>,<t> <t>,<t> ...
/// ```
///
/// Every structural mistake — dangling scope variables, wrong-arity or
/// out-of-domain tuples, a missing `:` — is a positioned [`ParseError`];
/// the constructed instance always satisfies `CspInstance`'s invariants,
/// so its (panicking) constructors are never fed bad data.
fn parse_csp(text: &str) -> Result<lowerbounds::csp::CspInstance, ParseError> {
    use lowerbounds::csp::{Constraint, CspInstance, Relation, Value};
    let mut inst: Option<CspInstance> = None;
    let mut last_line = 0;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        last_line = lineno;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<(usize, &str)> = tokens(raw).collect();
        let (kw_col, kw) = toks[0];
        match kw {
            "csp" => {
                if inst.is_some() {
                    return Err(ParseError::new(
                        lineno,
                        kw_col,
                        ParseErrorKind::Duplicate {
                            what: "`csp` header".to_string(),
                        },
                    ));
                }
                if toks.len() != 3 {
                    return Err(ParseError::new(
                        lineno,
                        kw_col,
                        ParseErrorKind::Malformed {
                            what: "header (expected `csp <num_vars> <domain_size>`)".to_string(),
                        },
                    ));
                }
                let num_vars: usize = parse_num(lineno, toks[1].0, toks[1].1, "variable count")?;
                let domain: usize = parse_num(lineno, toks[2].0, toks[2].1, "domain size")?;
                if domain > Value::MAX as usize {
                    return Err(ParseError::new(
                        lineno,
                        toks[2].0,
                        ParseErrorKind::OutOfRange {
                            what: "domain size".to_string(),
                            token: toks[2].1.to_string(),
                            limit: format!("at most {}", Value::MAX),
                        },
                    ));
                }
                inst = Some(CspInstance::new(num_vars, domain));
            }
            "con" => {
                let Some(inst) = inst.as_mut() else {
                    return Err(ParseError::new(
                        lineno,
                        kw_col,
                        ParseErrorKind::Missing {
                            what: "`csp` header before constraints".to_string(),
                        },
                    ));
                };
                let Some(sep) = toks.iter().position(|&(_, t)| t == ":") else {
                    return Err(ParseError::new(
                        lineno,
                        kw_col,
                        ParseErrorKind::Missing {
                            what: "`:` between scope and tuples".to_string(),
                        },
                    ));
                };
                let scope_toks = &toks[1..sep];
                if scope_toks.is_empty() {
                    return Err(ParseError::new(
                        lineno,
                        kw_col,
                        ParseErrorKind::Missing {
                            what: "constraint scope variables".to_string(),
                        },
                    ));
                }
                let mut scope = Vec::with_capacity(scope_toks.len());
                for &(col, tok) in scope_toks {
                    let v: usize = parse_num(lineno, col, tok, "scope variable")?;
                    if v >= inst.num_vars {
                        return Err(ParseError::new(
                            lineno,
                            col,
                            ParseErrorKind::OutOfRange {
                                what: "scope variable".to_string(),
                                token: tok.to_string(),
                                limit: format!("{} variables declared", inst.num_vars),
                            },
                        ));
                    }
                    scope.push(v);
                }
                let mut tuples = Vec::new();
                for &(col, tok) in &toks[sep + 1..] {
                    let mut tuple = Vec::with_capacity(scope.len());
                    for part in tok.split(',') {
                        let v: Value = parse_num(lineno, col, part, "tuple value")?;
                        if (v as usize) >= inst.domain_size {
                            return Err(ParseError::new(
                                lineno,
                                col,
                                ParseErrorKind::OutOfRange {
                                    what: "tuple value".to_string(),
                                    token: part.to_string(),
                                    limit: format!("domain size {}", inst.domain_size),
                                },
                            ));
                        }
                        tuple.push(v);
                    }
                    if tuple.len() != scope.len() {
                        return Err(ParseError::new(
                            lineno,
                            col,
                            ParseErrorKind::CountMismatch {
                                what: "tuple values".to_string(),
                                declared: scope.len(),
                                found: tuple.len(),
                            },
                        ));
                    }
                    tuples.push(tuple);
                }
                let arity = scope.len();
                inst.add_constraint(Constraint::new(
                    scope,
                    Arc::new(Relation::new(arity, tuples)),
                ));
            }
            _ => {
                return Err(ParseError::new(
                    lineno,
                    kw_col,
                    ParseErrorKind::Malformed {
                        what: format!("directive `{kw}` (expected `csp` or `con`)"),
                    },
                ));
            }
        }
    }
    inst.ok_or_else(|| {
        ParseError::at_eof(
            last_line + 1,
            ParseErrorKind::Missing {
                what: "`csp` header".to_string(),
            },
        )
    })
}

fn cmd_csp(args: &[String], budget: &Budget) -> Result<(), CmdError> {
    let path = args.first().ok_or("missing CSP file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let inst = parse_csp(&text).map_err(in_file(path))?;
    let (outcome, stats) = lowerbounds::csp::solver::solve(&inst, budget);
    report_stats(&stats);
    match outcome {
        Outcome::Sat(a) => {
            let vals: Vec<String> = a.iter().map(|v| v.to_string()).collect();
            println!("SATISFIABLE\nv {}", vals.join(" "));
        }
        Outcome::Unsat => println!("UNSATISFIABLE"),
        Outcome::Exhausted(r) => return Err(CmdError::Exhausted(r.to_string())),
    }
    Ok(())
}

/// A numeric token, or a positioned [`ParseError`] naming what it was.
fn parse_num<T: std::str::FromStr>(
    line: usize,
    col: usize,
    tok: &str,
    what: &str,
) -> Result<T, ParseError> {
    tok.parse().map_err(|_| {
        ParseError::new(
            line,
            col,
            ParseErrorKind::InvalidNumber {
                what: what.to_string(),
                token: tok.to_string(),
            },
        )
    })
}

fn parse_graph(text: &str) -> Result<Graph, ParseError> {
    let mut n: Option<usize> = None;
    let mut edges = Vec::new();
    let mut last_line = 0;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        last_line = lineno;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<(usize, &str)> = tokens(raw).collect();
        let Some(nv) = n else {
            let (col, tok) = toks[0];
            if toks.len() != 1 {
                return Err(ParseError::new(
                    lineno,
                    toks[1].0,
                    ParseErrorKind::TrailingGarbage {
                        token: toks[1].1.to_string(),
                    },
                ));
            }
            n = Some(parse_num(lineno, col, tok, "vertex count")?);
            continue;
        };
        if toks.len() != 2 {
            let (col, _) = toks.get(2).copied().unwrap_or(toks[0]);
            return Err(ParseError::new(
                lineno,
                col,
                ParseErrorKind::Malformed {
                    what: "edge line (expected `u v`)".to_string(),
                },
            ));
        }
        let endpoint = |&(col, tok): &(usize, &str)| -> Result<usize, ParseError> {
            let v: usize = parse_num(lineno, col, tok, "edge endpoint")?;
            if v >= nv {
                return Err(ParseError::new(
                    lineno,
                    col,
                    ParseErrorKind::OutOfRange {
                        what: "edge endpoint".to_string(),
                        token: tok.to_string(),
                        limit: format!("{nv} vertices declared"),
                    },
                ));
            }
            Ok(v)
        };
        edges.push((endpoint(&toks[0])?, endpoint(&toks[1])?));
    }
    let Some(n) = n else {
        return Err(ParseError::at_eof(
            last_line + 1,
            ParseErrorKind::Missing {
                what: "vertex count line".to_string(),
            },
        ));
    };
    Ok(Graph::from_edges(n, &edges))
}

fn cmd_treewidth(args: &[String]) -> Result<(), CmdError> {
    let path = args.first().ok_or("missing graph file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let g = parse_graph(&text).map_err(in_file(path))?;
    let lo = treewidth::treewidth_lower_bound(&g);
    let (hi, td) = treewidth::treewidth_upper_bound(&g);
    println!("n = {}, m = {}", g.num_vertices(), g.num_edges());
    println!("MMD lower bound:        {lo}");
    println!("heuristic upper bound:  {hi} ({} bags)", td.num_bags());
    if g.num_vertices() <= treewidth::exact::MAX_EXACT_N {
        let tw = treewidth::treewidth_exact(&g);
        println!("exact treewidth:        {tw}");
    } else {
        println!(
            "exact treewidth:        (skipped, n > {})",
            treewidth::exact::MAX_EXACT_N
        );
    }
    Ok(())
}

/// Parses `R(a,b) S(a,c) T(b,c)` into a [`JoinQuery`]. The "line" of a
/// reported error is always 1 (the query is a single command-line string);
/// the column points into that string.
fn parse_query(spec: &str) -> Result<JoinQuery, ParseError> {
    let mut atoms = Vec::new();
    for (col, token) in tokens(spec) {
        let malformed = |why: &str| {
            ParseError::new(
                1,
                col,
                ParseErrorKind::Malformed {
                    what: format!("atom `{token}` ({why})"),
                },
            )
        };
        let open = token.find('(').ok_or_else(|| malformed("missing `(`"))?;
        if !token.ends_with(')') {
            return Err(malformed("missing `)`"));
        }
        let name = &token[..open];
        let inner = &token[open + 1..token.len() - 1];
        if name.is_empty() {
            return Err(malformed("missing relation name"));
        }
        let attrs: Vec<&str> = inner.split(',').map(str::trim).collect();
        if attrs.iter().any(|a| a.is_empty()) {
            return Err(malformed("empty attribute"));
        }
        atoms.push(Atom::new(name, &attrs));
    }
    if atoms.is_empty() {
        return Err(ParseError::at_eof(
            1,
            ParseErrorKind::Missing {
                what: "query atoms".to_string(),
            },
        ));
    }
    Ok(JoinQuery::new(atoms))
}

fn cmd_rho_star(args: &[String]) -> Result<(), CmdError> {
    let spec = args.first().ok_or("missing query string")?;
    let q = parse_query(spec).map_err(in_file("<query>"))?;
    let rho = agm::rho_star(&q).map_err(|e| e.to_string())?;
    println!("query:   {spec}");
    println!("ρ*:      {rho} (= {:.4})", rho.to_f64());
    for n in [1000u64, 1_000_000] {
        println!(
            "AGM bound at N = {n}: {:.0} tuples",
            agm::agm_bound(&q, n).map_err(|e| e.to_string())?
        );
    }
    Ok(())
}

fn cmd_claims(args: &[String]) -> Result<(), CmdError> {
    let claims = match args.first().map(String::as_str) {
        None => lowerbounds::claims::all_claims(),
        Some(name) => {
            let h = Hypothesis::ALL
                .into_iter()
                .find(|h| {
                    h.name().eq_ignore_ascii_case(name)
                        || format!("{h:?}").eq_ignore_ascii_case(name)
                })
                .ok_or_else(|| {
                    format!(
                        "unknown hypothesis `{name}`; known: {:?}",
                        Hypothesis::ALL.map(|h| format!("{h:?}"))
                    )
                })?;
            lowerbounds::claims::claims_under(h)
        }
    };
    for c in claims {
        let hyp = c
            .hypothesis
            .map_or("unconditional".to_string(), |h| h.name().to_string());
        println!("{:<44} [{hyp}]", c.id);
        println!("    {}", c.statement);
        println!("    rules out: {} | witness: {}", c.rules_out, c.witness);
    }
    Ok(())
}
