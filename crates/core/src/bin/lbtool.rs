//! `lbtool` — command-line access to the workspace's solvers.
//!
//! ```text
//! lbtool sat <file.cnf>            solve a DIMACS CNF with DPLL
//! lbtool 2sat <file.cnf>           solve a width-≤2 DIMACS CNF in linear time
//! lbtool count <file.cnf>          count the models of a DIMACS CNF
//! lbtool csp <file.csp>            solve a CSP instance by backtracking
//! lbtool join <file.db> "<query>"  count join results worst-case optimally
//!                                  (--print streams the tuples themselves;
//!                                  --stats-json emits RunStats as JSON)
//! lbtool triangle <file.graph>     count the triangles of a graph
//! lbtool clique <file.graph> <k>   find (or --count) k-cliques
//! lbtool treewidth <file.graph>    treewidth bounds (exact when n ≤ 22)
//! lbtool rho-star "<query>"        ρ* and the AGM bound of a join query
//! lbtool claims [hypothesis]       the paper's lower-bound claims
//! lbtool serve --spool <dir>       run the multi-tenant solver service
//! lbtool submit <family> <file>    submit a job to a running service and
//!                                  wait for its verdict
//! ```
//!
//! Solver commands accept `--budget <ticks>`: the run stops with exit code 3
//! and prints `UNKNOWN` once the solver has spent that many counted
//! operations. Without the flag the solver runs to completion.
//!
//! `sat`, `csp`, `join`, `triangle`, and `clique` additionally accept:
//!
//! ```text
//! --checkpoint <file>            persist the search frontier to <file>
//! --resume <file>                continue from a previously saved frontier
//! --checkpoint-interval <ticks>  ops between saves (default 65536)
//! ```
//!
//! With `--checkpoint`, the solver runs in slices and atomically rewrites
//! `<file>` after each one, so a killed process (even `kill -9`) loses at
//! most one interval of work; rerunning with `--resume <file>` continues
//! where the last save left off and reaches the same answer as an
//! uninterrupted run. On completion the checkpoint file is removed. An
//! exhausted budget is *resumable* when a checkpoint was saved (the
//! `UNKNOWN` diagnostic names the file to resume from) and *terminal*
//! otherwise (the partial search is lost).
//!
//! Graph files: first line `n`, then one `u v` edge per line (0-based).
//! Query syntax: whitespace-separated atoms like `R(a,b) S(a,c) T(b,c)`.
//! CSP files: header `csp <num_vars> <domain_size>`, then one constraint
//! per line, `con <v1> <v2> ... : <t>,<t> <t>,<t> ...` (0-based variables,
//! tuples comma-separated; `#` starts a comment).
//! Database files: a `rel <name> <arity>` line opens a relation; each
//! following numeric line is one of its rows. Rows are set-semantics
//! (duplicates collapse), matching the paper's relational model.
//!
//! Malformed input never panics: every parser reports a typed
//! [`ParseError`] printed as `file:line:col: message`, exit code 1.

use lb_serve::formats::{parse_csp, parse_db, parse_graph, parse_query};
use lowerbounds::engine::checkpoint::{Checkpoint, ResumableOutcome};
use lowerbounds::engine::{Budget, Outcome, ParseError, RunStats};
use lowerbounds::graph::treewidth;
use lowerbounds::hypotheses::Hypothesis;
use lowerbounds::join::agm;
use lowerbounds::sat::{solve_2sat, CnfFormula, DpllSolver};
use std::path::PathBuf;
use std::process::ExitCode;

/// Distinguishes "wrong input" from "budget ran out" for the process exit
/// code. Parse failures keep their source position so every diagnostic is
/// printed in the one conventional `file:line:col: message` shape. An
/// exhausted budget records whether a checkpoint survives it: `resumable`
/// exhaustion names the saved frontier, `terminal` exhaustion means the
/// partial search is lost.
enum CmdError {
    Usage(String),
    Parse {
        path: String,
        err: ParseError,
    },
    Exhausted {
        reason: String,
        checkpoint: Option<PathBuf>,
    },
}

impl From<String> for CmdError {
    fn from(msg: String) -> CmdError {
        CmdError::Usage(msg)
    }
}

impl From<&str> for CmdError {
    fn from(msg: &str) -> CmdError {
        CmdError::Usage(msg.to_string())
    }
}

/// Attaches a file path to a [`ParseError`] for diagnostics.
fn in_file(path: &str) -> impl Fn(ParseError) -> CmdError + '_ {
    move |err| CmdError::Parse {
        path: path.to_string(),
        err,
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let (budget, ck) = match parse_common_flags(&mut args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let cmd = args.first().map(String::as_str);
    if ck.active() && !matches!(cmd, Some("sat" | "csp" | "join" | "triangle" | "clique")) {
        eprintln!(
            "error: --checkpoint/--resume are supported by `sat`, `csp`, `join`, `triangle`, and `clique` only"
        );
        return ExitCode::from(2);
    }
    let result = match cmd {
        Some("sat") => cmd_sat(&args[1..], false, &budget, &ck),
        Some("2sat") => cmd_sat(&args[1..], true, &budget, &ck),
        Some("count") => cmd_count(&args[1..], &budget),
        Some("csp") => cmd_csp(&args[1..], &budget, &ck),
        Some("join") => cmd_join(&args[1..], &budget, &ck),
        Some("triangle") => cmd_triangle(&args[1..], &budget, &ck),
        Some("clique") => cmd_clique(&args[1..], &budget, &ck),
        Some("treewidth") => cmd_treewidth(&args[1..]),
        Some("rho-star") => cmd_rho_star(&args[1..]),
        Some("claims") => cmd_claims(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        _ => {
            eprintln!(
                "usage: lbtool <sat|2sat|count|csp|join|triangle|clique|treewidth|rho-star|claims|serve|submit> [--budget <ticks>] [--checkpoint <file>] [--resume <file>] ..."
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CmdError::Usage(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
        Err(CmdError::Parse { path, err }) => {
            eprintln!("{path}:{err}");
            ExitCode::FAILURE
        }
        Err(CmdError::Exhausted { reason, checkpoint }) => {
            println!("UNKNOWN");
            // Shared with lb-serve: one wording for resumable-vs-terminal
            // exhaustion everywhere a budget can run out.
            eprintln!(
                "{}",
                lowerbounds::engine::exhaustion_diagnostic(&reason, checkpoint.as_deref())
            );
            ExitCode::from(3)
        }
    }
}

/// Checkpoint-related command-line state shared by `sat` and `csp`.
struct CkOpts {
    /// Where to persist the frontier (`--checkpoint`).
    save: Option<PathBuf>,
    /// A frontier to continue from (`--resume`).
    resume: Option<PathBuf>,
    /// Ops between saves (`--checkpoint-interval`).
    interval: u64,
}

impl CkOpts {
    fn active(&self) -> bool {
        self.save.is_some() || self.resume.is_some()
    }
}

/// Removes `--budget <ticks>`, `--checkpoint <file>`, `--resume <file>`,
/// and `--checkpoint-interval <ticks>` from the argument list; the budget
/// is unlimited when the flag is absent.
fn parse_common_flags(args: &mut Vec<String>) -> Result<(Budget, CkOpts), String> {
    let budget = match extract_value(args, "--budget")? {
        None => Budget::unlimited(),
        Some(v) => Budget::ticks(
            v.parse()
                .map_err(|e| format!("bad --budget value `{v}`: {e}"))?,
        ),
    };
    let save = extract_value(args, "--checkpoint")?.map(PathBuf::from);
    let resume = extract_value(args, "--resume")?.map(PathBuf::from);
    let interval = match extract_value(args, "--checkpoint-interval")? {
        None => 65_536,
        Some(v) => {
            let n: u64 = v
                .parse()
                .map_err(|e| format!("bad --checkpoint-interval value `{v}`: {e}"))?;
            if n == 0 {
                return Err("--checkpoint-interval must be positive".into());
            }
            n
        }
    };
    Ok((
        budget,
        CkOpts {
            save,
            resume,
            interval,
        },
    ))
}

/// Removes a bare `<flag>` from the argument list, reporting its presence.
fn extract_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return false;
    };
    args.remove(pos);
    true
}

/// Removes `<flag> <value>` from the argument list, returning the value.
fn extract_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args[pos + 1].clone();
    args.drain(pos..=pos + 1);
    Ok(Some(value))
}

/// Drives a resumable solver in `interval`-sized slices, atomically saving
/// the frontier after every suspended slice, until the verdict arrives or
/// `budget` is spent. The returned outcome is terminal: an `Exhausted`
/// here means the total budget ran out (with the last frontier saved, if a
/// save path was given). The checkpoint file is removed on completion.
fn run_sliced<W>(
    budget: &Budget,
    ck: &CkOpts,
    mut slice: impl FnMut(
        &Budget,
        Option<&Checkpoint>,
    ) -> Result<(ResumableOutcome<W>, RunStats), String>,
) -> Result<(Outcome<W>, RunStats), CmdError> {
    let mut from = match &ck.resume {
        Some(p) => Some(Checkpoint::load(p).map_err(|e| format!("{}: {e}", p.display()))?),
        None => None,
    };
    let mut total = RunStats::default();
    let mut spent = 0u64;
    loop {
        let slice_ticks = match budget.max_ticks() {
            None => ck.interval,
            Some(t) => {
                let remaining = t.saturating_sub(spent);
                match (remaining, &from) {
                    (0, Some(frontier)) => {
                        return Err(exhaust_with_save(
                            format!("tick budget of {t} exhausted"),
                            frontier,
                            ck,
                        ));
                    }
                    // A zero budget with no frontier yet: run one zero-tick
                    // slice so the crossing op is still recorded, exactly
                    // like the non-resumable path.
                    (r, _) => r.min(ck.interval),
                }
            }
        };
        let (out, stats) =
            slice(&Budget::ticks(slice_ticks), from.as_ref()).map_err(CmdError::Usage)?;
        total.absorb(&stats);
        spent += stats.total_ops();
        match out {
            ResumableOutcome::Suspended {
                reason: _,
                checkpoint,
            } => {
                // A suspended slice always made progress (every slice has a
                // positive tick budget and the crossing op is counted), so
                // looping — with or without a save path — terminates.
                if let Some(path) = &ck.save {
                    checkpoint
                        .save(path)
                        .map_err(|e| format!("{}: {e}", path.display()))?;
                }
                from = Some(checkpoint);
            }
            done => {
                if let Some(path) = &ck.save {
                    // Cleanup: a completed run needs no frontier, and a stale
                    // file here would feed a later `--resume` old state — as
                    // would a stale `.tmp` sibling left by a save that was
                    // killed between write and rename, so both are removed.
                    // Warn rather than fail — the verdict itself is already
                    // in hand; absence (completed within the first slice) is
                    // not a hazard.
                    if let Err(e) = lowerbounds::engine::cleanup_artifacts(path) {
                        eprintln!(
                            "warning: could not remove completed checkpoint {}: {e}",
                            path.display()
                        );
                    }
                }
                return Ok((done.into_outcome(), total));
            }
        }
    }
}

/// Builds the resumable-exhaustion error, saving the final frontier first
/// so the diagnostic only names a file that exists.
fn exhaust_with_save(reason: String, frontier: &Checkpoint, ck: &CkOpts) -> CmdError {
    match &ck.save {
        Some(path) => match frontier.save(path) {
            Ok(()) => CmdError::Exhausted {
                reason,
                checkpoint: Some(path.clone()),
            },
            Err(e) => CmdError::Usage(format!("{}: {e}", path.display())),
        },
        None => CmdError::Exhausted {
            reason,
            checkpoint: None,
        },
    }
}

fn report_stats(stats: &RunStats) {
    eprintln!(
        "nodes: {}, propagations: {}, backtracks: {}",
        stats.nodes, stats.propagations, stats.backtracks
    );
}

/// Like [`report_stats`], but leads with the counters join-style work
/// actually charges (index advances and materialized tuples).
fn report_join_stats(stats: &RunStats) {
    eprintln!(
        "trie advances: {}, tuples: {}, nodes: {}, backtracks: {}",
        stats.trie_advances, stats.tuples, stats.nodes, stats.backtracks
    );
}

/// Prints the final [`RunStats`] as one machine-readable JSON line on
/// stdout (`--stats-json`) — the hook the bench harness scrapes.
fn print_stats_json(stats: &RunStats) {
    println!(
        "{{\"nodes\":{},\"propagations\":{},\"trie_advances\":{},\"tuples\":{},\"backtracks\":{},\"max_intermediate\":{},\"total_ops\":{}}}",
        stats.nodes,
        stats.propagations,
        stats.trie_advances,
        stats.tuples,
        stats.backtracks,
        stats.max_intermediate,
        stats.total_ops()
    );
}

fn cmd_sat(args: &[String], two: bool, budget: &Budget, ck: &CkOpts) -> Result<(), CmdError> {
    let path = args.first().ok_or("missing CNF file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let f = CnfFormula::from_dimacs(&text).map_err(in_file(path))?;
    let (outcome, stats) = if two {
        if !f.is_ksat(2) {
            return Err("formula has clauses wider than 2; use `lbtool sat`".into());
        }
        solve_2sat(&f, budget)
    } else if ck.active() {
        let solver = DpllSolver::default();
        run_sliced(budget, ck, |slice, from| {
            solver
                .solve_resumable(&f, slice, from)
                .map_err(|e| format!("{}: {e}", describe_ck_source(ck)))
        })?
    } else {
        DpllSolver::default().solve(&f, budget)
    };
    report_stats(&stats);
    match outcome {
        Outcome::Sat(m) => {
            let lits: Vec<String> = m
                .iter()
                .enumerate()
                .map(|(v, &b)| format!("{}{}", if b { "" } else { "-" }, v + 1))
                .collect();
            println!("SATISFIABLE\nv {} 0", lits.join(" "));
        }
        Outcome::Unsat => println!("UNSATISFIABLE"),
        Outcome::Exhausted(r) => {
            return Err(CmdError::Exhausted {
                reason: r.to_string(),
                checkpoint: None,
            })
        }
    }
    Ok(())
}

/// Names the checkpoint file involved in a decode failure for diagnostics.
fn describe_ck_source(ck: &CkOpts) -> String {
    ck.resume
        .as_deref()
        .or(ck.save.as_deref())
        .map_or_else(|| "<checkpoint>".to_string(), |p| p.display().to_string())
}

fn cmd_count(args: &[String], budget: &Budget) -> Result<(), CmdError> {
    let path = args.first().ok_or("missing CNF file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let f = CnfFormula::from_dimacs(&text).map_err(in_file(path))?;
    let (outcome, stats) = lowerbounds::sat::count_models(&f, budget);
    report_stats(&stats);
    match outcome {
        Outcome::Sat(count) => println!("{count}"),
        // lb-lint: allow(no-panic) -- invariant: model counting completes with Sat or exhausts
        Outcome::Unsat => unreachable!("count_models has no Unsat outcome"),
        Outcome::Exhausted(r) => {
            return Err(CmdError::Exhausted {
                reason: r.to_string(),
                checkpoint: None,
            })
        }
    }
    Ok(())
}

fn cmd_csp(args: &[String], budget: &Budget, ck: &CkOpts) -> Result<(), CmdError> {
    use lowerbounds::csp::solver::{backtracking, BacktrackConfig};
    let path = args.first().ok_or("missing CSP file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let inst = parse_csp(&text).map_err(in_file(path))?;
    let (outcome, stats) = if ck.active() {
        run_sliced(budget, ck, |slice, from| {
            backtracking::solve_resumable(&inst, BacktrackConfig::default(), slice, from)
                .map_err(|e| format!("{}: {e}", describe_ck_source(ck)))
        })?
    } else {
        lowerbounds::csp::solver::solve(&inst, budget)
    };
    report_stats(&stats);
    match outcome {
        Outcome::Sat(a) => {
            let vals: Vec<String> = a.iter().map(|v| v.to_string()).collect();
            println!("SATISFIABLE\nv {}", vals.join(" "));
        }
        Outcome::Unsat => println!("UNSATISFIABLE"),
        Outcome::Exhausted(r) => {
            return Err(CmdError::Exhausted {
                reason: r.to_string(),
                checkpoint: None,
            })
        }
    }
    Ok(())
}

/// Maps a resumable-join error to a diagnostic: instance errors stand on
/// their own, checkpoint errors name the file they came from.
fn describe_resume_error(e: lowerbounds::join::wcoj::ResumeError, ck: &CkOpts) -> String {
    use lowerbounds::join::wcoj::ResumeError;
    match e {
        ResumeError::Join(e) => e.to_string(),
        ResumeError::Checkpoint(e) => format!("{}: {e}", describe_ck_source(ck)),
    }
}

fn cmd_join(args: &[String], budget: &Budget, ck: &CkOpts) -> Result<(), CmdError> {
    use lowerbounds::join::wcoj;
    let mut args: Vec<String> = args.to_vec();
    let order: Option<Vec<String>> = extract_value(&mut args, "--order")?
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect());
    let stats_json = extract_flag(&mut args, "--stats-json");
    let print = extract_flag(&mut args, "--print");
    if print && ck.active() {
        return Err("--print streams tuples and cannot be combined with --checkpoint/--resume (count without --print to run resumably)".into());
    }
    let path = args.first().ok_or("missing database file")?;
    let spec = args.get(1).ok_or("missing query string")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let db = parse_db(&text).map_err(in_file(path))?;
    let q = parse_query(spec).map_err(in_file("<query>"))?;
    let (outcome, stats) = if ck.active() {
        run_sliced(budget, ck, |slice, from| {
            wcoj::count_resumable(&q, &db, order.as_deref(), slice, from)
                .map_err(|e| describe_resume_error(e, ck))
        })?
    } else if print {
        // Stream each tuple as it is found (attribute order, one line
        // each) — memory stays flat no matter how large the answer is.
        wcoj::join_foreach(&q, &db, order.as_deref(), budget, |t| {
            let line = t
                .iter()
                .map(u64::to_string)
                .collect::<Vec<String>>()
                .join(" ");
            println!("{line}");
        })
        .map_err(|e| e.to_string())?
    } else {
        // `count` itself streams through `join_foreach` internally: no
        // answer tuple is ever materialized for a count-only run.
        wcoj::count(&q, &db, order.as_deref(), budget).map_err(|e| e.to_string())?
    };
    report_join_stats(&stats);
    match outcome {
        Outcome::Sat(count) => println!("{count}"),
        // lb-lint: allow(no-panic) -- invariant: join counting completes with Sat or exhausts
        Outcome::Unsat => unreachable!("join counting has no Unsat outcome"),
        Outcome::Exhausted(r) => {
            return Err(CmdError::Exhausted {
                reason: r.to_string(),
                checkpoint: None,
            })
        }
    }
    if stats_json {
        print_stats_json(&stats);
    }
    Ok(())
}

fn cmd_triangle(args: &[String], budget: &Budget, ck: &CkOpts) -> Result<(), CmdError> {
    use lowerbounds::graphalg::triangle;
    let path = args.first().ok_or("missing graph file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let g = parse_graph(&text).map_err(in_file(path))?;
    let (outcome, stats) = if ck.active() {
        run_sliced(budget, ck, |slice, from| {
            triangle::count_triangles_resumable(&g, slice, from)
                .map_err(|e| format!("{}: {e}", describe_ck_source(ck)))
        })?
    } else {
        triangle::count_triangles(&g, budget)
    };
    report_join_stats(&stats);
    match outcome {
        Outcome::Sat(count) => println!("{count}"),
        // lb-lint: allow(no-panic) -- invariant: triangle counting completes with Sat or exhausts
        Outcome::Unsat => unreachable!("triangle counting has no Unsat outcome"),
        Outcome::Exhausted(r) => {
            return Err(CmdError::Exhausted {
                reason: r.to_string(),
                checkpoint: None,
            })
        }
    }
    Ok(())
}

fn cmd_clique(args: &[String], budget: &Budget, ck: &CkOpts) -> Result<(), CmdError> {
    use lowerbounds::graphalg::clique;
    let mut args: Vec<String> = args.to_vec();
    let counting = if let Some(pos) = args.iter().position(|a| a == "--count") {
        args.remove(pos);
        true
    } else {
        false
    };
    let path = args.first().ok_or("missing graph file")?;
    let k: usize = match args.get(1) {
        Some(tok) => tok
            .parse()
            .map_err(|e| format!("bad clique size `{tok}`: {e}"))?,
        None => return Err("missing clique size k".into()),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let g = parse_graph(&text).map_err(in_file(path))?;
    if counting {
        let (outcome, stats) = if ck.active() {
            run_sliced(budget, ck, |slice, from| {
                clique::count_cliques_resumable(&g, k, slice, from)
                    .map_err(|e| format!("{}: {e}", describe_ck_source(ck)))
            })?
        } else {
            clique::count_cliques(&g, k, budget)
        };
        report_stats(&stats);
        match outcome {
            Outcome::Sat(count) => println!("{count}"),
            // lb-lint: allow(no-panic) -- invariant: clique counting completes with Sat or exhausts
            Outcome::Unsat => unreachable!("clique counting has no Unsat outcome"),
            Outcome::Exhausted(r) => {
                return Err(CmdError::Exhausted {
                    reason: r.to_string(),
                    checkpoint: None,
                })
            }
        }
        return Ok(());
    }
    let (outcome, stats) = if ck.active() {
        run_sliced(budget, ck, |slice, from| {
            clique::find_clique_resumable(&g, k, slice, from)
                .map_err(|e| format!("{}: {e}", describe_ck_source(ck)))
        })?
    } else {
        clique::find_clique(&g, k, budget)
    };
    report_stats(&stats);
    match outcome {
        Outcome::Sat(vs) => {
            let vs: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
            println!("CLIQUE\nv {}", vs.join(" "));
        }
        Outcome::Unsat => println!("NONE"),
        Outcome::Exhausted(r) => {
            return Err(CmdError::Exhausted {
                reason: r.to_string(),
                checkpoint: None,
            })
        }
    }
    Ok(())
}

fn cmd_treewidth(args: &[String]) -> Result<(), CmdError> {
    let path = args.first().ok_or("missing graph file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let g = parse_graph(&text).map_err(in_file(path))?;
    let lo = treewidth::treewidth_lower_bound(&g);
    let (hi, td) = treewidth::treewidth_upper_bound(&g);
    println!("n = {}, m = {}", g.num_vertices(), g.num_edges());
    println!("MMD lower bound:        {lo}");
    println!("heuristic upper bound:  {hi} ({} bags)", td.num_bags());
    if g.num_vertices() <= treewidth::exact::MAX_EXACT_N {
        let tw = treewidth::treewidth_exact(&g);
        println!("exact treewidth:        {tw}");
    } else {
        println!(
            "exact treewidth:        (skipped, n > {})",
            treewidth::exact::MAX_EXACT_N
        );
    }
    Ok(())
}

fn cmd_rho_star(args: &[String]) -> Result<(), CmdError> {
    let spec = args.first().ok_or("missing query string")?;
    let q = parse_query(spec).map_err(in_file("<query>"))?;
    let rho = agm::rho_star(&q).map_err(|e| e.to_string())?;
    println!("query:   {spec}");
    println!("ρ*:      {rho} (= {:.4})", rho.to_f64());
    for n in [1000u64, 1_000_000] {
        println!(
            "AGM bound at N = {n}: {:.0} tuples",
            agm::agm_bound(&q, n).map_err(|e| e.to_string())?
        );
    }
    Ok(())
}

fn cmd_claims(args: &[String]) -> Result<(), CmdError> {
    let claims = match args.first().map(String::as_str) {
        None => lowerbounds::claims::all_claims(),
        Some(name) => {
            let h = Hypothesis::ALL
                .into_iter()
                .find(|h| {
                    h.name().eq_ignore_ascii_case(name)
                        || format!("{h:?}").eq_ignore_ascii_case(name)
                })
                .ok_or_else(|| {
                    format!(
                        "unknown hypothesis `{name}`; known: {:?}",
                        Hypothesis::ALL.map(|h| format!("{h:?}"))
                    )
                })?;
            lowerbounds::claims::claims_under(h)
        }
    };
    for c in claims {
        let hyp = c
            .hypothesis
            .map_or("unconditional".to_string(), |h| h.name().to_string());
        println!("{:<44} [{hyp}]", c.id);
        println!("    {}", c.statement);
        println!("    rules out: {} | witness: {}", c.rules_out, c.witness);
    }
    Ok(())
}

/// Removes `<flag> <number>` from the argument list, with a default.
fn extract_num<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
    default: T,
) -> Result<T, String> {
    match extract_value(args, flag)? {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_bad| format!("bad {flag} value `{v}` (expected a number)")),
    }
}

/// `lbtool serve --spool DIR [...]` — runs the solver service in the
/// foreground until a client sends `DRAIN`. Same knobs as `lb-serve run`.
fn cmd_serve(args: &[String]) -> Result<(), CmdError> {
    use lb_serve::{SchedulerConfig, ServerConfig};
    let mut args = args.to_vec();
    let spool = extract_value(&mut args, "--spool")?.ok_or("serve needs --spool <dir>")?;
    let d = ServerConfig::default();
    let sd = SchedulerConfig::default();
    let cfg = ServerConfig {
        addr: extract_value(&mut args, "--addr")?.unwrap_or(d.addr),
        spool: PathBuf::from(spool),
        sched: SchedulerConfig {
            slice_ticks: extract_num(&mut args, "--slice-ticks", sd.slice_ticks)?,
            workers: extract_num(&mut args, "--workers", sd.workers)?,
            tenant_quota: extract_num(&mut args, "--tenant-quota", sd.tenant_quota)?,
            max_active: extract_num(&mut args, "--max-active", sd.max_active)?,
            retry_after_ms: extract_num(&mut args, "--retry-after-ms", sd.retry_after_ms)?,
            max_attempts: extract_num(&mut args, "--max-attempts", sd.max_attempts)?,
            retry_backoff_ms: extract_num(&mut args, "--retry-backoff-ms", sd.retry_backoff_ms)?,
            io_fault_seed: extract_value(&mut args, "--io-fault-seed")?
                .map(|v| {
                    v.parse()
                        .map_err(|_bad| format!("bad --io-fault-seed `{v}`"))
                })
                .transpose()?,
        },
        idle_timeout_ms: extract_num(&mut args, "--idle-timeout-ms", d.idle_timeout_ms)?,
        read_timeout_ms: extract_num(&mut args, "--read-timeout-ms", d.read_timeout_ms)?,
        max_conns: extract_num(&mut args, "--max-conns", d.max_conns)?,
        net_fault_seed: extract_value(&mut args, "--net-fault-seed")?
            .map(|v| {
                v.parse()
                    .map_err(|_bad| format!("bad --net-fault-seed `{v}`"))
            })
            .transpose()?,
    };
    if let Some(stray) = args.first() {
        return Err(format!("unknown `serve` argument `{stray}`").into());
    }
    let server = lb_serve::Server::bind(cfg).map_err(|e| e.to_string())?;
    if let Some(addr) = server.local_addr() {
        println!("listening on {addr}");
        use std::io::Write;
        std::io::stdout().flush().map_err(|e| e.to_string())?;
    }
    server.run().map_err(|e| e.to_string())?;
    eprintln!("drained; all unsettled jobs remain spooled");
    Ok(())
}

/// `lbtool submit <family> <file> [--addr HOST:PORT] [--tenant NAME]
/// [--k N] [--job-budget TICKS] [--no-wait] [--timeout-ms MS]` — submits
/// one job to a running service and (by default) polls until its verdict
/// arrives. The payload file uses the same formats the local commands
/// read; a `join` payload is the query line followed by the database.
fn cmd_submit(args: &[String]) -> Result<(), CmdError> {
    use lb_serve::client::{retry_with_backoff, Backoff, Client};
    use lb_serve::{JobFamily, JobSpec};
    use std::time::Duration;
    let mut args = args.to_vec();
    let addr = extract_value(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7071".to_string());
    let tenant = extract_value(&mut args, "--tenant")?.unwrap_or_else(|| "cli".to_string());
    let k: usize = extract_num(&mut args, "--k", 0)?;
    let budget: u64 = extract_num(&mut args, "--job-budget", 0)?;
    let timeout_ms: u64 = extract_num(&mut args, "--timeout-ms", 120_000)?;
    let wait = !extract_flag(&mut args, "--no-wait");
    let family = args
        .first()
        .ok_or("missing job family (sat, csp, join, triangle, or clique)")?;
    let family = JobFamily::from_name(family).ok_or_else(|| {
        format!("unknown family `{family}` (expected sat, csp, join, triangle, or clique)")
    })?;
    let path = args.get(1).ok_or("missing payload file")?;
    let payload = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spec = JobSpec {
        tenant,
        family,
        k,
        budget: (budget > 0).then_some(budget),
        payload,
    };
    // Validate locally first so a malformed payload is reported with the
    // file's own coordinates, not the wire protocol's.
    spec.instance().map_err(in_file(path))?;
    // Retryable rejections (overload, quota, draining — anything with a
    // retry-after hint) and connection trouble get the seeded jittered
    // backoff; permanent rejections surface immediately.
    let policy = Backoff::default();
    let (mut client, id, backoffs) = retry_with_backoff(&policy, |_attempt| {
        let mut client = Client::connect(&addr, Duration::from_millis(5_000))?;
        let id = client.submit(&spec)?;
        Ok((client, id))
    })
    .map(|((client, id), backoffs)| (client, id, backoffs))
    .map_err(|e| e.to_string())?;
    println!("submitted {id}");
    if backoffs > 0 {
        eprintln!("absorbed {backoffs} typed rejection(s) before admission");
    }
    if !wait {
        return Ok(());
    }
    // Poll by iteration count, not wall clock: attempts × interval bounds
    // the wait without consulting a timer.
    let interval_ms = 50u64;
    let attempts = timeout_ms / interval_ms;
    for _ in 0..=attempts {
        let status = client.status(&id).map_err(|e| e.to_string())?;
        if status.state == "done" {
            eprintln!(
                "preemptions: {}, ticks spent: {}",
                status.preemptions, status.spent
            );
            match status.verdict {
                Some(v) => println!("{}", v.to_line()),
                None => return Err(format!("{id}: done without a verdict").into()),
            }
            return Ok(());
        }
        if status.state == "quarantined" {
            // The survival ladder gave up on this job: surface the typed
            // verdict and evidence instead of polling forever.
            eprintln!(
                "attempts: {}, preemptions: {}, ticks spent: {}",
                status.attempts, status.preemptions, status.spent
            );
            println!(
                "QUARANTINED {}",
                status
                    .evidence
                    .as_deref()
                    .unwrap_or("(no evidence recorded)")
            );
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
    Err(format!(
        "{id}: still {} after {timeout_ms} ms; rerun `lbtool submit` or query STATUS later",
        "unsettled"
    )
    .into())
}
