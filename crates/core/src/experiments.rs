//! Shared measurement harness for the E1–E12 experiments.
//!
//! The paper's theorems are asymptotic statements; the experiments check
//! their *shape* on finite sweeps: run an algorithm over a size grid, fit a
//! line to (log size, log value) by least squares, and compare the slope to
//! the predicted exponent. The measured value can be wall-clock time
//! ([`time_min`]) or — preferably — a machine-independent operation count
//! from the engine layer's [`RunStats`] ([`stats_sweep`]). The `lb-bench`
//! binaries print one table per experiment using [`print_table`];
//! `EXPERIMENTS.md` archives the output.

use lb_engine::RunStats;
use std::fmt;
use std::time::{Duration, Instant};

/// Typed failure of a measurement or fit (instead of a panic, so sweep
/// drivers can skip degenerate configurations and keep going).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExperimentError {
    /// A log–log fit needs at least two sample points.
    TooFewPoints {
        /// How many points were supplied.
        got: usize,
    },
    /// A log–log fit needs strictly positive coordinates.
    NonPositivePoint {
        /// Index of the offending sample point.
        index: usize,
    },
    /// [`time_min`] needs at least one repetition.
    ZeroReps,
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::TooFewPoints { got } => {
                write!(f, "need at least two points to fit, got {got}")
            }
            ExperimentError::NonPositivePoint { index } => {
                write!(f, "log-log fit needs positive coordinates (point {index})")
            }
            ExperimentError::ZeroReps => write!(f, "time_min needs at least one repetition"),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Times a closure once, returning its result and the wall-clock duration.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times a closure with `reps` repetitions and returns the *minimum*
/// duration (least noisy location statistic for CPU-bound code).
///
/// Errors with [`ExperimentError::ZeroReps`] when `reps` is zero.
pub fn time_min<T>(
    reps: usize,
    mut f: impl FnMut() -> T,
) -> Result<(T, Duration), ExperimentError> {
    let mut best: Option<Duration> = None;
    let mut out = None;
    for _ in 0..reps {
        let (r, d) = time(&mut f);
        out = Some(r);
        best = Some(best.map_or(d, |b| b.min(d)));
    }
    match (out, best) {
        (Some(o), Some(b)) => Ok((o, b)),
        _ => Err(ExperimentError::ZeroReps),
    }
}

/// One measured point of a scaling sweep.
#[derive(Clone, Copy, Debug)]
pub struct SamplePoint {
    /// The size parameter (N, n, |D|, …).
    pub size: f64,
    /// The measured quantity (seconds, tuples, nodes, …).
    pub value: f64,
}

/// Result of a log–log regression.
#[derive(Clone, Copy, Debug)]
pub struct ExponentFit {
    /// Fitted exponent (slope in log–log space).
    pub exponent: f64,
    /// Fitted leading constant (exp of the intercept).
    pub constant: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
}

/// Least-squares fit of `value ≈ constant · size^exponent`.
///
/// Errors when fewer than two points or a non-positive coordinate make the
/// log–log regression undefined.
pub fn fit_exponent(points: &[SamplePoint]) -> Result<ExponentFit, ExperimentError> {
    if points.len() < 2 {
        return Err(ExperimentError::TooFewPoints { got: points.len() });
    }
    if let Some(index) = points.iter().position(|p| p.size <= 0.0 || p.value <= 0.0) {
        return Err(ExperimentError::NonPositivePoint { index });
    }
    let n = points.len() as f64;
    let xs: Vec<f64> = points.iter().map(|p| p.size.ln()).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.value.ln()).collect();
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(ExponentFit {
        exponent: slope,
        constant: intercept.exp(),
        r_squared,
    })
}

/// Runs a budgeted solver over a size grid and extracts one [`RunStats`]
/// counter per size as the sweep's measured value — the machine-independent
/// alternative to wall-clock sweeps. `run` produces the stats for one size;
/// `metric` picks the counter (e.g. `|s| s.total_ops()`).
pub fn stats_sweep(
    sizes: &[usize],
    mut run: impl FnMut(usize) -> RunStats,
    metric: impl Fn(&RunStats) -> u64,
) -> Vec<SamplePoint> {
    sizes
        .iter()
        .map(|&size| SamplePoint {
            size: size as f64,
            value: metric(&run(size)) as f64,
        })
        .collect()
}

/// Renders an aligned text table (markdown-flavored) for the experiment
/// binaries.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, &w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    out.push_str(&fmt_row(&sep, &widths));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a duration in engineering-friendly units.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_quadratic() {
        let pts: Vec<SamplePoint> = (1..=10)
            .map(|i| SamplePoint {
                size: i as f64,
                value: 3.0 * (i as f64).powi(2),
            })
            .collect();
        let fit = fit_exponent(&pts).unwrap();
        assert!((fit.exponent - 2.0).abs() < 1e-9, "{fit:?}");
        assert!((fit.constant - 3.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn fit_recovers_three_halves() {
        // The AGM exponent of the triangle query.
        let pts: Vec<SamplePoint> = [100.0f64, 400.0, 1600.0, 6400.0]
            .iter()
            .map(|&n| SamplePoint {
                size: n,
                value: n.powf(1.5),
            })
            .collect();
        let fit = fit_exponent(&pts).unwrap();
        assert!((fit.exponent - 1.5).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_reasonable() {
        let pts: Vec<SamplePoint> = (2..12)
            .map(|i| SamplePoint {
                size: (1 << i) as f64,
                value: ((1 << i) as f64).powf(1.0) * (1.0 + 0.05 * ((i % 3) as f64 - 1.0)),
            })
            .collect();
        let fit = fit_exponent(&pts).unwrap();
        assert!((fit.exponent - 1.0).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn table_renders() {
        let out = print_table(
            "demo",
            &["n", "time"],
            &[
                vec!["10".into(), "1ms".into()],
                vec!["100".into(), "100ms".into()],
            ],
        );
        assert!(out.contains("## demo"));
        assert!(out.contains("| n  "));
        assert!(out.lines().count() >= 5);
    }

    #[test]
    fn timing_helpers() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0 || d.as_nanos() == 0); // smoke
        let (v2, _) = time_min(3, || 7).unwrap();
        assert_eq!(v2, 7);
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
    }

    #[test]
    fn fit_needs_points() {
        let err = fit_exponent(&[SamplePoint {
            size: 1.0,
            value: 1.0,
        }])
        .unwrap_err();
        assert_eq!(err, ExperimentError::TooFewPoints { got: 1 });
    }

    #[test]
    fn fit_rejects_nonpositive_coordinates() {
        let pts = [
            SamplePoint {
                size: 1.0,
                value: 1.0,
            },
            SamplePoint {
                size: 2.0,
                value: 0.0,
            },
        ];
        assert_eq!(
            fit_exponent(&pts).unwrap_err(),
            ExperimentError::NonPositivePoint { index: 1 }
        );
    }

    #[test]
    fn zero_reps_is_an_error() {
        assert_eq!(time_min(0, || 1).unwrap_err(), ExperimentError::ZeroReps);
    }

    #[test]
    fn stats_sweep_fits_counter_exponent() {
        // A synthetic solver whose node counter grows quadratically: the
        // op-count sweep recovers the exponent with zero timing noise.
        let pts = stats_sweep(
            &[10, 20, 40, 80],
            |n| RunStats {
                nodes: (n * n) as u64,
                ..RunStats::default()
            },
            |s| s.nodes,
        );
        let fit = fit_exponent(&pts).unwrap();
        assert!((fit.exponent - 2.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }
}
