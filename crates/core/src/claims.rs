//! The paper's theorems as typed claims.
//!
//! Each [`LowerBoundClaim`] records: which hypothesis it is conditioned on,
//! what running time it rules out, which algorithm it certifies as optimal
//! (the matching upper bound), which module implements the witnessing
//! reduction, and which experiment (E1–E12, see `EXPERIMENTS.md`)
//! demonstrates the claimed shape empirically.

use crate::hypotheses::Hypothesis;

/// A lower-bound statement from the paper, with full provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LowerBoundClaim {
    /// Identifier from the paper, e.g. "Theorem 6.5".
    pub id: &'static str,
    /// The hypothesis the claim is conditional on (`None` = unconditional).
    pub hypothesis: Option<Hypothesis>,
    /// What the claim says.
    pub statement: &'static str,
    /// The running time the claim rules out.
    pub rules_out: &'static str,
    /// The matching upper bound (the algorithm certified optimal).
    pub upper_bound: &'static str,
    /// Workspace path of the witnessing implementation.
    pub witness: &'static str,
    /// Experiment id in EXPERIMENTS.md (E1–E12).
    pub experiment: &'static str,
}

/// Every theorem the paper discusses, in paper order.
pub fn all_claims() -> Vec<LowerBoundClaim> {
    vec![
        LowerBoundClaim {
            id: "Theorem 3.2 (AGM lower bound)",
            hypothesis: None,
            statement: "For infinitely many N there are databases with relations of ≤ N tuples whose answer has N^{ρ*} tuples.",
            rules_out: "full-answer computation in o(N^{ρ*})",
            upper_bound: "Generic Join / LFTJ in Õ(N^{ρ*}) (Theorem 3.3)",
            witness: "lb-join::agm::worst_case_database",
            experiment: "E1",
        },
        LowerBoundClaim {
            id: "Theorem 3.3 (worst-case optimal joins)",
            hypothesis: None,
            statement: "The answer can be computed in O(N^{ρ*}), matching Theorem 3.2.",
            rules_out: "(upper bound; optimality by Theorem 3.2)",
            upper_bound: "lb-join::wcoj",
            witness: "lb-join::wcoj::join",
            experiment: "E2",
        },
        LowerBoundClaim {
            id: "Schaefer's dichotomy (§4)",
            hypothesis: Some(Hypothesis::PNeqNp),
            statement: "CSP(R) over the Boolean domain is in P for the six tractable classes and NP-hard otherwise.",
            rules_out: "polynomial time outside the six classes",
            upper_bound: "dedicated solvers per class",
            witness: "lb-sat::schaefer",
            experiment: "E4",
        },
        LowerBoundClaim {
            id: "Theorem 4.2 (Freuder)",
            hypothesis: None,
            statement: "CSP is solvable in O(|V|·|D|^{k+1}) given a width-k tree decomposition of the primal graph.",
            rules_out: "(upper bound; optimality by Theorems 6.5/7.2)",
            upper_bound: "lb-csp::solver::treewidth_dp",
            witness: "lb-csp::solver::treewidth_dp::solve_with_decomposition",
            experiment: "E3",
        },
        LowerBoundClaim {
            id: "Theorem 5.2 (Grohe–Schwentick–Segoufin)",
            hypothesis: Some(Hypothesis::FptNeqW1),
            statement: "CSP(G) is polynomial-time solvable iff G has bounded treewidth.",
            rules_out: "FPT algorithms for CSP(G) with unbounded-treewidth G",
            upper_bound: "treewidth DP on bounded-treewidth classes",
            witness: "lb-reductions::clique_to_csp (W[1]-hardness direction)",
            experiment: "E7",
        },
        LowerBoundClaim {
            id: "Theorem 5.3 (Grohe)",
            hypothesis: Some(Hypothesis::FptNeqW1),
            statement: "HOM(A, _) is polynomial-time solvable iff the cores of A have bounded treewidth.",
            rules_out: "polynomial time for unbounded-core-treewidth classes",
            upper_bound: "solve on the core via treewidth DP",
            witness: "lb-structure::core::compute_core",
            experiment: "E7",
        },
        LowerBoundClaim {
            id: "SPECIAL CSP (Definition 4.3, §5–§6)",
            hypothesis: Some(Hypothesis::Eth),
            statement: "SPECIAL CSP is W[1]-hard yet solvable in n^{O(log n)}; no f(|V|)·n^{o(log |V|)} algorithm under ETH.",
            rules_out: "f(|V|)·n^{o(log |V|)}",
            upper_bound: "lb-csp::solver::special (quasipolynomial)",
            witness: "lb-reductions::clique_to_special",
            experiment: "E5",
        },
        LowerBoundClaim {
            id: "Theorem 6.3 (Chen et al.)",
            hypothesis: Some(Hypothesis::Eth),
            statement: "Clique has no f(k)·n^{o(k)} algorithm.",
            rules_out: "f(k)·n^{o(k)}",
            upper_bound: "n^{ωk/3} Nešetřil–Poljak / n^k brute force",
            witness: "lb-graphalg::clique",
            experiment: "E6",
        },
        LowerBoundClaim {
            id: "Theorem 6.4",
            hypothesis: Some(Hypothesis::Eth),
            statement: "Binary CSP has no f(|V|)·|D|^{o(|V|)}·n^{O(1)} algorithm.",
            rules_out: "f(|V|)·|D|^{o(|V|)}",
            upper_bound: "|D|^{|V|} brute force",
            witness: "lb-reductions::clique_to_csp",
            experiment: "E7",
        },
        LowerBoundClaim {
            id: "Theorems 6.5–6.7",
            hypothesis: Some(Hypothesis::Eth),
            statement: "No f(|V|)·n^{o(k)} algorithm for binary CSP with primal treewidth k; for any fixed graph of treewidth k ≥ 2, no O(|D|^{αk/log k}).",
            rules_out: "n^{o(k)} / |D|^{o(k/log k)}",
            upper_bound: "Freuder's |D|^{k+1} DP (Theorem 4.2)",
            witness: "lb-reductions::clique_to_csp + lb-csp::solver::treewidth_dp",
            experiment: "E7",
        },
        LowerBoundClaim {
            id: "Theorem 7.1 (Patrascu–Williams)",
            hypothesis: Some(Hypothesis::Seth),
            statement: "k-Dominating-Set (k ≥ 3) in O(n^{k−ε}) would refute the SETH.",
            rules_out: "O(n^{k−ε})",
            upper_bound: "n^{k+o(1)} subset enumeration",
            witness: "lb-graphalg::domset",
            experiment: "E8",
        },
        LowerBoundClaim {
            id: "Theorem 7.2",
            hypothesis: Some(Hypothesis::Seth),
            statement: "CSP with primal treewidth k in O(|V|^c·|D|^{k−ε}) would refute the SETH.",
            rules_out: "O(|V|^c·|D|^{k−ε})",
            upper_bound: "Freuder's |D|^{k+1} DP",
            witness: "lb-reductions::domset_to_csp (incl. grouping)",
            experiment: "E8",
        },
        LowerBoundClaim {
            id: "Edit distance (Backurs–Indyk, §7)",
            hypothesis: Some(Hypothesis::Seth),
            statement: "Edit distance has no O(n^{2−ε}) algorithm.",
            rules_out: "O(n^{2−ε})",
            upper_bound: "the O(n²) dynamic program",
            witness: "lb-graphalg::editdist + lb-reductions::sat_to_ov",
            experiment: "E9",
        },
        LowerBoundClaim {
            id: "k-clique conjecture (§8)",
            hypothesis: Some(Hypothesis::KClique),
            statement: "CSP with k variables has no |D|^{(ω−ε)k/3+c} algorithm.",
            rules_out: "|D|^{(ω−ε)k/3+c}",
            upper_bound: "n^{ωk/3} via triangle detection on t-clique graphs",
            witness: "lb-graphalg::clique::find_clique_neipol",
            experiment: "E6/E10",
        },
        LowerBoundClaim {
            id: "Hyperclique conjecture (§8)",
            hypothesis: Some(Hypothesis::HyperClique),
            statement: "CSP with arity-3 constraints has no f(|V|)·|D|^{(1−ε)|V|+c} algorithm.",
            rules_out: "|D|^{(1−ε)|V|}",
            upper_bound: "brute force |D|^{|V|}",
            witness: "lb-graphalg::hyperclique",
            experiment: "E11",
        },
        LowerBoundClaim {
            id: "Strong triangle conjecture (§8)",
            hypothesis: Some(Hypothesis::StrongTriangle),
            statement: "Boolean triangle join query emptiness needs m^{2ω/(ω+1)} in the relation size.",
            rules_out: "O(m^{2ω/(ω+1)−ε})",
            upper_bound: "Alon–Yuster–Zwick",
            witness: "lb-graphalg::triangle::find_triangle_ayz + lb-join::boolean",
            experiment: "E12",
        },
    ]
}

/// The claims conditioned on hypotheses implied by `h` (i.e. everything
/// that holds if `h` holds), including unconditional claims.
pub fn claims_under(h: Hypothesis) -> Vec<LowerBoundClaim> {
    all_claims()
        .into_iter()
        .filter(|c| match c.hypothesis {
            None => true,
            Some(ch) => h.implies(ch),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_populated() {
        let claims = all_claims();
        assert!(claims.len() >= 14);
        for c in &claims {
            assert!(!c.id.is_empty());
            assert!(!c.statement.is_empty());
            assert!(c.experiment.starts_with('E'));
        }
    }

    #[test]
    fn seth_yields_eth_claims() {
        let under_seth = claims_under(Hypothesis::Seth);
        // All ETH claims and all SETH claims and unconditional ones.
        assert!(under_seth.iter().any(|c| c.id.contains("6.3")));
        assert!(under_seth.iter().any(|c| c.id.contains("7.1")));
        assert!(under_seth.iter().any(|c| c.id.contains("3.2")));
        // But not the §8 conjectures.
        assert!(!under_seth.iter().any(|c| c.id.contains("Strong triangle")));
    }

    #[test]
    fn pneqnp_yields_only_weak_claims() {
        let under = claims_under(Hypothesis::PNeqNp);
        assert!(under.iter().any(|c| c.id.contains("Schaefer")));
        assert!(!under.iter().any(|c| c.id.contains("7.1")));
    }

    #[test]
    fn ids_are_unique() {
        let claims = all_claims();
        for (i, a) in claims.iter().enumerate() {
            for b in &claims[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }
}
