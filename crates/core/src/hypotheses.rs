//! The complexity hypotheses of the paper, with their implication DAG.
//!
//! "The general theme of conditional lower bounds is to transform a
//! relatively specialized question to a more fundamental question" (§9).
//! This module is the registry of those fundamental questions as they
//! appear in the paper, ordered §4 → §8, together with which hypothesis
//! implies which — so a claim conditioned on ETH is automatically known to
//! hold under SETH as well.

use std::fmt;

/// A complexity hypothesis used by some lower bound in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Hypothesis {
    /// P ≠ NP (§4): no polynomial-time algorithm for an NP-hard problem.
    PNeqNp,
    /// FPT ≠ W\[1\] (§5): Clique is not fixed-parameter tractable.
    FptNeqW1,
    /// The Exponential-Time Hypothesis (§6): 3SAT has no 2^{o(n)} algorithm.
    Eth,
    /// The Strong ETH (§7): CNF-SAT has no (2−ε)^n·m^{O(1)} algorithm.
    Seth,
    /// The k-clique conjecture (§8): no O(n^{(ω−ε)k/3+c}) k-clique
    /// algorithm.
    KClique,
    /// The d-uniform hyperclique conjecture (§8): no O(n^{(1−ε)k+c})
    /// k-hyperclique algorithm for any d ≥ 3.
    HyperClique,
    /// The Strong Triangle Conjecture (§8): triangle detection needs
    /// m^{2ω/(ω+1)} in terms of the edge count.
    StrongTriangle,
}

impl Hypothesis {
    /// All hypotheses, in paper order.
    pub const ALL: [Hypothesis; 7] = [
        Hypothesis::PNeqNp,
        Hypothesis::FptNeqW1,
        Hypothesis::Eth,
        Hypothesis::Seth,
        Hypothesis::KClique,
        Hypothesis::HyperClique,
        Hypothesis::StrongTriangle,
    ];

    /// Short name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Hypothesis::PNeqNp => "P ≠ NP",
            Hypothesis::FptNeqW1 => "FPT ≠ W[1]",
            Hypothesis::Eth => "ETH",
            Hypothesis::Seth => "SETH",
            Hypothesis::KClique => "k-clique conjecture",
            Hypothesis::HyperClique => "d-uniform hyperclique conjecture",
            Hypothesis::StrongTriangle => "strong triangle conjecture",
        }
    }

    /// One-sentence statement.
    pub fn statement(self) -> &'static str {
        match self {
            Hypothesis::PNeqNp => "NP-hard problems have no polynomial-time algorithm.",
            Hypothesis::FptNeqW1 => "Clique admits no f(k)·n^O(1) algorithm.",
            Hypothesis::Eth => "3SAT with n variables cannot be solved in 2^o(n) time.",
            Hypothesis::Seth => {
                "CNF-SAT with n variables cannot be solved in (2−ε)^n·m^O(1) time for any ε > 0."
            }
            Hypothesis::KClique => {
                "k-Clique cannot be solved in O(n^((ω−ε)k/3+c)) time for any ε, c > 0."
            }
            Hypothesis::HyperClique => {
                "k-hyperclique in d-uniform hypergraphs (d ≥ 3) cannot be solved in O(n^((1−ε)k+c))."
            }
            Hypothesis::StrongTriangle => {
                "Triangle detection cannot be solved in O(m^(2ω/(ω+1)−ε)) time."
            }
        }
    }

    /// Direct implications: `self` implies each returned hypothesis
    /// (failure of the returned one would refute `self`).
    ///
    /// The edges encoded are the standard ones the paper relies on:
    /// SETH ⇒ ETH ⇒ FPT ≠ W\[1\] ⇒ P ≠ NP.
    pub fn directly_implies(self) -> &'static [Hypothesis] {
        match self {
            Hypothesis::Seth => &[Hypothesis::Eth],
            Hypothesis::Eth => &[Hypothesis::FptNeqW1],
            Hypothesis::FptNeqW1 => &[Hypothesis::PNeqNp],
            _ => &[],
        }
    }

    /// Transitive implication test: does assuming `self` yield `other`?
    pub fn implies(self, other: Hypothesis) -> bool {
        if self == other {
            return true;
        }
        let mut stack = vec![self];
        let mut seen = Vec::new();
        while let Some(h) = stack.pop() {
            if seen.contains(&h) {
                continue;
            }
            seen.push(h);
            for &next in h.directly_implies() {
                if next == other {
                    return true;
                }
                stack.push(next);
            }
        }
        false
    }

    /// Relative strength: hypotheses that imply `self` are *stronger*
    /// assumptions (more likely to be false, more explanatory power).
    pub fn stronger_assumptions(self) -> Vec<Hypothesis> {
        Hypothesis::ALL
            .into_iter()
            .filter(|&h| h != self && h.implies(self))
            .collect()
    }
}

impl fmt::Display for Hypothesis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implication_chain() {
        assert!(Hypothesis::Seth.implies(Hypothesis::Eth));
        assert!(Hypothesis::Seth.implies(Hypothesis::FptNeqW1));
        assert!(Hypothesis::Seth.implies(Hypothesis::PNeqNp));
        assert!(Hypothesis::Eth.implies(Hypothesis::PNeqNp));
        assert!(!Hypothesis::PNeqNp.implies(Hypothesis::Eth));
        assert!(!Hypothesis::Eth.implies(Hypothesis::Seth));
    }

    #[test]
    fn self_implication() {
        for h in Hypothesis::ALL {
            assert!(h.implies(h));
        }
    }

    #[test]
    fn section8_conjectures_are_incomparable_here() {
        assert!(!Hypothesis::KClique.implies(Hypothesis::Eth));
        assert!(!Hypothesis::StrongTriangle.implies(Hypothesis::KClique));
        assert!(!Hypothesis::HyperClique.implies(Hypothesis::Seth));
    }

    #[test]
    fn stronger_assumptions_of_pneqnp() {
        let stronger = Hypothesis::PNeqNp.stronger_assumptions();
        assert!(stronger.contains(&Hypothesis::Seth));
        assert!(stronger.contains(&Hypothesis::Eth));
        assert!(stronger.contains(&Hypothesis::FptNeqW1));
        assert!(!stronger.contains(&Hypothesis::KClique));
    }

    #[test]
    fn names_and_statements_nonempty() {
        for h in Hypothesis::ALL {
            assert!(!h.name().is_empty());
            assert!(!h.statement().is_empty());
            assert_eq!(format!("{h}"), h.name());
        }
    }
}
