//! End-to-end CLI tests for the `lbtool` checkpoint surface: the `join`,
//! `triangle`, and `clique` subcommands accept `--checkpoint`/`--resume`/
//! `--checkpoint-interval` with the same exit-code contract as `sat` and
//! `csp` — exit 3 with a *resumable* diagnostic when a frontier was saved,
//! a *terminal* one when it wasn't — and a resumed run reaches the same
//! answer as an uninterrupted one.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn lbtool(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lbtool"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn lbtool")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn exit(out: &Output) -> i32 {
    out.status.code().expect("lbtool exit code")
}

/// A fresh scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("lbtool-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn write(&self, name: &str, content: &str) -> String {
        std::fs::write(self.0.join(name), content).expect("write fixture");
        name.to_string()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Three relations forming one triangle `R(a,b) S(b,c) T(a,c)` instance.
const TRIANGLE_DB: &str =
    "rel R 2\n0 1\n1 2\n0 2\nrel S 2\n0 1\n1 2\n0 2\nrel T 2\n0 1\n1 2\n0 2\n";
const TRIANGLE_QUERY: &str = "R(a,b) S(b,c) T(a,c)";

/// Two triangles sharing vertex 2: {0,1,2} and {2,3,4}.
const TWO_TRIANGLES: &str = "5\n0 1\n1 2\n0 2\n2 3\n3 4\n2 4\n";

#[test]
fn join_counts_and_checkpoint_roundtrip_reaches_the_same_answer() {
    let s = Scratch::new("join");
    let db = s.write("t.db", TRIANGLE_DB);
    let direct = lbtool(&s.0, &["join", &db, TRIANGLE_QUERY]);
    assert_eq!(exit(&direct), 0, "stderr: {}", stderr(&direct));
    assert_eq!(stdout(&direct).trim(), "1");

    let exhausted = lbtool(
        &s.0,
        &[
            "join",
            &db,
            TRIANGLE_QUERY,
            "--budget",
            "3",
            "--checkpoint",
            "j.ck",
        ],
    );
    assert_eq!(exit(&exhausted), 3, "stderr: {}", stderr(&exhausted));
    assert_eq!(stdout(&exhausted).trim(), "UNKNOWN");
    assert!(
        stderr(&exhausted).contains("resumable"),
        "diagnostic must mark a saved frontier resumable: {}",
        stderr(&exhausted)
    );
    assert!(s.0.join("j.ck").exists(), "frontier file must be saved");

    let resumed = lbtool(
        &s.0,
        &[
            "join",
            &db,
            TRIANGLE_QUERY,
            "--resume",
            "j.ck",
            "--checkpoint",
            "j.ck",
        ],
    );
    assert_eq!(exit(&resumed), 0, "stderr: {}", stderr(&resumed));
    assert_eq!(stdout(&resumed).trim(), "1", "resume must reach the answer");
    assert!(
        !s.0.join("j.ck").exists(),
        "completed run must remove its checkpoint"
    );
}

#[test]
fn join_stats_json_emits_machine_readable_counters() {
    let s = Scratch::new("statsjson");
    let db = s.write("t.db", TRIANGLE_DB);
    let out = lbtool(&s.0, &["join", &db, TRIANGLE_QUERY, "--stats-json"]);
    assert_eq!(exit(&out), 0, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("1"), "count line comes first");
    let json = lines.next().expect("stats JSON line");
    for key in [
        "\"nodes\":",
        "\"propagations\":",
        "\"trie_advances\":",
        "\"tuples\":1",
        "\"backtracks\":",
        "\"max_intermediate\":",
        "\"total_ops\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert!(
        json.starts_with('{') && json.trim_end().ends_with('}'),
        "one JSON object per line: {json}"
    );
}

#[test]
fn join_print_streams_tuples_and_rejects_checkpointing() {
    let s = Scratch::new("joinprint");
    let db = s.write("t.db", TRIANGLE_DB);
    let out = lbtool(&s.0, &["join", &db, TRIANGLE_QUERY, "--print"]);
    assert_eq!(exit(&out), 0, "stderr: {}", stderr(&out));
    // The streamed tuple (a=0, b=1, c=2 in attribute order), then the count.
    assert_eq!(stdout(&out).trim(), "0 1 2\n1");

    let rejected = lbtool(
        &s.0,
        &[
            "join",
            &db,
            TRIANGLE_QUERY,
            "--print",
            "--checkpoint",
            "j.ck",
        ],
    );
    assert_eq!(exit(&rejected), 1, "stderr: {}", stderr(&rejected));
    assert!(
        stderr(&rejected).contains("--print"),
        "diagnostic must name the conflicting flag: {}",
        stderr(&rejected)
    );
}

#[test]
fn triangle_checkpoint_roundtrip_reaches_the_same_count() {
    let s = Scratch::new("triangle");
    let g = s.write("g.graph", TWO_TRIANGLES);
    let direct = lbtool(&s.0, &["triangle", &g]);
    assert_eq!(exit(&direct), 0, "stderr: {}", stderr(&direct));
    assert_eq!(stdout(&direct).trim(), "2");

    let exhausted = lbtool(
        &s.0,
        &["triangle", &g, "--budget", "4", "--checkpoint", "t.ck"],
    );
    assert_eq!(exit(&exhausted), 3, "stderr: {}", stderr(&exhausted));
    assert!(stderr(&exhausted).contains("resumable"));

    let resumed = lbtool(&s.0, &["triangle", &g, "--resume", "t.ck"]);
    assert_eq!(exit(&resumed), 0, "stderr: {}", stderr(&resumed));
    assert_eq!(stdout(&resumed).trim(), "2");
}

#[test]
fn clique_find_and_count_support_checkpoints() {
    let s = Scratch::new("clique");
    let g = s.write("g.graph", TWO_TRIANGLES);
    let found = lbtool(&s.0, &["clique", &g, "3"]);
    assert_eq!(exit(&found), 0, "stderr: {}", stderr(&found));
    assert!(stdout(&found).starts_with("CLIQUE"));

    let counted = lbtool(&s.0, &["clique", &g, "3", "--count"]);
    assert_eq!(exit(&counted), 0, "stderr: {}", stderr(&counted));
    assert_eq!(stdout(&counted).trim(), "2");

    let exhausted = lbtool(
        &s.0,
        &[
            "clique",
            &g,
            "3",
            "--count",
            "--budget",
            "4",
            "--checkpoint",
            "c.ck",
        ],
    );
    assert_eq!(exit(&exhausted), 3, "stderr: {}", stderr(&exhausted));
    assert!(stderr(&exhausted).contains("resumable"));

    let resumed = lbtool(&s.0, &["clique", &g, "3", "--count", "--resume", "c.ck"]);
    assert_eq!(exit(&resumed), 0, "stderr: {}", stderr(&resumed));
    assert_eq!(stdout(&resumed).trim(), "2");

    let none = lbtool(&s.0, &["clique", &g, "4"]);
    assert_eq!(exit(&none), 0, "stderr: {}", stderr(&none));
    assert_eq!(stdout(&none).trim(), "NONE");
}

#[test]
fn exhaustion_without_a_checkpoint_is_terminal() {
    let s = Scratch::new("terminal");
    let g = s.write("g.graph", TWO_TRIANGLES);
    let out = lbtool(&s.0, &["triangle", &g, "--budget", "4"]);
    assert_eq!(exit(&out), 3, "stderr: {}", stderr(&out));
    assert_eq!(stdout(&out).trim(), "UNKNOWN");
    assert!(
        stderr(&out).contains("terminal"),
        "no saved frontier means terminal exhaustion: {}",
        stderr(&out)
    );
}

#[test]
fn checkpoint_flags_are_rejected_on_unsupported_subcommands() {
    let s = Scratch::new("reject");
    let g = s.write("g.graph", TWO_TRIANGLES);
    let out = lbtool(&s.0, &["treewidth", &g, "--checkpoint", "x.ck"]);
    assert_eq!(exit(&out), 2);
    assert!(stderr(&out).contains("--checkpoint"));
}

#[test]
fn malformed_database_rows_are_positioned_parse_errors() {
    let s = Scratch::new("baddb");
    let db = s.write("bad.db", "rel R 2\n0 1 2\n");
    let out = lbtool(&s.0, &["join", &db, "R(a,b)"]);
    assert_eq!(exit(&out), 1);
    assert!(
        stderr(&out).contains("bad.db:2:1"),
        "diagnostic must carry file:line:col: {}",
        stderr(&out)
    );
}
