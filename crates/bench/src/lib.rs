//! Experiment workloads shared by the `experiments` binary (which prints
//! the EXPERIMENTS.md tables) and the Criterion benches (one per
//! experiment, `benches/e*.rs`).
//!
//! Each `eN` module owns the workload generators and sweep logic for one
//! experiment of DESIGN.md's index; the binary formats the results, the
//! benches time the same closures under Criterion.

#![forbid(unsafe_code)]

pub mod bench_wcoj;
pub mod workloads;

pub use workloads::*;
