//! Regenerates every experiment table of EXPERIMENTS.md (E1–E12).
//!
//! Usage: `cargo run --release -p lb-bench --bin experiments [e1|e2|…|e13|all|smoke]`
//!
//! `bench-wcoj [--check|--write] [path]` maintains the committed WCOJ
//! baseline (`BENCH_wcoj.json` at the repo root): `--check` (the CI
//! default) re-runs the pinned workloads and panics on op-count drift
//! beyond the committed tolerance; `--write` re-pins the file.
//!
//! Each experiment prints a markdown table plus a fitted exponent, the
//! quantity the corresponding theorem of the paper speaks about.
//!
//! `smoke` is the CI entry point: a seconds-fast sanity pass built on the
//! engine layer's machine-independent operation counters instead of
//! wall-clock sweeps, so it is stable on noisy shared runners.

use lb_bench::{adversarial_triangle_db, ktree_csp, partitioned_clique_csp, random_strings};
use lowerbounds::engine::Budget;
use lowerbounds::experiments::{
    fit_exponent, fmt_duration, print_table, time, time_min, SamplePoint,
};
use lowerbounds::graph::generators;
use lowerbounds::join::{agm, binary, wcoj, JoinQuery};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if which == "smoke" {
        smoke();
        return;
    }
    if which == "bench-wcoj" {
        let mode = std::env::args()
            .nth(2)
            .unwrap_or_else(|| "--check".to_string());
        let path = std::env::args()
            .nth(3)
            .unwrap_or_else(|| "BENCH_wcoj.json".to_string());
        bench_wcoj_cmd(&mode, &path);
        return;
    }
    let all = which == "all";
    let run = |name: &str| all || which == name;
    if run("e1") {
        e1_agm_bound();
    }
    if run("e2") {
        e2_wcoj_vs_binary();
    }
    if run("e3") {
        e3_freuder();
    }
    if run("e4") {
        e4_schaefer();
    }
    if run("e5") {
        e5_special();
    }
    if run("e6") {
        e6_clique();
    }
    if run("e7") {
        e7_csp_treewidth();
    }
    if run("e8") {
        e8_domset();
    }
    if run("e9") {
        e9_editdist_ov();
    }
    if run("e10") {
        e10_matmul_triangle();
    }
    if run("e11") {
        e11_hyperclique();
    }
    if run("e12") {
        e12_ayz_sparse();
    }
    if run("e13") {
        e13_acyclic();
    }
}

/// `bench-wcoj` — maintains the committed op-count baseline. `--write`
/// re-pins `path` from a fresh run; `--check` (CI) re-runs the pinned
/// workloads and panics if the leapfrog op counts drifted from the
/// committed file beyond its tolerance. Wall-clock is recorded in the
/// file but never compared — only the machine-independent counters gate.
fn bench_wcoj_cmd(mode: &str, path: &str) {
    use lb_bench::bench_wcoj;
    match mode {
        "--write" => {
            let report = bench_wcoj::run();
            std::fs::write(path, bench_wcoj::to_json(&report)).expect("write baseline file");
            println!(
                "bench-wcoj: pinned {} workloads to {path}",
                report.workloads.len()
            );
        }
        "--check" => {
            let text = std::fs::read_to_string(path).expect("read committed baseline");
            let committed = bench_wcoj::from_json(&text).expect("parse committed baseline");
            let fresh = bench_wcoj::run();
            let problems = bench_wcoj::compare(&committed, &fresh);
            for p in &problems {
                eprintln!("bench-wcoj: {p}");
            }
            assert!(
                problems.is_empty(),
                "bench-wcoj: {} op-count regression(s) against {path}; \
                 if intentional, re-pin with `bench-wcoj --write`",
                problems.len()
            );
            println!(
                "bench-wcoj: {} workloads match {path} (tolerance {}%)",
                committed.workloads.len(),
                committed.tolerance * 100.0
            );
        }
        other => panic!("bench-wcoj: unknown mode `{other}` (use --check or --write)"),
    }
}

/// `smoke` — the CI sanity pass: one budgeted solver per layer over a small
/// size grid, op-count exponents checked with [`stats_sweep`], and a
/// zero-tick budget checked to exhaust instead of mis-reporting a verdict.
fn smoke() {
    use lowerbounds::csp::solver::treewidth_dp;
    use lowerbounds::experiments::stats_sweep;
    use lowerbounds::graphalg::clique::find_clique;
    use lowerbounds::sat::{generators as sgen, DpllSolver};

    let bu = Budget::unlimited();

    // Joins: WCOJ on the AGM worst-case triangle database hits the N^{3/2}
    // output, and its tuple counter scales with the same exponent.
    let pts = stats_sweep(
        &[16, 32, 64],
        |n| {
            let q = JoinQuery::triangle();
            let (db, expected) = agm::worst_case_database(&q, n as u64).unwrap();
            let (out, stats) = wcoj::count(&q, &db, None, &bu).unwrap();
            assert_eq!(u128::from(out.unwrap_sat()), expected);
            stats
        },
        |s| s.tuples,
    );
    let fit = fit_exponent(&pts).unwrap();
    assert!(
        fit.exponent > 1.2 && fit.exponent < 1.8,
        "wcoj tuple exponent {:.2} departs from 3/2",
        fit.exponent
    );
    println!(
        "smoke: wcoj tuple exponent {:.2} (theory 1.5)",
        fit.exponent
    );

    // SAT: DPLL decides, and a zero-tick budget exhausts instead of lying.
    let f = sgen::random_ksat(12, 40, 3, 7);
    let solver = DpllSolver::default();
    assert!(!solver.solve(&f, &bu).0.is_exhausted());
    assert!(solver.solve(&f, &Budget::ticks(0)).0.is_exhausted());
    println!("smoke: dpll decides; zero-tick budget exhausts");

    // CSP: Freuder's treewidth DP agrees with brute force on a k-tree CSP.
    let inst = ktree_csp(2, 10, 3, 7);
    let dp = treewidth_dp::solve_auto(&inst, &bu).0.unwrap_sat();
    let brute = lowerbounds::csp::solver::bruteforce::count(&inst, &bu)
        .0
        .unwrap_sat();
    assert_eq!(dp.count, brute);
    assert!(treewidth_dp::solve_auto(&inst, &Budget::ticks(0))
        .0
        .is_exhausted());
    println!("smoke: treewidth DP count {brute} matches brute force");

    // Graph algorithms: clique search respects the budget.
    let g = generators::gnp(24, 0.5, 7);
    let _ = find_clique(&g, 3, &bu).0.unwrap_decided();
    assert!(find_clique(&g, 3, &Budget::ticks(0)).0.is_exhausted());
    println!("smoke: clique search budgeted");

    println!("smoke: all checks passed");
}

/// E13 — acyclic queries (§4): Yannakakis is linear in input + output;
/// non-semi-join-reduced plans can materialize arbitrarily large dead
/// intermediates on the same inputs.
fn e13_acyclic() {
    use lowerbounds::join::acyclic::{is_empty_acyclic, yannakakis};
    use lowerbounds::join::{Atom, Database, Table};
    let path_query = |len: usize| {
        JoinQuery::new(
            (0..len)
                .map(|i| Atom {
                    relation: format!("R{i}"),
                    attrs: vec![format!("x{i}"), format!("x{}", i + 1)],
                })
                .collect(),
        )
    };
    let mut rows = Vec::new();
    let mut yk_pts = Vec::new();
    for &s in &[50u64, 100, 200, 400] {
        // Dead-end 3-hop path: two s×s grids and a non-matching tail.
        let q = path_query(3);
        let mut grid = Table::new(2);
        for i in 0..s {
            for j in 0..s {
                grid.push(vec![i, j]);
            }
        }
        grid.normalize();
        let mut db = Database::new();
        db.insert("R0", grid.clone());
        db.insert("R1", grid);
        db.insert("R2", Table::from_rows(2, vec![vec![u64::MAX - 1, 0]]));
        let n = (s * s) as f64;

        let bu = Budget::unlimited();
        let (ans, t_yk) = time_min(2, || yannakakis(&q, &db, &bu).unwrap().0.unwrap_sat()).unwrap();
        assert!(ans.is_empty());
        let (_, t_sweep) = time_min(2, || is_empty_acyclic(&q, &db, &bu).unwrap()).unwrap();
        let (_, t_gj) = time_min(2, || wcoj::count(&q, &db, None, &bu).unwrap()).unwrap();
        // Binary plan materializes s³ tuples; keep it to small sizes.
        let bin_cell = if s <= 200 {
            let ((_, stats), t_bin) = time(|| binary::left_deep_join(&q, &db, &bu).unwrap());
            format!("{} ({} tuples)", fmt_duration(t_bin), stats.tuples)
        } else {
            "—".to_string()
        };
        yk_pts.push(SamplePoint {
            size: n,
            value: t_yk.as_secs_f64(),
        });
        rows.push(vec![
            format!("{}", s * s),
            fmt_duration(t_yk),
            fmt_duration(t_sweep),
            fmt_duration(t_gj),
            bin_cell,
        ]);
    }
    let fit = fit_exponent(&yk_pts).unwrap();
    rows.push(vec![
        "fit".into(),
        format!("N^{:.2} (theory 1)", fit.exponent),
        String::new(),
        String::new(),
        String::new(),
    ]);
    println!(
        "{}",
        print_table(
            "E13 — acyclic queries: Yannakakis linear time vs unreduced plans (§4)",
            &[
                "N per relation",
                "Yannakakis",
                "emptiness sweep",
                "generic join",
                "binary plan"
            ],
            &rows
        )
    );
}

/// E1 — Theorems 3.1/3.2: worst-case answer size is exactly N^{ρ*}.
fn e1_agm_bound() {
    let mut rows = Vec::new();
    let mut fits = Vec::new();
    // Per-query N grids keep the materialized answers below ~5M tuples
    // (star-3 has ρ* = 3, so its answers grow as N³).
    let grids: [(&str, JoinQuery, [u64; 4]); 4] = [
        ("triangle", JoinQuery::triangle(), [64, 256, 1024, 4096]),
        ("4-cycle", JoinQuery::cycle(4), [16, 64, 256, 1024]),
        ("star-3", JoinQuery::star(3), [8, 24, 64, 160]),
        ("LW(4)", JoinQuery::loomis_whitney(4), [64, 256, 1024, 4096]),
    ];
    for (name, q, ns) in grids {
        let rho = agm::rho_star(&q).unwrap();
        let mut pts = Vec::new();
        for &n in &ns {
            let (db, predicted) = agm::worst_case_database(&q, n).unwrap();
            let measured = wcoj::count(&q, &db, None, &Budget::unlimited())
                .unwrap()
                .0
                .unwrap_sat();
            assert_eq!(measured as u128, predicted);
            let bound = agm::agm_bound(&q, n).unwrap();
            pts.push(SamplePoint {
                size: n as f64,
                value: measured as f64,
            });
            rows.push(vec![
                name.to_string(),
                n.to_string(),
                format!("{rho}"),
                format!("{bound:.0}"),
                measured.to_string(),
                format!("{:.3}", measured as f64 / bound),
            ]);
        }
        let fit = fit_exponent(&pts).unwrap();
        fits.push(format!(
            "{name}: fitted answer exponent {:.3} (ρ* = {:.3}, R² = {:.4})",
            fit.exponent,
            rho.to_f64(),
            fit.r_squared
        ));
    }
    println!(
        "{}",
        print_table(
            "E1 — AGM bound tightness (Theorems 3.1–3.2)",
            &["query", "N", "ρ*", "N^ρ* bound", "measured answer", "ratio"],
            &rows
        )
    );
    for f in fits {
        println!("  {f}");
    }
    println!();
}

/// E2 — Theorem 3.3: Generic Join vs a binary hash-join plan on the
/// adversarial triangle databases.
fn e2_wcoj_vs_binary() {
    let mut rows = Vec::new();
    let mut wcoj_pts = Vec::new();
    let mut bin_pts = Vec::new();
    for &n in &[400u64, 1600, 6400, 25600, 102400] {
        let (q, db, answer) = adversarial_triangle_db(n);
        let bu = Budget::unlimited();
        let (count, t_wcoj) = time_min(3, || {
            wcoj::count(&q, &db, None, &bu).unwrap().0.unwrap_sat()
        })
        .unwrap();
        assert_eq!(count, answer);
        let ((_, stats), t_bin) =
            time_min(3, || binary::left_deep_join(&q, &db, &bu).unwrap()).unwrap();
        wcoj_pts.push(SamplePoint {
            size: n as f64,
            value: t_wcoj.as_secs_f64(),
        });
        bin_pts.push(SamplePoint {
            size: n as f64,
            value: t_bin.as_secs_f64(),
        });
        rows.push(vec![
            n.to_string(),
            answer.to_string(),
            fmt_duration(t_wcoj),
            fmt_duration(t_bin),
            stats.max_intermediate.to_string(),
        ]);
    }
    println!(
        "{}",
        print_table(
            "E2 — worst-case optimal join vs binary plan (Theorem 3.3)",
            &[
                "N",
                "answer",
                "generic join",
                "binary plan",
                "max intermediate"
            ],
            &rows
        )
    );
    let fw = fit_exponent(&wcoj_pts).unwrap();
    let fb = fit_exponent(&bin_pts).unwrap();
    println!(
        "  generic join time exponent {:.2} (theory ≈ 1); binary plan {:.2} (theory 1.5)",
        fw.exponent, fb.exponent
    );
    println!();
}

/// E3 — Theorem 4.2: Freuder's DP scales as |D|^{k+1}; heuristic ablation.
fn e3_freuder() {
    use lowerbounds::csp::solver::treewidth_dp;
    use lowerbounds::graph::treewidth::{from_elimination_order, min_degree_order, min_fill_order};
    let mut rows = Vec::new();
    for k in [1usize, 2, 3] {
        let mut pts = Vec::new();
        for d in [2usize, 3, 4, 6, 8] {
            let inst = ktree_csp(k, 24, d, 7 + k as u64);
            let (result, t) = time_min(3, || {
                treewidth_dp::solve_auto(&inst, &Budget::unlimited())
                    .0
                    .unwrap_sat()
            })
            .unwrap();
            pts.push(SamplePoint {
                size: d as f64,
                value: t.as_secs_f64(),
            });
            rows.push(vec![
                k.to_string(),
                d.to_string(),
                result.count.to_string(),
                fmt_duration(t),
            ]);
        }
        let fit = fit_exponent(&pts).unwrap();
        rows.push(vec![
            k.to_string(),
            "fit".into(),
            format!("exponent {:.2}", fit.exponent),
            format!("theory ≤ {}", k + 1),
        ]);
    }
    println!(
        "{}",
        print_table(
            "E3 — Freuder's |D|^{k+1} dynamic program (Theorem 4.2)",
            &["k (treewidth)", "|D|", "solutions", "DP time"],
            &rows
        )
    );
    // Ablation: decomposition heuristic quality on random graphs.
    let mut ab = Vec::new();
    for seed in 0..5u64 {
        let g = generators::gnp(40, 0.12, seed);
        let wd = from_elimination_order(&g, &min_degree_order(&g)).width();
        let wf = from_elimination_order(&g, &min_fill_order(&g)).width();
        ab.push(vec![seed.to_string(), wd.to_string(), wf.to_string()]);
    }
    println!(
        "{}",
        print_table(
            "E3a — ablation: elimination heuristics on G(40, 0.12)",
            &["seed", "min-degree width", "min-fill width"],
            &ab
        )
    );
}

/// E4 — Schaefer (§4): polynomial classes vs NP-hard 3SAT, plus the DPLL
/// feature ablation.
fn e4_schaefer() {
    use lowerbounds::sat::schaefer::{
        solve_in_class, BoolCspInstance, BooleanRelation, SchaeferClass,
    };
    use lowerbounds::sat::{generators as sgen, Branching, DpllConfig, DpllSolver};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let rel = |arity: usize, rows: &[&[u8]]| -> BooleanRelation {
        BooleanRelation::new(
            arity,
            rows.iter()
                .map(|r| r.iter().map(|&b| b == 1).collect())
                .collect(),
        )
    };
    let horn_lib = vec![
        rel(2, &[&[0, 0], &[0, 1], &[1, 1]]),
        rel(
            3,
            &[&[0, 0, 0], &[0, 0, 1], &[0, 1, 1], &[1, 1, 1], &[0, 1, 0]],
        ),
    ];
    let xor_lib = vec![rel(2, &[&[0, 1], &[1, 0]]), rel(2, &[&[0, 0], &[1, 1]])];

    let make = |lib: &Vec<BooleanRelation>, n: usize, m: usize, seed: u64| -> BoolCspInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let constraints = (0..m)
            .map(|_| {
                let r = rng.gen_range(0..lib.len());
                let scope = (0..lib[r].arity()).map(|_| rng.gen_range(0..n)).collect();
                (scope, r)
            })
            .collect();
        BoolCspInstance {
            num_vars: n,
            relations: lib.clone(),
            constraints,
        }
    };

    let mut rows = Vec::new();
    for n in [50usize, 100, 200, 400] {
        let bu = Budget::unlimited();
        let horn = make(&horn_lib, n, 3 * n, n as u64);
        let (_, t_horn) = time_min(3, || solve_in_class(&horn, SchaeferClass::Horn, &bu)).unwrap();
        let xor = make(&xor_lib, n, 2 * n, n as u64);
        let (_, t_xor) = time_min(3, || solve_in_class(&xor, SchaeferClass::Affine, &bu)).unwrap();
        rows.push(vec![
            n.to_string(),
            fmt_duration(t_horn),
            fmt_duration(t_xor),
        ]);
    }
    println!(
        "{}",
        print_table(
            "E4 — Schaefer's tractable classes scale polynomially",
            &["n", "Horn fixpoint", "affine Gaussian"],
            &rows
        )
    );

    // The NP-hard side: DPLL on phase-transition 3SAT, with ablation.
    let mut rows = Vec::new();
    for n in [16usize, 20, 24, 28] {
        let f = sgen::sparse_3sat(n, 4.27, 99);
        let bu = Budget::unlimited();
        let full = DpllSolver::new(DpllConfig::default());
        let ((_, stats), t_full) = time(|| full.solve(&f, &bu));
        let no_up = DpllSolver::new(DpllConfig {
            unit_propagation: false,
            pure_literal: false,
            branching: Branching::FirstUnassigned,
        });
        let ((_, stats2), t_plain) = time(|| no_up.solve(&f, &bu));
        rows.push(vec![
            n.to_string(),
            fmt_duration(t_full),
            stats.nodes.to_string(),
            fmt_duration(t_plain),
            stats2.nodes.to_string(),
        ]);
    }
    println!(
        "{}",
        print_table(
            "E4a — DPLL on 3SAT at the phase transition (m = 4.27n): still exponential (ETH)",
            &["n", "DPLL full", "decisions", "DPLL no-prop", "decisions"],
            &rows
        )
    );
}

/// E5 — SPECIAL CSP (Definition 4.3): quasipolynomial scaling of the
/// dedicated solver, via the Clique → Special reduction.
fn e5_special() {
    use lowerbounds::csp::solver::special::solve_special;
    use lowerbounds::reductions::clique_to_special;
    let g = generators::gnp(14, 0.5, 5);
    let mut rows = Vec::new();
    for k in [2usize, 3, 4, 5, 6] {
        let inst = clique_to_special::reduce(&g, k);
        let n_vars = inst.num_vars;
        let (result, t) = time_min(2, || {
            solve_special(&inst, &Budget::unlimited())
                .expect("special")
                .0
                .unwrap_sat()
        })
        .unwrap();
        let found = result.solution.is_some();
        rows.push(vec![
            k.to_string(),
            n_vars.to_string(),
            format!("{found}"),
            fmt_duration(t),
            format!("{:.1}", (n_vars as f64).log2()),
        ]);
    }
    println!(
        "{}",
        print_table(
            "E5 — SPECIAL CSP: n^{O(log n)} solver through the Clique reduction (k ≤ log₂ n)",
            &[
                "k",
                "|V| = k + 2^k",
                "clique found",
                "special solver",
                "log₂|V|"
            ],
            &rows
        )
    );
    println!("  The clique part is brute-forced over |D|^k with k ≤ log₂|V| — the");
    println!("  quasipolynomial budget the paper pins between W[1]-hardness and ETH.");
    println!();
}

/// E6 — Theorem 6.3 / k-clique conjecture: brute force n^k vs
/// Nešetřil–Poljak n^{ωk/3}.
fn e6_clique() {
    use lowerbounds::graphalg::clique::{find_clique, find_clique_neipol};
    // Turán graphs T(n, k−1): the densest K_k-free graphs — both
    // algorithms must exhaust their search space (no lucky early exit).
    let mut rows = Vec::new();
    for k in [4usize, 5] {
        let mut brute_pts = Vec::new();
        let mut np_pts = Vec::new();
        for &n in &[24usize, 36, 54, 80] {
            let g = generators::turan(n, k - 1);
            let bu = Budget::unlimited();
            let (found_b, t_b) = time(|| find_clique(&g, k, &bu).0.is_sat());
            let (found_np, t_np) = time(|| find_clique_neipol(&g, k, &bu).0.is_sat());
            assert!(!found_b && !found_np, "Turán graph is K_k-free");
            brute_pts.push(SamplePoint {
                size: n as f64,
                value: t_b.as_secs_f64().max(1e-9),
            });
            np_pts.push(SamplePoint {
                size: n as f64,
                value: t_np.as_secs_f64().max(1e-9),
            });
            rows.push(vec![
                k.to_string(),
                n.to_string(),
                fmt_duration(t_b),
                fmt_duration(t_np),
            ]);
        }
        let fb = fit_exponent(&brute_pts).unwrap();
        let fnp = fit_exponent(&np_pts).unwrap();
        rows.push(vec![
            k.to_string(),
            "fit".into(),
            format!("n^{:.1} (≈ n^{})", fb.exponent, k - 1),
            format!("n^{:.1}", fnp.exponent),
        ]);
    }
    println!(
        "{}",
        print_table(
            "E6 — k-Clique on K_k-free Turán graphs (Theorem 6.3, §8)",
            &["k", "n", "brute force", "NP (matmul)"],
            &rows
        )
    );
    println!("  On NO instances branch-and-prune exhausts all ~n^(k-1) partial cliques;");
    println!("  Nešetřil–Poljak trades that for matrix multiplication on C(n, k/3)-clique");
    println!("  auxiliary graphs — the ωk/3 exponent the k-clique conjecture fixes.");
    println!();
}

/// E7 — Theorems 6.4–6.7: CSP time grows as |D|^{Θ(tw)} on clique primal
/// graphs; backtracking ablation.
fn e7_csp_treewidth() {
    use lowerbounds::csp::solver::treewidth_dp;
    use lowerbounds::csp::solver::{backtracking, BacktrackConfig};
    let mut rows = Vec::new();
    for k in [2usize, 3, 4] {
        let mut pts = Vec::new();
        let grid: [usize; 4] = match k {
            2 => [20, 40, 80, 160],
            3 => [12, 24, 48, 96],
            _ => [12, 20, 32, 48],
        };
        for d in grid {
            // p = 0.5: dense pair relations keep the DP tables near their
            // |D|^j worst case instead of collapsing by pruning.
            let inst = partitioned_clique_csp(k, d, 0.5, 11);
            let (res, t) = time_min(2, || {
                treewidth_dp::solve_auto(&inst, &Budget::unlimited())
                    .0
                    .unwrap_sat()
            })
            .unwrap();
            pts.push(SamplePoint {
                size: d as f64,
                value: t.as_secs_f64().max(1e-9),
            });
            rows.push(vec![
                k.to_string(),
                (k - 1).to_string(),
                d.to_string(),
                res.count.to_string(),
                fmt_duration(t),
            ]);
        }
        let fit = fit_exponent(&pts).unwrap();
        rows.push(vec![
            k.to_string(),
            (k - 1).to_string(),
            "fit".into(),
            format!("|D|^{:.1}", fit.exponent),
            format!("theory |D|^{k}"),
        ]);
    }
    println!(
        "{}",
        print_table(
            "E7 — binary CSP on K_k primal graphs: |D|^{tw+1} (Theorems 6.4–6.7)",
            &["k vars", "tw", "|D|", "solutions", "treewidth DP"],
            &rows
        )
    );

    // Ablation: MRV / forward checking on the same instances.
    let mut ab = Vec::new();
    let inst = partitioned_clique_csp(4, 16, 0.3, 11);
    for (mrv, fc) in [(false, false), (true, false), (false, true), (true, true)] {
        let cfg = BacktrackConfig {
            mrv,
            forward_checking: fc,
        };
        let ((_, stats), t) = time(|| backtracking::solve(&inst, cfg, &Budget::unlimited()));
        ab.push(vec![
            mrv.to_string(),
            fc.to_string(),
            stats.nodes.to_string(),
            fmt_duration(t),
        ]);
    }
    println!(
        "{}",
        print_table(
            "E7a — ablation: backtracking features on the k=4, |D|=16 instance",
            &["MRV", "forward checking", "nodes", "time"],
            &ab
        )
    );
}

/// E8 — Theorems 7.1/7.2: dominating set scales as n^k; the CSP route
/// agrees.
fn e8_domset() {
    use lowerbounds::graphalg::domset::find_dominating_set_brute;
    use lowerbounds::reductions::domset_to_csp;
    let mut rows = Vec::new();
    for k in [2usize, 3] {
        let mut pts = Vec::new();
        for &n in &[20usize, 30, 45, 65] {
            // Sparse graphs: no small dominating set → full enumeration.
            let g = generators::gnm(n, n, (n * k) as u64);
            let (found, t) = time(|| {
                find_dominating_set_brute(&g, k, &Budget::unlimited())
                    .0
                    .is_sat()
            });
            pts.push(SamplePoint {
                size: n as f64,
                value: t.as_secs_f64().max(1e-9),
            });
            rows.push(vec![
                k.to_string(),
                n.to_string(),
                found.to_string(),
                fmt_duration(t),
            ]);
        }
        let fit = fit_exponent(&pts).unwrap();
        rows.push(vec![
            k.to_string(),
            "fit".into(),
            String::new(),
            format!("n^{:.1} (theory n^{k})", fit.exponent),
        ]);
    }
    println!(
        "{}",
        print_table(
            "E8 — k-Dominating-Set enumeration: n^{k} (Theorem 7.1)",
            &["k", "n", "found", "brute force"],
            &rows
        )
    );
    // Theorem 7.2 route: solve via the treewidth-k CSP.
    let mut rows = Vec::new();
    for seed in 0..4u64 {
        let g = generators::gnp(8, 0.3, seed);
        let t = 2;
        let inst = domset_to_csp::reduce(&g, t);
        let bu = Budget::unlimited();
        let (res, dt) = time(|| {
            lowerbounds::csp::solver::treewidth_dp::solve_auto(&inst, &bu)
                .0
                .unwrap_sat()
        });
        let direct = lowerbounds::graphalg::domset::find_dominating_set_branching(&g, t, &bu)
            .0
            .is_sat();
        assert_eq!(res.solution.is_some(), direct);
        rows.push(vec![
            seed.to_string(),
            direct.to_string(),
            fmt_duration(dt),
            format!("{}", inst.domain_size),
        ]);
    }
    println!(
        "{}",
        print_table(
            "E8a — Theorem 7.2 reduction: 2-DomSet solved as a treewidth-2 CSP",
            &["seed", "dominating set exists", "Freuder DP", "|D|"],
            &rows
        )
    );
}

/// E9 — SETH fine-grained: edit distance O(n²); OV quadratic scan; SAT→OV.
fn e9_editdist_ov() {
    use lowerbounds::graphalg::editdist::edit_distance;
    use lowerbounds::graphalg::ov::find_orthogonal_pair;
    let mut rows = Vec::new();
    let mut pts = Vec::new();
    for &n in &[500usize, 1000, 2000, 4000] {
        let (a, b) = random_strings(n, n as u64);
        let (d, t) = time_min(3, || {
            edit_distance(&a, &b, &Budget::unlimited()).0.unwrap_sat()
        })
        .unwrap();
        pts.push(SamplePoint {
            size: n as f64,
            value: t.as_secs_f64(),
        });
        rows.push(vec![n.to_string(), d.to_string(), fmt_duration(t)]);
    }
    let fit = fit_exponent(&pts).unwrap();
    rows.push(vec![
        "fit".into(),
        String::new(),
        format!("n^{:.2} (theory n²)", fit.exponent),
    ]);
    println!(
        "{}",
        print_table(
            "E9 — edit distance DP: quadratic and (per SETH) optimally so",
            &["n", "distance", "DP time"],
            &rows
        )
    );

    let mut rows = Vec::new();
    let mut pts = Vec::new();
    for &n in &[500usize, 1000, 2000, 4000] {
        // NO instances (a shared hot coordinate): the scan must check all
        // n² pairs — the case the OV conjecture says cannot be avoided.
        let (a, b) = lb_bench::random_vector_sets_no_pair(n, 64, 0.35, n as u64);
        let (found, t) = time_min(3, || {
            find_orthogonal_pair(&a, &b, &Budget::unlimited())
                .0
                .is_sat()
        })
        .unwrap();
        assert!(!found);
        pts.push(SamplePoint {
            size: n as f64,
            value: t.as_secs_f64().max(1e-9),
        });
        rows.push(vec![n.to_string(), found.to_string(), fmt_duration(t)]);
    }
    let fit = fit_exponent(&pts).unwrap();
    rows.push(vec![
        "fit".into(),
        String::new(),
        format!("n^{:.2} (theory n²)", fit.exponent),
    ]);
    println!(
        "{}",
        print_table(
            "E9a — Orthogonal Vectors pair scan on NO instances (d = 64)",
            &["n vectors/side", "pair found", "scan time"],
            &rows
        )
    );
    // SAT → OV spot check.
    let f = lowerbounds::sat::generators::random_ksat(16, 70, 3, 4);
    let (sat, t) = time(|| {
        lowerbounds::reductions::sat_to_ov::decide_via_ov(&f, &Budget::unlimited())
            .0
            .is_sat()
    });
    println!(
        "  SAT→OV on n=16, m=70: satisfiable = {sat}, decided via 2·2^8 vectors in {}",
        fmt_duration(t)
    );
    println!();
}

/// E10 — §8 k-clique conjecture backdrop: matrix multiplication exponents.
fn e10_matmul_triangle() {
    use lowerbounds::graphalg::matmul::IntMatrix;
    use lowerbounds::graphalg::triangle::{find_triangle_matmul, find_triangle_naive};
    let mut rows = Vec::new();
    let mut naive_pts = Vec::new();
    let mut strassen_pts = Vec::new();
    for &n in &[128usize, 256, 512] {
        let g = generators::gnp(n, 0.5, n as u64);
        let a = IntMatrix::adjacency(&g);
        let (_, t_naive) = time(|| a.multiply_naive(&a));
        let (_, t_strassen) = time(|| a.multiply_strassen(&a));
        naive_pts.push(SamplePoint {
            size: n as f64,
            value: t_naive.as_secs_f64(),
        });
        strassen_pts.push(SamplePoint {
            size: n as f64,
            value: t_strassen.as_secs_f64(),
        });
        let bu = Budget::unlimited();
        let (tri_mm, t_mm) = time(|| find_triangle_matmul(&g, &bu).0.is_sat());
        let (tri_nv, t_nv) = time(|| find_triangle_naive(&g, &bu).0.is_sat());
        assert_eq!(tri_mm, tri_nv);
        rows.push(vec![
            n.to_string(),
            fmt_duration(t_naive),
            fmt_duration(t_strassen),
            fmt_duration(t_nv),
            fmt_duration(t_mm),
        ]);
    }
    let fn_ = fit_exponent(&naive_pts).unwrap();
    let fs = fit_exponent(&strassen_pts).unwrap();
    rows.push(vec![
        "fit".into(),
        format!("n^{:.2} (≈3)", fn_.exponent),
        format!("n^{:.2} (≈2.81)", fs.exponent),
        String::new(),
        String::new(),
    ]);
    println!(
        "{}",
        print_table(
            "E10 — matrix multiplication and triangle detection (§8, ω)",
            &[
                "n",
                "naive MM",
                "Strassen MM",
                "naive triangle",
                "boolean-MM triangle"
            ],
            &rows
        )
    );
}

/// E11 — §8 hyperclique conjecture: d = 3 brute force vs d = 2 matmul.
fn e11_hyperclique() {
    use lowerbounds::graphalg::clique::find_clique_neipol;
    use lowerbounds::graphalg::hyperclique::find_hyperclique;
    // Turán-style hyperclique-free hypergraphs: 4 classes, rainbow triples
    // only — dense but with no 5-hyperclique, so the search must exhaust.
    let mut rows = Vec::new();
    let mut pts3 = Vec::new();
    let k = 5;
    for &n in &[16usize, 24, 36, 52] {
        let h = generators::turan_hypergraph(n, 3, k - 1);
        let (found, t3) = time(|| find_hyperclique(&h, k, &Budget::unlimited()).0.is_sat());
        assert!(!found, "Turán hypergraph is 5-hyperclique-free");
        // The d = 2 comparison: Turán graph, same class structure.
        let g = generators::turan(n, k - 1);
        let (found2, t2) = time(|| find_clique_neipol(&g, k, &Budget::unlimited()).0.is_sat());
        assert!(!found2);
        pts3.push(SamplePoint {
            size: n as f64,
            value: t3.as_secs_f64().max(1e-9),
        });
        rows.push(vec![n.to_string(), fmt_duration(t3), fmt_duration(t2)]);
    }
    let fit = fit_exponent(&pts3).unwrap();
    rows.push(vec![
        "fit".into(),
        format!("n^{:.1}", fit.exponent),
        "(matmul helps only d = 2)".into(),
    ]);
    println!(
        "{}",
        print_table(
            "E11 — 5-hyperclique in 3-uniform Turán hypergraphs: no matmul shortcut (§8)",
            &["n", "d = 3 brute", "d = 2 Nešetřil–Poljak"],
            &rows
        )
    );
}

/// E12 — strong triangle conjecture: AYZ on sparse inputs and the Boolean
/// triangle join.
fn e12_ayz_sparse() {
    use lowerbounds::graphalg::triangle::{
        find_triangle_ayz, find_triangle_matmul, find_triangle_naive,
    };
    use lowerbounds::join::boolean;
    let mut rows = Vec::new();
    let mut ayz_pts = Vec::new();
    for &m in &[2000usize, 8000, 32000, 128000] {
        let n = m / 2; // sparse: average degree 4
        let g = generators::gnm(n, m, m as u64);
        let bu = Budget::unlimited();
        let (r_ayz, t_ayz) = time_min(2, || find_triangle_ayz(&g, &bu).0.is_sat()).unwrap();
        let (r_nv, t_nv) = time_min(2, || find_triangle_naive(&g, &bu).0.is_sat()).unwrap();
        assert_eq!(r_ayz, r_nv);
        // Dense MM route is hopeless at this n; only time it while small.
        let mm_cell = if n <= 4000 {
            let (r_mm, t_mm) = time(|| find_triangle_matmul(&g, &bu).0.is_sat());
            assert_eq!(r_mm, r_nv);
            fmt_duration(t_mm)
        } else {
            "—".to_string()
        };
        ayz_pts.push(SamplePoint {
            size: m as f64,
            value: t_ayz.as_secs_f64().max(1e-9),
        });
        rows.push(vec![
            m.to_string(),
            r_ayz.to_string(),
            fmt_duration(t_ayz),
            fmt_duration(t_nv),
            mm_cell,
        ]);
    }
    let fit = fit_exponent(&ayz_pts).unwrap();
    rows.push(vec![
        "fit".into(),
        String::new(),
        format!("m^{:.2} (theory ≤ 1.41 w/ ω=2.81)", fit.exponent),
        String::new(),
        String::new(),
    ]);
    println!(
        "{}",
        print_table(
            "E12 — sparse triangle detection (strong triangle conjecture, §8)",
            &["m", "triangle", "AYZ", "naive edge-scan", "dense MM"],
            &rows
        )
    );
    // Boolean triangle join query → tripartite graph → AYZ.
    let q = JoinQuery::triangle();
    let db = lowerbounds::join::generators::random_binary_database(&q, 4000, 1500, 9);
    let bu = Budget::unlimited();
    let (empty_gj, t_gj) = time(|| {
        boolean::is_answer_empty(&q, &db, &bu)
            .unwrap()
            .0
            .unwrap_sat()
    });
    let ((g, _), _) = time(|| boolean::triangle_database_to_graph(&q, &db).unwrap());
    let (tri, t_ayz) = time(|| find_triangle_ayz(&g, &bu).0.is_sat());
    assert_eq!(!empty_gj, tri);
    println!(
        "  Boolean triangle join (N = 4000/relation): generic-join early exit {} vs AYZ-on-graph {} — answers agree.",
        fmt_duration(t_gj),
        fmt_duration(t_ayz)
    );
    println!();
}
