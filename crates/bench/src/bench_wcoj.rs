//! The committed WCOJ perf trajectory: pinned workloads, machine-independent
//! op-count baselines, and the drift check CI runs against `BENCH_wcoj.json`.
//!
//! Each [`Workload`] is fully pinned (query shape, generator seed, sizes),
//! so the leapfrog engine's [`RunStats`] are bit-for-bit reproducible on any
//! machine — that is the side CI asserts. Wall-clock is recorded alongside
//! as *informational* context (useful for eyeballing a local run, never
//! compared: shared runners are too noisy). The frozen pre-leapfrog
//! machine's op counts ride along in the same file so the skew win the
//! heavy/light split delivers is recorded, not just claimed.
//!
//! The JSON codec is hand-rolled (writer + minimal recursive-descent
//! reader) because the workspace is std-only by policy; the format is the
//! flat schema below, nothing more.

use lowerbounds::engine::{Budget, RunStats};
use lowerbounds::experiments::time;
use lowerbounds::join::{generators, reference, wcoj, Database, JoinQuery, Table};

/// Bumped when the workload list or JSON schema changes shape.
pub const SCHEMA: &str = "bench-wcoj-v1";

/// Relative op-count drift tolerated by [`compare`] before CI fails.
/// Op counts are deterministic, so any drift means the algorithm changed;
/// the tolerance only keeps genuinely cosmetic changes (a handful of ops
/// on a small workload) from demanding a ceremony re-pin.
pub const TOLERANCE: f64 = 0.05;

/// One pinned workload instance.
pub struct Workload {
    /// Stable identifier, the JSON key CI compares by.
    pub name: &'static str,
    /// What the workload exercises, for the README table.
    pub what: &'static str,
    query: JoinQuery,
    db: Database,
}

/// The measured baselines of one workload.
#[derive(Clone, Debug, PartialEq)]
pub struct Measurement {
    pub name: String,
    /// The (algorithm-independent) answer count.
    pub answer: u64,
    /// Leapfrog engine op counters — the compared side.
    pub leapfrog: RunStats,
    /// Frozen pre-leapfrog generic join, for the recorded skew win.
    pub reference: RunStats,
    /// Informational wall-clock of the leapfrog run, microseconds.
    pub wall_clock_us: u64,
}

/// A full bench report (what `BENCH_wcoj.json` holds).
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    pub schema: String,
    pub tolerance: f64,
    pub workloads: Vec<Measurement>,
}

/// The disjoint heavy-hitter triangle: one hub value shared by `R.a` and
/// `S.a` plus long disjoint tails. The old generic join probes every tail
/// value; leapfrog gallops over both tails in O(log) seeks — the workload
/// that records the skew win.
fn heavy_hitter_db(hub: u64, tail: u64) -> Database {
    let mut db = Database::new();
    let mut r: Vec<Vec<u64>> = (0..hub).map(|b| vec![0, b]).collect();
    r.extend((1..=tail).map(|i| vec![i, i]));
    db.insert("R", Table::from_rows(2, r));
    let mut s: Vec<Vec<u64>> = (0..hub).map(|c| vec![0, c]).collect();
    s.extend((1..=tail).map(|i| vec![10_000 + i, i]));
    db.insert("S", Table::from_rows(2, s));
    let mut t: Vec<Vec<u64>> = (0..hub).map(|x| vec![x, x]).collect();
    t.extend((0..hub).map(|x| vec![x, (x + 1) % hub]));
    db.insert("T", Table::from_rows(2, t));
    db
}

/// The pinned workload list. Order is stable; names are the compare keys.
pub fn workloads() -> Vec<Workload> {
    let triangle = JoinQuery::triangle();
    let (agm_db, _) =
        // lb-lint: allow(no-panic) -- invariant: the pinned size 256 is a valid AGM instance size
        lowerbounds::join::agm::worst_case_database(&triangle, 256).expect("pinned size");
    vec![
        Workload {
            name: "triangle_uniform",
            what: "triangle over uniform random pairs",
            query: JoinQuery::triangle(),
            db: generators::random_binary_database(&JoinQuery::triangle(), 400, 40, 0xBEEF1),
        },
        Workload {
            name: "cycle4_uniform",
            what: "4-cycle over uniform random pairs",
            query: JoinQuery::cycle(4),
            db: generators::random_binary_database(&JoinQuery::cycle(4), 300, 28, 0xBEEF2),
        },
        Workload {
            name: "clique4_uniform",
            what: "4-clique (6 edge atoms) over uniform random pairs",
            query: JoinQuery::clique(4),
            db: generators::random_binary_database(&JoinQuery::clique(4), 180, 16, 0xBEEF3),
        },
        Workload {
            name: "triangle_agm_worst",
            what: "Theorem 3.2 AGM worst-case triangle database (n = 256)",
            query: triangle,
            db: agm_db,
        },
        Workload {
            name: "triangle_skew_zipf",
            what: "triangle over Zipf-like heavy-hitter pairs",
            query: JoinQuery::triangle(),
            db: generators::skewed_binary_database(&JoinQuery::triangle(), 500, 64, 0xBEEF4),
        },
        Workload {
            name: "skew_heavy_hitter",
            what: "hub value + long disjoint tails (the galloping showcase)",
            query: JoinQuery::triangle(),
            db: heavy_hitter_db(32, 400),
        },
    ]
}

/// Runs every pinned workload on both engines and collects the report.
pub fn run() -> Report {
    let bu = Budget::unlimited();
    let workloads = workloads()
        .into_iter()
        .map(|w| {
            let ((out, leapfrog), wall) =
                // lb-lint: allow(no-panic) -- invariant: pinned workloads are well-formed by construction
                time(|| wcoj::count(&w.query, &w.db, None, &bu).expect("pinned instance"));
            let answer = out.unwrap_sat();
            let (ref_out, reference) =
                // lb-lint: allow(no-panic) -- invariant: pinned workloads are well-formed by construction
                reference::count(&w.query, &w.db, None, &bu).expect("pinned instance");
            assert_eq!(
                ref_out.unwrap_sat(),
                answer,
                "{}: engines disagree on the answer",
                w.name
            );
            Measurement {
                name: w.name.to_string(),
                answer,
                leapfrog,
                reference,
                wall_clock_us: wall.as_micros().min(u128::from(u64::MAX)) as u64,
            }
        })
        .collect();
    Report {
        schema: SCHEMA.to_string(),
        tolerance: TOLERANCE,
        workloads,
    }
}

// ---------------------------------------------------------------------------
// JSON writer.
// ---------------------------------------------------------------------------

fn stats_json(out: &mut String, key: &str, s: &RunStats) {
    out.push_str(&format!(
        "      \"{key}\": {{\"nodes\": {}, \"propagations\": {}, \"trie_advances\": {}, \"tuples\": {}, \"backtracks\": {}, \"max_intermediate\": {}, \"total_ops\": {}}}",
        s.nodes, s.propagations, s.trie_advances, s.tuples, s.backtracks, s.max_intermediate,
        s.total_ops()
    ));
}

/// Serializes a report as stable, diff-friendly JSON (one workload per
/// block, keys in a fixed order).
pub fn to_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{}\",\n", report.schema));
    out.push_str(&format!("  \"tolerance\": {},\n", report.tolerance));
    out.push_str("  \"workloads\": [\n");
    for (i, m) in report.workloads.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", m.name));
        out.push_str(&format!("      \"answer\": {},\n", m.answer));
        stats_json(&mut out, "leapfrog", &m.leapfrog);
        out.push_str(",\n");
        stats_json(&mut out, "reference", &m.reference);
        out.push_str(",\n");
        out.push_str(&format!("      \"wall_clock_us\": {}\n", m.wall_clock_us));
        out.push_str(if i + 1 < report.workloads.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// JSON reader: a minimal recursive-descent parser for exactly the subset
// the writer emits (objects, arrays, strings, non-negative numbers).
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Str(String),
    Num(f64),
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

type ParseResult<T> = Result<T, String>;

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            at: 0,
        }
    }

    fn error<T>(&self, what: &str) -> ParseResult<T> {
        Err(format!("byte {}: {what}", self.at))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.at).copied()
    }

    fn consume(&mut self, b: u8) -> ParseResult<()> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            self.error(&format!("expected `{}`", b as char))
        }
    }

    fn string(&mut self) -> ParseResult<String> {
        self.consume(b'"')?;
        let start = self.at;
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b'"' {
                let s = std::str::from_utf8(self.bytes.get(start..self.at).unwrap_or(&[]))
                    .map_err(|_| "invalid UTF-8 in string".to_string())?
                    .to_string();
                self.at += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return self.error("escapes are not part of the bench schema");
            }
            self.at += 1;
        }
        self.error("unterminated string")
    }

    fn number(&mut self) -> ParseResult<f64> {
        self.skip_ws();
        let start = self.at;
        while self.bytes.get(self.at).is_some_and(|b| {
            b.is_ascii_digit() || *b == b'.' || *b == b'-' || *b == b'e' || *b == b'E' || *b == b'+'
        }) {
            self.at += 1;
        }
        let text = std::str::from_utf8(self.bytes.get(start..self.at).unwrap_or(&[]))
            .map_err(|_| "invalid UTF-8 in number".to_string())?;
        text.parse::<f64>()
            .map_err(|e| format!("byte {start}: bad number `{text}`: {e}"))
    }

    fn value(&mut self) -> ParseResult<Json> {
        match self.peek() {
            Some(b'{') => {
                self.at += 1;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.at += 1;
                    return Ok(Json::Object(fields));
                }
                loop {
                    let key = self.string()?;
                    self.consume(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(Json::Object(fields));
                        }
                        _ => return self.error("expected `,` or `}`"),
                    }
                }
            }
            Some(b'[') => {
                self.at += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.at += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(Json::Array(items));
                        }
                        _ => return self.error("expected `,` or `]`"),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b) if b.is_ascii_digit() || b == b'-' => Ok(Json::Num(self.number()?)),
            _ => self.error("expected a value"),
        }
    }
}

impl Json {
    fn field<'a>(&'a self, key: &str) -> ParseResult<&'a Json> {
        match self {
            Json::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`")),
            _ => Err(format!("`{key}` looked up on a non-object")),
        }
    }

    fn as_u64(&self) -> ParseResult<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
            _ => Err("expected a non-negative integer".to_string()),
        }
    }

    fn as_f64(&self) -> ParseResult<f64> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err("expected a number".to_string()),
        }
    }

    fn as_str(&self) -> ParseResult<&str> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err("expected a string".to_string()),
        }
    }
}

fn stats_from(v: &Json) -> ParseResult<RunStats> {
    Ok(RunStats {
        nodes: v.field("nodes")?.as_u64()?,
        propagations: v.field("propagations")?.as_u64()?,
        trie_advances: v.field("trie_advances")?.as_u64()?,
        tuples: v.field("tuples")?.as_u64()?,
        backtracks: v.field("backtracks")?.as_u64()?,
        max_intermediate: v.field("max_intermediate")?.as_u64()?,
    })
}

/// Parses a committed `BENCH_wcoj.json`.
pub fn from_json(text: &str) -> ParseResult<Report> {
    let mut p = Parser::new(text);
    let root = p.value()?;
    let schema = root.field("schema")?.as_str()?.to_string();
    if schema != SCHEMA {
        return Err(format!("schema `{schema}` is not `{SCHEMA}`"));
    }
    let tolerance = root.field("tolerance")?.as_f64()?;
    let mut workloads = Vec::new();
    let Json::Array(items) = root.field("workloads")? else {
        return Err("`workloads` must be an array".to_string());
    };
    for item in items {
        workloads.push(Measurement {
            name: item.field("name")?.as_str()?.to_string(),
            answer: item.field("answer")?.as_u64()?,
            leapfrog: stats_from(item.field("leapfrog")?)?,
            reference: stats_from(item.field("reference")?)?,
            wall_clock_us: item.field("wall_clock_us")?.as_u64()?,
        });
    }
    Ok(Report {
        schema,
        tolerance,
        workloads,
    })
}

// ---------------------------------------------------------------------------
// Drift check.
// ---------------------------------------------------------------------------

/// Compares a fresh run against the committed baseline: answers must match
/// exactly, leapfrog op counts within `committed.tolerance` relative drift
/// (both directions — an op-count *improvement* beyond tolerance also
/// demands a conscious re-pin). Wall-clock is never compared. Returns the
/// list of human-readable violations (empty = green).
pub fn compare(committed: &Report, fresh: &Report) -> Vec<String> {
    let mut problems = Vec::new();
    for want in &committed.workloads {
        let Some(got) = fresh.workloads.iter().find(|m| m.name == want.name) else {
            problems.push(format!(
                "{}: workload missing from the fresh run",
                want.name
            ));
            continue;
        };
        if got.answer != want.answer {
            problems.push(format!(
                "{}: answer {} ≠ committed {}",
                want.name, got.answer, want.answer
            ));
        }
        let w = want.leapfrog.total_ops() as f64;
        let g = got.leapfrog.total_ops() as f64;
        let drift = if w == 0.0 {
            if g == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (g - w).abs() / w
        };
        if drift > committed.tolerance {
            problems.push(format!(
                "{}: leapfrog total_ops {} drifted {:.1}% from committed {} (tolerance {:.0}%)",
                want.name,
                got.leapfrog.total_ops(),
                drift * 100.0,
                want.leapfrog.total_ops(),
                committed.tolerance * 100.0
            ));
        }
    }
    for got in &fresh.workloads {
        if !committed.workloads.iter().any(|m| m.name == got.name) {
            problems.push(format!(
                "{}: new workload not in the committed baseline (re-pin with --write)",
                got.name
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_exactly() {
        let report = Report {
            schema: SCHEMA.to_string(),
            tolerance: TOLERANCE,
            workloads: vec![Measurement {
                name: "w".into(),
                answer: 7,
                leapfrog: RunStats {
                    nodes: 1,
                    propagations: 0,
                    trie_advances: 2,
                    tuples: 7,
                    backtracks: 0,
                    max_intermediate: 3,
                },
                reference: RunStats::default(),
                wall_clock_us: 12,
            }],
        };
        let parsed = from_json(&to_json(&report)).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn compare_flags_drift_and_blesses_identity() {
        let a = run_small();
        assert!(compare(&a, &a).is_empty());
        let mut b = a.clone();
        b.workloads[0].leapfrog.nodes *= 3;
        let problems = compare(&a, &b);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("drifted"));
        let mut c = a.clone();
        c.workloads[0].answer += 1;
        assert!(compare(&a, &c)[0].contains("answer"));
        let mut d = a.clone();
        d.workloads.remove(0);
        assert!(compare(&a, &d)[0].contains("missing"));
    }

    /// A miniature report (not the pinned workloads — those are exercised
    /// by `tests/bench_baseline.rs` against the committed file).
    fn run_small() -> Report {
        let q = JoinQuery::triangle();
        let db = heavy_hitter_db(8, 20);
        let (out, stats) = wcoj::count(&q, &db, None, &Budget::unlimited()).unwrap();
        Report {
            schema: SCHEMA.to_string(),
            tolerance: TOLERANCE,
            workloads: vec![Measurement {
                name: "mini".into(),
                answer: out.unwrap_sat(),
                leapfrog: stats,
                reference: stats,
                wall_clock_us: 1,
            }],
        }
    }

    #[test]
    fn malformed_json_is_a_typed_error() {
        assert!(from_json("{").is_err());
        assert!(from_json("{\"schema\": \"nope\"}").is_err());
        assert!(from_json("[]").is_err());
    }

    #[test]
    fn heavy_hitter_workload_records_the_skew_win() {
        // The acceptance criterion: the committed file must show leapfrog
        // beating the reference on the pinned skewed workloads.
        let report = run();
        let hh = report
            .workloads
            .iter()
            .find(|m| m.name == "skew_heavy_hitter")
            .expect("pinned workload present");
        assert!(
            hh.leapfrog.total_ops() * 2 < hh.reference.total_ops(),
            "skew win must be at least 2x: {} vs {}",
            hh.leapfrog.total_ops(),
            hh.reference.total_ops()
        );
    }
}
