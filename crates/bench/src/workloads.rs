//! Workload builders shared between the experiment binary and the
//! Criterion benches.

use lowerbounds::csp::CspInstance;
use lowerbounds::join::{Database, JoinQuery, Table};

/// The E2 adversarial triangle database: R and S are full s×s grids
/// (s = √n, so |R| = |S| = n) and T is the diagonal {(i, i)}.
///
/// * Generic Join runs in Õ(n): for each (a, b), the only c candidate is b.
/// * Any pairwise plan that joins R ⋈ S first materializes s³ = n^{3/2}
///   tuples — the blow-up that worst-case optimality avoids.
///
/// The answer has exactly s² = n tuples.
pub fn adversarial_triangle_db(n: u64) -> (JoinQuery, Database, u64) {
    let q = JoinQuery::triangle();
    let s = (n as f64).sqrt().floor() as u64;
    let mut grid = Table::new(2);
    for a in 0..s {
        for b in 0..s {
            grid.push(vec![a, b]);
        }
    }
    grid.normalize();
    let mut diag = Table::new(2);
    for i in 0..s {
        diag.push(vec![i, i]);
    }
    diag.normalize();
    let mut db = Database::new();
    db.insert("R", grid.clone()); // R(a, b)
    db.insert("S", grid); // S(a, c)
    db.insert("T", diag); // T(b, c): forces b = c
    (q, db, s * s)
}

/// The E7 workload: the Clique→CSP instance of a G(d, p) graph, so the CSP
/// has k variables, domain size d, and primal graph K_k (treewidth k−1).
pub fn partitioned_clique_csp(k: usize, d: usize, p: f64, seed: u64) -> CspInstance {
    let g = lowerbounds::graph::generators::gnp(d, p, seed);
    lowerbounds::reductions::clique_to_csp::reduce(&g, k)
}

/// The E3 workload: a random binary CSP on a k-tree with `num_vars`
/// variables and the given domain.
pub fn ktree_csp(k: usize, num_vars: usize, domain: usize, seed: u64) -> CspInstance {
    lowerbounds::csp::generators::random_ktree_csp(k, num_vars, domain, 0.3, seed)
}

/// The E9 workload: two pseudo-random byte strings of length n over a
/// 4-letter alphabet.
pub fn random_strings(n: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let a = (0..n).map(|_| rng.gen_range(b'a'..=b'd')).collect();
    let b = (0..n).map(|_| rng.gen_range(b'a'..=b'd')).collect();
    (a, b)
}

/// The E9/OV workload: two sets of `n` random vectors of dimension `d`
/// with ones density `density`.
pub fn random_vector_sets(
    n: usize,
    d: usize,
    density: f64,
    seed: u64,
) -> (
    lowerbounds::graphalg::ov::VectorSet,
    lowerbounds::graphalg::ov::VectorSet,
) {
    use lowerbounds::graphalg::ov::VectorSet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = |rng: &mut StdRng| {
        let mut s = VectorSet::new(d);
        for _ in 0..n {
            let v: Vec<bool> = (0..d).map(|_| rng.gen::<f64>() < density).collect();
            s.push_bools(&v);
        }
        s
    };
    let a = gen(&mut rng);
    let b = gen(&mut rng);
    (a, b)
}

/// OV NO-instance: like [`random_vector_sets`] but coordinate 0 is forced
/// to 1 on both sides, so no pair is orthogonal and every scan is the full
/// n² worst case.
pub fn random_vector_sets_no_pair(
    n: usize,
    d: usize,
    density: f64,
    seed: u64,
) -> (
    lowerbounds::graphalg::ov::VectorSet,
    lowerbounds::graphalg::ov::VectorSet,
) {
    use lowerbounds::graphalg::ov::VectorSet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = |rng: &mut StdRng| {
        let mut s = VectorSet::new(d);
        for _ in 0..n {
            let mut v: Vec<bool> = (0..d).map(|_| rng.gen::<f64>() < density).collect();
            v[0] = true;
            s.push_bools(&v);
        }
        s
    };
    let a = gen(&mut rng);
    let b = gen(&mut rng);
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowerbounds::engine::Budget;
    use lowerbounds::join::{binary, wcoj};

    #[test]
    fn adversarial_db_shape() {
        let bu = Budget::unlimited();
        let (q, db, answer) = adversarial_triangle_db(100);
        assert_eq!(db.max_table_size(), 100);
        assert_eq!(
            wcoj::count(&q, &db, None, &bu).unwrap().0.unwrap_sat(),
            answer
        );
        assert_eq!(answer, 100);
        // The binary plan materializes s³ = 1000 intermediates.
        let (_, stats) = binary::left_deep_join(&q, &db, &bu).unwrap();
        assert_eq!(stats.max_intermediate, 1000);
    }

    #[test]
    fn partitioned_clique_shape() {
        let inst = partitioned_clique_csp(4, 12, 0.5, 1);
        assert_eq!(inst.num_vars, 4);
        assert_eq!(inst.domain_size, 12);
    }

    #[test]
    fn string_and_vector_workloads() {
        let (a, b) = random_strings(50, 2);
        assert_eq!((a.len(), b.len()), (50, 50));
        let (va, vb) = random_vector_sets(10, 32, 0.3, 3);
        assert_eq!((va.len(), vb.len()), (10, 10));
    }
}
