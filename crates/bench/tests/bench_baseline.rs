//! Tier-1 guard on the committed WCOJ baseline: the pinned workloads,
//! re-run fresh, must match `BENCH_wcoj.json` within its tolerance. This
//! is the same comparison CI's `bench regression` job performs via
//! `experiments bench-wcoj --check`; having it in `cargo test` means the
//! baseline cannot rot silently between CI configurations.
//!
//! Op counts are machine-independent, so this is deterministic — a failure
//! here means the join machine changed behaviour and the file needs a
//! conscious re-pin (`cargo run --release -p lb-bench --bin experiments
//! bench-wcoj --write`).

use lb_bench::bench_wcoj;

fn committed() -> bench_wcoj::Report {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_wcoj.json"
    ))
    .expect("BENCH_wcoj.json is committed at the repo root");
    bench_wcoj::from_json(&text).expect("committed baseline parses")
}

#[test]
fn committed_baseline_matches_a_fresh_run() {
    let committed = committed();
    let fresh = bench_wcoj::run();
    let problems = bench_wcoj::compare(&committed, &fresh);
    assert!(
        problems.is_empty(),
        "committed BENCH_wcoj.json drifted from a fresh run:\n  {}",
        problems.join("\n  ")
    );
}

#[test]
fn committed_baseline_covers_every_pinned_workload_class() {
    let committed = committed();
    assert_eq!(committed.schema, bench_wcoj::SCHEMA);
    let names: Vec<&str> = committed
        .workloads
        .iter()
        .map(|m| m.name.as_str())
        .collect();
    for required in [
        "triangle_uniform",
        "cycle4_uniform",
        "clique4_uniform",
        "triangle_agm_worst",
        "triangle_skew_zipf",
        "skew_heavy_hitter",
    ] {
        assert!(names.contains(&required), "missing workload `{required}`");
    }
}

#[test]
fn committed_baseline_records_the_skew_win() {
    // The acceptance criterion of the leapfrog rewrite, pinned in the
    // committed file itself: on the heavy-hitter workload the leapfrog
    // op count must stay at least 2x below the frozen reference machine.
    let committed = committed();
    let hh = committed
        .workloads
        .iter()
        .find(|m| m.name == "skew_heavy_hitter")
        .expect("skew workload committed");
    assert!(
        hh.leapfrog.total_ops() * 2 < hh.reference.total_ops(),
        "committed skew win eroded: {} vs {}",
        hh.leapfrog.total_ops(),
        hh.reference.total_ops()
    );
}
