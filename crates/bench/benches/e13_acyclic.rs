//! E13 — acyclic queries (§4): Yannakakis vs generic join vs binary plan
//! on dead-end path queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowerbounds::engine::Budget;
use lowerbounds::join::acyclic::{is_empty_acyclic, yannakakis};
use lowerbounds::join::{binary, wcoj, Atom, Database, JoinQuery, Table};

fn dead_end_path(s: u64) -> (JoinQuery, Database) {
    let q = JoinQuery::new(
        (0..3)
            .map(|i| Atom {
                relation: format!("R{i}"),
                attrs: vec![format!("x{i}"), format!("x{}", i + 1)],
            })
            .collect(),
    );
    let mut grid = Table::new(2);
    for i in 0..s {
        for j in 0..s {
            grid.push(vec![i, j]);
        }
    }
    grid.normalize();
    let mut db = Database::new();
    db.insert("R0", grid.clone());
    db.insert("R1", grid);
    db.insert("R2", Table::from_rows(2, vec![vec![u64::MAX - 1, 0]]));
    (q, db)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_acyclic_dead_end");
    group.sample_size(10);
    for s in [60u64, 120] {
        let (q, db) = dead_end_path(s);
        let n = s * s;
        group.bench_with_input(
            BenchmarkId::new("yannakakis", n),
            &(q.clone(), db.clone()),
            |b, (q, db)| {
                b.iter(|| {
                    yannakakis(q, db, &Budget::unlimited())
                        .unwrap()
                        .0
                        .unwrap_sat()
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("emptiness_sweep", n),
            &(q.clone(), db.clone()),
            |b, (q, db)| {
                b.iter(|| {
                    is_empty_acyclic(q, db, &Budget::unlimited())
                        .unwrap()
                        .0
                        .unwrap_sat()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("generic_join", n),
            &(q.clone(), db.clone()),
            |b, (q, db)| {
                b.iter(|| {
                    wcoj::count(q, db, None, &Budget::unlimited())
                        .unwrap()
                        .0
                        .unwrap_sat()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("binary_plan", n),
            &(q, db),
            |b, (q, db)| {
                b.iter(|| {
                    binary::left_deep_join(q, db, &Budget::unlimited())
                        .unwrap()
                        .0
                        .unwrap_sat()
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
