//! E4 — Schaefer dichotomy (§4): polynomial tractable-class solvers vs
//! exponential DPLL, with the DPLL feature ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowerbounds::engine::Budget;
use lowerbounds::sat::schaefer::{solve_in_class, BoolCspInstance, BooleanRelation, SchaeferClass};
use lowerbounds::sat::{generators as sgen, Branching, DpllConfig, DpllSolver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn horn_instance(n: usize, m: usize, seed: u64) -> BoolCspInstance {
    let rel = |arity: usize, rows: &[&[u8]]| -> BooleanRelation {
        BooleanRelation::new(
            arity,
            rows.iter()
                .map(|r| r.iter().map(|&b| b == 1).collect())
                .collect(),
        )
    };
    let lib = vec![
        rel(2, &[&[0, 0], &[0, 1], &[1, 1]]),
        rel(
            3,
            &[&[0, 0, 0], &[0, 0, 1], &[0, 1, 1], &[1, 1, 1], &[0, 1, 0]],
        ),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let constraints = (0..m)
        .map(|_| {
            let r = rng.gen_range(0..lib.len());
            let scope = (0..lib[r].arity()).map(|_| rng.gen_range(0..n)).collect();
            (scope, r)
        })
        .collect();
    BoolCspInstance {
        num_vars: n,
        relations: lib,
        constraints,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_schaefer_tractable");
    group.sample_size(10);
    for n in [100usize, 400] {
        let inst = horn_instance(n, 3 * n, n as u64);
        group.bench_with_input(BenchmarkId::new("horn_fixpoint", n), &inst, |b, inst| {
            b.iter(|| {
                solve_in_class(inst, SchaeferClass::Horn, &Budget::unlimited())
                    .0
                    .is_sat()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e4a_dpll_ablation");
    group.sample_size(10);
    let f = sgen::sparse_3sat(22, 4.27, 99);
    for (name, cfg) in [
        ("full", DpllConfig::default()),
        (
            "no_unit_prop",
            DpllConfig {
                unit_propagation: false,
                pure_literal: true,
                branching: Branching::MostFrequent,
            },
        ),
        (
            "plain",
            DpllConfig {
                unit_propagation: false,
                pure_literal: false,
                branching: Branching::FirstUnassigned,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 22), &f, |b, f| {
            let solver = DpllSolver::new(cfg);
            b.iter(|| solver.solve(f, &Budget::unlimited()).0.is_sat())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
