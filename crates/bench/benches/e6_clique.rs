//! E6 — k-Clique (Theorem 6.3 / k-clique conjecture): branch-and-prune
//! brute force vs the Nešetřil–Poljak matrix-multiplication route.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowerbounds::engine::Budget;
use lowerbounds::graph::generators;
use lowerbounds::graphalg::clique::{find_clique, find_clique_neipol};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_kclique");
    group.sample_size(10);
    for k in [3usize, 6] {
        for n in [40usize, 60] {
            let g = generators::gnp(n, 0.3, (n + k) as u64);
            group.bench_with_input(BenchmarkId::new(format!("brute_k{k}"), n), &g, |b, g| {
                b.iter(|| find_clique(g, k, &Budget::unlimited()).0.is_sat())
            });
            group.bench_with_input(BenchmarkId::new(format!("neipol_k{k}"), n), &g, |b, g| {
                b.iter(|| find_clique_neipol(g, k, &Budget::unlimited()).0.is_sat())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
