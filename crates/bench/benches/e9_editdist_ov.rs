//! E9 — fine-grained SETH targets (§7): the O(n²) edit distance DP and the
//! quadratic Orthogonal Vectors scan, plus the SAT→OV reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_bench::{random_strings, random_vector_sets};
use lowerbounds::engine::Budget;
use lowerbounds::graphalg::editdist::{edit_distance, edit_distance_banded};
use lowerbounds::graphalg::ov::find_orthogonal_pair;
use lowerbounds::reductions::sat_to_ov;
use lowerbounds::sat::generators as sgen;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_edit_distance");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let (a, b) = random_strings(n, n as u64);
        group.bench_with_input(
            BenchmarkId::new("full_dp", n),
            &(a.clone(), b.clone()),
            |bn, (a, b)| bn.iter(|| edit_distance(a, b, &Budget::unlimited()).0.unwrap_sat()),
        );
        group.bench_with_input(BenchmarkId::new("banded_64", n), &(a, b), |bn, (a, b)| {
            bn.iter(|| edit_distance_banded(a, b, 64, &Budget::unlimited()).0)
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e9a_orthogonal_vectors");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let (a, b) = random_vector_sets(n, 64, 0.35, n as u64);
        group.bench_with_input(BenchmarkId::new("pair_scan", n), &(a, b), |bn, (a, b)| {
            bn.iter(|| find_orthogonal_pair(a, b, &Budget::unlimited()).0.is_sat())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e9b_sat_to_ov");
    group.sample_size(10);
    let f = sgen::random_ksat(14, 60, 3, 4);
    group.bench_function("decide_n14", |b| {
        b.iter(|| {
            sat_to_ov::decide_via_ov(&f, &Budget::unlimited())
                .0
                .is_sat()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
