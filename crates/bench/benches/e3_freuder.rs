//! E3 — Freuder's treewidth DP (Theorem 4.2): |D|^{k+1} scaling on k-tree
//! CSPs, with the decomposition-heuristic ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_bench::ktree_csp;
use lowerbounds::csp::solver::treewidth_dp;
use lowerbounds::engine::Budget;
use lowerbounds::graph::treewidth::{from_elimination_order, min_degree_order, min_fill_order};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_freuder_dp");
    group.sample_size(10);
    for k in [2usize, 3] {
        for d in [3usize, 6] {
            let inst = ktree_csp(k, 24, d, 7);
            group.bench_with_input(BenchmarkId::new(format!("k{k}"), d), &inst, |b, inst| {
                b.iter(|| {
                    treewidth_dp::solve_auto(inst, &Budget::unlimited())
                        .0
                        .unwrap_sat()
                        .count
                })
            });
        }
    }
    group.finish();

    // Ablation: which heuristic feeds the DP.
    let mut group = c.benchmark_group("e3a_heuristic_ablation");
    group.sample_size(10);
    let inst = ktree_csp(3, 24, 4, 7);
    let primal = inst.primal_graph();
    for (name, order) in [
        ("min_degree", min_degree_order(&primal)),
        ("min_fill", min_fill_order(&primal)),
    ] {
        let td = from_elimination_order(&primal, &order);
        group.bench_with_input(BenchmarkId::new(name, td.width()), &td, |b, td| {
            b.iter(|| {
                treewidth_dp::solve_with_decomposition(&inst, td, &Budget::unlimited())
                    .0
                    .unwrap_sat()
                    .count
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
