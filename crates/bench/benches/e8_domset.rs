//! E8 — k-Dominating-Set (Theorems 7.1/7.2): n^k subset enumeration, the
//! branching variant, and the treewidth-k CSP route.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowerbounds::csp::solver::treewidth_dp;
use lowerbounds::engine::Budget;
use lowerbounds::graph::generators;
use lowerbounds::graphalg::domset::{find_dominating_set_branching, find_dominating_set_brute};
use lowerbounds::reductions::domset_to_csp;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_domset");
    group.sample_size(10);
    for k in [2usize, 3] {
        for n in [25usize, 40] {
            let g = generators::gnm(n, n, (n * k) as u64);
            group.bench_with_input(BenchmarkId::new(format!("brute_k{k}"), n), &g, |b, g| {
                b.iter(|| {
                    find_dominating_set_brute(g, k, &Budget::unlimited())
                        .0
                        .is_sat()
                })
            });
            group.bench_with_input(
                BenchmarkId::new(format!("branching_k{k}"), n),
                &g,
                |b, g| {
                    b.iter(|| {
                        find_dominating_set_branching(g, k, &Budget::unlimited())
                            .0
                            .is_sat()
                    })
                },
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("e8a_theorem72_csp_route");
    group.sample_size(10);
    let g = generators::gnp(8, 0.3, 1);
    let inst = domset_to_csp::reduce(&g, 2);
    group.bench_function("freuder_on_reduction", |b| {
        b.iter(|| {
            treewidth_dp::solve_auto(&inst, &Budget::unlimited())
                .0
                .unwrap_sat()
                .solution
                .is_some()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
