//! E10 — matrix multiplication (§8): naive vs Strassen, and the triangle
//! detectors they power.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowerbounds::engine::Budget;
use lowerbounds::graph::generators;
use lowerbounds::graphalg::matmul::{BoolMatrix, IntMatrix};
use lowerbounds::graphalg::triangle::{find_triangle_matmul, find_triangle_naive};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_matmul");
    group.sample_size(10);
    for n in [128usize, 256] {
        let g = generators::gnp(n, 0.5, n as u64);
        let a = IntMatrix::adjacency(&g);
        group.bench_with_input(BenchmarkId::new("naive", n), &a, |b, a| {
            b.iter(|| a.multiply_naive(a).trace())
        });
        group.bench_with_input(BenchmarkId::new("strassen", n), &a, |b, a| {
            b.iter(|| a.multiply_strassen(a).trace())
        });
        let bm = BoolMatrix::adjacency(&g);
        group.bench_with_input(BenchmarkId::new("boolean_bitset", n), &bm, |b, bm| {
            b.iter(|| bm.multiply(bm).intersects(bm))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e10a_triangle_dense");
    group.sample_size(10);
    for n in [256usize, 512] {
        let g = generators::gnp(n, 0.02, n as u64); // sparse-ish: detection nontrivial
        group.bench_with_input(BenchmarkId::new("naive", n), &g, |b, g| {
            b.iter(|| find_triangle_naive(g, &Budget::unlimited()).0.is_sat())
        });
        group.bench_with_input(BenchmarkId::new("matmul", n), &g, |b, g| {
            b.iter(|| find_triangle_matmul(g, &Budget::unlimited()).0.is_sat())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
