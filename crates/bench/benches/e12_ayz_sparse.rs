//! E12 — strong triangle conjecture (§8): Alon–Yuster–Zwick on sparse
//! graphs vs naive edge scans, and the Boolean triangle join query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowerbounds::engine::Budget;
use lowerbounds::graph::generators;
use lowerbounds::graphalg::triangle::{find_triangle_ayz, find_triangle_naive};
use lowerbounds::join::{boolean, generators as jgen, JoinQuery};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_sparse_triangle");
    group.sample_size(10);
    for m in [4000usize, 16000] {
        let g = generators::gnm(m / 2, m, m as u64);
        group.bench_with_input(BenchmarkId::new("ayz", m), &g, |b, g| {
            b.iter(|| find_triangle_ayz(g, &Budget::unlimited()).0.is_sat())
        });
        group.bench_with_input(BenchmarkId::new("naive", m), &g, |b, g| {
            b.iter(|| find_triangle_naive(g, &Budget::unlimited()).0.is_sat())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e12a_boolean_triangle_join");
    group.sample_size(10);
    let q = JoinQuery::triangle();
    let db = jgen::random_binary_database(&q, 2000, 900, 9);
    group.bench_function("generic_join_early_exit", |b| {
        b.iter(|| {
            boolean::is_answer_empty(&q, &db, &Budget::unlimited())
                .unwrap()
                .0
                .unwrap_sat()
        })
    });
    let (g, _) = boolean::triangle_database_to_graph(&q, &db).unwrap();
    group.bench_function("ayz_on_tripartite_graph", |b| {
        b.iter(|| find_triangle_ayz(&g, &Budget::unlimited()).0.is_sat())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
