//! E7 — binary CSP on clique primal graphs (Theorems 6.4–6.7): the
//! treewidth DP pays |D|^{tw+1}; backtracking feature ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_bench::partitioned_clique_csp;
use lowerbounds::csp::solver::{backtracking, treewidth_dp, BacktrackConfig};
use lowerbounds::engine::Budget;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_csp_clique_primal");
    group.sample_size(10);
    for k in [3usize, 4] {
        for d in [8usize, 14] {
            let inst = partitioned_clique_csp(k, d, 0.3, 11);
            group.bench_with_input(BenchmarkId::new(format!("dp_k{k}"), d), &inst, |b, inst| {
                b.iter(|| {
                    treewidth_dp::solve_auto(inst, &Budget::unlimited())
                        .0
                        .unwrap_sat()
                        .count
                })
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("e7a_backtracking_ablation");
    group.sample_size(10);
    let inst = partitioned_clique_csp(4, 14, 0.3, 11);
    for (name, cfg) in [
        (
            "mrv_fc",
            BacktrackConfig {
                mrv: true,
                forward_checking: true,
            },
        ),
        (
            "mrv_only",
            BacktrackConfig {
                mrv: true,
                forward_checking: false,
            },
        ),
        (
            "plain",
            BacktrackConfig {
                mrv: false,
                forward_checking: false,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 14), &inst, |b, inst| {
            b.iter(|| {
                backtracking::solve(inst, cfg, &Budget::unlimited())
                    .0
                    .is_sat()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
