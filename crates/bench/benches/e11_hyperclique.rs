//! E11 — hyperclique conjecture (§8): k-hyperclique search in 3-uniform
//! hypergraphs (no matmul shortcut) vs k-clique in graphs (matmul helps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowerbounds::engine::Budget;
use lowerbounds::graph::generators;
use lowerbounds::graphalg::clique::find_clique_neipol;
use lowerbounds::graphalg::hyperclique::find_hyperclique;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_hyperclique");
    group.sample_size(10);
    for n in [24usize, 36] {
        let h = generators::random_uniform_hypergraph(n, 3, 0.6, n as u64);
        group.bench_with_input(BenchmarkId::new("d3_brute_k5", n), &h, |b, h| {
            b.iter(|| find_hyperclique(h, 5, &Budget::unlimited()).0.is_sat())
        });
        let g = generators::gnp(n, 0.6, n as u64);
        group.bench_with_input(BenchmarkId::new("d2_neipol_k5", n), &g, |b, g| {
            b.iter(|| find_clique_neipol(g, 5, &Budget::unlimited()).0.is_sat())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
