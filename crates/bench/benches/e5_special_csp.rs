//! E5 — SPECIAL CSP (Definition 4.3): quasipolynomial solver through the
//! Clique → Special reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowerbounds::csp::solver::special::solve_special;
use lowerbounds::engine::Budget;
use lowerbounds::graph::generators;
use lowerbounds::reductions::clique_to_special;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_special_csp");
    group.sample_size(10);
    let g = generators::gnp(14, 0.5, 5);
    for k in [3usize, 4, 5] {
        let inst = clique_to_special::reduce(&g, k);
        group.bench_with_input(
            BenchmarkId::new("quasipoly_solver", format!("k{k}_vars{}", inst.num_vars)),
            &inst,
            |b, inst| {
                b.iter(|| {
                    solve_special(inst, &Budget::unlimited())
                        .unwrap()
                        .0
                        .unwrap_sat()
                        .count
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
