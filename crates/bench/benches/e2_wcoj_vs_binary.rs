//! E2 — worst-case optimal join vs binary hash-join plan (Theorem 3.3) on
//! the adversarial triangle databases where pairwise plans blow up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_bench::adversarial_triangle_db;
use lowerbounds::engine::Budget;
use lowerbounds::join::{binary, wcoj};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_triangle_adversarial");
    group.sample_size(10);
    for n in [1600u64, 6400, 25600] {
        let (q, db, answer) = adversarial_triangle_db(n);
        group.bench_with_input(
            BenchmarkId::new("generic_join", n),
            &(q.clone(), db.clone(), answer),
            |b, (q, db, answer)| {
                b.iter(|| {
                    let c = wcoj::count(q, db, None, &Budget::unlimited())
                        .unwrap()
                        .0
                        .unwrap_sat();
                    assert_eq!(c, *answer);
                    c
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("binary_plan", n),
            &(q, db, answer),
            |b, (q, db, answer)| {
                b.iter(|| {
                    let (out, _) = binary::left_deep_join(q, db, &Budget::unlimited()).unwrap();
                    let ans = out.unwrap_sat();
                    assert_eq!(ans.len() as u64, *answer);
                    ans.len()
                })
            },
        );
    }
    group.finish();

    // Ablation: variable ordering inside Generic Join. On the adversarial
    // database the "diagonal first" orders bind b and c together early.
    let mut group = c.benchmark_group("e2a_wcoj_order_ablation");
    group.sample_size(10);
    let (q, db, answer) = adversarial_triangle_db(6400);
    for order in [["a", "b", "c"], ["b", "c", "a"], ["c", "a", "b"]] {
        let ord: Vec<String> = order.iter().map(|s| s.to_string()).collect();
        group.bench_with_input(BenchmarkId::new("order", order.join("")), &ord, |b, ord| {
            b.iter(|| {
                let c = wcoj::count(&q, &db, Some(ord), &Budget::unlimited())
                    .unwrap()
                    .0
                    .unwrap_sat();
                assert_eq!(c, answer);
                c
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
