//! E1 — AGM bound (Theorems 3.1–3.2): construct the worst-case database
//! and materialize its N^{ρ*} answer, per query family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowerbounds::engine::Budget;
use lowerbounds::join::{agm, wcoj, JoinQuery};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_agm_worst_case");
    group.sample_size(10);
    for (name, q) in [
        ("triangle", JoinQuery::triangle()),
        ("lw4", JoinQuery::loomis_whitney(4)),
        ("cycle4", JoinQuery::cycle(4)),
    ] {
        for n in [256u64, 1024] {
            let (db, predicted) = agm::worst_case_database(&q, n).unwrap();
            group.bench_with_input(
                BenchmarkId::new(name, n),
                &(q.clone(), db, predicted),
                |b, (q, db, predicted)| {
                    b.iter(|| {
                        let count = wcoj::count(q, db, None, &Budget::unlimited())
                            .unwrap()
                            .0
                            .unwrap_sat();
                        assert_eq!(count as u128, *predicted);
                        count
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
