//! Flat columnar tries for Leapfrog Triejoin (Veldhuizen, PAPERS.md).
//!
//! A [`Trie`] stores one atom's projected, attribute-ordered rows as
//! per-level sorted **columns**: level ℓ holds the distinct length-(ℓ+1)
//! prefixes' last values, grouped by parent, with a flat `child_start`
//! offset array mapping each entry to its children's contiguous range on
//! the next level. Built once per (query, variable order) during
//! preparation — replacing the old per-query `projected_sorted` row
//! clones that the generic join binary-searched row-major.
//!
//! Iterator state over a trie is tiny: a level index plus a `[lo, hi)`
//! range into that level's value column — exactly the three `usize`s the
//! WCOJ checkpoint frames serialize. [`Trie::seek`] implements the
//! leapfrog `seek(v)` primitive with galloping (exponential probe then
//! binary search), so a seek over a run of `g` skipped values costs
//! O(log g) comparisons instead of the O(g) a linear scan would pay.

use crate::Value;

/// One trie level: the distinct prefix-extension values (grouped by
/// parent, sorted within each group) and, for non-leaf levels, the offset
/// of each entry's child range on the next level.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Level {
    vals: Vec<Value>,
    /// `child_start[i]..child_start[i + 1]` is entry `i`'s child range on
    /// the next level; empty on the deepest level, else `vals.len() + 1`
    /// long (the last entry is the sentinel).
    child_start: Vec<usize>,
}

/// A flat columnar trie over sorted, deduplicated, fixed-arity rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trie {
    levels: Vec<Level>,
    rows: usize,
    heavy_threshold: usize,
}

/// Integer square root (largest `x` with `x·x ≤ n`).
fn isqrt(n: usize) -> usize {
    let mut x = 0usize;
    // lb-lint: allow(unbudgeted-loop) -- O(√n) once at trie build, before any search runs
    while (x + 1).saturating_mul(x + 1) <= n {
        x += 1;
    }
    x
}

impl Trie {
    /// Builds a trie from rows that are sorted lexicographically,
    /// deduplicated, and all of length `arity`. Rows violating that
    /// contract are skipped defensively (short rows) or produce a trie
    /// that simply reflects the given order.
    pub fn build(rows: &[Vec<Value>], arity: usize) -> Trie {
        let mut levels: Vec<Level> = (0..arity)
            .map(|_| Level {
                vals: Vec::new(),
                child_start: Vec::new(),
            })
            .collect();
        let mut prev: Option<&Vec<Value>> = None;
        // lb-lint: allow(unbudgeted-loop) -- trie construction, linear in one relation; runs once before search
        for row in rows {
            if row.len() < arity {
                continue;
            }
            let split = match prev {
                None => 0,
                Some(p) => (0..arity)
                    .find(|&d| row.get(d) != p.get(d))
                    .unwrap_or(arity),
            };
            // lb-lint: allow(unbudgeted-loop) -- opens at most `arity` entries per row; part of the linear build
            for d in split..arity {
                let next_len = if d + 1 < arity {
                    levels.get(d + 1).map_or(0, |l| l.vals.len())
                } else {
                    0
                };
                let Some(v) = row.get(d).copied() else {
                    continue;
                };
                if let Some(level) = levels.get_mut(d) {
                    level.vals.push(v); // lb-lint: allow(unbounded-growth) -- the trie is a linear-size index of one input relation, built before the search
                    if d + 1 < arity {
                        level.child_start.push(next_len); // lb-lint: allow(unbounded-growth) -- same linear-size index as above
                    }
                }
            }
            prev = Some(row);
        }
        // Close every non-leaf level with its sentinel offset.
        // lb-lint: allow(unbudgeted-loop) -- bounded by arity; finishes the one-time build
        for d in 0..arity {
            if d + 1 < arity {
                let next_len = levels.get(d + 1).map_or(0, |l| l.vals.len());
                if let Some(level) = levels.get_mut(d) {
                    level.child_start.push(next_len); // lb-lint: allow(unbounded-growth) -- one sentinel per level, bounded by arity
                }
            }
        }
        Trie {
            levels,
            rows: rows.len(),
            heavy_threshold: isqrt(rows.len()).max(4),
        }
    }

    /// Number of levels (= the projected arity).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of source rows the trie indexes.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The heavy/light split point: a candidate range is *heavy* when it
    /// still holds at least `max(4, ⌊√rows⌋)` distinct values (the "Skew
    /// Strikes Back" √N regime boundary).
    pub fn heavy_threshold(&self) -> usize {
        self.heavy_threshold
    }

    /// Number of entries on a level (0 for out-of-range levels).
    pub fn level_len(&self, depth: usize) -> usize {
        self.levels.get(depth).map_or(0, |l| l.vals.len())
    }

    /// The value of entry `idx` on level `depth`.
    pub fn value(&self, depth: usize, idx: usize) -> Option<Value> {
        self.levels
            .get(depth)
            .and_then(|l| l.vals.get(idx))
            .copied()
    }

    /// The child range of entry `idx` on level `depth`; `(0, 0)` when the
    /// entry or a next level does not exist.
    pub fn child_range(&self, depth: usize, idx: usize) -> (usize, usize) {
        let Some(level) = self.levels.get(depth) else {
            return (0, 0);
        };
        match (level.child_start.get(idx), level.child_start.get(idx + 1)) {
            (Some(&lo), Some(&hi)) if lo <= hi => (lo, hi),
            _ => (0, 0),
        }
    }

    /// Leapfrog `seek`: the first index in `[lo, hi)` whose value is
    /// `≥ target`, found by galloping — exponential probing from `lo`
    /// followed by binary search on the bracketed window. Returns `hi`
    /// when every value is smaller (or the range/level is empty).
    pub fn seek(&self, depth: usize, lo: usize, hi: usize, target: Value) -> usize {
        let Some(level) = self.levels.get(depth) else {
            return hi;
        };
        let hi = hi.min(level.vals.len());
        if lo >= hi {
            return hi;
        }
        if level.vals.get(lo).is_none_or(|&v| v >= target) {
            return lo;
        }
        // Invariant: vals[lo + offset / 2] < target.
        let mut offset = 1usize;
        // lb-lint: allow(unbudgeted-loop) -- O(log gap) exponential gallop inside one charged trie_advance
        while lo + offset < hi && level.vals.get(lo + offset).is_some_and(|&v| v < target) {
            offset *= 2;
        }
        let win_lo = lo + offset / 2;
        let win_hi = (lo + offset + 1).min(hi);
        let window = level.vals.get(win_lo..win_hi).unwrap_or(&[]);
        win_lo + window.partition_point(|&v| v < target)
    }

    /// Exact-match probe: the index of `target` in `[lo, hi)` on `depth`,
    /// or `None`. Uses the same galloping seek.
    pub fn find(&self, depth: usize, lo: usize, hi: usize, target: Value) -> Option<usize> {
        let j = self.seek(depth, lo, hi, target);
        if j < hi && self.value(depth, j) == Some(target) {
            Some(j)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(raw: &[&[Value]]) -> Vec<Vec<Value>> {
        let mut out: Vec<Vec<Value>> = raw.iter().map(|r| r.to_vec()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn builds_levels_and_child_ranges() {
        let t = Trie::build(
            &rows(&[&[1, 10], &[1, 20], &[3, 30], &[3, 31], &[7, 10]]),
            2,
        );
        assert_eq!(t.num_levels(), 2);
        assert_eq!(t.level_len(0), 3); // 1, 3, 7
        assert_eq!(t.level_len(1), 5);
        assert_eq!(t.value(0, 0), Some(1));
        assert_eq!(t.value(0, 2), Some(7));
        assert_eq!(t.child_range(0, 0), (0, 2)); // 10, 20
        assert_eq!(t.child_range(0, 1), (2, 4)); // 30, 31
        assert_eq!(t.child_range(0, 2), (4, 5)); // 10
        assert_eq!(t.value(1, 4), Some(10));
        // Out-of-range accesses are total.
        assert_eq!(t.child_range(0, 3), (0, 0));
        assert_eq!(t.child_range(1, 0), (0, 0));
        assert_eq!(t.value(2, 0), None);
    }

    #[test]
    fn empty_and_unary_tries() {
        let t = Trie::build(&[], 2);
        assert_eq!(t.level_len(0), 0);
        assert_eq!(t.seek(0, 0, 0, 5), 0);
        let t = Trie::build(&rows(&[&[4], &[9], &[2]]), 1);
        assert_eq!(t.level_len(0), 3);
        assert_eq!(t.value(0, 0), Some(2));
        assert_eq!(t.child_range(0, 0), (0, 0));
    }

    #[test]
    fn seek_is_lower_bound_on_adversarial_runs() {
        // Adversarial shapes for galloping: long equal plateau handled by
        // dedup (single entry), long skipped run, target past the end,
        // target before the start, exact hits at window boundaries.
        let vals: Vec<Value> = (0..1000u64).map(|i| i * 3).collect();
        let raw: Vec<Vec<Value>> = vals.iter().map(|&v| vec![v]).collect();
        let t = Trie::build(&raw, 1);
        for target in [
            0u64, 1, 2, 3, 4, 1497, 1498, 1499, 1500, 2996, 2997, 2998, 3000,
        ] {
            let expected = vals.partition_point(|&v| v < target);
            assert_eq!(
                t.seek(0, 0, vals.len(), target),
                expected,
                "target {target}"
            );
        }
        // Seeks restricted to subranges respect both ends.
        assert_eq!(t.seek(0, 100, 200, 0), 100);
        assert_eq!(t.seek(0, 100, 200, u64::MAX), 200);
        assert_eq!(t.seek(0, 100, 200, 3 * 150), 150);
        // Galloping from a moving frontier (the leapfrog access pattern).
        let mut at = 0usize;
        for target in [5u64, 6, 600, 601, 2990] {
            at = t.seek(0, at, vals.len(), target);
            let expected = vals.partition_point(|&v| v < target);
            assert_eq!(at, expected, "target {target}");
        }
    }

    #[test]
    fn find_reports_exact_hits_only() {
        let t = Trie::build(&rows(&[&[2], &[4], &[8], &[16], &[32]]), 1);
        assert_eq!(t.find(0, 0, 5, 8), Some(2));
        assert_eq!(t.find(0, 0, 5, 9), None);
        assert_eq!(t.find(0, 3, 5, 8), None); // outside the range
        assert_eq!(t.find(0, 0, 5, 33), None); // past the end
    }

    #[test]
    fn heavy_threshold_tracks_sqrt() {
        let raw: Vec<Vec<Value>> = (0..400u64).map(|v| vec![v]).collect();
        assert_eq!(Trie::build(&raw, 1).heavy_threshold(), 20);
        assert_eq!(Trie::build(&raw[..9], 1).heavy_threshold(), 4); // floor of 4
        assert_eq!(Trie::build(&[], 1).heavy_threshold(), 4);
    }

    #[test]
    fn short_rows_are_skipped_defensively() {
        let t = Trie::build(&[vec![1], vec![2, 5]], 2);
        assert_eq!(t.level_len(0), 1);
        assert_eq!(t.value(0, 0), Some(2));
        assert_eq!(t.child_range(0, 0), (0, 1));
    }
}
