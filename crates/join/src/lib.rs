//! Join queries and worst-case optimal join evaluation (paper §2.1, §3, §8).
//!
//! A join query `R₁(a…) ⋈ … ⋈ R_m(a…)` over a database maps each relation
//! name to a table; the answer is the set of tuples over all attributes
//! whose projections land in every relation. This crate implements the full
//! §3 story:
//!
//! * [`agm`] — the AGM bound (Theorem 3.1): `|answer| ≤ N^{ρ*}` with ρ* the
//!   fractional edge cover number (computed exactly by `lb-lp`), **and** the
//!   matching worst-case database construction of Theorem 3.2 from the
//!   optimal dual (vertex-packing) weights;
//! * [`wcoj`] — a columnar Leapfrog Triejoin (Theorem 3.3,
//!   Ngo–Porat–Ré–Rudra / Veldhuizen) running in Õ(N^{ρ*}): flat per-atom
//!   [`trie`]s, per-variable leapfrog intersection with galloping seeks,
//!   and the "Skew Strikes Back" heavy/light split for heavy-hitter
//!   values ([`reference`] preserves the pre-leapfrog generic join as the
//!   differential oracle);
//! * [`binary`] — the classical baseline: a left-deep plan of pairwise hash
//!   joins, which materializes Ω(N²) intermediates on the AGM-worst-case
//!   triangle inputs (experiment E2's contrast);
//! * [`boolean`] — the Boolean Join Query problem (emptiness), the decision
//!   version §8's triangle conjecture speaks about.
//!
//! Every evaluator takes a [`lb_engine::Budget`] and returns an
//! [`lb_engine::Outcome`] paired with [`lb_engine::RunStats`] counters
//! (nodes tried, trie advances, tuples materialized, largest intermediate).

#![forbid(unsafe_code)]

pub mod acyclic;
pub mod agm;
pub mod binary;
pub mod boolean;
pub mod database;
pub mod generators;
pub mod query;
pub mod reference;
pub mod trie;
pub mod wcoj;

pub use acyclic::{is_acyclic, yannakakis};
pub use database::{Database, Table};
pub use query::{Atom, JoinQuery};

/// A database value.
pub type Value = u64;
