//! Database instances: named tables of tuples (paper §2.1).

use crate::query::JoinQuery;
use crate::Value;
use std::collections::BTreeMap;

/// A table: rows of fixed arity. Rows are deduplicated on insertion order
/// via [`Table::normalize`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    arity: usize,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table of the given arity.
    pub fn new(arity: usize) -> Self {
        Table {
            arity,
            rows: Vec::new(),
        }
    }

    /// Builds from rows, normalizing (sort + dedup).
    ///
    /// # Panics
    /// Panics if a row has the wrong arity.
    pub fn from_rows(arity: usize, rows: Vec<Vec<Value>>) -> Self {
        let mut t = Table { arity, rows };
        for r in &t.rows {
            assert_eq!(r.len(), arity, "row arity mismatch");
        }
        t.normalize();
        t
    }

    /// Adds a row (no dedup; call [`Table::normalize`] after bulk loads).
    pub fn push(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        self.rows.push(row);
    }

    /// Sorts rows lexicographically and removes duplicates.
    pub fn normalize(&mut self) {
        self.rows.sort_unstable();
        self.rows.dedup();
    }

    /// Arity (number of columns).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows (sorted if normalized).
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Membership test (requires normalized rows).
    pub fn contains(&self, row: &[Value]) -> bool {
        self.rows
            .binary_search_by(|r| r.as_slice().cmp(row))
            .is_ok()
    }

    /// Rows re-ordered by a column permutation: row'[(i)] = row[perm\[i\]],
    /// sorted lexicographically. Used by the WCOJ trie iterators.
    pub fn projected_sorted(&self, perm: &[usize]) -> Vec<Vec<Value>> {
        assert_eq!(perm.len(), self.arity);
        let mut out: Vec<Vec<Value>> = self
            .rows
            .iter()
            .map(|r| perm.iter().map(|&i| r[i]).collect())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A database: a mapping from relation names to tables.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Inserts (or replaces) a table.
    pub fn insert(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_string(), table);
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// The largest relation size N (paper: every relation has ≤ N tuples).
    pub fn max_table_size(&self) -> usize {
        self.tables.values().map(|t| t.len()).max().unwrap_or(0)
    }

    /// Checks that every atom of `q` has a table of matching arity.
    #[must_use = "a dropped validation result defeats the check entirely"]
    pub fn validate_for(&self, q: &JoinQuery) -> Result<(), String> {
        // lb-lint: allow(unbudgeted-loop) -- validation pass, linear in query atoms; runs before search
        for atom in &q.atoms {
            let t = self
                .table(&atom.relation)
                .ok_or_else(|| format!("missing table {}", atom.relation))?;
            if t.arity() != atom.attrs.len() {
                return Err(format!(
                    "table {} has arity {}, atom expects {}",
                    atom.relation,
                    t.arity(),
                    atom.attrs.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Atom, JoinQuery};

    #[test]
    fn table_normalize_dedup() {
        let t = Table::from_rows(2, vec![vec![2, 1], vec![1, 2], vec![2, 1]]);
        assert_eq!(t.len(), 2);
        assert!(t.contains(&[1, 2]));
        assert!(!t.contains(&[3, 3]));
    }

    #[test]
    fn projected_sorted_permutes() {
        let t = Table::from_rows(2, vec![vec![1, 9], vec![2, 5]]);
        let p = t.projected_sorted(&[1, 0]);
        assert_eq!(p, vec![vec![5, 2], vec![9, 1]]);
    }

    #[test]
    fn database_validation() {
        let q = JoinQuery::new(vec![Atom::new("R", &["a", "b"])]);
        let mut db = Database::new();
        assert!(db.validate_for(&q).is_err());
        db.insert("R", Table::new(3));
        assert!(db.validate_for(&q).is_err());
        db.insert("R", Table::new(2));
        assert!(db.validate_for(&q).is_ok());
        assert_eq!(db.max_table_size(), 0);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_rejected() {
        let mut t = Table::new(2);
        t.push(vec![1]);
    }
}
