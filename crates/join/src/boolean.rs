//! BOOLEAN JOIN QUERY: deciding answer emptiness (paper §2.1, §8).
//!
//! For the triangle query the decision problem is exactly triangle
//! detection: the Strong Triangle Conjecture (§8) says the best running
//! time in terms of the relation size N is N^{2ω/(ω+1)}. This module
//! provides the emptiness API plus the translation of a triangle-query
//! database into a tripartite graph so that `lb-graphalg`'s triangle
//! detectors (naive / matrix-multiplication / Alon–Yuster–Zwick) can run on
//! it — experiment E12 compares them against Generic Join's early exit.

use crate::database::Database;
use crate::query::JoinQuery;
use crate::wcoj::{self, JoinError};
use lb_engine::{Budget, Outcome, RunStats};
use lb_graph::Graph;
use std::collections::BTreeMap;

/// Decides whether the answer is empty, with Generic Join's early exit:
/// `Sat(is_empty)` or `Exhausted`.
#[must_use = "dropping the result discards the emptiness answer or the failure"]
pub fn is_answer_empty(
    q: &JoinQuery,
    db: &Database,
    budget: &Budget,
) -> Result<(Outcome<bool>, RunStats), JoinError> {
    wcoj::is_empty(q, db, None, budget)
}

/// Translates a **triangle query** database into a tripartite graph: one
/// vertex class per attribute (values remapped densely), one edge per tuple
/// of the corresponding relation. The answer is nonempty iff the graph has
/// a triangle with one vertex in each class — which, for a tripartite
/// graph, is just "has a triangle".
///
/// Returns the graph and, for reference, the number of vertices per class.
#[must_use = "dropping the result discards the extracted graph or the failure"]
pub fn triangle_database_to_graph(
    q: &JoinQuery,
    db: &Database,
) -> Result<(Graph, [usize; 3]), JoinError> {
    db.validate_for(q).map_err(JoinError::BadDatabase)?;
    let attrs = q.attributes();
    if attrs.len() != 3 || q.atoms.len() != 3 || q.atoms.iter().any(|a| a.attrs.len() != 2) {
        return Err(JoinError::BadDatabase(
            "not a triangle query (3 attributes, 3 binary atoms)".to_string(),
        ));
    }
    // Dense value remapping per attribute.
    let mut value_ids: Vec<BTreeMap<u64, usize>> = vec![BTreeMap::new(); 3];
    let attr_idx =
        // lb-lint: allow(no-panic) -- invariant: validate_for checked every attribute name up front
        |name: &str| attrs.iter().position(|a| a == name).expect("validated");
    for atom in &q.atoms {
        // lb-lint: allow(no-panic) -- invariant: validate_for checked every atom's relation up front
        let table = db.table(&atom.relation).expect("validated");
        let cols: Vec<usize> = atom.attrs.iter().map(|a| attr_idx(a)).collect();
        for row in table.rows() {
            for (c, &ai) in cols.iter().enumerate() {
                let next = value_ids[ai].len();
                value_ids[ai].entry(row[c]).or_insert(next);
            }
        }
    }
    let sizes = [value_ids[0].len(), value_ids[1].len(), value_ids[2].len()];
    let offset = [0, sizes[0], sizes[0] + sizes[1]];
    let n = sizes.iter().sum();
    let mut g = Graph::new(n);
    for atom in &q.atoms {
        // lb-lint: allow(no-panic) -- invariant: validate_for checked every atom's relation up front
        let table = db.table(&atom.relation).expect("validated");
        let cols: Vec<usize> = atom.attrs.iter().map(|a| attr_idx(a)).collect();
        for row in table.rows() {
            let u = offset[cols[0]] + value_ids[cols[0]][&row[0]];
            let v = offset[cols[1]] + value_ids[cols[1]][&row[1]];
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v);
            }
        }
    }
    Ok((g, sizes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Table;
    use crate::generators;

    fn empty_unlimited(q: &JoinQuery, db: &Database) -> bool {
        is_answer_empty(q, db, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat()
    }

    #[test]
    fn emptiness_matches_join_size() {
        for seed in 0..10u64 {
            let q = JoinQuery::triangle();
            let db = generators::random_binary_database(&q, 20, 8, seed);
            let empty = empty_unlimited(&q, &db);
            let size = wcoj::count(&q, &db, None, &Budget::unlimited())
                .unwrap()
                .0
                .unwrap_sat();
            assert_eq!(empty, size == 0, "seed {seed}");
        }
    }

    #[test]
    fn tripartite_translation_preserves_emptiness() {
        for seed in 0..10u64 {
            let q = JoinQuery::triangle();
            let db = generators::random_binary_database(&q, 15, 6, seed);
            let (g, sizes) = triangle_database_to_graph(&q, &db).unwrap();
            assert_eq!(g.num_vertices(), sizes.iter().sum::<usize>());
            // Brute-force triangle check on the tripartite graph.
            let mut has_triangle = false;
            'outer: for u in 0..g.num_vertices() {
                for v in (u + 1)..g.num_vertices() {
                    if !g.has_edge(u, v) {
                        continue;
                    }
                    for w in (v + 1)..g.num_vertices() {
                        if g.has_edge(u, w) && g.has_edge(v, w) {
                            has_triangle = true;
                            break 'outer;
                        }
                    }
                }
            }
            let empty = empty_unlimited(&q, &db);
            assert_eq!(!empty, has_triangle, "seed {seed}");
        }
    }

    #[test]
    fn non_triangle_query_rejected() {
        let q = JoinQuery::star(2);
        let mut db = Database::new();
        db.insert("R1", Table::new(2));
        db.insert("R2", Table::new(2));
        assert!(triangle_database_to_graph(&q, &db).is_err());
    }
}
