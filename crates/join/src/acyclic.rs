//! Acyclic join queries: GYO reduction and Yannakakis' algorithm.
//!
//! Paper §4: "if we assume, for example, that the primal graph of the query
//! is a tree (acyclic graph), then it is easy to solve the problem in
//! polynomial time". The database-theoretic form of that remark is
//! α-acyclicity: a query hypergraph is α-acyclic iff the GYO reduction
//! (repeatedly delete ear hyperedges and isolated vertices) empties it, and
//! for α-acyclic queries Yannakakis' algorithm decides emptiness — and
//! computes the full answer — in time linear in input + output, with no
//! N^{ρ*} worst case. This is the tractable boundary against which the
//! lower bounds of §6–§7 (bounded treewidth, and nothing more) push.
//!
//! Implementation: [`gyo_join_tree`] builds a join tree via GYO; the
//! Yannakakis evaluator runs a semi-join reduction sweep (up then down) and
//! then joins bottom-up, guaranteeing every intermediate stays within the
//! final output size.
//!
//! Engine mapping: each semi-join row check is a [`RunStats::propagations`]
//! tick, each probed row in the bottom-up join a [`RunStats::nodes`] tick,
//! and each materialized tuple a [`RunStats::tuples`] tick; intermediate
//! sizes land in [`RunStats::max_intermediate`] (bounded by the output for
//! a reduced instance — the property the algorithm is famous for).
//!
//! [`RunStats::propagations`]: lb_engine::RunStats::propagations
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::tuples`]: lb_engine::RunStats::tuples
//! [`RunStats::max_intermediate`]: lb_engine::RunStats::max_intermediate

use crate::database::{Database, Table};
use crate::query::{AnswerTuple, JoinQuery};
use crate::wcoj::JoinError;
use crate::Value;
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};
use std::collections::{HashMap, HashSet};

/// A join tree: one node per atom, edges such that for every attribute the
/// atoms containing it form a connected subtree.
#[derive(Clone, Debug)]
pub struct JoinTree {
    /// `parent[i]` = parent atom index of atom `i`, or `usize::MAX` at the
    /// root.
    pub parent: Vec<usize>,
    /// A topological order (children before parents).
    pub order: Vec<usize>,
}

/// Tests α-acyclicity and builds a join tree via the GYO reduction.
///
/// Returns `None` if the query is cyclic (e.g. the triangle query).
pub fn gyo_join_tree(q: &JoinQuery) -> Option<JoinTree> {
    let m = q.atoms.len();
    // Attribute sets per atom.
    let attr_sets: Vec<HashSet<String>> = q
        .atoms
        .iter()
        .map(|a| a.attrs.iter().cloned().collect())
        .collect();
    let mut alive: Vec<bool> = vec![true; m];
    let mut parent = vec![usize::MAX; m];
    let mut removal_order: Vec<usize> = Vec::with_capacity(m);

    // An attribute is *isolated* if it appears in exactly one alive atom.
    // An alive atom e is an *ear* if, after dropping isolated attributes,
    // its remaining attributes are all contained in a single other alive
    // atom w (the witness); e is removed and attached to w. Repeat.
    loop {
        let alive_count = alive.iter().filter(|&&a| a).count();
        if alive_count <= 1 {
            // Attach the last atom as the root.
            if let Some(root) = (0..m).find(|&i| alive[i]) {
                removal_order.push(root);
            }
            break;
        }
        // Attribute frequencies among alive atoms.
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for (i, s) in attr_sets.iter().enumerate() {
            if alive[i] {
                for a in s {
                    *freq.entry(a.as_str()).or_insert(0) += 1;
                }
            }
        }
        let mut progressed = false;
        'ears: for e in 0..m {
            if !alive[e] {
                continue;
            }
            let shared: HashSet<&str> = attr_sets[e]
                .iter()
                .map(|s| s.as_str())
                .filter(|a| freq[a] > 1)
                .collect();
            for w in 0..m {
                if w == e || !alive[w] {
                    continue;
                }
                if shared.iter().all(|a| attr_sets[w].contains(*a)) {
                    // e is an ear with witness w.
                    alive[e] = false;
                    parent[e] = w;
                    removal_order.push(e);
                    progressed = true;
                    break 'ears;
                }
            }
        }
        if !progressed {
            return None; // cyclic
        }
    }
    Some(JoinTree {
        parent,
        order: removal_order,
    })
}

/// True iff the query hypergraph is α-acyclic.
pub fn is_acyclic(q: &JoinQuery) -> bool {
    gyo_join_tree(q).is_some()
}

/// An annotated relation used inside Yannakakis: schema + rows.
#[derive(Clone, Debug)]
struct Ann {
    attrs: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl Ann {
    fn common_positions(&self, other: &Ann) -> Vec<(usize, usize)> {
        self.attrs
            .iter()
            .enumerate()
            .filter_map(|(i, a)| other.attrs.iter().position(|b| b == a).map(|j| (i, j)))
            .collect()
    }

    fn key(&self, row: &[Value], positions: &[(usize, usize)], use_left: bool) -> Vec<Value> {
        positions
            .iter()
            .map(|&(i, j)| row[if use_left { i } else { j }])
            .collect()
    }
}

/// Semi-join: keep the rows of `left` that join with some row of `right`.
fn semi_join(left: &mut Ann, right: &Ann, ticker: &mut Ticker) -> Result<(), ExhaustReason> {
    let common = left.common_positions(right);
    if common.is_empty() {
        if right.rows.is_empty() {
            left.rows.clear();
        }
        return Ok(());
    }
    let keys: HashSet<Vec<Value>> = right
        .rows
        .iter()
        .map(|r| common.iter().map(|&(_, j)| r[j]).collect())
        .collect();
    let mut kept = Vec::with_capacity(left.rows.len());
    for r in left.rows.drain(..) {
        ticker.propagation()?;
        let key: Vec<Value> = common.iter().map(|&(i, _)| r[i]).collect();
        if keys.contains(&key) {
            kept.push(r);
        }
    }
    left.rows = kept;
    Ok(())
}

/// Join `left ⋈ right` (hash join); output schema = left ++ (right \ left).
fn join_pair(left: &Ann, right: &Ann, ticker: &mut Ticker) -> Result<Ann, ExhaustReason> {
    let common = left.common_positions(right);
    let right_extra: Vec<usize> = (0..right.attrs.len())
        .filter(|j| !common.iter().any(|&(_, cj)| cj == *j))
        .collect();
    let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (ri, row) in right.rows.iter().enumerate() {
        index
            .entry(left.key(row, &common, false))
            .or_default()
            .push(ri);
    }
    let mut attrs = left.attrs.clone();
    attrs.extend(right_extra.iter().map(|&j| right.attrs[j].clone()));
    let mut rows = Vec::new();
    for lrow in &left.rows {
        ticker.node()?;
        if let Some(matches) = index.get(&left.key(lrow, &common, true)) {
            for &ri in matches {
                ticker.tuple()?;
                let mut out = lrow.clone();
                out.extend(right_extra.iter().map(|&j| right.rows[ri][j]));
                rows.push(out);
            }
        }
    }
    ticker.record_intermediate(rows.len() as u64);
    Ok(Ann { attrs, rows })
}

/// Loads annotated relations, normalizing repeated attributes.
fn load_anns(q: &JoinQuery, db: &Database) -> Vec<Ann> {
    let mut anns: Vec<Ann> = Vec::with_capacity(q.atoms.len());
    for atom in &q.atoms {
        // lb-lint: allow(no-panic) -- invariant: validate_for checked every atom's relation before the join ran
        let table: &Table = db.table(&atom.relation).expect("validated");
        let mut attrs: Vec<String> = Vec::new();
        let mut cols: Vec<usize> = Vec::new();
        for (c, a) in atom.attrs.iter().enumerate() {
            if !attrs.contains(a) {
                attrs.push(a.clone());
                cols.push(c);
            }
        }
        let rows: Vec<Vec<Value>> = table
            .rows()
            .iter()
            .filter(|row| {
                atom.attrs.iter().enumerate().all(|(c, a)| {
                    // lb-lint: allow(no-panic) -- invariant: a is drawn from atom.attrs
                    let first = atom.attrs.iter().position(|x| x == a).expect("present");
                    row[c] == row[first]
                })
            })
            .map(|row| cols.iter().map(|&c| row[c]).collect())
            .collect();
        anns.push(Ann { attrs, rows });
    }
    anns
}

/// Yannakakis' algorithm for α-acyclic full join queries: a full semi-join
/// reduction (leaves→root, then root→leaves) followed by a bottom-up join.
/// After reduction every intermediate result is no larger than the final
/// answer, so the running time is O(input + output) up to hashing.
///
/// Returns `Err` if the query is cyclic or the database malformed; budget
/// exhaustion yields [`Outcome::Exhausted`].
#[must_use = "dropping the result discards the join answers or the failure"]
pub fn yannakakis(
    q: &JoinQuery,
    db: &Database,
    budget: &Budget,
) -> Result<(Outcome<Vec<AnswerTuple>>, RunStats), JoinError> {
    db.validate_for(q).map_err(JoinError::BadDatabase)?;
    let tree = gyo_join_tree(q).ok_or_else(|| {
        JoinError::BadDatabase("query is cyclic; Yannakakis needs an α-acyclic query".into())
    })?;
    let mut ticker = Ticker::new(budget);
    let result = yannakakis_inner(q, db, &tree, &mut ticker);
    Ok(ticker.finish(result.map(Some)))
}

fn yannakakis_inner(
    q: &JoinQuery,
    db: &Database,
    tree: &JoinTree,
    ticker: &mut Ticker,
) -> Result<Vec<AnswerTuple>, ExhaustReason> {
    let mut anns = load_anns(q, db);

    // Upward semi-join sweep: children before parents (tree.order is a
    // valid child-first order by construction).
    for &e in &tree.order {
        let p = tree.parent[e];
        if p != usize::MAX {
            let child = anns[e].clone();
            semi_join(&mut anns[p], &child, ticker)?;
        }
    }
    // Downward sweep: parents before children.
    for &e in tree.order.iter().rev() {
        let p = tree.parent[e];
        if p != usize::MAX {
            let parent_ann = anns[p].clone();
            semi_join(&mut anns[e], &parent_ann, ticker)?;
        }
    }
    // Bottom-up join along the tree order.
    let mut acc: HashMap<usize, Ann> = HashMap::new();
    for &e in &tree.order {
        let own = anns[e].clone();
        let merged = match acc.remove(&e) {
            Some(partial) => join_pair(&partial, &own, ticker)?,
            None => own,
        };
        let p = tree.parent[e];
        if p == usize::MAX {
            // Root: produce the final answer.
            let attrs = q.attributes();
            let perm: Vec<usize> = attrs
                .iter()
                .map(|a| {
                    merged
                        .attrs
                        .iter()
                        .position(|x| x == a)
                        // lb-lint: allow(no-panic) -- invariant: a join tree covers every attribute of the query
                        .expect("join tree covers all attributes")
                })
                .collect();
            let mut out: Vec<AnswerTuple> = merged
                .rows
                .iter()
                .map(|r| perm.iter().map(|&i| r[i]).collect())
                .collect();
            out.sort_unstable();
            out.dedup();
            return Ok(out);
        }
        match acc.remove(&p) {
            Some(existing) => {
                acc.insert(p, join_pair(&existing, &merged, ticker)?);
            }
            None => {
                acc.insert(p, merged);
            }
        }
    }
    // lb-lint: allow(no-panic) -- invariant: tree.order always ends at the root
    unreachable!("tree.order always ends at the root");
}

/// Decides emptiness of an acyclic query with the upward semi-join sweep
/// only — strictly linear time, no output-size term. `Sat(is_empty)` or
/// `Exhausted`.
#[must_use = "dropping the result discards the emptiness answer or the failure"]
pub fn is_empty_acyclic(
    q: &JoinQuery,
    db: &Database,
    budget: &Budget,
) -> Result<(Outcome<bool>, RunStats), JoinError> {
    db.validate_for(q).map_err(JoinError::BadDatabase)?;
    let tree = gyo_join_tree(q).ok_or_else(|| {
        JoinError::BadDatabase("query is cyclic; Yannakakis needs an α-acyclic query".into())
    })?;
    let mut ticker = Ticker::new(budget);
    let result = is_empty_inner(q, db, &tree, &mut ticker);
    Ok(ticker.finish(result.map(Some)))
}

fn is_empty_inner(
    q: &JoinQuery,
    db: &Database,
    tree: &JoinTree,
    ticker: &mut Ticker,
) -> Result<bool, ExhaustReason> {
    let mut anns: Vec<Ann> = q
        .atoms
        .iter()
        .map(|atom| {
            // lb-lint: allow(no-panic) -- invariant: validate_for checked every atom's relation before the join ran
            let table = db.table(&atom.relation).expect("validated");
            Ann {
                attrs: atom.attrs.clone(),
                rows: table.rows().to_vec(),
            }
        })
        .collect();
    for &e in &tree.order {
        let p = tree.parent[e];
        if p != usize::MAX {
            let child = anns[e].clone();
            semi_join(&mut anns[p], &child, ticker)?;
        } else {
            return Ok(anns[e].rows.is_empty());
        }
    }
    // lb-lint: allow(no-panic) -- invariant: tree.order always ends at the root
    unreachable!("order ends at the root");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::query::Atom;
    use crate::wcoj;

    fn path_query(len: usize) -> JoinQuery {
        let atoms = (0..len)
            .map(|i| Atom {
                relation: format!("R{i}"),
                attrs: vec![format!("x{i}"), format!("x{}", i + 1)],
            })
            .collect();
        JoinQuery::new(atoms)
    }

    fn yannakakis_all(q: &JoinQuery, db: &Database) -> Vec<AnswerTuple> {
        yannakakis(q, db, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat()
    }

    fn wcoj_all(q: &JoinQuery, db: &Database) -> Vec<AnswerTuple> {
        wcoj::join(q, db, None, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat()
    }

    #[test]
    fn acyclicity_classification() {
        assert!(is_acyclic(&path_query(4)));
        assert!(is_acyclic(&JoinQuery::star(4)));
        assert!(!is_acyclic(&JoinQuery::triangle()));
        assert!(!is_acyclic(&JoinQuery::cycle(4)));
        // LW(3) is the triangle with ternary edges missing... LW(n) is
        // cyclic for all n ≥ 3.
        assert!(!is_acyclic(&JoinQuery::loomis_whitney(3)));
        // A single atom is trivially acyclic.
        assert!(is_acyclic(&JoinQuery::new(vec![Atom::new(
            "R",
            &["a", "b"]
        )])));
        // Ternary "path" R(a,b,c) ⋈ S(c,d) is acyclic.
        assert!(is_acyclic(&JoinQuery::new(vec![
            Atom::new("R", &["a", "b", "c"]),
            Atom::new("S", &["c", "d"]),
        ])));
    }

    #[test]
    fn yannakakis_matches_wcoj_on_paths() {
        for seed in 0..8u64 {
            let q = path_query(4);
            let db = generators::random_binary_database(&q, 30, 8, seed);
            let a = yannakakis_all(&q, &db);
            let b = wcoj_all(&q, &db);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn yannakakis_matches_wcoj_on_stars() {
        for seed in 0..8u64 {
            let q = JoinQuery::star(4);
            let db = generators::random_binary_database(&q, 25, 6, seed);
            assert_eq!(yannakakis_all(&q, &db), wcoj_all(&q, &db), "seed {seed}");
        }
    }

    #[test]
    fn yannakakis_on_mixed_arity_tree() {
        // R(a,b,c) ⋈ S(c,d) ⋈ T(d) — acyclic with mixed arities.
        let q = JoinQuery::new(vec![
            Atom::new("R", &["a", "b", "c"]),
            Atom::new("S", &["c", "d"]),
            Atom::new("T", &["d"]),
        ]);
        for seed in 0..5u64 {
            let db = generators::random_database(&q, 20, 5, seed);
            assert_eq!(yannakakis_all(&q, &db), wcoj_all(&q, &db), "seed {seed}");
        }
    }

    #[test]
    fn cyclic_query_rejected() {
        let q = JoinQuery::triangle();
        let db = generators::random_binary_database(&q, 10, 4, 0);
        assert!(yannakakis(&q, &db, &Budget::unlimited()).is_err());
        assert!(is_empty_acyclic(&q, &db, &Budget::unlimited()).is_err());
    }

    #[test]
    fn emptiness_sweep_agrees() {
        for seed in 0..10u64 {
            let q = path_query(5);
            let db = generators::random_binary_database(&q, 8, 6, seed);
            let empty = is_empty_acyclic(&q, &db, &Budget::unlimited())
                .unwrap()
                .0
                .unwrap_sat();
            assert_eq!(
                empty,
                wcoj::count(&q, &db, None, &Budget::unlimited())
                    .unwrap()
                    .0
                    .unwrap_sat()
                    == 0,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn semijoin_reduction_bounds_intermediates() {
        // A path query where the unreduced join would blow up: every
        // relation is large but the final answer is empty because the last
        // relation shares no values.
        let q = path_query(3);
        let mut db = Database::new();
        let mut big = Table::new(2);
        for i in 0..50u64 {
            for j in 0..50u64 {
                big.push(vec![i, j]);
            }
        }
        big.normalize();
        db.insert("R0", big.clone());
        db.insert("R1", big);
        let mut empty_link = Table::new(2);
        empty_link.push(vec![1000, 1000]);
        empty_link.normalize();
        db.insert("R2", empty_link);
        let (out, stats) = yannakakis(&q, &db, &Budget::unlimited()).unwrap();
        assert!(out.unwrap_sat().is_empty());
        // The semi-join reduction emptied everything before any join ran.
        assert_eq!(stats.max_intermediate, 0);
        assert!(is_empty_acyclic(&q, &db, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat());
    }

    #[test]
    fn tiny_budget_exhausts() {
        let q = path_query(3);
        let db = generators::random_binary_database(&q, 30, 8, 1);
        let (out, stats) = yannakakis(&q, &db, &Budget::ticks(5)).unwrap();
        assert!(out.is_exhausted());
        assert_eq!(stats.total_ops(), 6); // the crossing op is still recorded
        let (out, _) = is_empty_acyclic(&q, &db, &Budget::ticks(5)).unwrap();
        assert!(out.is_exhausted());
    }

    #[test]
    fn repeated_attributes_handled() {
        // R(a,a) ⋈ S(a,b): acyclic; diagonal filter must apply.
        let q = JoinQuery::new(vec![
            Atom::new("R", &["a", "a"]),
            Atom::new("S", &["a", "b"]),
        ]);
        let mut db = Database::new();
        db.insert(
            "R",
            Table::from_rows(2, vec![vec![1, 1], vec![1, 2], vec![3, 3]]),
        );
        db.insert(
            "S",
            Table::from_rows(2, vec![vec![1, 7], vec![3, 8], vec![2, 9]]),
        );
        let ans = yannakakis_all(&q, &db);
        assert_eq!(ans, vec![vec![1, 7], vec![3, 8]]);
    }
}
