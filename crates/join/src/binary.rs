//! Binary (pairwise) join plans: the classical baseline.
//!
//! A left-deep plan of hash joins materializes every intermediate result.
//! On the AGM worst-case triangle databases any pairwise plan first joins
//! two relations of size N into an intermediate of size N² — the Ω(N²)
//! behaviour that worst-case optimal joins avoid. Experiment E2 measures
//! the crossover; [`RunStats::max_intermediate`] is the quantity that
//! blows up.
//!
//! Engine mapping: each probe row examined is a [`RunStats::nodes`] tick,
//! each intermediate tuple materialized a [`RunStats::tuples`] tick, and
//! every intermediate's size is recorded in
//! [`RunStats::max_intermediate`].
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::tuples`]: lb_engine::RunStats::tuples
//! [`RunStats::max_intermediate`]: lb_engine::RunStats::max_intermediate

use crate::database::Database;
use crate::query::{AnswerTuple, JoinQuery};
use crate::wcoj::JoinError;
use crate::Value;
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};
use std::collections::HashMap;

/// An intermediate result with its schema.
struct Intermediate {
    attrs: Vec<String>,
    rows: Vec<Vec<Value>>,
}

/// Evaluates the query left-to-right with pairwise hash joins. Returns the
/// answer (attribute order = [`JoinQuery::attributes`], sorted) with the
/// run's counters; malformed inputs fail with `Err`, budget exhaustion
/// yields [`Outcome::Exhausted`].
#[must_use = "dropping the result discards the join answers and statistics or the failure"]
pub fn left_deep_join(
    q: &JoinQuery,
    db: &Database,
    budget: &Budget,
) -> Result<(Outcome<Vec<AnswerTuple>>, RunStats), JoinError> {
    db.validate_for(q).map_err(JoinError::BadDatabase)?;
    let mut ticker = Ticker::new(budget);
    let result = left_deep_inner(q, db, &mut ticker);
    Ok(ticker.finish(result.map(Some)))
}

fn left_deep_inner(
    q: &JoinQuery,
    db: &Database,
    ticker: &mut Ticker,
) -> Result<Vec<AnswerTuple>, ExhaustReason> {
    let mut acc: Option<Intermediate> = None;
    for atom in &q.atoms {
        // lb-lint: allow(no-panic, panic-reachability) -- invariant: validate_for checked every atom's relation before the join ran
        let table = db.table(&atom.relation).expect("validated");
        // Normalize the atom to distinct attributes (diagonal filter).
        let mut attrs: Vec<String> = Vec::new();
        let mut cols: Vec<usize> = Vec::new();
        // lb-lint: allow(unbudgeted-loop) -- scans one atom's attribute list; bounded by arity
        for (c, a) in atom.attrs.iter().enumerate() {
            if !attrs.contains(a) {
                attrs.push(a.clone());
                cols.push(c);
            }
        }
        let rows: Vec<Vec<Value>> = table
            .rows()
            .iter()
            .filter(|row| {
                atom.attrs.iter().enumerate().all(|(c, a)| {
                    // lb-lint: allow(no-panic, panic-reachability) -- invariant: a is drawn from atom.attrs
                    let first = atom.attrs.iter().position(|x| x == a).expect("present");
                    row[c] == row[first]
                })
            })
            .map(|row| cols.iter().map(|&c| row[c]).collect())
            .collect();
        let right = Intermediate { attrs, rows };

        acc = Some(match acc {
            None => right,
            Some(left) => {
                let joined = hash_join(&left, &right, ticker)?;
                ticker.record_intermediate(joined.rows.len() as u64);
                joined
            }
        });
    }

    // lb-lint: allow(no-panic, panic-reachability) -- invariant: validated queries have at least one atom
    let acc = acc.expect("query has atoms");
    // Re-order columns to sorted attribute order and sort rows.
    let attrs = q.attributes();
    let perm: Vec<usize> = attrs
        .iter()
        .map(|a| {
            acc.attrs
                .iter()
                .position(|x| x == a)
                // lb-lint: allow(no-panic, panic-reachability) -- invariant: the accumulator's schema contains every joined attribute
                .expect("all attrs joined")
        })
        .collect();
    let mut out: Vec<AnswerTuple> = acc
        .rows
        .iter()
        .map(|r| perm.iter().map(|&i| r[i]).collect())
        .collect();
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Classic hash join on the common attributes; the smaller side is hashed.
fn hash_join(
    left: &Intermediate,
    right: &Intermediate,
    ticker: &mut Ticker,
) -> Result<Intermediate, ExhaustReason> {
    let common: Vec<(usize, usize)> = left
        .attrs
        .iter()
        .enumerate()
        .filter_map(|(li, a)| right.attrs.iter().position(|b| b == a).map(|ri| (li, ri)))
        .collect();
    let right_extra: Vec<usize> = (0..right.attrs.len())
        .filter(|ri| !common.iter().any(|&(_, r)| r == *ri))
        .collect();

    let (build, probe, build_is_left) = if left.rows.len() <= right.rows.len() {
        (left, right, true)
    } else {
        (right, left, false)
    };
    let key_of = |row: &[Value], is_left: bool| -> Vec<Value> {
        common
            .iter()
            .map(|&(li, ri)| row[if is_left { li } else { ri }])
            .collect()
    };
    let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    // lb-lint: allow(unbudgeted-loop) -- build-side hash insertion, linear in the build relation; probe side charges per tuple
    for (i, row) in build.rows.iter().enumerate() {
        // lb-lint: allow(unbounded-growth) -- build-side index, linear in one input relation; the joined output below is recorded
        index.entry(key_of(row, build_is_left)).or_default().push(i);
    }

    let mut attrs = left.attrs.clone();
    attrs.extend(right_extra.iter().map(|&ri| right.attrs[ri].clone()));
    let mut rows = Vec::new();
    for prow in &probe.rows {
        ticker.node()?;
        let key = key_of(prow, !build_is_left);
        if let Some(matches) = index.get(&key) {
            for &bi in matches {
                ticker.tuple()?;
                let brow = &build.rows[bi];
                let (lrow, rrow) = if build_is_left {
                    (brow, prow)
                } else {
                    (prow, brow)
                };
                let mut out = lrow.clone();
                out.extend(right_extra.iter().map(|&ri| rrow[ri]));
                rows.push(out);
                ticker.record_intermediate(rows.len() as u64);
            }
        }
    }
    Ok(Intermediate { attrs, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::wcoj;

    fn left_deep_all(q: &JoinQuery, db: &Database) -> (Vec<AnswerTuple>, RunStats) {
        let (out, stats) = left_deep_join(q, db, &Budget::unlimited()).unwrap();
        (out.unwrap_sat(), stats)
    }

    /// Collects the WCOJ answer by streaming through `join_foreach` — the
    /// canonical consumer shape when tuples are only compared or counted.
    fn wcoj_all(q: &JoinQuery, db: &Database) -> Vec<AnswerTuple> {
        let mut out = Vec::new();
        let n = wcoj::join_foreach(q, db, None, &Budget::unlimited(), |t| out.push(t.to_vec()))
            .unwrap()
            .0
            .unwrap_sat();
        assert_eq!(n as usize, out.len());
        out.sort_unstable();
        out
    }

    #[test]
    fn agrees_with_wcoj_on_random_triangles() {
        for seed in 0..10u64 {
            let q = JoinQuery::triangle();
            let db = generators::random_binary_database(&q, 40, 10, seed);
            let (ans, _) = left_deep_all(&q, &db);
            assert_eq!(ans, wcoj_all(&q, &db), "seed {seed}");
        }
    }

    #[test]
    fn agrees_on_star_and_cycle() {
        for seed in 0..5u64 {
            for q in [JoinQuery::star(3), JoinQuery::cycle(4)] {
                let db = generators::random_binary_database(&q, 25, 6, seed);
                let (ans, _) = left_deep_all(&q, &db);
                assert_eq!(ans, wcoj_all(&q, &db));
            }
        }
    }

    #[test]
    fn quadratic_intermediate_on_worst_case() {
        // The Theorem 3.2 database for the triangle forces the first
        // pairwise join to materialize s² · s = n^{3/2}... specifically
        // R(a,b) ⋈ S(a,c) has s·s·s = n^{3/2} rows where s = √n, strictly
        // more than the final answer only for larger structures; what we
        // check: the intermediate exceeds every input relation.
        let q = JoinQuery::triangle();
        let (db, _) = crate::agm::worst_case_database(&q, 64).unwrap();
        let (_, stats) = left_deep_all(&q, &db);
        assert!(
            stats.max_intermediate as usize > db.max_table_size(),
            "intermediate {} should exceed inputs {}",
            stats.max_intermediate,
            db.max_table_size()
        );
        // Exactly s³ = 512 for n = 64 (s = 8).
        assert_eq!(stats.max_intermediate, 512);
        // Every materialized intermediate tuple was ticked.
        assert!(stats.tuples >= stats.max_intermediate);
    }

    #[test]
    fn tiny_budget_exhausts() {
        let q = JoinQuery::triangle();
        let (db, _) = crate::agm::worst_case_database(&q, 64).unwrap();
        let (out, stats) = left_deep_join(&q, &db, &Budget::ticks(20)).unwrap();
        assert!(out.is_exhausted());
        assert_eq!(stats.total_ops(), 21); // the crossing op is still recorded
    }

    #[test]
    fn cartesian_product_when_no_common_attrs() {
        let q = JoinQuery::new(vec![
            crate::query::Atom::new("R", &["a"]),
            crate::query::Atom::new("S", &["b"]),
        ]);
        let mut db = Database::new();
        db.insert(
            "R",
            crate::database::Table::from_rows(1, vec![vec![1], vec![2]]),
        );
        db.insert(
            "S",
            crate::database::Table::from_rows(1, vec![vec![7], vec![8]]),
        );
        let (ans, _) = left_deep_all(&q, &db);
        assert_eq!(ans.len(), 4);
        assert_eq!(ans, wcoj_all(&q, &db));
    }
}
