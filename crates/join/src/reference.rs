//! The pre-leapfrog Generic Join, frozen as a differential oracle.
//!
//! This is the row-major generic join that [`crate::wcoj`] used before the
//! columnar Leapfrog Triejoin rewrite: per-variable intersection by
//! iterating the smallest relation's distinct values and binary-searching
//! the other participants' sorted row projections. It is kept verbatim
//! (minus checkpointing) so property tests and the BENCH harness can
//! compare the new engine's answers and op counts against a known-good
//! implementation of the same Õ(N^{ρ*}) algorithm.
//!
//! Engine mapping (identical to the old path): each candidate value tried
//! is a `nodes` tick, each per-relation range narrowing a `trie_advances`
//! tick, each answer tuple a `tuples` tick, and the frame-stack depth is
//! recorded in `max_intermediate`.

use crate::database::Database;
use crate::query::{AnswerTuple, JoinQuery};
use crate::wcoj::JoinError;
use crate::Value;
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// A prepared atom: rows re-sorted so columns follow the global variable
/// order, repeated attributes collapsed to their diagonal.
struct PreparedAtom {
    /// Global variable ranks of this atom's (distinct) attributes, ascending.
    var_ranks: Vec<usize>,
    /// Rows sorted lexicographically in `var_ranks` column order.
    rows: Vec<Vec<Value>>,
}

struct Prepared {
    atoms: Vec<PreparedAtom>,
    num_vars: usize,
}

fn prepare(q: &JoinQuery, db: &Database, order: Option<&[String]>) -> Result<Prepared, JoinError> {
    db.validate_for(q).map_err(JoinError::BadDatabase)?;
    let attrs = q.attributes();
    let order: Vec<String> = match order {
        Some(o) => {
            let mut sorted = o.to_vec();
            sorted.sort();
            if sorted != attrs {
                return Err(JoinError::BadOrder(format!(
                    "order {o:?} is not a permutation of {attrs:?}"
                )));
            }
            o.to_vec()
        }
        None => attrs.clone(),
    };
    // lb-lint: allow(no-panic, panic-reachability) -- invariant: the order was just verified to cover every query attribute
    let rank_of = |name: &str| order.iter().position(|a| a == name).expect("validated");

    let mut atoms = Vec::with_capacity(q.atoms.len());
    // lb-lint: allow(unbudgeted-loop) -- plan construction, linear in database size; runs once before search
    for atom in &q.atoms {
        // lb-lint: allow(no-panic, panic-reachability) -- invariant: validate_for checked every atom's relation before the join ran
        let table = db.table(&atom.relation).expect("validated");
        let mut distinct: Vec<(usize, usize)> = Vec::new(); // (rank, column)
                                                            // lb-lint: allow(unbudgeted-loop) -- plan construction, linear in database size; runs once before search
        for (col, a) in atom.attrs.iter().enumerate() {
            let r = rank_of(a);
            if !distinct.iter().any(|&(dr, _)| dr == r) {
                distinct.push((r, col)); // lb-lint: allow(unbounded-growth) -- one entry per distinct attribute, bounded by atom arity
            }
        }
        distinct.sort_unstable();
        let var_ranks: Vec<usize> = distinct.iter().map(|&(r, _)| r).collect();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        // lb-lint: allow(unbudgeted-loop) -- plan construction, linear in database size; runs once before search
        'rows: for row in table.rows() {
            // lb-lint: allow(unbudgeted-loop) -- plan construction, linear in database size; runs once before search
            for (col, a) in atom.attrs.iter().enumerate() {
                let r = rank_of(a);
                let first_col = distinct
                    .iter()
                    .find(|&&(dr, _)| dr == r)
                    // lb-lint: allow(no-panic, panic-reachability) -- invariant: every attribute rank was entered into distinct above
                    .expect("present")
                    .1;
                // lb-lint: allow(no-unchecked-index, panic-reachability) -- col < arity = row.len(), checked by validate_for
                if row[col] != row[first_col] {
                    continue 'rows;
                }
            }
            // lb-lint: allow(no-unchecked-index, panic-reachability) -- distinct columns are positions within this atom's row
            rows.push(distinct.iter().map(|&(_, col)| row[col]).collect()); // lb-lint: allow(unbounded-growth) -- projected copy of one input table, linear in database size
        }
        rows.sort_unstable();
        rows.dedup();
        atoms.push(PreparedAtom { var_ranks, rows }); // lb-lint: allow(unbounded-growth) -- one prepared atom per query atom
    }
    Ok(Prepared {
        atoms,
        num_vars: attrs.len(),
    })
}

/// Active range of an atom's sorted rows during the search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Range {
    lo: usize,
    hi: usize,
    depth: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Enter,
    Step,
    Narrow { idx: usize },
    Emit,
}

struct Frame {
    participants: Vec<usize>,
    driver: usize,
    saved: Vec<Range>,
    lo: usize,
    lo_end: usize,
    hi: usize,
    v: Value,
}

struct Machine {
    ranges: Vec<Range>,
    tuple: Vec<Value>,
    frames: Vec<Frame>,
    phase: Phase,
}

impl Machine {
    fn fresh(p: &Prepared) -> Machine {
        Machine {
            ranges: p
                .atoms
                .iter()
                .map(|a| Range {
                    lo: 0,
                    hi: a.rows.len(),
                    depth: 0,
                })
                .collect(),
            tuple: vec![0; p.num_vars],
            frames: Vec::new(),
            phase: Phase::Enter,
        }
    }

    fn restore_and_advance(frame: &mut Frame, ranges: &mut [Range]) {
        // lb-lint: allow(unbudgeted-loop) -- restores one frame's saved ranges; bounded by participants
        for (&i, &r) in frame.participants.iter().zip(&frame.saved) {
            if let Some(slot) = ranges.get_mut(i) {
                *slot = r;
            }
        }
        frame.lo = frame.lo_end;
    }

    fn run(
        &mut self,
        p: &Prepared,
        ticker: &mut Ticker,
    ) -> Result<Option<Vec<Value>>, ExhaustReason> {
        loop {
            match self.phase {
                Phase::Enter => {
                    let level = self.frames.len();
                    if level == p.num_vars {
                        self.phase = Phase::Emit;
                        ticker.tuple()?;
                        continue;
                    }
                    let participants: Vec<usize> = p
                        .atoms
                        .iter()
                        .zip(&self.ranges)
                        .enumerate()
                        .filter(|(_, (a, r))| a.var_ranks.get(r.depth) == Some(&level))
                        .map(|(i, _)| i)
                        .collect();
                    let Some(&driver) = participants
                        .iter()
                        // lb-lint: allow(no-unchecked-index, panic-reachability) -- participants hold atom indices < ranges.len()
                        .min_by_key(|&&i| self.ranges[i].hi - self.ranges[i].lo)
                    else {
                        return Ok(None);
                    };
                    let r = self.ranges[driver]; // lb-lint: allow(no-unchecked-index, panic-reachability) -- driver is a participant index < ranges.len()
                    let saved: Vec<Range> = participants.iter().map(|&i| self.ranges[i]).collect(); // lb-lint: allow(no-unchecked-index, panic-reachability) -- participants hold atom indices < ranges.len()
                    self.frames.push(Frame {
                        participants,
                        driver,
                        saved,
                        lo: r.lo,
                        lo_end: r.lo,
                        hi: r.hi,
                        v: 0,
                    });
                    ticker.record_intermediate(self.frames.len() as u64);
                    self.phase = Phase::Step;
                }
                Phase::Step => {
                    let Some(frame) = self.frames.last_mut() else {
                        return Ok(None);
                    };
                    if frame.lo >= frame.hi {
                        self.frames.pop();
                        match self.frames.last_mut() {
                            None => return Ok(None),
                            Some(parent) => {
                                Machine::restore_and_advance(parent, &mut self.ranges);
                            }
                        }
                        continue;
                    }
                    let driver = frame.driver;
                    let depth = self.ranges[driver].depth; // lb-lint: allow(no-unchecked-index, panic-reachability) -- driver is a participant index < ranges.len()
                                                           // lb-lint: allow(no-unchecked-index, panic-reachability) -- lo < hi <= rows.len(); depth < var_ranks.len() = projected row arity
                    let v = p.atoms[driver].rows[frame.lo][depth];
                    // lb-lint: allow(no-unchecked-index, panic-reachability) -- driver is a participant index < p.atoms.len()
                    let lo_end = upper_bound(&p.atoms[driver].rows, frame.lo, frame.hi, depth, v);
                    frame.v = v;
                    frame.lo_end = lo_end;
                    self.phase = Phase::Narrow { idx: 0 };
                    ticker.node()?;
                }
                Phase::Narrow { idx } => {
                    let Some(frame) = self.frames.last_mut() else {
                        return Ok(None);
                    };
                    let Some(&i) = frame.participants.get(idx) else {
                        let v = frame.v;
                        let level = self.frames.len() - 1;
                        if let Some(slot) = self.tuple.get_mut(level) {
                            *slot = v;
                        }
                        self.phase = Phase::Enter;
                        continue;
                    };
                    let r = self.ranges[i]; // lb-lint: allow(no-unchecked-index, panic-reachability) -- i is a participant index < ranges.len()
                    let (nl, nh) = if i == frame.driver {
                        (frame.lo, frame.lo_end)
                    } else {
                        // lb-lint: allow(no-unchecked-index, panic-reachability) -- i is a participant index < p.atoms.len()
                        equal_range(&p.atoms[i].rows, r.lo, r.hi, r.depth, frame.v)
                    };
                    if nl == nh {
                        Machine::restore_and_advance(frame, &mut self.ranges);
                        self.phase = Phase::Step;
                        ticker.trie_advance()?;
                    } else {
                        // lb-lint: allow(no-unchecked-index, panic-reachability) -- i is a participant index < ranges.len()
                        self.ranges[i] = Range {
                            lo: nl,
                            hi: nh,
                            depth: r.depth + 1,
                        };
                        self.phase = Phase::Narrow { idx: idx + 1 };
                        ticker.trie_advance()?;
                    }
                }
                Phase::Emit => {
                    let out = self.tuple.clone();
                    match self.frames.last_mut() {
                        None => self.phase = Phase::Step,
                        Some(parent) => {
                            Machine::restore_and_advance(parent, &mut self.ranges);
                            self.phase = Phase::Step;
                        }
                    }
                    return Ok(Some(out));
                }
            }
        }
    }
}

/// First index in [lo, hi) where `rows[idx][col] > v` (rows sorted, columns
/// before `col` constant on the range).
fn upper_bound(rows: &[Vec<Value>], lo: usize, hi: usize, col: usize, v: Value) -> usize {
    lo + rows[lo..hi].partition_point(|r| r[col] <= v) // lb-lint: allow(no-unchecked-index, panic-reachability) -- col < the uniform projected row arity
}

fn equal_range(rows: &[Vec<Value>], lo: usize, hi: usize, col: usize, v: Value) -> (usize, usize) {
    let start = lo + rows[lo..hi].partition_point(|r| r[col] < v); // lb-lint: allow(no-unchecked-index, panic-reachability) -- col < the uniform projected row arity
    let end = start + rows[start..hi].partition_point(|r| r[col] == v); // lb-lint: allow(no-unchecked-index, panic-reachability) -- col < the uniform projected row arity
    (start, end)
}

/// Reference join: full answer in [`JoinQuery::attributes`] order, sorted.
#[must_use = "dropping the result discards the join answers or the failure"]
pub fn join(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
) -> Result<(Outcome<Vec<AnswerTuple>>, RunStats), JoinError> {
    let attrs = q.attributes();
    let ord: Vec<String> = order.map(|o| o.to_vec()).unwrap_or_else(|| attrs.clone());
    let p = prepare(q, db, order)?;
    let pos_of: Vec<usize> = attrs
        .iter()
        // lb-lint: allow(no-panic, panic-reachability) -- invariant: the chosen order covers every atom attribute
        .map(|a| ord.iter().position(|x| x == a).expect("validated"))
        .collect();
    let mut ticker = Ticker::new(budget);
    let mut m = Machine::fresh(&p);
    let mut out = Vec::new();
    let result = loop {
        match m.run(&p, &mut ticker) {
            Ok(Some(t)) => {
                out.push(
                    pos_of
                        .iter()
                        .map(|&i| t.get(i).copied().unwrap_or(0))
                        .collect::<Vec<Value>>(),
                );
                ticker.record_intermediate(out.len() as u64);
            }
            Ok(None) => break Ok(()),
            Err(reason) => break Err(reason),
        }
    };
    out.sort_unstable();
    Ok(ticker.finish(result.map(|()| Some(out))))
}

/// Reference count of answer tuples.
#[must_use = "dropping the result discards the answer count or the failure"]
pub fn count(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
) -> Result<(Outcome<u64>, RunStats), JoinError> {
    let p = prepare(q, db, order)?;
    let mut ticker = Ticker::new(budget);
    let mut m = Machine::fresh(&p);
    let mut n = 0u64;
    let result = loop {
        match m.run(&p, &mut ticker) {
            Ok(Some(_)) => n += 1,
            Ok(None) => break Ok(Some(n)),
            Err(reason) => break Err(reason),
        }
    };
    Ok(ticker.finish(result))
}

/// Reference emptiness decision with early exit.
#[must_use = "dropping the result discards the emptiness answer or the failure"]
pub fn is_empty(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
) -> Result<(Outcome<bool>, RunStats), JoinError> {
    let p = prepare(q, db, order)?;
    let mut ticker = Ticker::new(budget);
    let mut m = Machine::fresh(&p);
    let result = match m.run(&p, &mut ticker) {
        Ok(found) => Ok(Some(found.is_none())),
        Err(reason) => Err(reason),
    };
    Ok(ticker.finish(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Table;
    use crate::query::Atom;

    #[test]
    fn reference_finds_triangles() {
        let q = JoinQuery::triangle();
        let pairs = vec![vec![0u64, 1], vec![1, 2], vec![0, 2], vec![2, 3]];
        let mut db = Database::new();
        for name in ["R", "S", "T"] {
            let mut rows = pairs.clone();
            let rev: Vec<Vec<u64>> = pairs.iter().map(|p| vec![p[1], p[0]]).collect();
            rows.extend(rev);
            db.insert(name, Table::from_rows(2, rows));
        }
        let (out, stats) = join(&q, &db, None, &Budget::unlimited()).unwrap();
        assert_eq!(out.unwrap_sat().len(), 6);
        assert_eq!(stats.tuples, 6);
        assert!(stats.trie_advances >= stats.nodes);
        assert_eq!(
            count(&q, &db, None, &Budget::unlimited())
                .unwrap()
                .0
                .unwrap_sat(),
            6
        );
        assert!(!is_empty(&q, &db, None, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat());
    }

    #[test]
    fn reference_exhausts_under_tiny_budget() {
        let q = JoinQuery::new(vec![Atom::new("R", &["x", "y"])]);
        let mut db = Database::new();
        db.insert("R", Table::from_rows(2, vec![vec![1, 2], vec![3, 4]]));
        let (out, _) = count(&q, &db, None, &Budget::ticks(1)).unwrap();
        assert!(out.is_exhausted());
    }
}
