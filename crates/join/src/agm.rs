//! The AGM bound and its worst-case witnesses (paper Theorems 3.1–3.2).
//!
//! For a join query Q with hypergraph H and relations of at most N tuples,
//! the answer has at most N^{ρ*(H)} tuples (Theorem 3.1), and for infinitely
//! many N a database achieving N^{ρ*(H)} exists (Theorem 3.2). The witness
//! construction is the classical one from LP duality: take optimal
//! fractional vertex-packing weights y(v) (Σ_{v∈e} y(v) ≤ 1 per edge,
//! Σ_v y(v) = ρ*), give attribute v a domain of ⌊N^{y(v)}⌋ values, and make
//! every relation the full cross product of its attributes' domains. Each
//! relation then has at most N tuples while the answer is the full cross
//! product of all domains, of size ≈ N^{ρ*}.
//!
//! All sizes and bound checks here are **exact**: domain sizes come from
//! [`lb_lp::intpow::floor_rational_pow`] (integer q-th roots, no `f64`), and
//! [`agm_bound_holds`] compares `answer^q` against `N^p` with exact big
//! integer arithmetic instead of an epsilon-tolerant float comparison.

use crate::database::{Database, Table};
use crate::query::JoinQuery;
use crate::Value;
use lb_lp::convert::u64_to_f64_lossy;
use lb_lp::covers::{fractional_edge_cover, fractional_vertex_packing, CoverError};
use lb_lp::intpow::{cmp_pow, floor_rational_pow, PowError};
use lb_lp::Rational;

/// Errors from AGM computations: LP failures, exact-power failures, or an
/// answer size that exceeds `u128`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AgmError {
    /// The underlying cover/packing LP failed.
    Cover(CoverError),
    /// An exact power computation failed (overflow or bad exponent).
    Pow(PowError),
    /// The exact answer size `Π ⌊n^{y(v)}⌋` exceeds `u128::MAX`.
    AnswerOverflow {
        /// The size parameter the witness was requested for.
        n: u64,
    },
}

impl std::fmt::Display for AgmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgmError::Cover(e) => write!(f, "cover LP failure: {e}"),
            AgmError::Pow(e) => write!(f, "exact power failure: {e}"),
            AgmError::AnswerOverflow { n } => {
                write!(f, "worst-case answer size for n = {n} exceeds u128::MAX")
            }
        }
    }
}

impl std::error::Error for AgmError {}

impl From<CoverError> for AgmError {
    fn from(e: CoverError) -> Self {
        AgmError::Cover(e)
    }
}

impl From<PowError> for AgmError {
    fn from(e: PowError) -> Self {
        AgmError::Pow(e)
    }
}

/// The fractional edge cover number ρ* of the query's hypergraph, exactly.
#[must_use = "ρ* is the AGM exponent; dropping it discards the bound"]
pub fn rho_star(q: &JoinQuery) -> Result<Rational, CoverError> {
    let (h, _) = q.hypergraph();
    fractional_edge_cover(&h).map(|s| s.value)
}

/// The AGM bound N^{ρ*} as a float — **for display and plotting only**.
/// Exact comparisons must go through [`agm_bound_holds`] or
/// [`worst_case_domain_sizes`], never through this value.
#[must_use = "the displayed bound should be used, not dropped"]
pub fn agm_bound(q: &JoinQuery, n: u64) -> Result<f64, CoverError> {
    let rho = rho_star(q)?;
    Ok(u64_to_f64_lossy(n).powf(rho.to_f64()))
}

/// The exact per-attribute domain sizes `max(1, ⌊n^{y(v)}⌋)` of the
/// Theorem 3.2 witness, indexed like the sorted attribute list of
/// [`JoinQuery::hypergraph`].
///
/// Separated from [`worst_case_database`] so the exact arithmetic can be
/// exercised for adversarial `n` (near `u64::MAX`) without materializing
/// tables.
#[must_use = "domain sizes are the witness construction; dropping them discards the computation"]
pub fn worst_case_domain_sizes(q: &JoinQuery, n: u64) -> Result<Vec<u64>, AgmError> {
    let (h, _) = q.hypergraph();
    let pack = fractional_vertex_packing(&h)?;
    pack.weights
        .iter()
        .map(|y| Ok(floor_rational_pow(n, y)?.max(1)))
        .collect()
}

/// The exact answer size `Π sizes` of the witness, checked in `u128`.
fn exact_answer_size(sizes: &[u64], n: u64) -> Result<u128, AgmError> {
    sizes.iter().try_fold(1u128, |acc, &s| {
        acc.checked_mul(u128::from(s))
            .ok_or(AgmError::AnswerOverflow { n })
    })
}

/// The worst-case database of Theorem 3.2 for size parameter `n`: every
/// relation has at most `n` tuples, and the answer size is the product of
/// the per-attribute domain sizes ⌊n^{y(v)}⌋ ≈ n^{ρ*}, computed exactly.
///
/// Returns the database and the exact answer size.
#[must_use = "the witness database and its exact answer size should be used, not dropped"]
pub fn worst_case_database(q: &JoinQuery, n: u64) -> Result<(Database, u128), AgmError> {
    let (_, attrs) = q.hypergraph();
    let sizes = worst_case_domain_sizes(q, n)?;
    let answer = exact_answer_size(&sizes, n)?;

    let mut db = Database::new();
    for atom in &q.atoms {
        // Distinct attributes of the atom, in column order of first
        // occurrence; repeated columns copy the same value (diagonal), so
        // the table size stays Π over *distinct* attrs ≤ n.
        let mut distinct: Vec<&str> = Vec::new();
        for a in &atom.attrs {
            if !distinct.contains(&a.as_str()) {
                distinct.push(a);
            }
        }
        let dims: Vec<u64> = distinct
            .iter()
            .map(|a| sizes[attr_index(&attrs, a)])
            .collect();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut counter = vec![0u64; dims.len()];
        'gen: loop {
            let row: Vec<Value> = atom
                .attrs
                .iter()
                .map(|a| {
                    // lb-lint: allow(no-panic) -- invariant: `distinct` was built from `atom.attrs` just above
                    let di = distinct.iter().position(|d| d == a).expect("distinct");
                    counter[di]
                })
                .collect();
            rows.push(row);
            // Odometer over dims.
            let mut i = dims.len();
            loop {
                if i == 0 {
                    break 'gen;
                }
                i -= 1;
                counter[i] += 1;
                if counter[i] < dims[i] {
                    break;
                }
                counter[i] = 0;
                if i == 0 {
                    break 'gen;
                }
            }
        }
        let table = Table::from_rows(atom.attrs.len(), rows);
        debug_assert!(
            u64::try_from(table.len()).unwrap_or(u64::MAX) <= n,
            "worst-case relation exceeded n: {} > {n}",
            table.len()
        );
        db.insert(&atom.relation, table);
    }
    Ok((db, answer))
}

fn attr_index(attrs: &[String], name: &str) -> usize {
    attrs
        .binary_search_by(|a| a.as_str().cmp(name))
        // lb-lint: allow(no-panic) -- invariant: callers pass attribute names drawn from the same hypergraph
        .expect("attribute present")
}

/// Checks Theorem 3.1 on a concrete (query, database, answer-size) triple:
/// `answer_size ≤ N^{ρ*}` with N the largest relation — **exactly**, by
/// comparing `answer_size^q` with `N^p` for ρ* = p/q in big-integer
/// arithmetic. No floating point, no epsilon.
#[must_use = "the bound verdict should be checked, not dropped"]
pub fn agm_bound_holds(q: &JoinQuery, db: &Database, answer_size: u128) -> Result<bool, AgmError> {
    let n = u64::try_from(db.max_table_size()).unwrap_or(u64::MAX);
    let rho = rho_star(q)?;
    let p = u32::try_from(rho.numer())
        .map_err(|_| AgmError::Pow(PowError::Overflow { base: n, exp: rho }))?;
    let qden = u32::try_from(rho.denom())
        .map_err(|_| AgmError::Pow(PowError::Overflow { base: n, exp: rho }))?;
    // answer ≤ n^{p/q}  ⇔  answer^q ≤ n^p.
    Ok(cmp_pow(answer_size, qden, u128::from(n), p) != std::cmp::Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wcoj;

    #[test]
    fn triangle_rho_star() {
        let q = JoinQuery::triangle();
        assert_eq!(rho_star(&q).unwrap(), Rational::new(3, 2));
        assert!((agm_bound(&q, 100).unwrap() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn worst_case_triangle_database() {
        let q = JoinQuery::triangle();
        for n in [4u64, 16, 100] {
            let (db, answer) = worst_case_database(&q, n).unwrap();
            // Every relation ≤ n rows.
            assert!(db.max_table_size() as u64 <= n);
            // Answer ≈ n^{3/2}: with square n it is exact.
            let s = (n as f64).sqrt().floor() as u128;
            assert_eq!(answer, s * s * s, "n = {n}");
            // And the materialized join agrees.
            let tuples = wcoj::join(&q, &db, None, &lb_engine::Budget::unlimited())
                .unwrap()
                .0
                .unwrap_sat();
            assert_eq!(tuples.len() as u128, answer, "n = {n}");
            assert!(agm_bound_holds(&q, &db, answer).unwrap());
        }
    }

    #[test]
    fn worst_case_star_database() {
        // Star with k leaves: ρ* = k; worst case puts everything on the
        // leaves (y_center = 0, y_leaf = 1): answer = n^k.
        let q = JoinQuery::star(2);
        let (db, answer) = worst_case_database(&q, 10).unwrap();
        assert!(db.max_table_size() <= 10);
        assert_eq!(answer, 100);
        let tuples = wcoj::join(&q, &db, None, &lb_engine::Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat();
        assert_eq!(tuples.len() as u128, answer);
    }

    #[test]
    fn worst_case_loomis_whitney() {
        let q = JoinQuery::loomis_whitney(3);
        let (db, answer) = worst_case_database(&q, 64).unwrap();
        assert!(db.max_table_size() <= 64);
        // y = 1/2 everywhere: answer = 8³ = 512 = 64^{3/2}.
        assert_eq!(answer, 512);
        assert!(agm_bound_holds(&q, &db, answer).unwrap());
    }

    #[test]
    fn bound_detects_violations() {
        // A fake "answer size" larger than the bound must be rejected.
        let q = JoinQuery::triangle();
        let (db, answer) = worst_case_database(&q, 16).unwrap();
        assert!(agm_bound_holds(&q, &db, answer).unwrap());
        assert!(!agm_bound_holds(&q, &db, answer * 10).unwrap());
    }

    #[test]
    fn bound_check_is_tight_not_fuzzy() {
        // The triangle witness at n = 16 has answer exactly 4³ = 64 = 16^{3/2}.
        // One more tuple must already violate the bound: an epsilon-tolerant
        // float check would wave `answer + 1` through.
        let q = JoinQuery::triangle();
        let (db, answer) = worst_case_database(&q, 16).unwrap();
        assert_eq!(answer, 64);
        assert!(agm_bound_holds(&q, &db, answer).unwrap());
        assert!(!agm_bound_holds(&q, &db, answer + 1).unwrap());
    }

    #[test]
    fn domain_sizes_exact_at_adversarial_scale() {
        // Triangle weights are (1/2, 1/2, 1/2); at n = u64::MAX the sizes
        // must be exactly ⌊√(2^64−1)⌋ = 2^32 − 1 with no float drift.
        let q = JoinQuery::triangle();
        let sizes = worst_case_domain_sizes(&q, u64::MAX).unwrap();
        assert_eq!(sizes, vec![4_294_967_295; 3]);
        // Perfect square n = (10^9)^2: sizes exactly 10^9.
        let n = 1_000_000_000u64 * 1_000_000_000;
        let sizes = worst_case_domain_sizes(&q, n).unwrap();
        assert_eq!(sizes, vec![1_000_000_000; 3]);
        // And one below: floor drops to 10^9 − 1.
        let sizes = worst_case_domain_sizes(&q, n - 1).unwrap();
        assert_eq!(sizes, vec![999_999_999; 3]);
    }

    #[test]
    fn repeated_attribute_atom() {
        // R(a,a) ⋈ S(a,b): hyperedges {a}, {a,b}; ρ* = 1 (edge {a,b} covers
        // all). Worst case: s_a·s_b ≤ n with answer n.
        let q = JoinQuery::new(vec![
            crate::query::Atom::new("R", &["a", "a"]),
            crate::query::Atom::new("S", &["a", "b"]),
        ]);
        assert_eq!(rho_star(&q).unwrap(), Rational::ONE);
        let (db, answer) = worst_case_database(&q, 9).unwrap();
        assert!(db.max_table_size() <= 9);
        assert!(answer <= 9);
        // Diagonal property: R's rows all have equal columns.
        let r = db.table("R").unwrap();
        assert!(r.rows().iter().all(|row| row[0] == row[1]));
    }
}
