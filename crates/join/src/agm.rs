//! The AGM bound and its worst-case witnesses (paper Theorems 3.1–3.2).
//!
//! For a join query Q with hypergraph H and relations of at most N tuples,
//! the answer has at most N^{ρ*(H)} tuples (Theorem 3.1), and for infinitely
//! many N a database achieving N^{ρ*(H)} exists (Theorem 3.2). The witness
//! construction is the classical one from LP duality: take optimal
//! fractional vertex-packing weights y(v) (Σ_{v∈e} y(v) ≤ 1 per edge,
//! Σ_v y(v) = ρ*), give attribute v a domain of ⌊N^{y(v)}⌋ values, and make
//! every relation the full cross product of its attributes' domains. Each
//! relation then has at most N tuples while the answer is the full cross
//! product of all domains, of size ≈ N^{ρ*}.

use crate::database::{Database, Table};
use crate::query::JoinQuery;
use crate::Value;
use lb_lp::covers::{fractional_edge_cover, fractional_vertex_packing, CoverError};
use lb_lp::Rational;

/// The fractional edge cover number ρ* of the query's hypergraph, exactly.
pub fn rho_star(q: &JoinQuery) -> Result<Rational, CoverError> {
    let (h, _) = q.hypergraph();
    fractional_edge_cover(&h).map(|s| s.value)
}

/// The AGM bound N^{ρ*} as a float (for display and plotting).
pub fn agm_bound(q: &JoinQuery, n: u64) -> Result<f64, CoverError> {
    Ok((n as f64).powf(rho_star(q)?.to_f64()))
}

/// The worst-case database of Theorem 3.2 for size parameter `n`: every
/// relation has at most `n` tuples, and the answer size is the product of
/// the per-attribute domain sizes ⌊n^{y(v)}⌋ ≈ n^{ρ*}.
///
/// Returns the database and the exact answer size.
pub fn worst_case_database(q: &JoinQuery, n: u64) -> Result<(Database, u128), CoverError> {
    let (h, attrs) = q.hypergraph();
    let pack = fractional_vertex_packing(&h)?;
    // Domain sizes: s_v = max(1, ⌊n^{y_v}⌋). A small epsilon guards against
    // f64 rounding just below an exact integer power.
    let sizes: Vec<u64> = pack
        .weights
        .iter()
        .map(|y| {
            let s = (n as f64).powf(y.to_f64());
            (s + 1e-9).floor().max(1.0) as u64
        })
        .collect();

    let mut db = Database::new();
    for atom in &q.atoms {
        // Distinct attributes of the atom, in column order of first
        // occurrence; repeated columns copy the same value (diagonal), so
        // the table size stays Π over *distinct* attrs ≤ n.
        let mut distinct: Vec<&str> = Vec::new();
        for a in &atom.attrs {
            if !distinct.contains(&a.as_str()) {
                distinct.push(a);
            }
        }
        let dims: Vec<u64> = distinct
            .iter()
            .map(|a| sizes[attr_index(&attrs, a)])
            .collect();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut counter = vec![0u64; dims.len()];
        'gen: loop {
            let row: Vec<Value> = atom
                .attrs
                .iter()
                .map(|a| {
                    let di = distinct.iter().position(|d| d == a).expect("distinct");
                    counter[di]
                })
                .collect();
            rows.push(row);
            // Odometer over dims.
            let mut i = dims.len();
            loop {
                if i == 0 {
                    break 'gen;
                }
                i -= 1;
                counter[i] += 1;
                if counter[i] < dims[i] {
                    break;
                }
                counter[i] = 0;
                if i == 0 {
                    break 'gen;
                }
            }
        }
        let table = Table::from_rows(atom.attrs.len(), rows);
        debug_assert!(
            table.len() as u64 <= n,
            "worst-case relation exceeded n: {} > {n}",
            table.len()
        );
        db.insert(&atom.relation, table);
    }
    let answer: u128 = sizes.iter().map(|&s| s as u128).product();
    Ok((db, answer))
}

fn attr_index(attrs: &[String], name: &str) -> usize {
    attrs
        .binary_search_by(|a| a.as_str().cmp(name))
        .expect("attribute present")
}

/// Checks Theorem 3.1 on a concrete (query, database, answer-size) triple:
/// `answer_size ≤ N^{ρ*}` with N the largest relation.
pub fn agm_bound_holds(q: &JoinQuery, db: &Database, answer_size: u128) -> Result<bool, CoverError> {
    let n = db.max_table_size() as u64;
    let bound = agm_bound(q, n)?;
    // Tolerate f64 slack on the bound side.
    Ok((answer_size as f64) <= bound * (1.0 + 1e-9) + 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wcoj;

    #[test]
    fn triangle_rho_star() {
        let q = JoinQuery::triangle();
        assert_eq!(rho_star(&q).unwrap(), Rational::new(3, 2));
        assert!((agm_bound(&q, 100).unwrap() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn worst_case_triangle_database() {
        let q = JoinQuery::triangle();
        for n in [4u64, 16, 100] {
            let (db, answer) = worst_case_database(&q, n).unwrap();
            // Every relation ≤ n rows.
            assert!(db.max_table_size() as u64 <= n);
            // Answer ≈ n^{3/2}: with square n it is exact.
            let s = (n as f64).sqrt().floor() as u128;
            assert_eq!(answer, s * s * s, "n = {n}");
            // And the materialized join agrees.
            let tuples = wcoj::join(&q, &db, None).unwrap();
            assert_eq!(tuples.len() as u128, answer, "n = {n}");
            assert!(agm_bound_holds(&q, &db, answer).unwrap());
        }
    }

    #[test]
    fn worst_case_star_database() {
        // Star with k leaves: ρ* = k; worst case puts everything on the
        // leaves (y_center = 0, y_leaf = 1): answer = n^k.
        let q = JoinQuery::star(2);
        let (db, answer) = worst_case_database(&q, 10).unwrap();
        assert!(db.max_table_size() <= 10);
        assert_eq!(answer, 100);
        let tuples = wcoj::join(&q, &db, None).unwrap();
        assert_eq!(tuples.len() as u128, answer);
    }

    #[test]
    fn worst_case_loomis_whitney() {
        let q = JoinQuery::loomis_whitney(3);
        let (db, answer) = worst_case_database(&q, 64).unwrap();
        assert!(db.max_table_size() <= 64);
        // y = 1/2 everywhere: answer = 8³ = 512 = 64^{3/2}.
        assert_eq!(answer, 512);
        assert!(agm_bound_holds(&q, &db, answer).unwrap());
    }

    #[test]
    fn bound_detects_violations() {
        // A fake "answer size" larger than the bound must be rejected.
        let q = JoinQuery::triangle();
        let (db, answer) = worst_case_database(&q, 16).unwrap();
        assert!(agm_bound_holds(&q, &db, answer).unwrap());
        assert!(!agm_bound_holds(&q, &db, answer * 10).unwrap());
    }

    #[test]
    fn repeated_attribute_atom() {
        // R(a,a) ⋈ S(a,b): hyperedges {a}, {a,b}; ρ* = 1 (edge {a,b} covers
        // all). Worst case: s_a·s_b ≤ n with answer n.
        let q = JoinQuery::new(vec![
            crate::query::Atom::new("R", &["a", "a"]),
            crate::query::Atom::new("S", &["a", "b"]),
        ]);
        assert_eq!(rho_star(&q).unwrap(), Rational::ONE);
        let (db, answer) = worst_case_database(&q, 9).unwrap();
        assert!(db.max_table_size() <= 9);
        assert!(answer <= 9);
        // Diagonal property: R's rows all have equal columns.
        let r = db.table("R").unwrap();
        assert!(r.rows().iter().all(|row| row[0] == row[1]));
    }
}
