//! Random database generators for join experiments.

use crate::database::{Database, Table};
use crate::query::JoinQuery;
use crate::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random database for a query with **binary** atoms: each relation gets
/// `rows_per_relation` uniform random pairs over `[0, domain)`.
pub fn random_binary_database(
    q: &JoinQuery,
    rows_per_relation: usize,
    domain: u64,
    seed: u64,
) -> Database {
    assert!(
        q.atoms.iter().all(|a| a.attrs.len() == 2),
        "binary atoms only"
    );
    random_database(q, rows_per_relation, domain, seed)
}

/// A random database for an arbitrary query: each relation gets up to
/// `rows_per_relation` uniform random tuples over `[0, domain)` per column.
pub fn random_database(
    q: &JoinQuery,
    rows_per_relation: usize,
    domain: u64,
    seed: u64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for atom in &q.atoms {
        let arity = atom.attrs.len();
        let mut rows = Vec::with_capacity(rows_per_relation);
        for _ in 0..rows_per_relation {
            rows.push(
                (0..arity)
                    .map(|_| rng.gen_range(0..domain) as Value)
                    .collect(),
            );
        }
        db.insert(&atom.relation, Table::from_rows(arity, rows));
    }
    db
}

/// A skewed database for a query with **binary** atoms: same shape as
/// [`random_binary_database`] but with a Zipf-like value distribution.
pub fn skewed_binary_database(
    q: &JoinQuery,
    rows_per_relation: usize,
    domain: u64,
    seed: u64,
) -> Database {
    assert!(
        q.atoms.iter().all(|a| a.attrs.len() == 2),
        "binary atoms only"
    );
    skewed_database(q, rows_per_relation, domain, seed)
}

/// A skewed random database: each relation gets up to `rows_per_relation`
/// tuples whose values follow a Zipf-like heavy-hitter distribution over
/// `[0, domain)` — value 0 is the heavy hitter (drawn directly ~30% of the
/// time), and the rest of the mass decays polynomially (a cubed uniform
/// variate, so small values dominate). Exercises the WCOJ heavy/light
/// split: heavy-hitter blocks go through leapfrog, sparse tails through
/// the residual enumerate-and-probe path.
pub fn skewed_database(
    q: &JoinQuery,
    rows_per_relation: usize,
    domain: u64,
    seed: u64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let domain = domain.max(1);
    let draw = |rng: &mut StdRng| -> Value {
        if rng.gen_range(0..10u32) < 3 {
            return 0;
        }
        // Cubing a uniform variate in [0, 2^20) skews the mass toward
        // small values (P[v ≥ k] ≈ (k/domain)^{1/3}) using integer math
        // only, keeping this path exact and platform-independent.
        let x = rng.gen_range(0..(1u64 << 20)) as u128;
        ((x * x * x * domain as u128) >> 60) as Value % domain
    };
    let mut db = Database::new();
    for atom in &q.atoms {
        let arity = atom.attrs.len();
        let mut rows = Vec::with_capacity(rows_per_relation);
        for _ in 0..rows_per_relation {
            rows.push((0..arity).map(|_| draw(&mut rng)).collect());
        }
        db.insert(&atom.relation, Table::from_rows(arity, rows));
    }
    db
}

/// A triangle-query database guaranteed to contain at least one answer:
/// random pairs plus the planted triangle (0, 0, 0).
pub fn planted_triangle_database(rows_per_relation: usize, domain: u64, seed: u64) -> Database {
    let q = JoinQuery::triangle();
    let mut db = random_binary_database(&q, rows_per_relation.saturating_sub(1), domain, seed);
    for name in ["R", "S", "T"] {
        // lb-lint: allow(no-panic) -- invariant: the table named name was inserted into db just above
        let mut t = db.table(name).expect("present").clone();
        t.push(vec![0, 0]);
        t.normalize();
        db.insert(name, t);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wcoj;

    #[test]
    fn random_db_validates() {
        let q = JoinQuery::triangle();
        let db = random_binary_database(&q, 50, 20, 1);
        db.validate_for(&q).unwrap();
        assert!(db.max_table_size() <= 50);
    }

    #[test]
    fn deterministic_by_seed() {
        let q = JoinQuery::cycle(4);
        let a = random_binary_database(&q, 10, 5, 2);
        let b = random_binary_database(&q, 10, 5, 2);
        for atom in &q.atoms {
            assert_eq!(
                a.table(&atom.relation).unwrap().rows(),
                b.table(&atom.relation).unwrap().rows()
            );
        }
    }

    #[test]
    fn planted_triangle_is_found() {
        let q = JoinQuery::triangle();
        let db = planted_triangle_database(10, 100, 7);
        let ans = wcoj::join(&q, &db, None, &lb_engine::Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat();
        assert!(ans.contains(&vec![0, 0, 0]));
    }

    #[test]
    fn higher_arity_database() {
        let q = JoinQuery::loomis_whitney(4);
        let db = random_database(&q, 30, 4, 5);
        db.validate_for(&q).unwrap();
    }
}
