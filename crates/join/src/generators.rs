//! Random database generators for join experiments.

use crate::database::{Database, Table};
use crate::query::JoinQuery;
use crate::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random database for a query with **binary** atoms: each relation gets
/// `rows_per_relation` uniform random pairs over `[0, domain)`.
pub fn random_binary_database(
    q: &JoinQuery,
    rows_per_relation: usize,
    domain: u64,
    seed: u64,
) -> Database {
    assert!(
        q.atoms.iter().all(|a| a.attrs.len() == 2),
        "binary atoms only"
    );
    random_database(q, rows_per_relation, domain, seed)
}

/// A random database for an arbitrary query: each relation gets up to
/// `rows_per_relation` uniform random tuples over `[0, domain)` per column.
pub fn random_database(
    q: &JoinQuery,
    rows_per_relation: usize,
    domain: u64,
    seed: u64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for atom in &q.atoms {
        let arity = atom.attrs.len();
        let mut rows = Vec::with_capacity(rows_per_relation);
        for _ in 0..rows_per_relation {
            rows.push(
                (0..arity)
                    .map(|_| rng.gen_range(0..domain) as Value)
                    .collect(),
            );
        }
        db.insert(&atom.relation, Table::from_rows(arity, rows));
    }
    db
}

/// A triangle-query database guaranteed to contain at least one answer:
/// random pairs plus the planted triangle (0, 0, 0).
pub fn planted_triangle_database(rows_per_relation: usize, domain: u64, seed: u64) -> Database {
    let q = JoinQuery::triangle();
    let mut db = random_binary_database(&q, rows_per_relation.saturating_sub(1), domain, seed);
    for name in ["R", "S", "T"] {
        // lb-lint: allow(no-panic) -- invariant: the table named name was inserted into db just above
        let mut t = db.table(name).expect("present").clone();
        t.push(vec![0, 0]);
        t.normalize();
        db.insert(name, t);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wcoj;

    #[test]
    fn random_db_validates() {
        let q = JoinQuery::triangle();
        let db = random_binary_database(&q, 50, 20, 1);
        db.validate_for(&q).unwrap();
        assert!(db.max_table_size() <= 50);
    }

    #[test]
    fn deterministic_by_seed() {
        let q = JoinQuery::cycle(4);
        let a = random_binary_database(&q, 10, 5, 2);
        let b = random_binary_database(&q, 10, 5, 2);
        for atom in &q.atoms {
            assert_eq!(
                a.table(&atom.relation).unwrap().rows(),
                b.table(&atom.relation).unwrap().rows()
            );
        }
    }

    #[test]
    fn planted_triangle_is_found() {
        let q = JoinQuery::triangle();
        let db = planted_triangle_database(10, 100, 7);
        let ans = wcoj::join(&q, &db, None, &lb_engine::Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat();
        assert!(ans.contains(&vec![0, 0, 0]));
    }

    #[test]
    fn higher_arity_database() {
        let q = JoinQuery::loomis_whitney(4);
        let db = random_database(&q, 30, 4, 5);
        db.validate_for(&q).unwrap();
    }
}
