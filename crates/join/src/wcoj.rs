//! Worst-case optimal join: columnar Leapfrog Triejoin with skew handling
//! (paper Theorem 3.3; Veldhuizen's Leapfrog Triejoin; Ngo–Ré–Rudra's
//! "Skew Strikes Back" heavy/light split).
//!
//! The algorithm fixes a global variable order and proceeds one variable
//! at a time over per-atom columnar [`Trie`]s (built once during
//! preparation). At each level the participants' candidate ranges are
//! intersected in one of two modes, chosen per residual range:
//!
//! * **heavy** — every participant's range still holds at least
//!   `max(4, ⌊√rows⌋)` distinct values (a heavy-hitter block): run the
//!   leapfrog intersection proper. Iterators take turns galloping
//!   ([`Trie::seek`], exponential + binary search) to the running
//!   maximum key; a value is charged as a [`RunStats::nodes`] candidate
//!   only when *all* iterators agree on it, so long disjoint runs cost
//!   O(log) seeks instead of per-value probes.
//! * **light** — the smallest range is below its relation's √N
//!   threshold: enumerate it directly and probe the other participants
//!   (the residual-query path; at most √N candidates, so the AGM budget
//!   is respected exactly as in "Skew Strikes Back").
//!
//! Its running time is within a log factor of N^{ρ*} — matching the
//! unconditional lower bound of Theorem 3.2, which is what makes it
//! *worst-case optimal*.
//!
//! Engine mapping: each candidate value *tried* (light) or *matched*
//! (heavy) is a [`RunStats::nodes`] tick, each probe or leapfrog seek a
//! [`RunStats::trie_advances`] tick, and each answer tuple emitted a
//! [`RunStats::tuples`] tick — machine-independent proxies for the
//! Õ(N^{ρ*}) running time. The pre-leapfrog generic join is preserved in
//! [`crate::reference`] as the differential oracle.
//!
//! # Preemption safety
//!
//! The join runs on an explicit frame stack (one frame per bound
//! variable) holding the trie-iterator positions: per-atom level ranges,
//! the light-mode cursor or the heavy-mode leapfrog state (per-iterator
//! positions, whose turn it is, the running maximum, how many agree).
//! Every counted operation applies its effect and advances the phase
//! *before* spending the tick, so [`count_resumable`] and
//! [`is_empty_resumable`] can suspend at any failed charge into a
//! [`Checkpoint`] and later continue with the next operation — same
//! verdict, same summed [`RunStats`] as one uninterrupted run. (The
//! materializing [`join`] is deliberately *not* resumable: its collected
//! output would make checkpoints unbounded; [`join_foreach`] streams
//! instead.)
//!
//! [`Trie`]: crate::trie::Trie
//! [`Trie::seek`]: crate::trie::Trie::seek
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::trie_advances`]: lb_engine::RunStats::trie_advances
//! [`RunStats::tuples`]: lb_engine::RunStats::tuples
//! [`RunStats`]: lb_engine::RunStats

use crate::database::Database;
use crate::query::{AnswerTuple, JoinQuery};
use crate::trie::Trie;
use crate::Value;
use lb_engine::checkpoint::{
    Checkpoint, CheckpointError, Digest, PayloadReader, PayloadWriter, ResumableOutcome,
    SolverFamily,
};
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// Payload version of generic-join checkpoints; bumped whenever the
/// frontier encoding below changes. Version 2 is the leapfrog frame
/// encoding (columnar trie ranges + heavy/light intersection state);
/// version 1 was the row-major generic-join encoding.
pub const CHECKPOINT_PAYLOAD_VERSION: u16 = 2;

/// Errors from join evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JoinError {
    /// The database is missing a table or has an arity mismatch.
    BadDatabase(String),
    /// A supplied variable order is not a permutation of the attributes.
    BadOrder(String),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::BadDatabase(m) => write!(f, "bad database: {m}"),
            JoinError::BadOrder(m) => write!(f, "bad variable order: {m}"),
        }
    }
}

impl std::error::Error for JoinError {}

/// Errors from *resumable* join evaluation: either the instance is bad
/// (as in [`JoinError`]) or the checkpoint is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResumeError {
    /// The query/database/order is malformed.
    Join(JoinError),
    /// The checkpoint could not be decoded or does not match.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Join(e) => e.fmt(f),
            ResumeError::Checkpoint(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<JoinError> for ResumeError {
    fn from(e: JoinError) -> Self {
        ResumeError::Join(e)
    }
}

impl From<CheckpointError> for ResumeError {
    fn from(e: CheckpointError) -> Self {
        ResumeError::Checkpoint(e)
    }
}

/// A prepared atom: a columnar trie over the rows re-sorted so columns
/// follow the global variable order, repeated attributes collapsed to
/// their diagonal.
struct PreparedAtom {
    /// Global variable ranks of this atom's (distinct) attributes, ascending.
    var_ranks: Vec<usize>,
    /// The flat columnar trie over the projected rows.
    trie: Trie,
}

struct Prepared {
    atoms: Vec<PreparedAtom>,
    num_vars: usize,
}

fn prepare(q: &JoinQuery, db: &Database, order: Option<&[String]>) -> Result<Prepared, JoinError> {
    db.validate_for(q).map_err(JoinError::BadDatabase)?;
    let attrs = q.attributes();
    let order: Vec<String> = match order {
        Some(o) => {
            let mut sorted = o.to_vec();
            sorted.sort();
            if sorted != attrs {
                return Err(JoinError::BadOrder(format!(
                    "order {o:?} is not a permutation of {attrs:?}"
                )));
            }
            o.to_vec()
        }
        None => attrs.clone(),
    };
    // lb-lint: allow(no-panic, panic-reachability) -- invariant: the order was just verified to cover every query attribute
    let rank_of = |name: &str| order.iter().position(|a| a == name).expect("validated");

    let mut atoms = Vec::with_capacity(q.atoms.len());
    // lb-lint: allow(unbudgeted-loop) -- plan construction, linear in database size; runs once before search
    for atom in &q.atoms {
        // lb-lint: allow(no-panic, panic-reachability) -- invariant: validate_for checked every atom's relation before the join ran
        let table = db.table(&atom.relation).expect("validated");
        // Distinct attributes with their first column position.
        let mut distinct: Vec<(usize, usize)> = Vec::new(); // (rank, column)
                                                            // lb-lint: allow(unbudgeted-loop) -- plan construction, linear in database size; runs once before search
        for (col, a) in atom.attrs.iter().enumerate() {
            let r = rank_of(a);
            if !distinct.iter().any(|&(dr, _)| dr == r) {
                distinct.push((r, col)); // lb-lint: allow(unbounded-growth) -- one entry per distinct attribute, bounded by atom arity
            }
        }
        distinct.sort_unstable();
        let var_ranks: Vec<usize> = distinct.iter().map(|&(r, _)| r).collect();
        // Filter diagonal rows (repeated attributes must agree), project to
        // distinct columns in rank order.
        let mut rows: Vec<Vec<Value>> = Vec::new();
        // lb-lint: allow(unbudgeted-loop) -- plan construction, linear in database size; runs once before search
        'rows: for row in table.rows() {
            // Check repeated attributes agree.
            // lb-lint: allow(unbudgeted-loop) -- plan construction, linear in database size; runs once before search
            for (col, a) in atom.attrs.iter().enumerate() {
                let r = rank_of(a);
                let first_col = distinct
                    .iter()
                    .find(|&&(dr, _)| dr == r)
                    // lb-lint: allow(no-panic, panic-reachability) -- invariant: every attribute rank was entered into distinct above
                    .expect("present")
                    .1;
                // lb-lint: allow(no-unchecked-index, panic-reachability) -- col < arity = row.len(), checked by validate_for
                if row[col] != row[first_col] {
                    continue 'rows;
                }
            }
            // lb-lint: allow(no-unchecked-index, panic-reachability) -- distinct columns are positions within this atom's row
            rows.push(distinct.iter().map(|&(_, col)| row[col]).collect()); // lb-lint: allow(unbounded-growth) -- projected copy of one input table, linear in database size
        }
        rows.sort_unstable();
        rows.dedup();
        let trie = Trie::build(&rows, var_ranks.len());
        atoms.push(PreparedAtom { var_ranks, trie }); // lb-lint: allow(unbounded-growth) -- one prepared atom per query atom
    }
    Ok(Prepared {
        atoms,
        num_vars: attrs.len(),
    })
}

/// Active trie range of one atom during the search: `depth` columns are
/// bound; `[lo, hi)` indexes level `depth`'s value column (or, when the
/// atom is fully bound, a degenerate entry range on the deepest level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Range {
    lo: usize,
    hi: usize,
    depth: usize,
}

/// Upper bound for a range's `lo`/`hi` at a given depth (hostile-decode
/// validation and defensive clamping share it).
fn range_bound(trie: &Trie, depth: usize) -> usize {
    let k = trie.num_levels();
    if k == 0 {
        0
    } else {
        trie.level_len(depth.min(k - 1))
    }
}

/// Narrows a participant's range to the children of entry `j` (clamped
/// defensively: hostile checkpoints may put `j` at the range end).
fn descend(atom: &PreparedAtom, r: Range, j: usize) -> Range {
    let k = atom.trie.num_levels();
    if r.depth + 1 < k {
        let (lo, hi) = atom.trie.child_range(r.depth, j);
        Range {
            lo,
            hi,
            depth: r.depth + 1,
        }
    } else {
        let len = range_bound(&atom.trie, r.depth);
        let lo = j.min(len);
        Range {
            lo,
            hi: (j + 1).min(len).max(lo),
            depth: r.depth + 1,
        }
    }
}

/// Where the machine resumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Entering level `frames.len()`: emit a tuple or open a frame.
    Enter,
    /// Advance the top frame: next light candidate or one leapfrog step.
    Step,
    /// Light mode: probe/narrow the top frame's participant `idx`.
    Narrow { idx: usize },
    /// Heavy mode: all iterators agreed; narrow everyone and bind.
    Bind,
    /// A tuple's charge has been paid; deliver it, then continue.
    Emit,
}

/// One bound variable: the intersection state at its level.
#[derive(Clone, Debug)]
struct Frame {
    /// Atoms whose next unbound column is this level's variable.
    participants: Vec<usize>,
    /// Participant ranges as they were at level entry, parallel to
    /// `participants`; restored between candidates.
    saved: Vec<Range>,
    /// Intersection mode: leapfrog (heavy block) or enumerate-and-probe.
    heavy: bool,
    /// Slot (index into `participants`) of the smallest entry range; the
    /// light-mode driver.
    driver: usize,
    /// Light mode: driver cursor into its level's value column.
    cur: usize,
    /// Heavy mode: per-iterator positions, parallel to `participants`.
    pos: Vec<usize>,
    /// Heavy mode: slot whose iterator moves next.
    turn: usize,
    /// Heavy mode: how many consecutive iterators sit on `max_v`
    /// (0 = the round restarts at `turn`'s current position).
    agreed: usize,
    /// Heavy mode: the running maximum key (intersection candidate).
    max_v: Value,
    /// The candidate value bound at this level.
    v: Value,
}

/// What one heavy leapfrog micro-step decided to do.
enum LeapAction {
    Exhausted,
    Advance {
        max_v: Value,
        agreed: usize,
        turn: usize,
        pos: Option<usize>,
    },
    Agreed {
        max_v: Value,
        pos: Option<usize>,
    },
}

/// The explicit-stack Leapfrog Triejoin state: trie-iterator positions
/// per atom plus the per-level intersection frames.
#[derive(Clone, Debug)]
struct Machine {
    ranges: Vec<Range>,
    tuple: Vec<Value>,
    frames: Vec<Frame>,
    phase: Phase,
}

impl Machine {
    fn fresh(p: &Prepared) -> Machine {
        Machine {
            ranges: p
                .atoms
                .iter()
                .map(|a| Range {
                    lo: 0,
                    hi: a.trie.level_len(0),
                    depth: 0,
                })
                .collect(),
            tuple: vec![0; p.num_vars],
            frames: Vec::new(),
            phase: Phase::Enter,
        }
    }

    /// Restores the top frame's participants to their entry ranges and
    /// advances its iterator past the current candidate.
    fn restore_and_advance(frame: &mut Frame, ranges: &mut [Range]) {
        // lb-lint: allow(unbudgeted-loop) -- restores one frame's saved ranges; bounded by participants
        for (&i, &r) in frame.participants.iter().zip(&frame.saved) {
            if let Some(slot) = ranges.get_mut(i) {
                *slot = r;
            }
        }
        if frame.heavy {
            // Move iterator 0 past the matched value and restart the round.
            if let Some(p0) = frame.pos.get_mut(0) {
                *p0 = p0.saturating_add(1);
            }
            frame.turn = 0;
            frame.agreed = 0;
            frame.max_v = 0;
        } else {
            frame.cur = frame.cur.saturating_add(1);
        }
    }

    /// Pops the exhausted top frame and advances the parent (if any).
    /// Returns false when the stack is empty (search over).
    fn pop_level(&mut self) -> bool {
        self.frames.pop();
        match self.frames.last_mut() {
            None => false,
            Some(parent) => {
                Machine::restore_and_advance(parent, &mut self.ranges);
                true
            }
        }
    }

    /// Runs micro-steps until the next answer tuple (`Ok(Some(..))`, in
    /// global variable order, machine positioned to continue past it), the
    /// end of the search (`Ok(None)`), or a failed charge (`Err`, machine
    /// resumable).
    fn run(
        &mut self,
        p: &Prepared,
        ticker: &mut Ticker,
    ) -> Result<Option<Vec<Value>>, ExhaustReason> {
        loop {
            match self.phase {
                Phase::Enter => {
                    let level = self.frames.len();
                    if level == p.num_vars {
                        self.phase = Phase::Emit;
                        ticker.tuple()?;
                        continue;
                    }
                    // Atoms whose next unbound column is this variable.
                    let participants: Vec<usize> = p
                        .atoms
                        .iter()
                        .zip(&self.ranges)
                        .enumerate()
                        .filter(|(_, (a, r))| a.var_ranks.get(r.depth) == Some(&level))
                        .map(|(i, _)| i)
                        .collect();
                    debug_assert!(
                        !participants.is_empty(),
                        "every variable occurs in some atom"
                    );
                    let saved: Vec<Range> = participants
                        .iter()
                        .map(|&i| {
                            self.ranges.get(i).copied().unwrap_or(Range {
                                lo: 0,
                                hi: 0,
                                depth: 0,
                            })
                        })
                        .collect();
                    // Smallest entry range leads the intersection.
                    let Some(driver) = (0..participants.len())
                        .min_by_key(|&s| saved.get(s).map_or(0, |r| r.hi.saturating_sub(r.lo)))
                    else {
                        // Unreachable for well-formed queries; finish
                        // soundly instead of panicking.
                        return Ok(None);
                    };
                    let min_width = saved.get(driver).map_or(0, |r| r.hi.saturating_sub(r.lo));
                    // Heavy/light split ("Skew Strikes Back"): leapfrog
                    // only when even the smallest residual range is a
                    // heavy block of its relation.
                    let heavy = participants.len() >= 2
                        && participants
                            .get(driver)
                            .and_then(|&i| p.atoms.get(i))
                            .is_some_and(|a| min_width >= a.trie.heavy_threshold());
                    let frame = Frame {
                        heavy,
                        driver,
                        cur: if heavy {
                            0
                        } else {
                            saved.get(driver).map_or(0, |r| r.lo)
                        },
                        pos: if heavy {
                            saved.iter().map(|r| r.lo).collect()
                        } else {
                            Vec::new()
                        },
                        turn: 0,
                        agreed: 0,
                        max_v: 0,
                        v: 0,
                        participants,
                        saved,
                    };
                    self.frames.push(frame);
                    ticker.record_intermediate(self.frames.len() as u64);
                    self.phase = Phase::Step;
                }
                Phase::Step => {
                    let Some(frame) = self.frames.last() else {
                        return Ok(None);
                    };
                    if frame.heavy {
                        // One leapfrog micro-step: examine or seek the
                        // iterator whose turn it is.
                        let k = frame.participants.len().max(1);
                        let slot = frame.turn % k;
                        let sr = frame.saved.get(slot).copied().unwrap_or(Range {
                            lo: 0,
                            hi: 0,
                            depth: 0,
                        });
                        let trie = frame
                            .participants
                            .get(slot)
                            .and_then(|&i| p.atoms.get(i))
                            .map(|a| &a.trie);
                        let pos = frame.pos.get(slot).copied().unwrap_or(sr.hi);
                        let action = if frame.agreed == 0 {
                            // (Re)start the round at `slot`'s position.
                            match trie.and_then(|t| {
                                if pos < sr.hi {
                                    t.value(sr.depth, pos)
                                } else {
                                    None
                                }
                            }) {
                                None => LeapAction::Exhausted,
                                // A single iterator trivially agrees with
                                // itself (k == 1 must not spin forever).
                                Some(val) if k == 1 => LeapAction::Agreed {
                                    max_v: val,
                                    pos: None,
                                },
                                Some(val) => LeapAction::Advance {
                                    max_v: val,
                                    agreed: 1,
                                    turn: (slot + 1) % k,
                                    pos: None,
                                },
                            }
                        } else {
                            let j =
                                trie.map_or(sr.hi, |t| t.seek(sr.depth, pos, sr.hi, frame.max_v));
                            match trie.and_then(|t| {
                                if j < sr.hi {
                                    t.value(sr.depth, j)
                                } else {
                                    None
                                }
                            }) {
                                None => LeapAction::Exhausted,
                                Some(val) if val == frame.max_v => {
                                    if frame.agreed + 1 >= k {
                                        LeapAction::Agreed {
                                            max_v: val,
                                            pos: Some(j),
                                        }
                                    } else {
                                        LeapAction::Advance {
                                            max_v: frame.max_v,
                                            agreed: frame.agreed + 1,
                                            turn: (slot + 1) % k,
                                            pos: Some(j),
                                        }
                                    }
                                }
                                Some(val) => LeapAction::Advance {
                                    max_v: val,
                                    agreed: 1,
                                    turn: (slot + 1) % k,
                                    pos: Some(j),
                                },
                            }
                        };
                        match action {
                            LeapAction::Exhausted => {
                                if !self.pop_level() {
                                    // Still charge the exhausting seek so a
                                    // resumed run replays the same op count.
                                    ticker.trie_advance()?;
                                    return Ok(None);
                                }
                                self.phase = Phase::Step;
                                ticker.trie_advance()?;
                            }
                            LeapAction::Advance {
                                max_v,
                                agreed,
                                turn,
                                pos,
                            } => {
                                let Some(frame) = self.frames.last_mut() else {
                                    return Ok(None);
                                };
                                if let (Some(j), Some(pp)) = (pos, frame.pos.get_mut(slot)) {
                                    *pp = j;
                                }
                                frame.max_v = max_v;
                                frame.agreed = agreed;
                                frame.turn = turn;
                                ticker.trie_advance()?;
                            }
                            LeapAction::Agreed { max_v, pos } => {
                                let Some(frame) = self.frames.last_mut() else {
                                    return Ok(None);
                                };
                                if let (Some(j), Some(pp)) = (pos, frame.pos.get_mut(slot)) {
                                    *pp = j;
                                }
                                frame.agreed = frame.participants.len();
                                frame.max_v = max_v;
                                frame.v = max_v;
                                self.phase = Phase::Bind;
                                ticker.trie_advance()?;
                            }
                        }
                    } else {
                        // Light mode: next candidate from the driver.
                        let hi = frame.saved.get(frame.driver).map_or(0, |r| r.hi);
                        let next = if frame.cur < hi {
                            frame
                                .participants
                                .get(frame.driver)
                                .and_then(|&i| p.atoms.get(i))
                                .and_then(|a| {
                                    let depth =
                                        frame.saved.get(frame.driver).map_or(0, |r| r.depth);
                                    a.trie.value(depth, frame.cur)
                                })
                        } else {
                            None
                        };
                        match next {
                            None => {
                                // Level exhausted: ascend (uncharged, like
                                // the classic generic join).
                                if !self.pop_level() {
                                    return Ok(None);
                                }
                            }
                            Some(v) => {
                                let Some(frame) = self.frames.last_mut() else {
                                    return Ok(None);
                                };
                                frame.v = v;
                                self.phase = Phase::Narrow { idx: 0 };
                                ticker.node()?;
                            }
                        }
                    }
                }
                Phase::Narrow { idx } => {
                    let level = self.frames.len().saturating_sub(1);
                    let Some(frame) = self.frames.last_mut() else {
                        return Ok(None);
                    };
                    let Some(&atom_i) = frame.participants.get(idx) else {
                        // All participants narrowed: the candidate is in
                        // the intersection. Bind it and descend.
                        let v = frame.v;
                        if let Some(slot) = self.tuple.get_mut(level) {
                            *slot = v;
                        }
                        self.phase = Phase::Enter;
                        continue;
                    };
                    let r = self.ranges.get(atom_i).copied().unwrap_or(Range {
                        lo: 0,
                        hi: 0,
                        depth: 0,
                    });
                    let found = if idx == frame.driver {
                        // The driver's cursor already sits on the value.
                        if frame.cur < r.hi {
                            Some(frame.cur.max(r.lo))
                        } else {
                            None
                        }
                    } else {
                        p.atoms
                            .get(atom_i)
                            .and_then(|a| a.trie.find(r.depth, r.lo, r.hi, frame.v))
                    };
                    match found {
                        Some(j) => {
                            if let (Some(a), Some(slot)) =
                                (p.atoms.get(atom_i), self.ranges.get_mut(atom_i))
                            {
                                *slot = descend(a, r, j);
                            }
                            self.phase = Phase::Narrow { idx: idx + 1 };
                            ticker.trie_advance()?;
                        }
                        None => {
                            // Empty intersection: restore and move to the
                            // next candidate. The probe is still a counted
                            // advance.
                            Machine::restore_and_advance(frame, &mut self.ranges);
                            self.phase = Phase::Step;
                            ticker.trie_advance()?;
                        }
                    }
                }
                Phase::Bind => {
                    let level = self.frames.len().saturating_sub(1);
                    let Some(frame) = self.frames.last_mut() else {
                        return Ok(None);
                    };
                    // Narrow every participant to the children of its
                    // matched entry, then bind the agreed value.
                    // lb-lint: allow(unbudgeted-loop) -- O(participants) narrowing after the charged match below
                    for slot in 0..frame.participants.len() {
                        let Some(&atom_i) = frame.participants.get(slot) else {
                            continue;
                        };
                        let Some(&sr) = frame.saved.get(slot) else {
                            continue;
                        };
                        let j = frame
                            .pos
                            .get(slot)
                            .copied()
                            .unwrap_or(sr.lo)
                            .clamp(sr.lo, sr.hi);
                        if let (Some(a), Some(dst)) =
                            (p.atoms.get(atom_i), self.ranges.get_mut(atom_i))
                        {
                            *dst = descend(a, sr, j);
                        }
                    }
                    let v = frame.max_v;
                    frame.v = v;
                    if let Some(slot) = self.tuple.get_mut(level) {
                        *slot = v;
                    }
                    self.phase = Phase::Enter;
                    ticker.node()?;
                }
                Phase::Emit => {
                    // Deliver the bound tuple and position past it.
                    let out = self.tuple.clone();
                    match self.frames.last_mut() {
                        None => self.phase = Phase::Step, // nullary query: next run() finishes
                        Some(parent) => {
                            Machine::restore_and_advance(parent, &mut self.ranges);
                            self.phase = Phase::Step;
                        }
                    }
                    return Ok(Some(out));
                }
            }
        }
    }

    fn encode(&self, digest: u64, mode: u8, n: u64) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.u64(digest).u8(mode).u64(n);
        w.usize(self.ranges.len());
        // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
        for r in &self.ranges {
            w.usize(r.depth).usize(r.lo).usize(r.hi);
        }
        w.usize(self.tuple.len());
        // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
        for &v in &self.tuple {
            w.u64(v);
        }
        w.usize(self.frames.len());
        // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
        for f in &self.frames {
            w.seq_usize(&f.participants);
            w.bool(f.heavy);
            w.usize(f.driver);
            // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
            for r in &f.saved {
                w.usize(r.depth).usize(r.lo).usize(r.hi);
            }
            if f.heavy {
                // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
                for &p in &f.pos {
                    w.usize(p);
                }
                w.usize(f.turn).usize(f.agreed).u64(f.max_v);
            } else {
                w.usize(f.cur);
            }
            w.u64(f.v);
        }
        match self.phase {
            Phase::Enter => {
                w.u8(0);
            }
            Phase::Step => {
                w.u8(1);
            }
            Phase::Narrow { idx } => {
                w.u8(2).usize(idx);
            }
            Phase::Bind => {
                w.u8(3);
            }
            Phase::Emit => {
                w.u8(4);
            }
        }
        w.finish()
    }

    /// Decodes and validates a frontier against the prepared query. Returns
    /// the machine plus the running answer count.
    fn decode(
        p: &Prepared,
        digest: u64,
        mode: u8,
        ck: &Checkpoint,
    ) -> Result<(Machine, u64), CheckpointError> {
        ck.verify(SolverFamily::GenericJoin, CHECKPOINT_PAYLOAD_VERSION)?;
        let fam = SolverFamily::GenericJoin;
        let mut r = PayloadReader::new(ck.payload());
        let found = r.u64()?;
        if found != digest {
            return Err(CheckpointError::InstanceMismatch {
                family: fam,
                expected: digest,
                found,
            });
        }
        let mode_at = r.offset();
        let stored_mode = r.u8()?;
        if stored_mode != mode {
            return Err(CheckpointError::Malformed {
                what: format!(
                    "checkpoint mode {stored_mode} does not match entry point mode {mode}"
                ),
                offset: mode_at,
            });
        }
        let n = r.u64()?;
        let num_atoms = p.atoms.len();
        let read_range =
            |r: &mut PayloadReader<'_>, atom: usize| -> Result<Range, CheckpointError> {
                let Some(pa) = p.atoms.get(atom) else {
                    return Err(CheckpointError::Malformed {
                        what: format!("range for unknown atom {atom}"),
                        offset: r.offset(),
                    });
                };
                let ranks = pa.var_ranks.len();
                let at = r.offset();
                let depth = r.usize_at_most(ranks, "range depth")?;
                let bound = range_bound(&pa.trie, depth);
                let lo = r.usize_at_most(bound, "range lo")?;
                let hi = r.usize_at_most(bound, "range hi")?;
                if lo > hi {
                    return Err(CheckpointError::Malformed {
                        what: format!("range lo {lo} > hi {hi}"),
                        offset: at,
                    });
                }
                Ok(Range { lo, hi, depth })
            };
        let stored_atoms = r.usize()?;
        if stored_atoms != num_atoms {
            return Err(CheckpointError::Malformed {
                what: format!("checkpoint has {stored_atoms} atoms, query has {num_atoms}"),
                offset: r.offset(),
            });
        }
        let mut ranges = Vec::with_capacity(num_atoms);
        // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
        for atom in 0..num_atoms {
            ranges.push(read_range(&mut r, atom)?); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
        }
        let stored_vars = r.usize()?;
        if stored_vars != p.num_vars {
            return Err(CheckpointError::Malformed {
                what: format!(
                    "checkpoint has {stored_vars} variables, query has {}",
                    p.num_vars
                ),
                offset: r.offset(),
            });
        }
        let mut tuple = Vec::with_capacity(p.num_vars);
        // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
        for _ in 0..p.num_vars {
            tuple.push(r.u64()?); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
        }
        let frame_count = r.usize_at_most(p.num_vars, "frame stack length")?;
        let mut frames = Vec::with_capacity(frame_count);
        // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
        for _ in 0..frame_count {
            let part_len = r.seq_len(8, "participants")?;
            let mut participants = Vec::with_capacity(part_len);
            // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
            for _ in 0..part_len {
                // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
                participants.push(r.usize_below(num_atoms, "participant atom")?);
            }
            let heavy = r.bool()?;
            let driver = r.usize_below(part_len.max(1), "driver slot")?;
            if part_len == 0 {
                return Err(CheckpointError::Malformed {
                    what: "frame with no participants".into(),
                    offset: r.offset(),
                });
            }
            let mut saved = Vec::with_capacity(part_len);
            // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
            for &atom in &participants {
                saved.push(read_range(&mut r, atom)?); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
            }
            let mut cur = 0;
            let mut pos = Vec::new();
            let mut turn = 0;
            let mut agreed = 0;
            let mut max_v = 0;
            if heavy {
                // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
                for slot in 0..part_len {
                    let sr = saved.get(slot).copied().unwrap_or(Range {
                        lo: 0,
                        hi: 0,
                        depth: 0,
                    });
                    let at = r.offset();
                    let pj = r.usize_at_most(sr.hi, "leapfrog position")?;
                    if pj < sr.lo {
                        return Err(CheckpointError::Malformed {
                            what: format!("leapfrog position {pj} below range lo {}", sr.lo),
                            offset: at,
                        });
                    }
                    pos.push(pj); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
                }
                turn = r.usize_below(part_len, "leapfrog turn")?;
                agreed = r.usize_at_most(part_len, "leapfrog agreement")?;
                max_v = r.u64()?;
            } else {
                let sr = saved.get(driver).copied().unwrap_or(Range {
                    lo: 0,
                    hi: 0,
                    depth: 0,
                });
                let at = r.offset();
                cur = r.usize_at_most(sr.hi, "light cursor")?;
                if cur < sr.lo {
                    return Err(CheckpointError::Malformed {
                        what: format!("light cursor {cur} below range lo {}", sr.lo),
                        offset: at,
                    });
                }
            }
            let v = r.u64()?;
            // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
            frames.push(Frame {
                participants,
                saved,
                heavy,
                driver,
                cur,
                pos,
                turn,
                agreed,
                max_v,
                v,
            });
        }
        let tag_at = r.offset();
        let phase = match r.u8()? {
            0 => Phase::Enter,
            1 => Phase::Step,
            2 => {
                let top = frames.last().ok_or_else(|| CheckpointError::Malformed {
                    what: "narrow phase with an empty frame stack".into(),
                    offset: tag_at,
                })?;
                if top.heavy {
                    return Err(CheckpointError::Malformed {
                        what: "narrow phase on a heavy (leapfrog) frame".into(),
                        offset: tag_at,
                    });
                }
                let idx = r.usize_at_most(top.participants.len(), "narrow index")?;
                Phase::Narrow { idx }
            }
            3 => {
                let top = frames.last().ok_or_else(|| CheckpointError::Malformed {
                    what: "bind phase with an empty frame stack".into(),
                    offset: tag_at,
                })?;
                if !top.heavy {
                    return Err(CheckpointError::Malformed {
                        what: "bind phase on a light frame".into(),
                        offset: tag_at,
                    });
                }
                Phase::Bind
            }
            4 => Phase::Emit,
            b => {
                return Err(CheckpointError::Malformed {
                    what: format!("invalid phase tag {b}"),
                    offset: tag_at,
                })
            }
        };
        r.finish()?;
        Ok((
            Machine {
                ranges,
                tuple,
                frames,
                phase,
            },
            n,
        ))
    }
}

/// FNV digest binding a checkpoint to (query, database, variable order).
fn instance_digest(q: &JoinQuery, db: &Database, order: Option<&[String]>) -> u64 {
    let mut d = Digest::new();
    d.str("generic-join");
    let attrs = q.attributes();
    let ord: Vec<String> = order.map(|o| o.to_vec()).unwrap_or_else(|| attrs.clone());
    d.usize(ord.len());
    // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in query and database; runs once per resume
    for a in &ord {
        d.str(a);
    }
    d.usize(q.atoms.len());
    // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in query and database; runs once per resume
    for atom in &q.atoms {
        d.str(&atom.relation);
        d.usize(atom.attrs.len());
        // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in query and database; runs once per resume
        for a in &atom.attrs {
            d.str(a);
        }
        if let Some(table) = db.table(&atom.relation) {
            d.usize(table.arity()).usize(table.rows().len());
            // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in query and database; runs once per resume
            for row in table.rows() {
                // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in query and database; runs once per resume
                for &v in row {
                    d.u64(v);
                }
            }
        }
    }
    d.finish()
}

/// Positions of the sorted attributes within the chosen variable order.
fn attr_positions(attrs: &[String], ord: &[String]) -> Vec<usize> {
    attrs
        .iter()
        // lb-lint: allow(no-panic, panic-reachability) -- invariant: the chosen order covers every atom attribute
        .map(|a| ord.iter().position(|x| x == a).expect("validated"))
        .collect()
}

/// Computes the full answer; tuples are in [`JoinQuery::attributes`] order,
/// sorted lexicographically. Malformed inputs fail with `Err`; running out
/// of budget yields `Ok` with [`Outcome::Exhausted`].
#[must_use = "dropping the result discards the join answers or the failure"]
pub fn join(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
) -> Result<(Outcome<Vec<AnswerTuple>>, RunStats), JoinError> {
    let attrs = q.attributes();
    let ord: Vec<String> = order.map(|o| o.to_vec()).unwrap_or_else(|| attrs.clone());
    let p = prepare(q, db, order)?;
    let pos_of = attr_positions(&attrs, &ord);
    let mut ticker = Ticker::new(budget);
    let mut m = Machine::fresh(&p);
    let mut out = Vec::new();
    let result = loop {
        match m.run(&p, &mut ticker) {
            Ok(Some(t)) => {
                out.push(
                    pos_of
                        .iter()
                        .map(|&i| t.get(i).copied().unwrap_or(0))
                        .collect::<Vec<Value>>(),
                );
                ticker.record_intermediate(out.len() as u64);
            }
            Ok(None) => break Ok(()),
            Err(reason) => break Err(reason),
        }
    };
    out.sort_unstable();
    Ok(ticker.finish(result.map(|()| Some(out))))
}

/// Streams every answer tuple through `visit` without materializing the
/// answer set: the visitor sees each tuple once, in [`JoinQuery::attributes`]
/// column order (tuples arrive in variable-order lexicographic sequence,
/// not sorted). Returns the number of tuples visited. This is the entry
/// point for callers that only count, print, or aggregate — their memory
/// stays O(num_vars) no matter how large the answer is.
#[must_use = "dropping the result discards the visit count or the failure"]
pub fn join_foreach<F: FnMut(&[Value])>(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
    mut visit: F,
) -> Result<(Outcome<u64>, RunStats), JoinError> {
    let attrs = q.attributes();
    let ord: Vec<String> = order.map(|o| o.to_vec()).unwrap_or_else(|| attrs.clone());
    let p = prepare(q, db, order)?;
    let pos_of = attr_positions(&attrs, &ord);
    let mut ticker = Ticker::new(budget);
    let mut m = Machine::fresh(&p);
    let mut buf = vec![0; attrs.len()];
    let mut n = 0u64;
    let result = loop {
        match m.run(&p, &mut ticker) {
            Ok(Some(t)) => {
                // lb-lint: allow(unbudgeted-loop) -- permutes one emitted tuple into attribute order; bounded by arity, one pass per charged tuple
                for (slot, &i) in buf.iter_mut().zip(&pos_of) {
                    *slot = t.get(i).copied().unwrap_or(0);
                }
                n += 1;
                visit(&buf);
            }
            Ok(None) => break Ok(Some(n)),
            Err(reason) => break Err(reason),
        }
    };
    Ok(ticker.finish(result))
}

/// Counts answer tuples without materializing them: `Sat(count)` or
/// `Exhausted`. (A thin wrapper over [`join_foreach`].)
#[must_use = "dropping the result discards the answer count or the failure"]
pub fn count(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
) -> Result<(Outcome<u64>, RunStats), JoinError> {
    join_foreach(q, db, order, budget, |_| {})
}

/// Decides emptiness with early exit (the BOOLEAN JOIN QUERY problem):
/// `Sat(is_empty)` or `Exhausted`.
#[must_use = "dropping the result discards the emptiness answer or the failure"]
pub fn is_empty(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
) -> Result<(Outcome<bool>, RunStats), JoinError> {
    let p = prepare(q, db, order)?;
    let mut ticker = Ticker::new(budget);
    let mut m = Machine::fresh(&p);
    let result = match m.run(&p, &mut ticker) {
        Ok(found) => Ok(Some(found.is_none())),
        Err(reason) => Err(reason),
    };
    Ok(ticker.finish(result))
}

/// Like [`count`], but exhaustion is a *pause*: the trie-iterator positions
/// and the running count persist in a [`Checkpoint`], and chained resumes
/// sum to the one-shot answer.
#[must_use = "a resumable run's outcome carries the checkpoint needed to continue"]
pub fn count_resumable(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
    from: Option<&Checkpoint>,
) -> Result<(ResumableOutcome<u64>, RunStats), ResumeError> {
    let p = prepare(q, db, order)?;
    let digest = instance_digest(q, db, order);
    let (mut m, mut n) = match from {
        Some(ck) => Machine::decode(&p, digest, 0, ck)?,
        None => (Machine::fresh(&p), 0),
    };
    let mut ticker = Ticker::new(budget);
    let outcome = loop {
        match m.run(&p, &mut ticker) {
            Ok(Some(_)) => n += 1,
            Ok(None) => break ResumableOutcome::Sat(n),
            Err(reason) => {
                break ResumableOutcome::Suspended {
                    reason,
                    checkpoint: Checkpoint::new(
                        SolverFamily::GenericJoin,
                        CHECKPOINT_PAYLOAD_VERSION,
                        m.encode(digest, 0, n),
                    ),
                }
            }
        }
    };
    Ok((outcome, ticker.stats()))
}

/// Like [`is_empty`], but exhaustion is a *pause*.
#[must_use = "a resumable run's outcome carries the checkpoint needed to continue"]
pub fn is_empty_resumable(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
    from: Option<&Checkpoint>,
) -> Result<(ResumableOutcome<bool>, RunStats), ResumeError> {
    let p = prepare(q, db, order)?;
    let digest = instance_digest(q, db, order);
    let (mut m, _) = match from {
        Some(ck) => Machine::decode(&p, digest, 1, ck)?,
        None => (Machine::fresh(&p), 0),
    };
    let mut ticker = Ticker::new(budget);
    let outcome = match m.run(&p, &mut ticker) {
        Ok(found) => ResumableOutcome::Sat(found.is_none()),
        Err(reason) => ResumableOutcome::Suspended {
            reason,
            checkpoint: Checkpoint::new(
                SolverFamily::GenericJoin,
                CHECKPOINT_PAYLOAD_VERSION,
                m.encode(digest, 1, 0),
            ),
        },
    };
    Ok((outcome, ticker.stats()))
}

/// Testing oracle: joins the atoms one at a time by scanning all pairs
/// (no hashing, no sorting tricks). Exponentially slower but obviously
/// correct; output matches [`join`]'s order.
#[must_use = "dropping the result discards the join answers or the failure"]
pub fn nested_loop_join(
    q: &JoinQuery,
    db: &Database,
    budget: &Budget,
) -> Result<(Outcome<Vec<AnswerTuple>>, RunStats), JoinError> {
    db.validate_for(q).map_err(JoinError::BadDatabase)?;
    let mut ticker = Ticker::new(budget);
    let result = nested_loop_inner(q, db, &mut ticker);
    Ok(ticker.finish(result.map(Some)))
}

fn nested_loop_inner(
    q: &JoinQuery,
    db: &Database,
    ticker: &mut Ticker,
) -> Result<Vec<AnswerTuple>, ExhaustReason> {
    let attrs = q.attributes();
    // Partial tuples: map attr index → value, grown atom by atom.
    let mut partial: Vec<Vec<Option<Value>>> = vec![vec![None; attrs.len()]];
    for atom in &q.atoms {
        // lb-lint: allow(no-panic, panic-reachability) -- invariant: validate_for checked every atom's relation before the join ran
        let table = db.table(&atom.relation).expect("validated");
        let cols: Vec<usize> = atom
            .attrs
            .iter()
            // lb-lint: allow(no-panic, panic-reachability) -- invariant: atom attributes are drawn from the sorted attribute set
            .map(|a| attrs.binary_search(a).expect("known"))
            .collect();
        let mut next = Vec::new();
        for pt in &partial {
            'rows: for row in table.rows() {
                ticker.node()?;
                let mut cand = pt.clone();
                // lb-lint: allow(unbudgeted-loop) -- binds one row's attributes; bounded by arity, one pass per charged tuple
                for (&ai, &v) in cols.iter().zip(row) {
                    // lb-lint: allow(no-unchecked-index, panic-reachability) -- ai is a binary_search hit in attrs; cand.len() = attrs.len()
                    match cand[ai] {
                        // lb-lint: allow(no-unchecked-index, panic-reachability) -- same bound as the match scrutinee above
                        None => cand[ai] = Some(v),
                        Some(existing) if existing == v => {}
                        Some(_) => continue 'rows,
                    }
                }
                ticker.tuple()?;
                next.push(cand);
            }
        }
        partial = next;
        ticker.record_intermediate(partial.len() as u64);
    }
    let mut out: Vec<AnswerTuple> = partial
        .into_iter()
        .map(|pt| {
            pt.into_iter()
                // lb-lint: allow(no-panic, panic-reachability) -- invariant: a full variable order assigns every attribute
                .map(|o| o.expect("all attrs covered"))
                .collect()
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Table;
    use crate::generators;
    use crate::query::Atom;
    use crate::reference;

    fn join_all(q: &JoinQuery, db: &Database, order: Option<&[String]>) -> Vec<AnswerTuple> {
        join(q, db, order, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat()
    }

    fn count_all(q: &JoinQuery, db: &Database) -> u64 {
        count(q, db, None, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat()
    }

    fn nested_all(q: &JoinQuery, db: &Database) -> Vec<AnswerTuple> {
        nested_loop_join(q, db, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat()
    }

    fn tiny_triangle_db() -> Database {
        // Edges of a 4-cycle + chord: triangles {0,1,2}.
        let pairs = vec![vec![0u64, 1], vec![1, 2], vec![0, 2], vec![2, 3]];
        let mut db = Database::new();
        for name in ["R", "S", "T"] {
            let mut rows = pairs.clone();
            // Symmetric closure so orientation doesn't matter.
            let rev: Vec<Vec<u64>> = pairs.iter().map(|p| vec![p[1], p[0]]).collect();
            rows.extend(rev);
            db.insert(name, Table::from_rows(2, rows));
        }
        db
    }

    /// A triangle database with one heavy-hitter value (0) whose tails are
    /// disjoint runs: leapfrog gallops over them in O(log) seeks while the
    /// old generic join probes every candidate.
    fn heavy_hitter_db(hub: u64, tail: u64) -> Database {
        let mut db = Database::new();
        let mut r_rows: Vec<Vec<Value>> = (0..hub).map(|b| vec![0, b]).collect();
        r_rows.extend((1..=tail).map(|i| vec![i, i]));
        db.insert("R", Table::from_rows(2, r_rows));
        let mut s_rows: Vec<Vec<Value>> = (0..hub).map(|c| vec![0, c]).collect();
        s_rows.extend((1..=tail).map(|i| vec![10_000 + i, i]));
        db.insert("S", Table::from_rows(2, s_rows));
        let mut t_rows: Vec<Vec<Value>> = (0..hub).map(|x| vec![x, x]).collect();
        t_rows.extend((0..hub).map(|x| vec![x, (x + 1) % hub]));
        db.insert("T", Table::from_rows(2, t_rows));
        db
    }

    #[test]
    fn triangle_join_finds_triangles() {
        let q = JoinQuery::triangle();
        let db = tiny_triangle_db();
        let ans = join_all(&q, &db, None);
        // Triangle {0,1,2} in all 6 orientations.
        assert_eq!(ans.len(), 6);
        assert!(ans.contains(&vec![0, 1, 2]));
        assert_eq!(count_all(&q, &db), 6);
        assert!(!is_empty(&q, &db, None, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat());
    }

    #[test]
    fn counters_reflect_the_search() {
        let q = JoinQuery::triangle();
        let db = tiny_triangle_db();
        let (out, stats) = join(&q, &db, None, &Budget::unlimited()).unwrap();
        assert_eq!(out.unwrap_sat().len(), 6);
        assert_eq!(stats.tuples, 6);
        assert!(stats.nodes > 0, "candidate values must be counted");
        assert!(
            stats.trie_advances >= stats.nodes,
            "every candidate costs at least one seek or probe"
        );
    }

    #[test]
    fn join_foreach_streams_in_attribute_order() {
        let q = JoinQuery::triangle();
        let db = tiny_triangle_db();
        let mut seen: Vec<AnswerTuple> = Vec::new();
        let (out, stats) = join_foreach(&q, &db, None, &Budget::unlimited(), |t| {
            seen.push(t.to_vec())
        })
        .unwrap();
        assert_eq!(out.unwrap_sat(), 6);
        assert_eq!(stats.tuples, 6);
        seen.sort_unstable();
        assert_eq!(seen, join_all(&q, &db, None));
        // The streaming entry records no materialized intermediate for
        // the answers themselves (only the frame stack).
        assert!(stats.max_intermediate <= 3);
    }

    #[test]
    fn tiny_budget_exhausts() {
        let q = JoinQuery::triangle();
        let db = tiny_triangle_db();
        let (out, stats) = join(&q, &db, None, &Budget::ticks(3)).unwrap();
        assert!(out.is_exhausted());
        assert_eq!(stats.total_ops(), 4); // the crossing op is still recorded
        let (out, _) = count(&q, &db, None, &Budget::ticks(3)).unwrap();
        assert!(out.is_exhausted());
        let (out, _) = nested_loop_join(&q, &db, &Budget::ticks(3)).unwrap();
        assert!(out.is_exhausted());
    }

    #[test]
    fn matches_nested_loop_on_random_inputs() {
        for seed in 0..10u64 {
            let q = JoinQuery::triangle();
            let db = generators::random_binary_database(&q, 30, 8, seed);
            let a = join_all(&q, &db, None);
            let b = nested_all(&q, &db);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn matches_nested_loop_on_cycle_query() {
        for seed in 0..5u64 {
            let q = JoinQuery::cycle(4);
            let db = generators::random_binary_database(&q, 20, 6, seed);
            assert_eq!(join_all(&q, &db, None), nested_all(&q, &db), "seed {seed}");
        }
    }

    #[test]
    fn matches_nested_loop_on_loomis_whitney() {
        for seed in 0..5u64 {
            let q = JoinQuery::loomis_whitney(3);
            let db = generators::random_database(&q, 25, 5, seed);
            assert_eq!(join_all(&q, &db, None), nested_all(&q, &db), "seed {seed}");
        }
    }

    #[test]
    fn matches_nested_loop_on_skewed_inputs() {
        for seed in 0..6u64 {
            let q = JoinQuery::triangle();
            let db = generators::skewed_binary_database(&q, 40, 16, seed);
            assert_eq!(join_all(&q, &db, None), nested_all(&q, &db), "seed {seed}");
        }
    }

    #[test]
    fn custom_variable_orders_agree() {
        let q = JoinQuery::triangle();
        let db = generators::random_binary_database(&q, 40, 10, 3);
        let base = join_all(&q, &db, None);
        for ord in [
            vec!["a".to_string(), "b".into(), "c".into()],
            vec!["c".to_string(), "b".into(), "a".into()],
            vec!["b".to_string(), "c".into(), "a".into()],
        ] {
            assert_eq!(join_all(&q, &db, Some(&ord)), base, "order {ord:?}");
        }
    }

    #[test]
    fn bad_order_rejected() {
        let q = JoinQuery::triangle();
        let db = tiny_triangle_db();
        let ord = vec!["a".to_string(), "b".into()];
        assert!(matches!(
            join(&q, &db, Some(&ord), &Budget::unlimited()),
            Err(JoinError::BadOrder(_))
        ));
        assert!(matches!(
            count_resumable(&q, &db, Some(&ord), &Budget::unlimited(), None),
            Err(ResumeError::Join(JoinError::BadOrder(_)))
        ));
    }

    #[test]
    fn empty_relation_empty_answer() {
        let q = JoinQuery::triangle();
        let mut db = tiny_triangle_db();
        db.insert("S", Table::new(2));
        assert!(is_empty(&q, &db, None, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat());
        assert_eq!(count_all(&q, &db), 0);
    }

    #[test]
    fn single_atom_query_returns_table() {
        let q = JoinQuery::new(vec![Atom::new("R", &["x", "y"])]);
        let mut db = Database::new();
        db.insert("R", Table::from_rows(2, vec![vec![1, 2], vec![3, 4]]));
        let ans = join_all(&q, &db, None);
        assert_eq!(ans, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn repeated_attribute_diagonal() {
        // R(a, a) keeps only diagonal rows.
        let q = JoinQuery::new(vec![Atom::new("R", &["a", "a"])]);
        let mut db = Database::new();
        db.insert(
            "R",
            Table::from_rows(2, vec![vec![1, 1], vec![1, 2], vec![3, 3]]),
        );
        let ans = join_all(&q, &db, None);
        assert_eq!(ans, vec![vec![1], vec![3]]);
    }

    #[test]
    fn atoms_with_unsorted_attribute_order() {
        // R(b, a) ⋈ S(a, c): columns must be permuted into global variable
        // order during preparation.
        let q = JoinQuery::new(vec![
            Atom::new("R", &["b", "a"]),
            Atom::new("S", &["a", "c"]),
        ]);
        let mut db = Database::new();
        db.insert(
            "R",
            Table::from_rows(2, vec![vec![10, 1], vec![20, 2]]), // (b, a)
        );
        db.insert(
            "S",
            Table::from_rows(2, vec![vec![1, 100], vec![2, 200], vec![3, 300]]),
        );
        let ans = join_all(&q, &db, None);
        // Attributes sorted: [a, b, c].
        assert_eq!(ans, vec![vec![1, 10, 100], vec![2, 20, 200]]);
        assert_eq!(ans, nested_all(&q, &db));
    }

    #[test]
    fn worst_case_count_equals_prediction() {
        let q = JoinQuery::triangle();
        let (db, predicted) = crate::agm::worst_case_database(&q, 49).unwrap();
        assert_eq!(count_all(&q, &db) as u128, predicted);
    }

    #[test]
    fn heavy_mode_beats_reference_on_disjoint_heavy_hitters() {
        // One hub value shared by R.a and S.a, plus long disjoint tails:
        // the reference generic join probes every tail value; leapfrog
        // gallops over both tails in a handful of seeks.
        let q = JoinQuery::triangle();
        let db = heavy_hitter_db(32, 300);
        let (new_out, new_stats) = count(&q, &db, None, &Budget::unlimited()).unwrap();
        let (old_out, old_stats) = reference::count(&q, &db, None, &Budget::unlimited()).unwrap();
        assert_eq!(new_out.unwrap_sat(), old_out.unwrap_sat());
        assert!(
            new_stats.total_ops() * 2 < old_stats.total_ops(),
            "leapfrog should at least halve the op count on disjoint heavy tails: {} vs {}",
            new_stats.total_ops(),
            old_stats.total_ops()
        );
    }

    #[test]
    fn sliced_resume_matches_one_shot_count() {
        for seed in 0..6u64 {
            let q = JoinQuery::triangle();
            let db = generators::random_binary_database(&q, 30, 8, seed);
            let (one_shot, full) = count(&q, &db, None, &Budget::unlimited()).unwrap();
            let mut from: Option<Checkpoint> = None;
            let mut summed = RunStats::default();
            let sliced = loop {
                let (out, stats) = count_resumable(&q, &db, None, &Budget::ticks(6), from.as_ref())
                    .expect("clean resume");
                summed.absorb(&stats);
                match out {
                    ResumableOutcome::Suspended { checkpoint, .. } => {
                        let bytes = checkpoint.to_bytes();
                        from = Some(Checkpoint::from_bytes(&bytes).expect("round trip"));
                    }
                    done => break done.into_outcome(),
                }
            };
            assert_eq!(sliced, one_shot, "seed {seed}");
            assert_eq!(summed, full, "seed {seed}");
        }
    }

    #[test]
    fn sliced_resume_matches_one_shot_on_heavy_instances() {
        // Slices small enough to suspend mid-leapfrog (Bind/Step phases).
        let q = JoinQuery::triangle();
        let db = heavy_hitter_db(16, 60);
        let (one_shot, full) = count(&q, &db, None, &Budget::unlimited()).unwrap();
        for ticks in [1u64, 3, 7] {
            let mut from: Option<Checkpoint> = None;
            let mut summed = RunStats::default();
            let sliced = loop {
                let (out, stats) =
                    count_resumable(&q, &db, None, &Budget::ticks(ticks), from.as_ref())
                        .expect("clean resume");
                summed.absorb(&stats);
                match out {
                    ResumableOutcome::Suspended { checkpoint, .. } => {
                        let bytes = checkpoint.to_bytes();
                        from = Some(Checkpoint::from_bytes(&bytes).expect("round trip"));
                    }
                    done => break done.into_outcome(),
                }
            };
            assert_eq!(sliced, one_shot, "ticks {ticks}");
            assert_eq!(summed, full, "ticks {ticks}");
        }
    }

    #[test]
    fn database_change_is_rejected_on_resume() {
        let q = JoinQuery::triangle();
        let db1 = generators::random_binary_database(&q, 30, 8, 1);
        let db2 = generators::random_binary_database(&q, 30, 8, 2);
        let (out, _) = count_resumable(&q, &db1, None, &Budget::ticks(3), None).unwrap();
        let ck = out.checkpoint().expect("suspended").clone();
        let err = count_resumable(&q, &db2, None, &Budget::unlimited(), Some(&ck)).unwrap_err();
        assert!(matches!(
            err,
            ResumeError::Checkpoint(CheckpointError::InstanceMismatch { .. })
        ));
    }

    #[test]
    fn old_payload_version_is_rejected() {
        let q = JoinQuery::triangle();
        let db = tiny_triangle_db();
        let (out, _) = count_resumable(&q, &db, None, &Budget::ticks(3), None).unwrap();
        let ck = out.checkpoint().expect("suspended").clone();
        // Re-wrap the payload under the retired v1 tag: decode must refuse.
        let stale = Checkpoint::new(SolverFamily::GenericJoin, 1, ck.payload().to_vec());
        let err = count_resumable(&q, &db, None, &Budget::unlimited(), Some(&stale)).unwrap_err();
        assert!(matches!(err, ResumeError::Checkpoint(_)));
    }
}
