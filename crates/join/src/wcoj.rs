//! Worst-case optimal join: Generic Join over sorted relations
//! (paper Theorem 3.3; Ngo–Porat–Ré–Rudra, Veldhuizen's Leapfrog Triejoin).
//!
//! The algorithm fixes a global variable order and proceeds one variable at
//! a time: the candidate values of the current variable are the
//! intersection of the matching "trie levels" of every relation containing
//! it, computed by iterating the smallest relation's distinct values and
//! binary-searching the others. Its running time is within a log factor of
//! N^{ρ*} — matching the unconditional lower bound of Theorem 3.2, which is
//! what makes it *worst-case optimal*.
//!
//! Engine mapping: each candidate value tried is a [`RunStats::nodes`]
//! tick, each per-relation range narrowing a [`RunStats::trie_advances`]
//! tick, and each answer tuple emitted a [`RunStats::tuples`] tick —
//! machine-independent proxies for the Õ(N^{ρ*}) running time.
//!
//! # Preemption safety
//!
//! The join runs on an explicit frame stack (one frame per bound variable)
//! holding the trie-iterator positions: per-atom sorted-row ranges, the
//! driver's candidate cursor, and the narrowing index. Every counted
//! operation applies its effect and advances the phase *before* spending
//! the tick, so [`count_resumable`] and [`is_empty_resumable`] can suspend
//! at any failed charge into a [`Checkpoint`] and later continue with the
//! next operation — same verdict, same summed [`RunStats`] as one
//! uninterrupted run. (The materializing [`join`] is deliberately *not*
//! resumable: its collected output would make checkpoints unbounded.)
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::trie_advances`]: lb_engine::RunStats::trie_advances
//! [`RunStats::tuples`]: lb_engine::RunStats::tuples
//! [`RunStats`]: lb_engine::RunStats

use crate::database::Database;
use crate::query::{AnswerTuple, JoinQuery};
use crate::Value;
use lb_engine::checkpoint::{
    Checkpoint, CheckpointError, Digest, PayloadReader, PayloadWriter, ResumableOutcome,
    SolverFamily,
};
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// Payload version of generic-join checkpoints; bumped whenever the
/// frontier encoding below changes.
pub const CHECKPOINT_PAYLOAD_VERSION: u16 = 1;

/// Errors from join evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JoinError {
    /// The database is missing a table or has an arity mismatch.
    BadDatabase(String),
    /// A supplied variable order is not a permutation of the attributes.
    BadOrder(String),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::BadDatabase(m) => write!(f, "bad database: {m}"),
            JoinError::BadOrder(m) => write!(f, "bad variable order: {m}"),
        }
    }
}

impl std::error::Error for JoinError {}

/// Errors from *resumable* join evaluation: either the instance is bad
/// (as in [`JoinError`]) or the checkpoint is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResumeError {
    /// The query/database/order is malformed.
    Join(JoinError),
    /// The checkpoint could not be decoded or does not match.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Join(e) => e.fmt(f),
            ResumeError::Checkpoint(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<JoinError> for ResumeError {
    fn from(e: JoinError) -> Self {
        ResumeError::Join(e)
    }
}

impl From<CheckpointError> for ResumeError {
    fn from(e: CheckpointError) -> Self {
        ResumeError::Checkpoint(e)
    }
}

/// A prepared atom: rows re-sorted so columns follow the global variable
/// order, repeated attributes collapsed to their diagonal.
struct PreparedAtom {
    /// Global variable ranks of this atom's (distinct) attributes, ascending.
    var_ranks: Vec<usize>,
    /// Rows sorted lexicographically in `var_ranks` column order.
    rows: Vec<Vec<Value>>,
}

struct Prepared {
    atoms: Vec<PreparedAtom>,
    num_vars: usize,
}

fn prepare(q: &JoinQuery, db: &Database, order: Option<&[String]>) -> Result<Prepared, JoinError> {
    db.validate_for(q).map_err(JoinError::BadDatabase)?;
    let attrs = q.attributes();
    let order: Vec<String> = match order {
        Some(o) => {
            let mut sorted = o.to_vec();
            sorted.sort();
            if sorted != attrs {
                return Err(JoinError::BadOrder(format!(
                    "order {o:?} is not a permutation of {attrs:?}"
                )));
            }
            o.to_vec()
        }
        None => attrs.clone(),
    };
    // lb-lint: allow(no-panic, panic-reachability) -- invariant: join() verified the order covers every query attribute
    let rank_of = |name: &str| order.iter().position(|a| a == name).expect("validated");

    let mut atoms = Vec::with_capacity(q.atoms.len());
    // lb-lint: allow(unbudgeted-loop) -- plan construction, linear in database size; runs once before search
    for atom in &q.atoms {
        // lb-lint: allow(no-panic, panic-reachability) -- invariant: validate_for checked every atom's relation before the join ran
        let table = db.table(&atom.relation).expect("validated");
        // Distinct attributes with their first column position.
        let mut distinct: Vec<(usize, usize)> = Vec::new(); // (rank, column)
                                                            // lb-lint: allow(unbudgeted-loop) -- plan construction, linear in database size; runs once before search
        for (col, a) in atom.attrs.iter().enumerate() {
            let r = rank_of(a);
            if !distinct.iter().any(|&(dr, _)| dr == r) {
                distinct.push((r, col)); // lb-lint: allow(unbounded-growth) -- one entry per distinct attribute, bounded by atom arity
            }
        }
        distinct.sort_unstable();
        let var_ranks: Vec<usize> = distinct.iter().map(|&(r, _)| r).collect();
        // Filter diagonal rows (repeated attributes must agree), project to
        // distinct columns in rank order.
        let mut rows: Vec<Vec<Value>> = Vec::new();
        // lb-lint: allow(unbudgeted-loop) -- plan construction, linear in database size; runs once before search
        'rows: for row in table.rows() {
            // Check repeated attributes agree.
            // lb-lint: allow(unbudgeted-loop) -- plan construction, linear in database size; runs once before search
            for (col, a) in atom.attrs.iter().enumerate() {
                let r = rank_of(a);
                let first_col = distinct
                    .iter()
                    .find(|&&(dr, _)| dr == r)
                    // lb-lint: allow(no-panic, panic-reachability) -- invariant: validate_for checked every atom's relation before the join ran
                    .expect("present")
                    .1;
                // lb-lint: allow(no-unchecked-index, panic-reachability) -- col < arity = row.len(), checked by validate_for
                if row[col] != row[first_col] {
                    continue 'rows;
                }
            }
            // lb-lint: allow(no-unchecked-index, panic-reachability) -- distinct columns are positions within this atom's row
            rows.push(distinct.iter().map(|&(_, col)| row[col]).collect()); // lb-lint: allow(unbounded-growth) -- projected copy of one input table, linear in database size
        }
        rows.sort_unstable();
        rows.dedup();
        atoms.push(PreparedAtom { var_ranks, rows }); // lb-lint: allow(unbounded-growth) -- one prepared atom per query atom
    }
    Ok(Prepared {
        atoms,
        num_vars: attrs.len(),
    })
}

/// Active range of an atom's sorted rows during the search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Range {
    lo: usize,
    hi: usize,
    depth: usize,
}

/// Where the machine resumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Entering level `frames.len()`: emit a tuple or open a frame.
    Enter,
    /// Advance the top frame to its next candidate value.
    Step,
    /// Narrow the top frame's participant `idx` to the candidate value.
    Narrow { idx: usize },
    /// A tuple's charge has been paid; deliver it, then continue.
    Emit,
}

/// One bound variable: the intersection state at its level.
#[derive(Clone, Debug)]
struct Frame {
    /// Atoms whose next unbound column is this level's variable.
    participants: Vec<usize>,
    /// The participant with the smallest active range.
    driver: usize,
    /// Participant ranges as they were at level entry, parallel to
    /// `participants`; restored between candidates.
    saved: Vec<Range>,
    /// Driver cursor: the candidate block is `rows[lo..lo_end)`.
    lo: usize,
    lo_end: usize,
    hi: usize,
    /// The candidate value being intersected.
    v: Value,
}

/// The explicit-stack Generic Join state: trie-iterator positions per atom
/// plus the per-level intersection frames.
#[derive(Clone, Debug)]
struct Machine {
    ranges: Vec<Range>,
    tuple: Vec<Value>,
    frames: Vec<Frame>,
    phase: Phase,
}

impl Machine {
    fn fresh(p: &Prepared) -> Machine {
        Machine {
            ranges: p
                .atoms
                .iter()
                .map(|a| Range {
                    lo: 0,
                    hi: a.rows.len(),
                    depth: 0,
                })
                .collect(),
            tuple: vec![0; p.num_vars],
            frames: Vec::new(),
            phase: Phase::Enter,
        }
    }

    /// Restores the top frame's participants to their entry ranges and
    /// advances its cursor past the current candidate block.
    fn restore_and_advance(frame: &mut Frame, ranges: &mut [Range]) {
        // lb-lint: allow(unbudgeted-loop) -- restores one frame's saved ranges; bounded by participants
        for (&i, &r) in frame.participants.iter().zip(&frame.saved) {
            if let Some(slot) = ranges.get_mut(i) {
                *slot = r;
            }
        }
        frame.lo = frame.lo_end;
    }

    /// Runs micro-steps until the next answer tuple (`Ok(Some(..))`, in
    /// global variable order, machine positioned to continue past it), the
    /// end of the search (`Ok(None)`), or a failed charge (`Err`, machine
    /// resumable).
    fn run(
        &mut self,
        p: &Prepared,
        ticker: &mut Ticker,
    ) -> Result<Option<Vec<Value>>, ExhaustReason> {
        loop {
            match self.phase {
                Phase::Enter => {
                    let level = self.frames.len();
                    if level == p.num_vars {
                        self.phase = Phase::Emit;
                        ticker.tuple()?;
                        continue;
                    }
                    // Atoms whose next unbound column is this variable.
                    let participants: Vec<usize> = p
                        .atoms
                        .iter()
                        .zip(&self.ranges)
                        .enumerate()
                        .filter(|(_, (a, r))| a.var_ranks.get(r.depth) == Some(&level))
                        .map(|(i, _)| i)
                        .collect();
                    debug_assert!(
                        !participants.is_empty(),
                        "every variable occurs in some atom"
                    );
                    // Smallest active range drives the intersection.
                    let Some(&driver) = participants
                        .iter()
                        // lb-lint: allow(no-unchecked-index, panic-reachability) -- participants hold atom indices < ranges.len()
                        .min_by_key(|&&i| self.ranges[i].hi - self.ranges[i].lo)
                    else {
                        // Unreachable for well-formed queries; finish
                        // soundly instead of panicking.
                        return Ok(None);
                    };
                    let r = self.ranges[driver]; // lb-lint: allow(no-unchecked-index, panic-reachability) -- driver is a participant index < ranges.len()
                    let saved: Vec<Range> = participants.iter().map(|&i| self.ranges[i]).collect(); // lb-lint: allow(no-unchecked-index, panic-reachability) -- participants hold atom indices < ranges.len()
                    self.frames.push(Frame {
                        participants,
                        driver,
                        saved,
                        lo: r.lo,
                        lo_end: r.lo,
                        hi: r.hi,
                        v: 0,
                    });
                    ticker.record_intermediate(self.frames.len() as u64);
                    self.phase = Phase::Step;
                }
                Phase::Step => {
                    let Some(frame) = self.frames.last_mut() else {
                        return Ok(None);
                    };
                    if frame.lo >= frame.hi {
                        // This level is exhausted: ascend.
                        self.frames.pop();
                        match self.frames.last_mut() {
                            None => return Ok(None),
                            Some(parent) => {
                                Machine::restore_and_advance(parent, &mut self.ranges);
                                // phase stays Step: the parent advances.
                            }
                        }
                        continue;
                    }
                    let driver = frame.driver;
                    let depth = self.ranges[driver].depth; // lb-lint: allow(no-unchecked-index, panic-reachability) -- driver is a participant index < ranges.len()
                                                           // lb-lint: allow(no-unchecked-index, panic-reachability) -- lo < hi <= rows.len(); depth < var_ranks.len() = projected row arity
                    let v = p.atoms[driver].rows[frame.lo][depth];
                    // lb-lint: allow(no-unchecked-index, panic-reachability) -- driver is a participant index < p.atoms.len()
                    let lo_end = upper_bound(&p.atoms[driver].rows, frame.lo, frame.hi, depth, v);
                    frame.v = v;
                    frame.lo_end = lo_end;
                    self.phase = Phase::Narrow { idx: 0 };
                    ticker.node()?;
                }
                Phase::Narrow { idx } => {
                    let Some(frame) = self.frames.last_mut() else {
                        return Ok(None);
                    };
                    let Some(&i) = frame.participants.get(idx) else {
                        // All participants narrowed: the candidate is in
                        // the intersection. Bind it and descend.
                        let v = frame.v;
                        let level = self.frames.len() - 1;
                        if let Some(slot) = self.tuple.get_mut(level) {
                            *slot = v;
                        }
                        self.phase = Phase::Enter;
                        continue;
                    };
                    let r = self.ranges[i]; // lb-lint: allow(no-unchecked-index, panic-reachability) -- i is a participant index < ranges.len()
                    let (nl, nh) = if i == frame.driver {
                        (frame.lo, frame.lo_end)
                    } else {
                        // lb-lint: allow(no-unchecked-index, panic-reachability) -- i is a participant index < p.atoms.len()
                        equal_range(&p.atoms[i].rows, r.lo, r.hi, r.depth, frame.v)
                    };
                    if nl == nh {
                        // Empty intersection: restore and move to the next
                        // candidate. The probe is still a counted advance.
                        Machine::restore_and_advance(frame, &mut self.ranges);
                        self.phase = Phase::Step;
                        ticker.trie_advance()?;
                    } else {
                        // lb-lint: allow(no-unchecked-index, panic-reachability) -- i is a participant index < ranges.len()
                        self.ranges[i] = Range {
                            lo: nl,
                            hi: nh,
                            depth: r.depth + 1,
                        };
                        self.phase = Phase::Narrow { idx: idx + 1 };
                        ticker.trie_advance()?;
                    }
                }
                Phase::Emit => {
                    // Deliver the bound tuple and position past it.
                    let out = self.tuple.clone();
                    match self.frames.last_mut() {
                        None => self.phase = Phase::Step, // nullary query: next run() finishes
                        Some(parent) => {
                            Machine::restore_and_advance(parent, &mut self.ranges);
                            self.phase = Phase::Step;
                        }
                    }
                    return Ok(Some(out));
                }
            }
        }
    }

    fn encode(&self, digest: u64, mode: u8, n: u64) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.u64(digest).u8(mode).u64(n);
        w.usize(self.ranges.len());
        // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
        for r in &self.ranges {
            w.usize(r.lo).usize(r.hi).usize(r.depth);
        }
        w.usize(self.tuple.len());
        // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
        for &v in &self.tuple {
            w.u64(v);
        }
        w.usize(self.frames.len());
        // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
        for f in &self.frames {
            w.seq_usize(&f.participants);
            w.usize(f.driver);
            // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
            for r in &f.saved {
                w.usize(r.lo).usize(r.hi).usize(r.depth);
            }
            w.usize(f.lo).usize(f.lo_end).usize(f.hi).u64(f.v);
        }
        match self.phase {
            Phase::Enter => {
                w.u8(0);
            }
            Phase::Step => {
                w.u8(1);
            }
            Phase::Narrow { idx } => {
                w.u8(2).usize(idx);
            }
            Phase::Emit => {
                w.u8(3);
            }
        }
        w.finish()
    }

    /// Decodes and validates a frontier against the prepared query. Returns
    /// the machine plus the running answer count.
    fn decode(
        p: &Prepared,
        digest: u64,
        mode: u8,
        ck: &Checkpoint,
    ) -> Result<(Machine, u64), CheckpointError> {
        ck.verify(SolverFamily::GenericJoin, CHECKPOINT_PAYLOAD_VERSION)?;
        let fam = SolverFamily::GenericJoin;
        let mut r = PayloadReader::new(ck.payload());
        let found = r.u64()?;
        if found != digest {
            return Err(CheckpointError::InstanceMismatch {
                family: fam,
                expected: digest,
                found,
            });
        }
        let mode_at = r.offset();
        let stored_mode = r.u8()?;
        if stored_mode != mode {
            return Err(CheckpointError::Malformed {
                what: format!(
                    "checkpoint mode {stored_mode} does not match entry point mode {mode}"
                ),
                offset: mode_at,
            });
        }
        let n = r.u64()?;
        let num_atoms = p.atoms.len();
        let read_range =
            |r: &mut PayloadReader<'_>, atom: usize| -> Result<Range, CheckpointError> {
                // lb-lint: allow(no-unchecked-index, panic-reachability) -- atom < num_atoms, checked by the caller
                let rows = p.atoms[atom].rows.len();
                let ranks = p.atoms[atom].var_ranks.len(); // lb-lint: allow(no-unchecked-index, panic-reachability) -- atom < num_atoms, checked by the caller
                let at = r.offset();
                let lo = r.usize_at_most(rows, "range lo")?;
                let hi = r.usize_at_most(rows, "range hi")?;
                let depth = r.usize_at_most(ranks, "range depth")?;
                if lo > hi {
                    return Err(CheckpointError::Malformed {
                        what: format!("range lo {lo} > hi {hi}"),
                        offset: at,
                    });
                }
                Ok(Range { lo, hi, depth })
            };
        let stored_atoms = r.usize()?;
        if stored_atoms != num_atoms {
            return Err(CheckpointError::Malformed {
                what: format!("checkpoint has {stored_atoms} atoms, query has {num_atoms}"),
                offset: r.offset(),
            });
        }
        let mut ranges = Vec::with_capacity(num_atoms);
        // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
        for atom in 0..num_atoms {
            ranges.push(read_range(&mut r, atom)?); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
        }
        let stored_vars = r.usize()?;
        if stored_vars != p.num_vars {
            return Err(CheckpointError::Malformed {
                what: format!(
                    "checkpoint has {stored_vars} variables, query has {}",
                    p.num_vars
                ),
                offset: r.offset(),
            });
        }
        let mut tuple = Vec::with_capacity(p.num_vars);
        // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
        for _ in 0..p.num_vars {
            tuple.push(r.u64()?); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
        }
        let frame_count = r.usize_at_most(p.num_vars, "frame stack length")?;
        let mut frames = Vec::with_capacity(frame_count);
        // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
        for _ in 0..frame_count {
            let part_len = r.seq_len(8, "participants")?;
            let mut participants = Vec::with_capacity(part_len);
            // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
            for _ in 0..part_len {
                // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
                participants.push(r.usize_below(num_atoms, "participant atom")?);
            }
            let driver_at = r.offset();
            let driver = r.usize_below(num_atoms, "driver atom")?;
            if !participants.contains(&driver) {
                return Err(CheckpointError::Malformed {
                    what: format!("driver {driver} is not a participant"),
                    offset: driver_at,
                });
            }
            let mut saved = Vec::with_capacity(part_len);
            // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
            for &atom in &participants {
                saved.push(read_range(&mut r, atom)?); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
            }
            // lb-lint: allow(no-unchecked-index, panic-reachability) -- driver < num_atoms, validated above
            let rows = p.atoms[driver].rows.len();
            let at = r.offset();
            let lo = r.usize_at_most(rows, "frame lo")?;
            let lo_end = r.usize_at_most(rows, "frame lo_end")?;
            let hi = r.usize_at_most(rows, "frame hi")?;
            if lo > hi || lo_end > hi {
                return Err(CheckpointError::Malformed {
                    what: format!("frame cursor (lo {lo}, lo_end {lo_end}, hi {hi}) inconsistent"),
                    offset: at,
                });
            }
            let v = r.u64()?;
            // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
            frames.push(Frame {
                participants,
                driver,
                saved,
                lo,
                lo_end,
                hi,
                v,
            });
        }
        let tag_at = r.offset();
        let phase = match r.u8()? {
            0 => Phase::Enter,
            1 => Phase::Step,
            2 => {
                let bound = frames.last().map(|f| f.participants.len()).ok_or_else(|| {
                    CheckpointError::Malformed {
                        what: "narrow phase with an empty frame stack".into(),
                        offset: tag_at,
                    }
                })?;
                let idx = r.usize_at_most(bound, "narrow index")?;
                Phase::Narrow { idx }
            }
            3 => Phase::Emit,
            b => {
                return Err(CheckpointError::Malformed {
                    what: format!("invalid phase tag {b}"),
                    offset: tag_at,
                })
            }
        };
        r.finish()?;
        Ok((
            Machine {
                ranges,
                tuple,
                frames,
                phase,
            },
            n,
        ))
    }
}

/// First index in [lo, hi) where `rows[idx][col] > v` (rows sorted, columns
/// before `col` constant on the range).
fn upper_bound(rows: &[Vec<Value>], lo: usize, hi: usize, col: usize, v: Value) -> usize {
    lo + rows[lo..hi].partition_point(|r| r[col] <= v) // lb-lint: allow(no-unchecked-index, panic-reachability) -- col < the uniform projected row arity
}

fn equal_range(rows: &[Vec<Value>], lo: usize, hi: usize, col: usize, v: Value) -> (usize, usize) {
    let start = lo + rows[lo..hi].partition_point(|r| r[col] < v); // lb-lint: allow(no-unchecked-index, panic-reachability) -- col < the uniform projected row arity
    let end = start + rows[start..hi].partition_point(|r| r[col] == v); // lb-lint: allow(no-unchecked-index, panic-reachability) -- col < the uniform projected row arity
    (start, end)
}

/// FNV digest binding a checkpoint to (query, database, variable order).
fn instance_digest(q: &JoinQuery, db: &Database, order: Option<&[String]>) -> u64 {
    let mut d = Digest::new();
    d.str("generic-join");
    let attrs = q.attributes();
    let ord: Vec<String> = order.map(|o| o.to_vec()).unwrap_or_else(|| attrs.clone());
    d.usize(ord.len());
    // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in query and database; runs once per resume
    for a in &ord {
        d.str(a);
    }
    d.usize(q.atoms.len());
    // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in query and database; runs once per resume
    for atom in &q.atoms {
        d.str(&atom.relation);
        d.usize(atom.attrs.len());
        // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in query and database; runs once per resume
        for a in &atom.attrs {
            d.str(a);
        }
        if let Some(table) = db.table(&atom.relation) {
            d.usize(table.arity()).usize(table.rows().len());
            // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in query and database; runs once per resume
            for row in table.rows() {
                // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in query and database; runs once per resume
                for &v in row {
                    d.u64(v);
                }
            }
        }
    }
    d.finish()
}

/// Computes the full answer; tuples are in [`JoinQuery::attributes`] order,
/// sorted lexicographically. Malformed inputs fail with `Err`; running out
/// of budget yields `Ok` with [`Outcome::Exhausted`].
#[must_use = "dropping the result discards the join answers or the failure"]
pub fn join(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
) -> Result<(Outcome<Vec<AnswerTuple>>, RunStats), JoinError> {
    let attrs = q.attributes();
    let ord: Vec<String> = order.map(|o| o.to_vec()).unwrap_or_else(|| attrs.clone());
    let p = prepare(q, db, order)?;
    // Position of each attribute (sorted order) within the variable order.
    let pos_of: Vec<usize> = attrs
        .iter()
        // lb-lint: allow(no-panic, panic-reachability) -- invariant: the chosen order covers every atom attribute
        .map(|a| ord.iter().position(|x| x == a).expect("validated"))
        .collect();
    let mut ticker = Ticker::new(budget);
    let mut m = Machine::fresh(&p);
    let mut out = Vec::new();
    let result = loop {
        match m.run(&p, &mut ticker) {
            Ok(Some(t)) => {
                // lb-lint: allow(no-unchecked-index, panic-reachability) -- pos_of holds positions within the order, whose length is t.len()
                out.push(pos_of.iter().map(|&i| t[i]).collect::<Vec<Value>>());
                ticker.record_intermediate(out.len() as u64);
            }
            Ok(None) => break Ok(()),
            Err(reason) => break Err(reason),
        }
    };
    out.sort_unstable();
    Ok(ticker.finish(result.map(|()| Some(out))))
}

/// Counts answer tuples without materializing them: `Sat(count)` or
/// `Exhausted`.
#[must_use = "dropping the result discards the answer count or the failure"]
pub fn count(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
) -> Result<(Outcome<u64>, RunStats), JoinError> {
    let p = prepare(q, db, order)?;
    let mut ticker = Ticker::new(budget);
    let mut m = Machine::fresh(&p);
    let mut n = 0u64;
    let result = loop {
        match m.run(&p, &mut ticker) {
            Ok(Some(_)) => n += 1,
            Ok(None) => break Ok(Some(n)),
            Err(reason) => break Err(reason),
        }
    };
    Ok(ticker.finish(result))
}

/// Decides emptiness with early exit (the BOOLEAN JOIN QUERY problem):
/// `Sat(is_empty)` or `Exhausted`.
#[must_use = "dropping the result discards the emptiness answer or the failure"]
pub fn is_empty(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
) -> Result<(Outcome<bool>, RunStats), JoinError> {
    let p = prepare(q, db, order)?;
    let mut ticker = Ticker::new(budget);
    let mut m = Machine::fresh(&p);
    let result = match m.run(&p, &mut ticker) {
        Ok(found) => Ok(Some(found.is_none())),
        Err(reason) => Err(reason),
    };
    Ok(ticker.finish(result))
}

/// Like [`count`], but exhaustion is a *pause*: the trie-iterator positions
/// and the running count persist in a [`Checkpoint`], and chained resumes
/// sum to the one-shot answer.
#[must_use = "a resumable run's outcome carries the checkpoint needed to continue"]
pub fn count_resumable(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
    from: Option<&Checkpoint>,
) -> Result<(ResumableOutcome<u64>, RunStats), ResumeError> {
    let p = prepare(q, db, order)?;
    let digest = instance_digest(q, db, order);
    let (mut m, mut n) = match from {
        Some(ck) => Machine::decode(&p, digest, 0, ck)?,
        None => (Machine::fresh(&p), 0),
    };
    let mut ticker = Ticker::new(budget);
    let outcome = loop {
        match m.run(&p, &mut ticker) {
            Ok(Some(_)) => n += 1,
            Ok(None) => break ResumableOutcome::Sat(n),
            Err(reason) => {
                break ResumableOutcome::Suspended {
                    reason,
                    checkpoint: Checkpoint::new(
                        SolverFamily::GenericJoin,
                        CHECKPOINT_PAYLOAD_VERSION,
                        m.encode(digest, 0, n),
                    ),
                }
            }
        }
    };
    Ok((outcome, ticker.stats()))
}

/// Like [`is_empty`], but exhaustion is a *pause*.
#[must_use = "a resumable run's outcome carries the checkpoint needed to continue"]
pub fn is_empty_resumable(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
    from: Option<&Checkpoint>,
) -> Result<(ResumableOutcome<bool>, RunStats), ResumeError> {
    let p = prepare(q, db, order)?;
    let digest = instance_digest(q, db, order);
    let (mut m, _) = match from {
        Some(ck) => Machine::decode(&p, digest, 1, ck)?,
        None => (Machine::fresh(&p), 0),
    };
    let mut ticker = Ticker::new(budget);
    let outcome = match m.run(&p, &mut ticker) {
        Ok(found) => ResumableOutcome::Sat(found.is_none()),
        Err(reason) => ResumableOutcome::Suspended {
            reason,
            checkpoint: Checkpoint::new(
                SolverFamily::GenericJoin,
                CHECKPOINT_PAYLOAD_VERSION,
                m.encode(digest, 1, 0),
            ),
        },
    };
    Ok((outcome, ticker.stats()))
}

/// Testing oracle: joins the atoms one at a time by scanning all pairs
/// (no hashing, no sorting tricks). Exponentially slower but obviously
/// correct; output matches [`join`]'s order.
#[must_use = "dropping the result discards the join answers or the failure"]
pub fn nested_loop_join(
    q: &JoinQuery,
    db: &Database,
    budget: &Budget,
) -> Result<(Outcome<Vec<AnswerTuple>>, RunStats), JoinError> {
    db.validate_for(q).map_err(JoinError::BadDatabase)?;
    let mut ticker = Ticker::new(budget);
    let result = nested_loop_inner(q, db, &mut ticker);
    Ok(ticker.finish(result.map(Some)))
}

fn nested_loop_inner(
    q: &JoinQuery,
    db: &Database,
    ticker: &mut Ticker,
) -> Result<Vec<AnswerTuple>, ExhaustReason> {
    let attrs = q.attributes();
    // Partial tuples: map attr index → value, grown atom by atom.
    let mut partial: Vec<Vec<Option<Value>>> = vec![vec![None; attrs.len()]];
    for atom in &q.atoms {
        // lb-lint: allow(no-panic, panic-reachability) -- invariant: validate_for checked every atom's relation before the join ran
        let table = db.table(&atom.relation).expect("validated");
        let cols: Vec<usize> = atom
            .attrs
            .iter()
            // lb-lint: allow(no-panic, panic-reachability) -- invariant: atom attributes are drawn from the sorted attribute set
            .map(|a| attrs.binary_search(a).expect("known"))
            .collect();
        let mut next = Vec::new();
        for pt in &partial {
            'rows: for row in table.rows() {
                ticker.node()?;
                let mut cand = pt.clone();
                // lb-lint: allow(unbudgeted-loop) -- binds one row's attributes; bounded by arity, one pass per charged tuple
                for (&ai, &v) in cols.iter().zip(row) {
                    // lb-lint: allow(no-unchecked-index, panic-reachability) -- ai is a binary_search hit in attrs; cand.len() = attrs.len()
                    match cand[ai] {
                        // lb-lint: allow(no-unchecked-index, panic-reachability) -- same bound as the match scrutinee above
                        None => cand[ai] = Some(v),
                        Some(existing) if existing == v => {}
                        Some(_) => continue 'rows,
                    }
                }
                ticker.tuple()?;
                next.push(cand);
            }
        }
        partial = next;
        ticker.record_intermediate(partial.len() as u64);
    }
    let mut out: Vec<AnswerTuple> = partial
        .into_iter()
        .map(|pt| {
            pt.into_iter()
                // lb-lint: allow(no-panic, panic-reachability) -- invariant: a full variable order assigns every attribute
                .map(|o| o.expect("all attrs covered"))
                .collect()
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Table;
    use crate::generators;
    use crate::query::Atom;

    fn join_all(q: &JoinQuery, db: &Database, order: Option<&[String]>) -> Vec<AnswerTuple> {
        join(q, db, order, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat()
    }

    fn count_all(q: &JoinQuery, db: &Database) -> u64 {
        count(q, db, None, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat()
    }

    fn nested_all(q: &JoinQuery, db: &Database) -> Vec<AnswerTuple> {
        nested_loop_join(q, db, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat()
    }

    fn tiny_triangle_db() -> Database {
        // Edges of a 4-cycle + chord: triangles {0,1,2}.
        let pairs = vec![vec![0u64, 1], vec![1, 2], vec![0, 2], vec![2, 3]];
        let mut db = Database::new();
        for name in ["R", "S", "T"] {
            let mut rows = pairs.clone();
            // Symmetric closure so orientation doesn't matter.
            let rev: Vec<Vec<u64>> = pairs.iter().map(|p| vec![p[1], p[0]]).collect();
            rows.extend(rev);
            db.insert(name, Table::from_rows(2, rows));
        }
        db
    }

    #[test]
    fn triangle_join_finds_triangles() {
        let q = JoinQuery::triangle();
        let db = tiny_triangle_db();
        let ans = join_all(&q, &db, None);
        // Triangle {0,1,2} in all 6 orientations.
        assert_eq!(ans.len(), 6);
        assert!(ans.contains(&vec![0, 1, 2]));
        assert_eq!(count_all(&q, &db), 6);
        assert!(!is_empty(&q, &db, None, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat());
    }

    #[test]
    fn counters_reflect_the_search() {
        let q = JoinQuery::triangle();
        let db = tiny_triangle_db();
        let (out, stats) = join(&q, &db, None, &Budget::unlimited()).unwrap();
        assert_eq!(out.unwrap_sat().len(), 6);
        assert_eq!(stats.tuples, 6);
        assert!(stats.nodes > 0, "candidate values must be counted");
        assert!(
            stats.trie_advances >= stats.nodes,
            "every candidate narrows at least its driver"
        );
    }

    #[test]
    fn tiny_budget_exhausts() {
        let q = JoinQuery::triangle();
        let db = tiny_triangle_db();
        let (out, stats) = join(&q, &db, None, &Budget::ticks(3)).unwrap();
        assert!(out.is_exhausted());
        assert_eq!(stats.total_ops(), 4); // the crossing op is still recorded
        let (out, _) = count(&q, &db, None, &Budget::ticks(3)).unwrap();
        assert!(out.is_exhausted());
        let (out, _) = nested_loop_join(&q, &db, &Budget::ticks(3)).unwrap();
        assert!(out.is_exhausted());
    }

    #[test]
    fn matches_nested_loop_on_random_inputs() {
        for seed in 0..10u64 {
            let q = JoinQuery::triangle();
            let db = generators::random_binary_database(&q, 30, 8, seed);
            let a = join_all(&q, &db, None);
            let b = nested_all(&q, &db);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn matches_nested_loop_on_cycle_query() {
        for seed in 0..5u64 {
            let q = JoinQuery::cycle(4);
            let db = generators::random_binary_database(&q, 20, 6, seed);
            assert_eq!(join_all(&q, &db, None), nested_all(&q, &db), "seed {seed}");
        }
    }

    #[test]
    fn matches_nested_loop_on_loomis_whitney() {
        for seed in 0..5u64 {
            let q = JoinQuery::loomis_whitney(3);
            let db = generators::random_database(&q, 25, 5, seed);
            assert_eq!(join_all(&q, &db, None), nested_all(&q, &db), "seed {seed}");
        }
    }

    #[test]
    fn custom_variable_orders_agree() {
        let q = JoinQuery::triangle();
        let db = generators::random_binary_database(&q, 40, 10, 3);
        let base = join_all(&q, &db, None);
        for ord in [
            vec!["a".to_string(), "b".into(), "c".into()],
            vec!["c".to_string(), "b".into(), "a".into()],
            vec!["b".to_string(), "c".into(), "a".into()],
        ] {
            assert_eq!(join_all(&q, &db, Some(&ord)), base, "order {ord:?}");
        }
    }

    #[test]
    fn bad_order_rejected() {
        let q = JoinQuery::triangle();
        let db = tiny_triangle_db();
        let ord = vec!["a".to_string(), "b".into()];
        assert!(matches!(
            join(&q, &db, Some(&ord), &Budget::unlimited()),
            Err(JoinError::BadOrder(_))
        ));
        assert!(matches!(
            count_resumable(&q, &db, Some(&ord), &Budget::unlimited(), None),
            Err(ResumeError::Join(JoinError::BadOrder(_)))
        ));
    }

    #[test]
    fn empty_relation_empty_answer() {
        let q = JoinQuery::triangle();
        let mut db = tiny_triangle_db();
        db.insert("S", Table::new(2));
        assert!(is_empty(&q, &db, None, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat());
        assert_eq!(count_all(&q, &db), 0);
    }

    #[test]
    fn single_atom_query_returns_table() {
        let q = JoinQuery::new(vec![Atom::new("R", &["x", "y"])]);
        let mut db = Database::new();
        db.insert("R", Table::from_rows(2, vec![vec![1, 2], vec![3, 4]]));
        let ans = join_all(&q, &db, None);
        assert_eq!(ans, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn repeated_attribute_diagonal() {
        // R(a, a) keeps only diagonal rows.
        let q = JoinQuery::new(vec![Atom::new("R", &["a", "a"])]);
        let mut db = Database::new();
        db.insert(
            "R",
            Table::from_rows(2, vec![vec![1, 1], vec![1, 2], vec![3, 3]]),
        );
        let ans = join_all(&q, &db, None);
        assert_eq!(ans, vec![vec![1], vec![3]]);
    }

    #[test]
    fn atoms_with_unsorted_attribute_order() {
        // R(b, a) ⋈ S(a, c): columns must be permuted into global variable
        // order during preparation.
        let q = JoinQuery::new(vec![
            Atom::new("R", &["b", "a"]),
            Atom::new("S", &["a", "c"]),
        ]);
        let mut db = Database::new();
        db.insert(
            "R",
            Table::from_rows(2, vec![vec![10, 1], vec![20, 2]]), // (b, a)
        );
        db.insert(
            "S",
            Table::from_rows(2, vec![vec![1, 100], vec![2, 200], vec![3, 300]]),
        );
        let ans = join_all(&q, &db, None);
        // Attributes sorted: [a, b, c].
        assert_eq!(ans, vec![vec![1, 10, 100], vec![2, 20, 200]]);
        assert_eq!(ans, nested_all(&q, &db));
    }

    #[test]
    fn worst_case_count_equals_prediction() {
        let q = JoinQuery::triangle();
        let (db, predicted) = crate::agm::worst_case_database(&q, 49).unwrap();
        assert_eq!(count_all(&q, &db) as u128, predicted);
    }

    #[test]
    fn sliced_resume_matches_one_shot_count() {
        for seed in 0..6u64 {
            let q = JoinQuery::triangle();
            let db = generators::random_binary_database(&q, 30, 8, seed);
            let (one_shot, full) = count(&q, &db, None, &Budget::unlimited()).unwrap();
            let mut from: Option<Checkpoint> = None;
            let mut summed = RunStats::default();
            let sliced = loop {
                let (out, stats) = count_resumable(&q, &db, None, &Budget::ticks(6), from.as_ref())
                    .expect("clean resume");
                summed.absorb(&stats);
                match out {
                    ResumableOutcome::Suspended { checkpoint, .. } => {
                        let bytes = checkpoint.to_bytes();
                        from = Some(Checkpoint::from_bytes(&bytes).expect("round trip"));
                    }
                    done => break done.into_outcome(),
                }
            };
            assert_eq!(sliced, one_shot, "seed {seed}");
            assert_eq!(summed, full, "seed {seed}");
        }
    }

    #[test]
    fn database_change_is_rejected_on_resume() {
        let q = JoinQuery::triangle();
        let db1 = generators::random_binary_database(&q, 30, 8, 1);
        let db2 = generators::random_binary_database(&q, 30, 8, 2);
        let (out, _) = count_resumable(&q, &db1, None, &Budget::ticks(3), None).unwrap();
        let ck = out.checkpoint().expect("suspended").clone();
        let err = count_resumable(&q, &db2, None, &Budget::unlimited(), Some(&ck)).unwrap_err();
        assert!(matches!(
            err,
            ResumeError::Checkpoint(CheckpointError::InstanceMismatch { .. })
        ));
    }
}
