//! Worst-case optimal join: Generic Join over sorted relations
//! (paper Theorem 3.3; Ngo–Porat–Ré–Rudra, Veldhuizen's Leapfrog Triejoin).
//!
//! The algorithm fixes a global variable order and proceeds one variable at
//! a time: the candidate values of the current variable are the
//! intersection of the matching "trie levels" of every relation containing
//! it, computed by iterating the smallest relation's distinct values and
//! binary-searching the others. Its running time is within a log factor of
//! N^{ρ*} — matching the unconditional lower bound of Theorem 3.2, which is
//! what makes it *worst-case optimal*.
//!
//! Engine mapping: each candidate value tried is a [`RunStats::nodes`]
//! tick, each per-relation range narrowing a [`RunStats::trie_advances`]
//! tick, and each answer tuple emitted a [`RunStats::tuples`] tick —
//! machine-independent proxies for the Õ(N^{ρ*}) running time.
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::trie_advances`]: lb_engine::RunStats::trie_advances
//! [`RunStats::tuples`]: lb_engine::RunStats::tuples

use crate::database::Database;
use crate::query::{AnswerTuple, JoinQuery};
use crate::Value;
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// Errors from join evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JoinError {
    /// The database is missing a table or has an arity mismatch.
    BadDatabase(String),
    /// A supplied variable order is not a permutation of the attributes.
    BadOrder(String),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::BadDatabase(m) => write!(f, "bad database: {m}"),
            JoinError::BadOrder(m) => write!(f, "bad variable order: {m}"),
        }
    }
}

impl std::error::Error for JoinError {}

/// A prepared atom: rows re-sorted so columns follow the global variable
/// order, repeated attributes collapsed to their diagonal.
struct PreparedAtom {
    /// Global variable ranks of this atom's (distinct) attributes, ascending.
    var_ranks: Vec<usize>,
    /// Rows sorted lexicographically in `var_ranks` column order.
    rows: Vec<Vec<Value>>,
}

struct Prepared {
    atoms: Vec<PreparedAtom>,
    num_vars: usize,
}

fn prepare(q: &JoinQuery, db: &Database, order: Option<&[String]>) -> Result<Prepared, JoinError> {
    db.validate_for(q).map_err(JoinError::BadDatabase)?;
    let attrs = q.attributes();
    let order: Vec<String> = match order {
        Some(o) => {
            let mut sorted = o.to_vec();
            sorted.sort();
            if sorted != attrs {
                return Err(JoinError::BadOrder(format!(
                    "order {o:?} is not a permutation of {attrs:?}"
                )));
            }
            o.to_vec()
        }
        None => attrs.clone(),
    };
    // lb-lint: allow(no-panic) -- invariant: join() verified the order covers every query attribute
    let rank_of = |name: &str| order.iter().position(|a| a == name).expect("validated");

    let mut atoms = Vec::with_capacity(q.atoms.len());
    for atom in &q.atoms {
        // lb-lint: allow(no-panic) -- invariant: validate_for checked every atom's relation before the join ran
        let table = db.table(&atom.relation).expect("validated");
        // Distinct attributes with their first column position.
        let mut distinct: Vec<(usize, usize)> = Vec::new(); // (rank, column)
        for (col, a) in atom.attrs.iter().enumerate() {
            let r = rank_of(a);
            if !distinct.iter().any(|&(dr, _)| dr == r) {
                distinct.push((r, col));
            }
        }
        distinct.sort_unstable();
        let var_ranks: Vec<usize> = distinct.iter().map(|&(r, _)| r).collect();
        // Filter diagonal rows (repeated attributes must agree), project to
        // distinct columns in rank order.
        let mut rows: Vec<Vec<Value>> = Vec::new();
        'rows: for row in table.rows() {
            // Check repeated attributes agree.
            for (col, a) in atom.attrs.iter().enumerate() {
                let r = rank_of(a);
                let first_col = distinct
                    .iter()
                    .find(|&&(dr, _)| dr == r)
                    // lb-lint: allow(no-panic) -- invariant: validate_for checked every atom's relation before the join ran
                    .expect("present")
                    .1;
                // lb-lint: allow(no-unchecked-index) -- col < arity = row.len(), checked by validate_for
                if row[col] != row[first_col] {
                    continue 'rows;
                }
            }
            // lb-lint: allow(no-unchecked-index) -- distinct columns are positions within this atom's row
            rows.push(distinct.iter().map(|&(_, col)| row[col]).collect());
        }
        rows.sort_unstable();
        rows.dedup();
        atoms.push(PreparedAtom { var_ranks, rows });
    }
    Ok(Prepared {
        atoms,
        num_vars: attrs.len(),
    })
}

/// Active range of an atom's sorted rows during the recursion.
#[derive(Clone, Copy)]
struct Range {
    lo: usize,
    hi: usize,
    depth: usize,
}

/// Runs Generic Join; calls `visit` with each answer tuple **in the global
/// variable order** (not attribute order). Returning `true` stops early.
fn generic_join<F: FnMut(&[Value]) -> bool>(
    p: &Prepared,
    ticker: &mut Ticker,
    visit: &mut F,
) -> Result<bool, ExhaustReason> {
    let mut ranges: Vec<Range> = p
        .atoms
        .iter()
        .map(|a| Range {
            lo: 0,
            hi: a.rows.len(),
            depth: 0,
        })
        .collect();
    let mut tuple: Vec<Value> = vec![0; p.num_vars];
    recurse(p, 0, &mut ranges, &mut tuple, ticker, visit)
}

fn recurse<F: FnMut(&[Value]) -> bool>(
    p: &Prepared,
    level: usize,
    ranges: &mut Vec<Range>,
    tuple: &mut Vec<Value>,
    ticker: &mut Ticker,
    visit: &mut F,
) -> Result<bool, ExhaustReason> {
    if level == p.num_vars {
        ticker.tuple()?;
        return Ok(visit(tuple));
    }
    // Atoms whose next unbound column is this variable.
    let participants: Vec<usize> = (0..p.atoms.len())
        .filter(|&i| {
            let r = ranges[i]; // lb-lint: allow(no-unchecked-index) -- i < p.atoms.len() = ranges.len()
                               // lb-lint: allow(no-unchecked-index) -- i < p.atoms.len(); r.depth bound-checked on the same line
            r.depth < p.atoms[i].var_ranks.len() && p.atoms[i].var_ranks[r.depth] == level
        })
        .collect();
    debug_assert!(
        !participants.is_empty(),
        "every variable occurs in some atom"
    );
    // Smallest active range drives the intersection.
    let driver = *participants
        .iter()
        .min_by_key(|&&i| ranges[i].hi - ranges[i].lo) // lb-lint: allow(no-unchecked-index) -- participants hold atom indices < ranges.len()
        // lb-lint: allow(no-panic) -- invariant: the iterator set at this depth is nonempty by construction
        .expect("nonempty");

    let (mut lo, hi, depth) = {
        let r = ranges[driver]; // lb-lint: allow(no-unchecked-index) -- driver is a participant index < ranges.len()
        (r.lo, r.hi, r.depth)
    };
    while lo < hi {
        ticker.node()?;
        // lb-lint: allow(no-unchecked-index) -- lo < hi <= rows.len(); depth < var_ranks.len() = projected row arity
        let v = p.atoms[driver].rows[lo][depth];
        // lb-lint: allow(no-unchecked-index) -- driver is a participant index < p.atoms.len()
        let lo_end = upper_bound(&p.atoms[driver].rows, lo, hi, depth, v);

        // Narrow every participant to value v.
        // lb-lint: allow(no-unchecked-index) -- participants hold atom indices < ranges.len()
        let saved: Vec<Range> = participants.iter().map(|&i| ranges[i]).collect();
        let mut ok = true;
        for &i in &participants {
            ticker.trie_advance()?;
            let r = ranges[i]; // lb-lint: allow(no-unchecked-index) -- i is a participant index < ranges.len()
            let (nl, nh) = if i == driver {
                (lo, lo_end)
            } else {
                // lb-lint: allow(no-unchecked-index) -- i is a participant index < p.atoms.len()
                equal_range(&p.atoms[i].rows, r.lo, r.hi, r.depth, v)
            };
            if nl == nh {
                ok = false;
                break;
            }
            // lb-lint: allow(no-unchecked-index) -- i is a participant index < ranges.len()
            ranges[i] = Range {
                lo: nl,
                hi: nh,
                depth: r.depth + 1,
            };
        }
        if ok {
            tuple[level] = v; // lb-lint: allow(no-unchecked-index) -- level < num_vars = tuple.len(), checked at recursion entry
            if recurse(p, level + 1, ranges, tuple, ticker, visit)? {
                return Ok(true);
            }
        }
        // Restore.
        for (&i, &r) in participants.iter().zip(&saved) {
            ranges[i] = r; // lb-lint: allow(no-unchecked-index) -- i is a participant index < ranges.len()
        }
        lo = lo_end;
    }
    Ok(false)
}

/// First index in [lo, hi) where `rows[idx][col] > v` (rows sorted, columns
/// before `col` constant on the range).
fn upper_bound(rows: &[Vec<Value>], lo: usize, hi: usize, col: usize, v: Value) -> usize {
    lo + rows[lo..hi].partition_point(|r| r[col] <= v) // lb-lint: allow(no-unchecked-index) -- col < the uniform projected row arity
}

fn equal_range(rows: &[Vec<Value>], lo: usize, hi: usize, col: usize, v: Value) -> (usize, usize) {
    let start = lo + rows[lo..hi].partition_point(|r| r[col] < v); // lb-lint: allow(no-unchecked-index) -- col < the uniform projected row arity
    let end = start + rows[start..hi].partition_point(|r| r[col] == v); // lb-lint: allow(no-unchecked-index) -- col < the uniform projected row arity
    (start, end)
}

/// Computes the full answer; tuples are in [`JoinQuery::attributes`] order,
/// sorted lexicographically. Malformed inputs fail with `Err`; running out
/// of budget yields `Ok` with [`Outcome::Exhausted`].
#[must_use = "dropping the result discards the join answers or the failure"]
pub fn join(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
) -> Result<(Outcome<Vec<AnswerTuple>>, RunStats), JoinError> {
    let attrs = q.attributes();
    let ord: Vec<String> = order.map(|o| o.to_vec()).unwrap_or_else(|| attrs.clone());
    let p = prepare(q, db, order)?;
    // Position of each attribute (sorted order) within the variable order.
    let pos_of: Vec<usize> = attrs
        .iter()
        // lb-lint: allow(no-panic) -- invariant: the chosen order covers every atom attribute
        .map(|a| ord.iter().position(|x| x == a).expect("validated"))
        .collect();
    let mut ticker = Ticker::new(budget);
    let mut out = Vec::new();
    let result = generic_join(&p, &mut ticker, &mut |t| {
        // lb-lint: allow(no-unchecked-index) -- pos_of holds positions within the order, whose length is t.len()
        out.push(pos_of.iter().map(|&i| t[i]).collect::<Vec<Value>>());
        false
    });
    out.sort_unstable();
    Ok(ticker.finish(result.map(|_| Some(out))))
}

/// Counts answer tuples without materializing them: `Sat(count)` or
/// `Exhausted`.
#[must_use = "dropping the result discards the answer count or the failure"]
pub fn count(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
) -> Result<(Outcome<u64>, RunStats), JoinError> {
    let p = prepare(q, db, order)?;
    let mut ticker = Ticker::new(budget);
    let mut n = 0u64;
    let result = generic_join(&p, &mut ticker, &mut |_| {
        n += 1;
        false
    });
    Ok(ticker.finish(result.map(|_| Some(n))))
}

/// Decides emptiness with early exit (the BOOLEAN JOIN QUERY problem):
/// `Sat(is_empty)` or `Exhausted`.
#[must_use = "dropping the result discards the emptiness answer or the failure"]
pub fn is_empty(
    q: &JoinQuery,
    db: &Database,
    order: Option<&[String]>,
    budget: &Budget,
) -> Result<(Outcome<bool>, RunStats), JoinError> {
    let p = prepare(q, db, order)?;
    let mut ticker = Ticker::new(budget);
    let result = generic_join(&p, &mut ticker, &mut |_| true);
    Ok(ticker.finish(result.map(|nonempty| Some(!nonempty))))
}

/// Testing oracle: joins the atoms one at a time by scanning all pairs
/// (no hashing, no sorting tricks). Exponentially slower but obviously
/// correct; output matches [`join`]'s order.
#[must_use = "dropping the result discards the join answers or the failure"]
pub fn nested_loop_join(
    q: &JoinQuery,
    db: &Database,
    budget: &Budget,
) -> Result<(Outcome<Vec<AnswerTuple>>, RunStats), JoinError> {
    db.validate_for(q).map_err(JoinError::BadDatabase)?;
    let mut ticker = Ticker::new(budget);
    let result = nested_loop_inner(q, db, &mut ticker);
    Ok(ticker.finish(result.map(Some)))
}

fn nested_loop_inner(
    q: &JoinQuery,
    db: &Database,
    ticker: &mut Ticker,
) -> Result<Vec<AnswerTuple>, ExhaustReason> {
    let attrs = q.attributes();
    // Partial tuples: map attr index → value, grown atom by atom.
    let mut partial: Vec<Vec<Option<Value>>> = vec![vec![None; attrs.len()]];
    for atom in &q.atoms {
        // lb-lint: allow(no-panic) -- invariant: validate_for checked every atom's relation before the join ran
        let table = db.table(&atom.relation).expect("validated");
        let cols: Vec<usize> = atom
            .attrs
            .iter()
            // lb-lint: allow(no-panic) -- invariant: atom attributes are drawn from the sorted attribute set
            .map(|a| attrs.binary_search(a).expect("known"))
            .collect();
        let mut next = Vec::new();
        for pt in &partial {
            'rows: for row in table.rows() {
                ticker.node()?;
                let mut cand = pt.clone();
                for (&ai, &v) in cols.iter().zip(row) {
                    // lb-lint: allow(no-unchecked-index) -- ai is a binary_search hit in attrs; cand.len() = attrs.len()
                    match cand[ai] {
                        // lb-lint: allow(no-unchecked-index) -- same bound as the match scrutinee above
                        None => cand[ai] = Some(v),
                        Some(existing) if existing == v => {}
                        Some(_) => continue 'rows,
                    }
                }
                ticker.tuple()?;
                next.push(cand);
            }
        }
        partial = next;
        ticker.record_intermediate(partial.len() as u64);
    }
    let mut out: Vec<AnswerTuple> = partial
        .into_iter()
        .map(|pt| {
            pt.into_iter()
                // lb-lint: allow(no-panic) -- invariant: a full variable order assigns every attribute
                .map(|o| o.expect("all attrs covered"))
                .collect()
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Table;
    use crate::generators;
    use crate::query::Atom;

    fn join_all(q: &JoinQuery, db: &Database, order: Option<&[String]>) -> Vec<AnswerTuple> {
        join(q, db, order, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat()
    }

    fn count_all(q: &JoinQuery, db: &Database) -> u64 {
        count(q, db, None, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat()
    }

    fn nested_all(q: &JoinQuery, db: &Database) -> Vec<AnswerTuple> {
        nested_loop_join(q, db, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat()
    }

    fn tiny_triangle_db() -> Database {
        // Edges of a 4-cycle + chord: triangles {0,1,2}.
        let pairs = vec![vec![0u64, 1], vec![1, 2], vec![0, 2], vec![2, 3]];
        let mut db = Database::new();
        for name in ["R", "S", "T"] {
            let mut rows = pairs.clone();
            // Symmetric closure so orientation doesn't matter.
            let rev: Vec<Vec<u64>> = pairs.iter().map(|p| vec![p[1], p[0]]).collect();
            rows.extend(rev);
            db.insert(name, Table::from_rows(2, rows));
        }
        db
    }

    #[test]
    fn triangle_join_finds_triangles() {
        let q = JoinQuery::triangle();
        let db = tiny_triangle_db();
        let ans = join_all(&q, &db, None);
        // Triangle {0,1,2} in all 6 orientations.
        assert_eq!(ans.len(), 6);
        assert!(ans.contains(&vec![0, 1, 2]));
        assert_eq!(count_all(&q, &db), 6);
        assert!(!is_empty(&q, &db, None, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat());
    }

    #[test]
    fn counters_reflect_the_search() {
        let q = JoinQuery::triangle();
        let db = tiny_triangle_db();
        let (out, stats) = join(&q, &db, None, &Budget::unlimited()).unwrap();
        assert_eq!(out.unwrap_sat().len(), 6);
        assert_eq!(stats.tuples, 6);
        assert!(stats.nodes > 0, "candidate values must be counted");
        assert!(
            stats.trie_advances >= stats.nodes,
            "every candidate narrows at least its driver"
        );
    }

    #[test]
    fn tiny_budget_exhausts() {
        let q = JoinQuery::triangle();
        let db = tiny_triangle_db();
        let (out, stats) = join(&q, &db, None, &Budget::ticks(3)).unwrap();
        assert!(out.is_exhausted());
        assert_eq!(stats.total_ops(), 4); // the crossing op is still recorded
        let (out, _) = count(&q, &db, None, &Budget::ticks(3)).unwrap();
        assert!(out.is_exhausted());
        let (out, _) = nested_loop_join(&q, &db, &Budget::ticks(3)).unwrap();
        assert!(out.is_exhausted());
    }

    #[test]
    fn matches_nested_loop_on_random_inputs() {
        for seed in 0..10u64 {
            let q = JoinQuery::triangle();
            let db = generators::random_binary_database(&q, 30, 8, seed);
            let a = join_all(&q, &db, None);
            let b = nested_all(&q, &db);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn matches_nested_loop_on_cycle_query() {
        for seed in 0..5u64 {
            let q = JoinQuery::cycle(4);
            let db = generators::random_binary_database(&q, 20, 6, seed);
            assert_eq!(join_all(&q, &db, None), nested_all(&q, &db), "seed {seed}");
        }
    }

    #[test]
    fn matches_nested_loop_on_loomis_whitney() {
        for seed in 0..5u64 {
            let q = JoinQuery::loomis_whitney(3);
            let db = generators::random_database(&q, 25, 5, seed);
            assert_eq!(join_all(&q, &db, None), nested_all(&q, &db), "seed {seed}");
        }
    }

    #[test]
    fn custom_variable_orders_agree() {
        let q = JoinQuery::triangle();
        let db = generators::random_binary_database(&q, 40, 10, 3);
        let base = join_all(&q, &db, None);
        for ord in [
            vec!["a".to_string(), "b".into(), "c".into()],
            vec!["c".to_string(), "b".into(), "a".into()],
            vec!["b".to_string(), "c".into(), "a".into()],
        ] {
            assert_eq!(join_all(&q, &db, Some(&ord)), base, "order {ord:?}");
        }
    }

    #[test]
    fn bad_order_rejected() {
        let q = JoinQuery::triangle();
        let db = tiny_triangle_db();
        let ord = vec!["a".to_string(), "b".into()];
        assert!(matches!(
            join(&q, &db, Some(&ord), &Budget::unlimited()),
            Err(JoinError::BadOrder(_))
        ));
    }

    #[test]
    fn empty_relation_empty_answer() {
        let q = JoinQuery::triangle();
        let mut db = tiny_triangle_db();
        db.insert("S", Table::new(2));
        assert!(is_empty(&q, &db, None, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat());
        assert_eq!(count_all(&q, &db), 0);
    }

    #[test]
    fn single_atom_query_returns_table() {
        let q = JoinQuery::new(vec![Atom::new("R", &["x", "y"])]);
        let mut db = Database::new();
        db.insert("R", Table::from_rows(2, vec![vec![1, 2], vec![3, 4]]));
        let ans = join_all(&q, &db, None);
        assert_eq!(ans, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn repeated_attribute_diagonal() {
        // R(a, a) keeps only diagonal rows.
        let q = JoinQuery::new(vec![Atom::new("R", &["a", "a"])]);
        let mut db = Database::new();
        db.insert(
            "R",
            Table::from_rows(2, vec![vec![1, 1], vec![1, 2], vec![3, 3]]),
        );
        let ans = join_all(&q, &db, None);
        assert_eq!(ans, vec![vec![1], vec![3]]);
    }

    #[test]
    fn atoms_with_unsorted_attribute_order() {
        // R(b, a) ⋈ S(a, c): columns must be permuted into global variable
        // order during preparation.
        let q = JoinQuery::new(vec![
            Atom::new("R", &["b", "a"]),
            Atom::new("S", &["a", "c"]),
        ]);
        let mut db = Database::new();
        db.insert(
            "R",
            Table::from_rows(2, vec![vec![10, 1], vec![20, 2]]), // (b, a)
        );
        db.insert(
            "S",
            Table::from_rows(2, vec![vec![1, 100], vec![2, 200], vec![3, 300]]),
        );
        let ans = join_all(&q, &db, None);
        // Attributes sorted: [a, b, c].
        assert_eq!(ans, vec![vec![1, 10, 100], vec![2, 20, 200]]);
        assert_eq!(ans, nested_all(&q, &db));
    }

    #[test]
    fn worst_case_count_equals_prediction() {
        let q = JoinQuery::triangle();
        let (db, predicted) = crate::agm::worst_case_database(&q, 49).unwrap();
        assert_eq!(count_all(&q, &db) as u128, predicted);
    }
}
