//! Join queries: atoms over named attributes (paper §2.1).

use crate::Value;
use lb_graph::{Graph, Hypergraph};

/// One atom `R(a₁, …, a_r)` of a join query: a relation name and its
/// attribute list (column names, repeats allowed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// Relation name, the key into the [`crate::Database`].
    pub relation: String,
    /// Attribute names in column order.
    pub attrs: Vec<String>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(relation: &str, attrs: &[&str]) -> Self {
        Atom {
            relation: relation.to_string(),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// A join query `R₁ ⋈ … ⋈ R_m`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinQuery {
    /// The atoms, in join order (only the set matters semantically).
    pub atoms: Vec<Atom>,
}

impl JoinQuery {
    /// Builds a query from atoms.
    ///
    /// # Panics
    /// Panics if two atoms share a relation name (self-joins must rename,
    /// e.g. `R` and `R'` both mapped to the same table by the database) or
    /// if the query has no atoms.
    pub fn new(atoms: Vec<Atom>) -> Self {
        assert!(!atoms.is_empty(), "a join query needs at least one atom");
        // lb-lint: allow(unbudgeted-loop) -- quadratic in the atom count of a parsed query, not solver search
        for (i, a) in atoms.iter().enumerate() {
            assert!(
                atoms[i + 1..].iter().all(|b| b.relation != a.relation),
                "duplicate relation name {}; alias self-joins",
                a.relation
            );
        }
        JoinQuery { atoms }
    }

    /// The attribute set A, sorted (paper: `n = |A|`).
    pub fn attributes(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .atoms
            .iter()
            .flat_map(|a| a.attrs.iter().cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The query hypergraph: vertices are attributes (in the order of
    /// [`Self::attributes`]), one hyperedge per atom (§2.1). Returns the
    /// hypergraph and the attribute order used.
    pub fn hypergraph(&self) -> (Hypergraph, Vec<String>) {
        let attrs = self.attributes();
        let index = |name: &str| {
            attrs
                .binary_search_by(|a| a.as_str().cmp(name))
                // lb-lint: allow(no-panic, panic-reachability) -- invariant: attrs collects every attribute of every atom by construction
                .expect("known attr")
        };
        let mut h = Hypergraph::new(attrs.len());
        // lb-lint: allow(unbudgeted-loop) -- hypergraph construction, linear in atoms
        for atom in &self.atoms {
            let e: Vec<usize> = atom.attrs.iter().map(|a| index(a)).collect();
            h.add_edge(e);
        }
        (h, attrs)
    }

    /// The primal graph of the query (§2.1).
    pub fn primal_graph(&self) -> (Graph, Vec<String>) {
        let (h, attrs) = self.hypergraph();
        (h.primal_graph(), attrs)
    }

    /// The triangle query `R(a,b) ⋈ S(a,c) ⋈ T(b,c)` — the paper's running
    /// example with ρ* = 3/2.
    pub fn triangle() -> Self {
        JoinQuery::new(vec![
            Atom::new("R", &["a", "b"]),
            Atom::new("S", &["a", "c"]),
            Atom::new("T", &["b", "c"]),
        ])
    }

    /// The k-cycle query: binary atoms `R_i(x_i, x_{i+1 mod k})`.
    pub fn cycle(k: usize) -> Self {
        assert!(k >= 3);
        let atoms = (0..k)
            .map(|i| Atom {
                relation: format!("R{i}"),
                attrs: vec![format!("x{i}"), format!("x{}", (i + 1) % k)],
            })
            .collect();
        JoinQuery::new(atoms)
    }

    /// The star query: `R_i(c, x_i)` for i in 1..=k.
    pub fn star(k: usize) -> Self {
        let atoms = (1..=k)
            .map(|i| Atom {
                relation: format!("R{i}"),
                attrs: vec!["c".to_string(), format!("x{i}")],
            })
            .collect();
        JoinQuery::new(atoms)
    }

    /// The k-clique query: binary atoms `E{i}_{j}(x{i}, x{j})` for every
    /// pair `i < j` — ρ* = k/2. Supported for `3 ≤ k ≤ 10` (attribute
    /// names sort lexicographically, so single digits keep the variable
    /// order numeric).
    pub fn clique(k: usize) -> Self {
        assert!((3..=10).contains(&k));
        let mut atoms = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                atoms.push(Atom {
                    relation: format!("E{i}_{j}"),
                    attrs: vec![format!("x{i}"), format!("x{j}")],
                });
            }
        }
        JoinQuery::new(atoms)
    }

    /// The Loomis–Whitney query LW(n): n attributes, each atom omits one.
    /// ρ* = n/(n−1); LW(3) is (an attribute-renaming of) the triangle.
    pub fn loomis_whitney(n: usize) -> Self {
        assert!(n >= 3);
        let atoms = (0..n)
            .map(|skip| Atom {
                relation: format!("R{skip}"),
                attrs: (0..n)
                    .filter(|&v| v != skip)
                    .map(|v| format!("x{v}"))
                    .collect(),
            })
            .collect();
        JoinQuery::new(atoms)
    }

    /// A full answer tuple type: values in the order of [`Self::attributes`].
    pub fn tuple_type(&self) -> Vec<String> {
        self.attributes()
    }
}

/// An answer tuple: values in [`JoinQuery::attributes`] order.
pub type AnswerTuple = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_shape() {
        let q = JoinQuery::triangle();
        assert_eq!(q.attributes(), vec!["a", "b", "c"]);
        let (h, attrs) = q.hypergraph();
        assert_eq!(attrs.len(), 3);
        assert_eq!(h.num_edges(), 3);
        assert!(h.is_uniform(2));
        let (g, _) = q.primal_graph();
        assert!(g.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn cycle_and_star() {
        let c = JoinQuery::cycle(4);
        assert_eq!(c.attributes().len(), 4);
        assert_eq!(c.hypergraph().0.num_edges(), 4);
        let s = JoinQuery::star(3);
        assert_eq!(s.attributes().len(), 4);
    }

    #[test]
    fn clique_shape() {
        let q = JoinQuery::clique(4);
        assert_eq!(q.atoms.len(), 6); // one edge atom per pair
        assert_eq!(q.attributes(), vec!["x0", "x1", "x2", "x3"]);
        let (g, _) = q.primal_graph();
        assert!(g.is_clique(&[0, 1, 2, 3]));
        // clique(3) is the triangle up to renaming.
        assert_eq!(JoinQuery::clique(3).atoms.len(), 3);
    }

    #[test]
    fn loomis_whitney_shape() {
        let q = JoinQuery::loomis_whitney(4);
        assert_eq!(q.atoms.len(), 4);
        assert!(q.atoms.iter().all(|a| a.attrs.len() == 3));
    }

    #[test]
    #[should_panic(expected = "duplicate relation name")]
    fn duplicate_relation_rejected() {
        let _ = JoinQuery::new(vec![
            Atom::new("R", &["a", "b"]),
            Atom::new("R", &["b", "c"]),
        ]);
    }

    #[test]
    fn repeated_attribute_in_atom() {
        // R(a, a) is legal: a diagonal constraint.
        let q = JoinQuery::new(vec![Atom::new("R", &["a", "a"])]);
        assert_eq!(q.attributes(), vec!["a"]);
        let (h, _) = q.hypergraph();
        assert_eq!(h.edge(0), &[0]);
    }
}
