//! Property tests for the join engines: all evaluators agree, the AGM
//! bound holds, and Yannakakis matches on acyclic queries.

use lb_engine::Budget;
use lb_join::acyclic::{is_acyclic, yannakakis};
use lb_join::{agm, binary, generators, wcoj, Atom, JoinQuery};
use proptest::prelude::*;

fn path_query(len: usize) -> JoinQuery {
    JoinQuery::new(
        (0..len)
            .map(|i| Atom {
                relation: format!("R{i}"),
                attrs: vec![format!("x{i}"), format!("x{}", i + 1)],
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// WCOJ = binary plan = nested loop on random triangle databases, and
    /// the answer never exceeds the AGM bound.
    #[test]
    fn triangle_engines_agree(rows in 3usize..25, dom in 2u64..9, seed in 0u64..10_000) {
        let q = JoinQuery::triangle();
        let db = generators::random_binary_database(&q, rows, dom, seed);
        let a = wcoj::join(&q, &db, None, &Budget::unlimited()).unwrap().0.unwrap_sat();
        let (b_out, _) = binary::left_deep_join(&q, &db, &Budget::unlimited()).unwrap();
        let b = b_out.unwrap_sat();
        let c = wcoj::nested_loop_join(&q, &db, &Budget::unlimited()).unwrap().0.unwrap_sat();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        prop_assert!(agm::agm_bound_holds(&q, &db, a.len() as u128).unwrap());
        prop_assert_eq!(wcoj::count(&q, &db, None, &Budget::unlimited()).unwrap().0.unwrap_sat() as usize, a.len());
        prop_assert_eq!(wcoj::is_empty(&q, &db, None, &Budget::unlimited()).unwrap().0.unwrap_sat(), a.is_empty());
    }

    /// On acyclic (path) queries Yannakakis agrees with everything.
    #[test]
    fn yannakakis_agrees_on_paths(len in 2usize..5, rows in 3usize..20, dom in 2u64..7, seed in 0u64..10_000) {
        let q = path_query(len);
        prop_assert!(is_acyclic(&q));
        let db = generators::random_binary_database(&q, rows, dom, seed);
        let a = wcoj::join(&q, &db, None, &Budget::unlimited()).unwrap().0.unwrap_sat();
        let y = yannakakis(&q, &db, &Budget::unlimited()).unwrap().0.unwrap_sat();
        prop_assert_eq!(a, y);
    }

    /// Worst-case databases: relation sizes respect N and the prediction is
    /// exact, on every query family.
    #[test]
    fn worst_case_witness_exact(n in 4u64..40, family in 0usize..3) {
        let q = match family {
            0 => JoinQuery::triangle(),
            1 => JoinQuery::cycle(4),
            _ => JoinQuery::loomis_whitney(3),
        };
        let (db, predicted) = agm::worst_case_database(&q, n).unwrap();
        prop_assert!(db.max_table_size() as u64 <= n);
        let count = wcoj::count(&q, &db, None, &Budget::unlimited()).unwrap().0.unwrap_sat();
        prop_assert_eq!(count as u128, predicted);
        prop_assert!(agm::agm_bound_holds(&q, &db, predicted).unwrap());
    }

    /// Variable order never changes the answer.
    #[test]
    fn order_invariance(rows in 3usize..20, dom in 2u64..7, seed in 0u64..10_000, perm in 0usize..6) {
        let q = JoinQuery::triangle();
        let db = generators::random_binary_database(&q, rows, dom, seed);
        let orders: [[&str; 3]; 6] = [
            ["a", "b", "c"], ["a", "c", "b"], ["b", "a", "c"],
            ["b", "c", "a"], ["c", "a", "b"], ["c", "b", "a"],
        ];
        let ord: Vec<String> = orders[perm].iter().map(|s| s.to_string()).collect();
        let base = wcoj::join(&q, &db, None, &Budget::unlimited()).unwrap().0.unwrap_sat();
        let other = wcoj::join(&q, &db, Some(&ord), &Budget::unlimited()).unwrap().0.unwrap_sat();
        prop_assert_eq!(base, other);
    }
}
