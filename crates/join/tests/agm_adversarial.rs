//! Property tests for the checked AGM arithmetic at adversarial sizes.
//!
//! The seed computed `⌊n^{p/q}⌋` through `f64`, which silently truncates
//! once `n` nears `2^53`. These properties pin the exact integer path
//! (`lb_lp::intpow`) against an independent `u128` reference for sizes all
//! the way up to `u64::MAX`: no overflow, no truncation, and bit-for-bit
//! agreement with the defining inequality `s^q ≤ n^p < (s+1)^q`.

use lb_join::agm::worst_case_domain_sizes;
use lb_join::query::JoinQuery;
use lb_lp::rational::Rational;
use lb_lp::{cmp_pow, floor_rational_pow};
use proptest::prelude::*;
use std::cmp::Ordering;

/// `u128` reference for `x^e`; `None` on overflow. Independent of the
/// `intpow` implementation under test (plain checked multiply loop).
fn ref_pow(x: u128, e: u32) -> Option<u128> {
    let mut acc: u128 = 1;
    for _ in 0..e {
        acc = acc.checked_mul(x)?;
    }
    Some(acc)
}

/// `u128` reference ordering of `a^ea` vs `b^eb`, defined only when both
/// powers fit in `u128`.
fn ref_cmp(a: u128, ea: u32, b: u128, eb: u32) -> Option<Ordering> {
    Some(ref_pow(a, ea)?.cmp(&ref_pow(b, eb)?))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `floor_rational_pow(n, p/q)` satisfies the defining inequality
    /// exactly, for `n` spanning the full `u64` range (the last 2^12 values
    /// below `u64::MAX` are always in the sampled region). `p ≤ 2` keeps the
    /// reference side `n^p` representable in `u128`.
    #[test]
    fn floor_rational_pow_matches_u128_reference(
        hi in (u64::MAX - 4096)..=u64::MAX,
        lo in 1u64..=u64::MAX,
        p in 1u32..=2,
        q in 1u32..=8,
    ) {
        for n in [hi, lo] {
            let exp = Rational::new(i128::from(p), i128::from(q));
            let s = floor_rational_pow(n, &exp);
            if p > q && n > 1 {
                // n^{p/q} with p/q up to 2 can exceed u64 for large n; the
                // checked path must refuse rather than wrap. Accept either a
                // clean overflow error or a correct in-range answer.
                if s.is_err() {
                    let next = ref_pow(2, 64).expect("2^64 fits u128");
                    // Overflow is only legal if the true floor is ≥ 2^64,
                    // i.e. (2^64)^q ≤ n^p.
                    let np = ref_pow(u128::from(n), p).expect("n^2 fits u128");
                    prop_assert!(
                        ref_pow(next, q).is_none() || ref_pow(next, q).expect("fits") <= np,
                        "spurious overflow for n={n}, p/q={p}/{q}"
                    );
                    continue;
                }
            }
            let s = match s {
                Ok(s) => s,
                Err(e) => return Err(TestCaseError::from(format!("n={n} p/q={p}/{q}: {e:?}"))),
            };
            let np = ref_pow(u128::from(n), p).expect("n^2 fits u128");
            // s^q ≤ n^p …
            let sq = ref_pow(u128::from(s), q);
            prop_assert!(sq.is_some_and(|sq| sq <= np), "floor too large: n={n} p/q={p}/{q} s={s}");
            // … and (s+1)^q > n^p (None means it overflowed u128, which is
            // certainly > n^p since n^p fits).
            let s1q = ref_pow(u128::from(s) + 1, q);
            prop_assert!(
                s1q.is_none_or(|s1q| s1q > np),
                "floor not maximal: n={n} p/q={p}/{q} s={s}"
            );
        }
    }

    /// `cmp_pow` agrees with the `u128` reference whenever the reference is
    /// defined, for bases spanning the full `u64` range.
    #[test]
    fn cmp_pow_matches_u128_reference(
        a in 1u64..=u64::MAX,
        b in 1u64..=u64::MAX,
        ea in 1u32..=2,
        eb in 1u32..=2,
    ) {
        if let Some(expected) = ref_cmp(u128::from(a), ea, u128::from(b), eb) {
            prop_assert_eq!(cmp_pow(u128::from(a), ea, u128::from(b), eb), expected);
        }
    }

    /// Triangle witness sizes at adversarial `n`: every vertex gets weight
    /// 1/2 in the optimal packing, so each domain must be exactly
    /// `⌊√n⌋` — checked against a `u128` reference square root, with no
    /// overflow anywhere in the pipeline.
    #[test]
    fn triangle_domain_sizes_are_exact_isqrt(n in (u64::MAX - 4096)..=u64::MAX) {
        let q = JoinQuery::triangle();
        let sizes = match worst_case_domain_sizes(&q, n) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::from(format!("n={n}: {e}"))),
        };
        prop_assert_eq!(sizes.len(), 3);
        for &s in &sizes {
            let s128 = u128::from(s);
            prop_assert!(s128 * s128 <= u128::from(n), "⌊√n⌋ too large at n={n}: {s}");
            prop_assert!((s128 + 1) * (s128 + 1) > u128::from(n), "⌊√n⌋ not maximal at n={n}: {s}");
        }
    }

    /// Cross-check against the seed's old `f64` path on a range where both
    /// are in spec (`n ≤ 2^50`, safely inside `f64`'s exact-integer window):
    /// the exact path must never disagree by more than the float path's
    /// documented ±1 rounding slack, and must be exactly right.
    #[test]
    fn exact_path_dominates_float_path_in_its_own_window(
        n in 1u64..=(1u64 << 50),
        q in 2u32..=6,
    ) {
        let exp = Rational::new(1, i128::from(q));
        let s = match floor_rational_pow(n, &exp) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::from(format!("n={n} 1/{q}: {e:?}"))),
        };
        let sq = ref_pow(u128::from(s), q).expect("s^q ≤ n fits");
        prop_assert!(sq <= u128::from(n));
        prop_assert!(ref_pow(u128::from(s) + 1, q).is_none_or(|x| x > u128::from(n)));
    }
}
