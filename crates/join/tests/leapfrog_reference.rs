//! Differential properties of the leapfrog WCOJ against the frozen
//! pre-leapfrog generic join kept in `lb_join::reference` (the oracle):
//! identical answers on every query shape, deterministic op counts, sliced
//! checkpoint/resume verdicts equal to the oracle's one-shot verdict, and
//! the skew win the heavy/light split exists to deliver.

use lb_engine::checkpoint::{Checkpoint, ResumableOutcome};
use lb_engine::{Budget, RunStats};
use lb_join::{generators, reference, wcoj, JoinQuery};

fn shapes() -> Vec<(&'static str, JoinQuery, usize, u64)> {
    vec![
        ("triangle", JoinQuery::triangle(), 40, 10),
        ("cycle4", JoinQuery::cycle(4), 30, 8),
        ("clique4", JoinQuery::clique(4), 25, 6),
        ("lw3", JoinQuery::loomis_whitney(3), 25, 6),
        ("star3", JoinQuery::star(3), 30, 8),
    ]
}

#[test]
fn answers_match_the_reference_on_uniform_and_skewed_inputs() {
    for (name, q, rows, dom) in shapes() {
        for seed in 0..4u64 {
            for skewed in [false, true] {
                let db = if skewed {
                    generators::skewed_database(&q, rows, dom, seed)
                } else {
                    generators::random_database(&q, rows, dom, seed)
                };
                let new = wcoj::join(&q, &db, None, &Budget::unlimited())
                    .unwrap()
                    .0
                    .unwrap_sat();
                let old = reference::join(&q, &db, None, &Budget::unlimited())
                    .unwrap()
                    .0
                    .unwrap_sat();
                assert_eq!(new, old, "{name} seed {seed} skewed {skewed}");
            }
        }
    }
}

#[test]
fn op_counts_are_deterministic_and_tuple_counts_agree() {
    for (name, q, rows, dom) in shapes() {
        let db = generators::skewed_database(&q, rows, dom, 7);
        let (out1, s1) = wcoj::count(&q, &db, None, &Budget::unlimited()).unwrap();
        let (out2, s2) = wcoj::count(&q, &db, None, &Budget::unlimited()).unwrap();
        assert_eq!(out1, out2, "{name}: verdict must be deterministic");
        assert_eq!(s1, s2, "{name}: op counts must be deterministic");
        // `tuples` counts answers — algorithm-independent, so it must
        // match the reference machine exactly (total_ops may differ;
        // that difference is the whole point of the rewrite).
        let (_, old) = reference::count(&q, &db, None, &Budget::unlimited()).unwrap();
        assert_eq!(s1.tuples, old.tuples, "{name}: answer-tuple counter");
    }
}

#[test]
fn sliced_resume_verdicts_equal_the_reference_one_shot() {
    for (name, q, rows, dom) in shapes() {
        let db = generators::skewed_database(&q, rows, dom, 11);
        let (oracle, _) = reference::count(&q, &db, None, &Budget::unlimited()).unwrap();
        let want = oracle.unwrap_sat();

        let mut from: Option<Checkpoint> = None;
        let mut summed = RunStats::default();
        let got = loop {
            let (out, stats) =
                wcoj::count_resumable(&q, &db, None, &Budget::ticks(9), from.as_ref())
                    .expect("clean resume");
            summed.absorb(&stats);
            match out {
                ResumableOutcome::Suspended { checkpoint, .. } => {
                    let bytes = checkpoint.to_bytes();
                    from = Some(Checkpoint::from_bytes(&bytes).expect("round trip"));
                }
                done => break done.into_outcome().unwrap_sat(),
            }
        };
        assert_eq!(got, want, "{name}: sliced leapfrog vs reference one-shot");

        // And the sliced stats must sum to the leapfrog one-shot stats
        // (slice-equivalence, re-proven on the new frame encoding).
        let (_, full) = wcoj::count(&q, &db, None, &Budget::unlimited()).unwrap();
        assert_eq!(summed, full, "{name}: summed slice stats");
    }
}

#[test]
fn leapfrog_wins_on_disjoint_heavy_hitter_tails() {
    // The pinned skew shape: a hub value shared by two atoms plus long
    // disjoint tails. The reference machine probes every tail value; the
    // leapfrog gallops over both tails in O(log) seeks. This is the
    // measurable op-count win BENCH_wcoj.json records.
    use lb_join::{Atom, Database, Table};
    let q = JoinQuery::new(vec![
        Atom::new("R", &["a", "b"]),
        Atom::new("S", &["a", "c"]),
        Atom::new("T", &["b", "c"]),
    ]);
    let hub = 24u64;
    let tail = 400u64;
    let mut db = Database::new();
    let mut r: Vec<Vec<u64>> = (0..hub).map(|b| vec![0, b]).collect();
    r.extend((1..=tail).map(|i| vec![i, i]));
    db.insert("R", Table::from_rows(2, r));
    let mut s: Vec<Vec<u64>> = (0..hub).map(|c| vec![0, c]).collect();
    s.extend((1..=tail).map(|i| vec![10_000 + i, i]));
    db.insert("S", Table::from_rows(2, s));
    let mut t: Vec<Vec<u64>> = (0..hub).map(|x| vec![x, x]).collect();
    t.extend((0..hub).map(|x| vec![x, (x + 1) % hub]));
    db.insert("T", Table::from_rows(2, t));

    let (new_out, new_stats) = wcoj::count(&q, &db, None, &Budget::unlimited()).unwrap();
    let (old_out, old_stats) = reference::count(&q, &db, None, &Budget::unlimited()).unwrap();
    assert_eq!(new_out.unwrap_sat(), old_out.unwrap_sat());
    assert!(
        new_stats.total_ops() * 2 < old_stats.total_ops(),
        "leapfrog must at least halve the ops on this shape: {} vs {}",
        new_stats.total_ops(),
        old_stats.total_ops()
    );
}
