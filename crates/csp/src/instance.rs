//! CSP instances: variables, domain, constraints (paper §2.2).

use lb_graph::{Graph, Hypergraph};
use std::sync::Arc;

/// A domain value. Domains are always `0..domain_size`.
pub type Value = u32;

/// A full assignment: `assignment[var]` is the value of variable `var`.
pub type Assignment = Vec<Value>;

/// A relation: the set of allowed tuples, all of the same arity.
///
/// Tuples are kept sorted for O(log t) membership tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Vec<Value>>,
}

impl Relation {
    /// Builds a relation from tuples (sorted and deduplicated).
    ///
    /// # Panics
    /// Panics if some tuple has the wrong arity.
    pub fn new(arity: usize, mut tuples: Vec<Vec<Value>>) -> Self {
        // lb-lint: allow(unbudgeted-loop) -- one pass over caller-supplied tuples at construction, not solver search
        for t in &tuples {
            assert_eq!(t.len(), arity, "tuple arity mismatch");
        }
        tuples.sort_unstable();
        tuples.dedup();
        Relation { arity, tuples }
    }

    /// The empty relation (always unsatisfiable).
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            tuples: Vec::new(),
        }
    }

    /// The full relation over `domain_size` values.
    ///
    /// # Panics
    /// Panics if `domain_size.pow(arity)` would exceed 10^7 tuples — build
    /// such constraints implicitly instead.
    pub fn full(arity: usize, domain_size: usize) -> Self {
        let total = (domain_size as u64)
            .checked_pow(arity as u32)
            .unwrap_or(u64::MAX);
        assert!(
            total <= 10_000_000,
            "full relation too large to materialize"
        );
        let mut tuples = Vec::with_capacity(total as usize);
        let mut t = vec![0 as Value; arity];
        loop {
            tuples.push(t.clone());
            // Odometer increment.
            let mut i = arity;
            loop {
                if i == 0 {
                    return Relation { arity, tuples };
                }
                i -= 1;
                t[i] += 1;
                if (t[i] as usize) < domain_size {
                    break;
                }
                t[i] = 0;
                if i == 0 {
                    return Relation { arity, tuples };
                }
            }
        }
    }

    /// Builds a relation from a predicate over tuples.
    pub fn from_fn<F: FnMut(&[Value]) -> bool>(
        arity: usize,
        domain_size: usize,
        mut pred: F,
    ) -> Self {
        let mut tuples = Vec::new();
        let mut t = vec![0 as Value; arity];
        'outer: loop {
            if pred(&t) {
                tuples.push(t.clone());
            }
            let mut i = arity;
            loop {
                if i == 0 {
                    break 'outer;
                }
                i -= 1;
                t[i] += 1;
                if (t[i] as usize) < domain_size {
                    break;
                }
                t[i] = 0;
                if i == 0 {
                    break 'outer;
                }
            }
        }
        Relation { arity, tuples }
    }

    /// The binary disequality relation over `domain_size` values.
    pub fn disequality(domain_size: usize) -> Self {
        Relation::from_fn(2, domain_size, |t| t[0] != t[1])
    }

    /// The binary equality relation over `domain_size` values.
    pub fn equality(domain_size: usize) -> Self {
        Relation::from_fn(2, domain_size, |t| t[0] == t[1])
    }

    /// The binary relation of a graph's edge set (symmetric closure):
    /// `(u, v)` allowed iff `{u, v} ∈ E(G)`.
    pub fn graph_adjacency(g: &Graph) -> Self {
        let mut tuples = Vec::with_capacity(2 * g.num_edges());
        for (u, v) in g.edges() {
            tuples.push(vec![u as Value, v as Value]);
            tuples.push(vec![v as Value, u as Value]);
        }
        Relation::new(2, tuples)
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Allowed tuples, sorted.
    pub fn tuples(&self) -> &[Vec<Value>] {
        &self.tuples
    }

    /// Number of allowed tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff no tuple is allowed.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn allows(&self, t: &[Value]) -> bool {
        debug_assert_eq!(t.len(), self.arity);
        self.tuples
            .binary_search_by(|u| u.as_slice().cmp(t))
            .is_ok()
    }
}

/// A constraint ⟨scope, relation⟩: the variables in `scope` must jointly
/// take a tuple of `relation`. Relations are `Arc`-shared because reductions
/// often reuse one relation across many constraints.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// The constraint scope (variables, in relation-column order; repeats
    /// are allowed).
    pub scope: Vec<usize>,
    /// The allowed tuples.
    pub relation: Arc<Relation>,
}

impl Constraint {
    /// Builds a constraint.
    ///
    /// # Panics
    /// Panics if the scope length differs from the relation arity.
    pub fn new(scope: Vec<usize>, relation: Arc<Relation>) -> Self {
        assert_eq!(scope.len(), relation.arity(), "scope/arity mismatch");
        Constraint { scope, relation }
    }

    /// True iff the assignment (restricted to the scope) is allowed.
    pub fn satisfied_by(&self, assignment: &[Value]) -> bool {
        let t: Vec<Value> = self.scope.iter().map(|&v| assignment[v]).collect();
        self.relation.allows(&t)
    }
}

/// A CSP instance I = (V, D, C) with V = `0..num_vars` and D = `0..domain_size`.
#[derive(Clone, Debug)]
pub struct CspInstance {
    /// |V|.
    pub num_vars: usize,
    /// |D|.
    pub domain_size: usize,
    /// The constraints.
    pub constraints: Vec<Constraint>,
}

impl CspInstance {
    /// Creates an instance with no constraints.
    pub fn new(num_vars: usize, domain_size: usize) -> Self {
        CspInstance {
            num_vars,
            domain_size,
            constraints: Vec::new(),
        }
    }

    /// Adds a constraint.
    ///
    /// # Panics
    /// Panics if a scope variable is out of range or a relation value is
    /// outside the domain.
    pub fn add_constraint(&mut self, c: Constraint) {
        assert!(
            c.scope.iter().all(|&v| v < self.num_vars),
            "scope variable out of range"
        );
        debug_assert!(
            c.relation
                .tuples()
                .iter()
                .all(|t| t.iter().all(|&x| (x as usize) < self.domain_size)),
            "relation value outside domain"
        );
        self.constraints.push(c);
    }

    /// True iff every constraint is binary (paper §2.2 "binary CSP").
    pub fn is_binary(&self) -> bool {
        self.constraints.iter().all(|c| c.scope.len() == 2)
    }

    /// Maximum constraint arity.
    pub fn arity(&self) -> usize {
        self.constraints
            .iter()
            .map(|c| c.scope.len())
            .max()
            .unwrap_or(0)
    }

    /// Evaluates a full assignment.
    pub fn eval(&self, assignment: &[Value]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.constraints.iter().all(|c| c.satisfied_by(assignment))
    }

    /// The primal (Gaifman) graph: variables adjacent iff they co-occur in
    /// some constraint scope (§2.2).
    pub fn primal_graph(&self) -> Graph {
        let mut g = Graph::new(self.num_vars);
        // lb-lint: allow(unbudgeted-loop) -- graph construction, linear in total scope size; runs before search
        for c in &self.constraints {
            // lb-lint: allow(unbudgeted-loop) -- graph construction, linear in total scope size; runs before search
            for (i, &u) in c.scope.iter().enumerate() {
                // lb-lint: allow(unbudgeted-loop) -- graph construction, linear in total scope size; runs before search
                for &v in &c.scope[i + 1..] {
                    if u != v && !g.has_edge(u, v) {
                        g.add_edge(u, v);
                    }
                }
            }
        }
        g
    }

    /// The hypergraph: one hyperedge per constraint scope (§2.2).
    pub fn hypergraph(&self) -> Hypergraph {
        let mut h = Hypergraph::new(self.num_vars);
        // lb-lint: allow(unbudgeted-loop) -- hypergraph construction, linear in total scope size; runs before search
        for c in &self.constraints {
            let mut scope = c.scope.clone();
            scope.sort_unstable();
            scope.dedup();
            h.add_edge(scope);
        }
        h
    }

    /// Total size of the instance: Σ |scope| + Σ tuple cells, the `n` the
    /// paper's running-time bounds are stated in.
    pub fn size(&self) -> usize {
        self.constraints
            .iter()
            .map(|c| c.scope.len() + c.relation.len() * c.relation.arity())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_basics() {
        let r = Relation::new(2, vec![vec![1, 0], vec![0, 1], vec![1, 0]]);
        assert_eq!(r.len(), 2);
        assert!(r.allows(&[0, 1]));
        assert!(!r.allows(&[1, 1]));
        assert!(Relation::empty(3).is_empty());
    }

    #[test]
    fn full_relation() {
        let r = Relation::full(2, 3);
        assert_eq!(r.len(), 9);
        assert!(r.allows(&[2, 2]));
        let r1 = Relation::full(1, 4);
        assert_eq!(r1.len(), 4);
    }

    #[test]
    fn from_fn_and_named_relations() {
        let neq = Relation::disequality(3);
        assert_eq!(neq.len(), 6);
        assert!(!neq.allows(&[1, 1]));
        let eq = Relation::equality(3);
        assert_eq!(eq.len(), 3);
        assert!(eq.allows(&[2, 2]));
    }

    #[test]
    fn graph_adjacency_relation() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let r = Relation::graph_adjacency(&g);
        assert_eq!(r.len(), 4);
        assert!(r.allows(&[0, 1]) && r.allows(&[1, 0]));
        assert!(!r.allows(&[0, 2]));
    }

    #[test]
    fn instance_eval() {
        // Two variables over D = {0,1,2}, must differ and sum to 2.
        let mut inst = CspInstance::new(2, 3);
        inst.add_constraint(Constraint::new(
            vec![0, 1],
            Arc::new(Relation::disequality(3)),
        ));
        inst.add_constraint(Constraint::new(
            vec![0, 1],
            Arc::new(Relation::from_fn(2, 3, |t| t[0] + t[1] == 2)),
        ));
        assert!(inst.eval(&[0, 2]));
        assert!(!inst.eval(&[1, 1]));
        assert!(inst.is_binary());
        assert_eq!(inst.arity(), 2);
    }

    #[test]
    fn primal_graph_and_hypergraph() {
        let mut inst = CspInstance::new(4, 2);
        let r3 = Arc::new(Relation::full(3, 2));
        inst.add_constraint(Constraint::new(vec![0, 1, 2], r3));
        let g = inst.primal_graph();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        let h = inst.hypergraph();
        assert_eq!(h.num_edges(), 1);
        assert_eq!(h.edge(0), &[0, 1, 2]);
    }

    #[test]
    fn repeated_scope_variable() {
        // Constraint x ≠ x is unsatisfiable.
        let mut inst = CspInstance::new(1, 2);
        inst.add_constraint(Constraint::new(
            vec![0, 0],
            Arc::new(Relation::disequality(2)),
        ));
        assert!(!inst.eval(&[0]));
        assert!(!inst.eval(&[1]));
        // Primal graph has no self-loop.
        assert_eq!(inst.primal_graph().num_edges(), 0);
    }

    #[test]
    fn size_counts_cells() {
        let mut inst = CspInstance::new(2, 2);
        inst.add_constraint(Constraint::new(vec![0, 1], Arc::new(Relation::equality(2))));
        // scope 2 + 2 tuples × 2 cells = 6.
        assert_eq!(inst.size(), 6);
    }

    #[test]
    #[should_panic(expected = "scope/arity mismatch")]
    fn scope_arity_mismatch() {
        let _ = Constraint::new(vec![0], Arc::new(Relation::full(2, 2)));
    }
}
