//! Constraint satisfaction problems (paper §2.2) and their solvers.
//!
//! A CSP instance is a triple (V, D, C) of variables, a finite domain, and
//! constraints ⟨scope, relation⟩. This crate provides the instance
//! representation shared by the whole workspace (join queries, graph
//! problems and relational structures all translate into it — see
//! `lb-reductions::fourdomains`) and four solvers whose relative scaling is
//! the subject of the paper's lower bounds:
//!
//! * [`solver::bruteforce`] — try all |D|^|V| assignments (the baseline the
//!   ETH-based Theorem 6.4 says cannot be beaten in general);
//! * [`solver::backtracking`] — MRV + forward-checking search;
//! * [`solver::treewidth_dp`] — Freuder's algorithm (Theorem 4.2): solve in
//!   |V| · |D|^{k+1} given a width-k tree decomposition of the primal graph
//!   — optimal in the exponent by Theorems 6.5–6.7/7.2;
//! * [`solver::special`] — the quasipolynomial n^{O(log n)} algorithm for
//!   the "special" instances of Definition 4.3.
//!
//! All solvers support deciding, counting, and enumerating solutions, and
//! agree with each other (property-tested).

#![forbid(unsafe_code)]

pub mod consistency;
pub mod generators;
pub mod instance;
pub mod solver;

pub use instance::{Assignment, Constraint, CspInstance, Relation, Value};
