//! Backtracking CSP search with MRV and forward checking.
//!
//! The workhorse solver: still worst-case exponential (as the ETH demands,
//! Theorem 6.4), but with the two classic refinements — minimum-remaining-
//! values variable ordering and forward checking — each independently
//! toggleable for the E7 ablation.
//!
//! Engine mapping: assignments tried are [`RunStats::nodes`] ticks, domain
//! values pruned by forward checking are [`RunStats::backtracks`].
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::backtracks`]: lb_engine::RunStats::backtracks

use crate::instance::{Assignment, CspInstance, Value};
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// Feature toggles for ablation.
#[derive(Clone, Copy, Debug)]
pub struct BacktrackConfig {
    /// Pick the unassigned variable with the fewest remaining values
    /// (otherwise: lowest index first).
    pub mrv: bool,
    /// After each assignment, prune the domains of not-yet-assigned
    /// variables through constraints with exactly one unassigned variable.
    pub forward_checking: bool,
}

impl Default for BacktrackConfig {
    fn default() -> Self {
        BacktrackConfig {
            mrv: true,
            forward_checking: true,
        }
    }
}

struct Searcher<'a> {
    inst: &'a CspInstance,
    config: BacktrackConfig,
    ticker: Ticker,
    /// `domains[v][d]` = still possible. Entire rows are saved/restored on
    /// backtrack via the trail.
    domains: Vec<Vec<bool>>,
    domain_count: Vec<usize>,
    assigned: Vec<Option<Value>>,
    /// Constraints indexed by variable.
    by_var: Vec<Vec<usize>>,
}

impl<'a> Searcher<'a> {
    fn new(inst: &'a CspInstance, config: BacktrackConfig, budget: &Budget) -> Self {
        let mut by_var = vec![Vec::new(); inst.num_vars];
        for (ci, c) in inst.constraints.iter().enumerate() {
            let mut seen = c.scope.clone();
            seen.sort_unstable();
            seen.dedup();
            for v in seen {
                by_var[v].push(ci); // lb-lint: allow(no-unchecked-index) -- scope variables are < num_vars, validated by CspInstance::add_constraint
            }
        }
        Searcher {
            inst,
            config,
            ticker: Ticker::new(budget),
            domains: vec![vec![true; inst.domain_size]; inst.num_vars],
            domain_count: vec![inst.domain_size; inst.num_vars],
            assigned: vec![None; inst.num_vars],
            by_var,
        }
    }

    fn pick_var(&self) -> Option<usize> {
        // lb-lint: allow(no-unchecked-index) -- var/v index per-variable vectors sized num_vars
        let unassigned = (0..self.inst.num_vars).filter(|&v| self.assigned[v].is_none());
        if self.config.mrv {
            unassigned.min_by_key(|&v| self.domain_count[v]) // lb-lint: allow(no-unchecked-index) -- var/v index per-variable vectors sized num_vars
        } else {
            let mut it = unassigned;
            it.next()
        }
    }

    /// Checks constraints that are fully assigned and involve `var`.
    fn consistent_after(&self, var: usize) -> bool {
        // lb-lint: allow(no-unchecked-index) -- var/v index per-variable vectors sized num_vars
        for &ci in &self.by_var[var] {
            let c = &self.inst.constraints[ci]; // lb-lint: allow(no-unchecked-index) -- by_var holds constraint indices from enumerate()
                                                // lb-lint: allow(no-unchecked-index) -- scope variables are < num_vars, validated by CspInstance::add_constraint
            if c.scope.iter().all(|&v| self.assigned[v].is_some()) {
                let t: Vec<Value> = c
                    .scope
                    .iter()
                    // lb-lint: allow(no-panic, no-unchecked-index) -- the solver projects only scope variables (< num_vars) it has already assigned
                    .map(|&v| self.assigned[v].expect("checked"))
                    .collect();
                if !c.relation.allows(&t) {
                    return false;
                }
            }
        }
        true
    }

    /// Forward checking from `var`: prune values of single-unassigned
    /// neighbors; records (var, value) prunings on the trail.
    /// Returns `Ok(false)` on wipe-out, `Err` on budget exhaustion.
    fn forward_check(
        &mut self,
        var: usize,
        trail: &mut Vec<(usize, Value)>,
    ) -> Result<bool, ExhaustReason> {
        // lb-lint: allow(no-unchecked-index) -- var/v index per-variable vectors sized num_vars
        for ci_idx in 0..self.by_var[var].len() {
            // lb-lint: allow(no-unchecked-index) -- var < num_vars; ci_idx < the per-variable list length by the loop bound
            let ci = self.by_var[var][ci_idx];
            let c = &self.inst.constraints[ci]; // lb-lint: allow(no-unchecked-index) -- by_var holds constraint indices from enumerate()
                                                // Exactly one unassigned scope variable?
            let mut unassigned_var = None;
            let mut multiple = false;
            for &v in &c.scope {
                // lb-lint: allow(no-unchecked-index) -- scope variables are < num_vars, validated by CspInstance::add_constraint
                if self.assigned[v].is_none() {
                    match unassigned_var {
                        None => unassigned_var = Some(v),
                        Some(u) if u == v => {}
                        Some(_) => {
                            multiple = true;
                            break;
                        }
                    }
                }
            }
            let Some(u) = unassigned_var else { continue };
            if multiple {
                continue;
            }
            // Prune values of u not extendable to an allowed tuple.
            for d in 0..self.inst.domain_size as Value {
                // lb-lint: allow(no-unchecked-index) -- u < num_vars; d ranges over 0..domain_size = the row length
                if !self.domains[u][d as usize] {
                    continue;
                }
                let t: Vec<Value> = c
                    .scope
                    .iter()
                    .map(|&v| self.assigned[v].unwrap_or(d)) // lb-lint: allow(no-unchecked-index) -- scope variables are < num_vars, validated by CspInstance::add_constraint
                    .collect();
                if !c.relation.allows(&t) {
                    // lb-lint: allow(no-unchecked-index) -- u < num_vars; d < domain_size by the loop bound
                    self.domains[u][d as usize] = false;
                    self.domain_count[u] -= 1; // lb-lint: allow(no-unchecked-index) -- var/v index per-variable vectors sized num_vars
                    trail.push((u, d));
                    self.ticker.backtrack()?;
                }
            }
            // lb-lint: allow(no-unchecked-index) -- var/v index per-variable vectors sized num_vars
            if self.domain_count[u] == 0 {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn undo(&mut self, trail: &[(usize, Value)]) {
        for &(v, d) in trail {
            // Trail entries were in range when pushed; the same bounds hold
            // on undo.
            debug_assert!(!self.domains[v][d as usize]); // lb-lint: allow(no-unchecked-index) -- trail entries were in range when pushed
            self.domains[v][d as usize] = true; // lb-lint: allow(no-unchecked-index) -- trail entries were in range when pushed
            self.domain_count[v] += 1; // lb-lint: allow(no-unchecked-index) -- trail entries were in range when pushed
        }
    }

    /// Full search. `visit` is called on each solution; returning `true`
    /// stops the search. Returns whether the search was stopped early.
    fn search<F: FnMut(&[Value]) -> bool>(&mut self, visit: &mut F) -> Result<bool, ExhaustReason> {
        let var = match self.pick_var() {
            Some(v) => v,
            None => {
                let solution: Assignment = self
                    .assigned
                    .iter()
                    // lb-lint: allow(no-panic) -- invariant: a complete solution assigns every variable
                    .map(|a| a.expect("all assigned"))
                    .collect();
                debug_assert!(self.inst.eval(&solution));
                return Ok(visit(&solution));
            }
        };
        for d in 0..self.inst.domain_size as Value {
            // lb-lint: allow(no-unchecked-index) -- var < num_vars; d < domain_size by the loop bound
            if !self.domains[var][d as usize] {
                continue;
            }
            self.ticker.node()?;
            self.assigned[var] = Some(d); // lb-lint: allow(no-unchecked-index) -- var/v index per-variable vectors sized num_vars
            let mut trail: Vec<(usize, Value)> = Vec::new();
            let mut ok = self.consistent_after(var);
            if ok && self.config.forward_checking {
                match self.forward_check(var, &mut trail) {
                    Ok(alive) => ok = alive,
                    Err(reason) => {
                        self.undo(&trail);
                        self.assigned[var] = None; // lb-lint: allow(no-unchecked-index) -- var/v index per-variable vectors sized num_vars
                        return Err(reason);
                    }
                }
            }
            if ok {
                match self.search(visit) {
                    Ok(true) => return Ok(true), // caller is unwinding
                    Ok(false) => {}
                    Err(reason) => {
                        self.undo(&trail);
                        self.assigned[var] = None; // lb-lint: allow(no-unchecked-index) -- var/v index per-variable vectors sized num_vars
                        return Err(reason);
                    }
                }
            }
            self.undo(&trail);
            self.assigned[var] = None; // lb-lint: allow(no-unchecked-index) -- var/v index per-variable vectors sized num_vars
        }
        Ok(false)
    }
}

/// Finds one solution under `budget`: `Sat(assignment)`, `Unsat`, or
/// `Exhausted`, plus run counters.
pub fn solve(
    inst: &CspInstance,
    config: BacktrackConfig,
    budget: &Budget,
) -> (Outcome<Assignment>, RunStats) {
    if inst.domain_size == 0 && inst.num_vars > 0 {
        return (Outcome::Unsat, RunStats::default());
    }
    let mut s = Searcher::new(inst, config, budget);
    let mut found: Option<Assignment> = None;
    let result = s
        .search(&mut |a| {
            found = Some(a.to_vec());
            true
        })
        .map(|_| found);
    s.ticker.finish(result)
}

/// Counts all solutions under `budget`: `Sat(count)` (zero counts as
/// completed) or `Exhausted`.
pub fn count(
    inst: &CspInstance,
    config: BacktrackConfig,
    budget: &Budget,
) -> (Outcome<u64>, RunStats) {
    if inst.domain_size == 0 && inst.num_vars > 0 {
        return (Outcome::Sat(0), RunStats::default());
    }
    let mut s = Searcher::new(inst, config, budget);
    let mut n = 0u64;
    let result = s
        .search(&mut |_| {
            n += 1;
            false
        })
        .map(|_| Some(n));
    s.ticker.finish(result)
}

/// Enumerates all solutions through a callback; returning `true` stops.
/// `Sat(true)` means the visitor stopped the search, `Sat(false)` that the
/// space was exhausted normally; `Exhausted` that the budget ran out.
pub fn enumerate_until<F: FnMut(&[Value]) -> bool>(
    inst: &CspInstance,
    config: BacktrackConfig,
    budget: &Budget,
    mut visit: F,
) -> (Outcome<bool>, RunStats) {
    if inst.domain_size == 0 && inst.num_vars > 0 {
        return (Outcome::Sat(false), RunStats::default());
    }
    let mut s = Searcher::new(inst, config, budget);
    let result = s.search(&mut visit).map(Some);
    s.ticker.finish(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::instance::{Constraint, Relation};
    use crate::solver::bruteforce;
    use std::sync::Arc;

    fn all_configs() -> Vec<BacktrackConfig> {
        let mut out = Vec::new();
        for mrv in [false, true] {
            for fc in [false, true] {
                out.push(BacktrackConfig {
                    mrv,
                    forward_checking: fc,
                });
            }
        }
        out
    }

    #[test]
    fn coloring_triangle() {
        let mut inst = CspInstance::new(3, 3);
        let neq = Arc::new(Relation::disequality(3));
        inst.add_constraint(Constraint::new(vec![0, 1], neq.clone()));
        inst.add_constraint(Constraint::new(vec![1, 2], neq.clone()));
        inst.add_constraint(Constraint::new(vec![0, 2], neq));
        for cfg in all_configs() {
            let (sol, _) = solve(&inst, cfg, &Budget::unlimited());
            assert!(inst.eval(&sol.unwrap_sat()));
            let (cnt, _) = count(&inst, cfg, &Budget::unlimited());
            assert_eq!(cnt.unwrap_sat(), 6); // 3! proper 3-colorings of K3
        }
    }

    #[test]
    fn agrees_with_bruteforce_on_random_instances() {
        for seed in 0..15u64 {
            let g = lb_graph::generators::gnp(6, 0.5, seed);
            let inst = generators::random_binary_csp(&g, 3, 0.4, seed);
            let expect = bruteforce::count(&inst, &Budget::unlimited())
                .0
                .unwrap_sat();
            for cfg in all_configs() {
                let (cnt, _) = count(&inst, cfg, &Budget::unlimited());
                assert_eq!(cnt.unwrap_sat(), expect, "seed {seed}, cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn ternary_constraints() {
        // x + y + z ≡ 0 (mod 2) over D = {0,1}: 4 solutions.
        let mut inst = CspInstance::new(3, 2);
        inst.add_constraint(Constraint::new(
            vec![0, 1, 2],
            Arc::new(Relation::from_fn(3, 2, |t| (t[0] + t[1] + t[2]) % 2 == 0)),
        ));
        for cfg in all_configs() {
            assert_eq!(count(&inst, cfg, &Budget::unlimited()).0.unwrap_sat(), 4);
        }
    }

    #[test]
    fn forward_checking_prunes() {
        // A chain of equalities pinned at one end: FC collapses domains.
        let d = 5;
        let mut inst = CspInstance::new(6, d);
        let eq = Arc::new(Relation::equality(d));
        for i in 0..5 {
            inst.add_constraint(Constraint::new(vec![i, i + 1], eq.clone()));
        }
        inst.add_constraint(Constraint::new(
            vec![0],
            Arc::new(Relation::new(1, vec![vec![3]])),
        ));
        let (sol, stats_fc) = solve(
            &inst,
            BacktrackConfig {
                mrv: true,
                forward_checking: true,
            },
            &Budget::unlimited(),
        );
        assert_eq!(sol.unwrap_sat(), vec![3; 6]);
        assert!(stats_fc.backtracks > 0);
    }

    #[test]
    fn empty_relation_unsat() {
        let mut inst = CspInstance::new(2, 3);
        inst.add_constraint(Constraint::new(vec![0, 1], Arc::new(Relation::empty(2))));
        for cfg in all_configs() {
            assert!(solve(&inst, cfg, &Budget::unlimited()).0.is_unsat());
        }
    }

    #[test]
    fn repeated_variable_in_scope() {
        // (x, x) ∈ disequality is unsatisfiable.
        let mut inst = CspInstance::new(1, 4);
        inst.add_constraint(Constraint::new(
            vec![0, 0],
            Arc::new(Relation::disequality(4)),
        ));
        for cfg in all_configs() {
            assert!(
                solve(&inst, cfg, &Budget::unlimited()).0.is_unsat(),
                "cfg {cfg:?}"
            );
        }
    }

    #[test]
    fn zero_domain() {
        let inst = CspInstance::new(2, 0);
        for cfg in all_configs() {
            assert!(solve(&inst, cfg, &Budget::unlimited()).0.is_unsat());
            assert_eq!(count(&inst, cfg, &Budget::unlimited()).0.unwrap_sat(), 0);
        }
    }

    #[test]
    fn enumerate_early_stop() {
        let inst = CspInstance::new(2, 3);
        let mut seen = 0;
        let (out, _) = enumerate_until(
            &inst,
            BacktrackConfig::default(),
            &Budget::unlimited(),
            |_| {
                seen += 1;
                seen == 4
            },
        );
        assert_eq!(seen, 4);
        assert!(out.unwrap_sat());
    }

    #[test]
    fn tiny_budget_exhausts_and_counters_are_monotone() {
        let g = lb_graph::generators::gnp(7, 0.5, 5);
        let inst = generators::random_binary_csp(&g, 3, 0.4, 5);
        let (out, small) = count(&inst, BacktrackConfig::default(), &Budget::ticks(3));
        assert!(out.is_exhausted());
        let (full, big) = count(&inst, BacktrackConfig::default(), &Budget::unlimited());
        assert!(full.is_sat());
        assert!(small.le(&big));
    }
}
