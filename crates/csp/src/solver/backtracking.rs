//! Backtracking CSP search with MRV and forward checking.
//!
//! The workhorse solver: still worst-case exponential (as the ETH demands,
//! Theorem 6.4), but with the two classic refinements — minimum-remaining-
//! values variable ordering and forward checking — each independently
//! toggleable for the E7 ablation.

use crate::instance::{Assignment, CspInstance, Value};

/// Feature toggles for ablation.
#[derive(Clone, Copy, Debug)]
pub struct BacktrackConfig {
    /// Pick the unassigned variable with the fewest remaining values
    /// (otherwise: lowest index first).
    pub mrv: bool,
    /// After each assignment, prune the domains of not-yet-assigned
    /// variables through constraints with exactly one unassigned variable.
    pub forward_checking: bool,
}

impl Default for BacktrackConfig {
    fn default() -> Self {
        BacktrackConfig {
            mrv: true,
            forward_checking: true,
        }
    }
}

/// Search statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BacktrackStats {
    /// Search-tree nodes visited (assignments tried).
    pub nodes: u64,
    /// Domain values pruned by forward checking.
    pub prunings: u64,
}

struct Searcher<'a> {
    inst: &'a CspInstance,
    config: BacktrackConfig,
    stats: BacktrackStats,
    /// `domains[v][d]` = still possible. Entire rows are saved/restored on
    /// backtrack via the trail.
    domains: Vec<Vec<bool>>,
    domain_count: Vec<usize>,
    assigned: Vec<Option<Value>>,
    /// Constraints indexed by variable.
    by_var: Vec<Vec<usize>>,
}

impl<'a> Searcher<'a> {
    fn new(inst: &'a CspInstance, config: BacktrackConfig) -> Self {
        let mut by_var = vec![Vec::new(); inst.num_vars];
        for (ci, c) in inst.constraints.iter().enumerate() {
            let mut seen = c.scope.clone();
            seen.sort_unstable();
            seen.dedup();
            for v in seen {
                by_var[v].push(ci);
            }
        }
        Searcher {
            inst,
            config,
            stats: BacktrackStats::default(),
            domains: vec![vec![true; inst.domain_size]; inst.num_vars],
            domain_count: vec![inst.domain_size; inst.num_vars],
            assigned: vec![None; inst.num_vars],
            by_var,
        }
    }

    fn pick_var(&self) -> Option<usize> {
        let unassigned = (0..self.inst.num_vars).filter(|&v| self.assigned[v].is_none());
        if self.config.mrv {
            unassigned.min_by_key(|&v| self.domain_count[v])
        } else {
            let mut it = unassigned;
            it.next()
        }
    }

    /// Checks constraints that are fully assigned and involve `var`.
    fn consistent_after(&self, var: usize) -> bool {
        for &ci in &self.by_var[var] {
            let c = &self.inst.constraints[ci];
            if c.scope.iter().all(|&v| self.assigned[v].is_some()) {
                let t: Vec<Value> = c
                    .scope
                    .iter()
                    // lb-lint: allow(no-panic) -- invariant: the solver projects only variables it has already assigned
                    .map(|&v| self.assigned[v].expect("checked"))
                    .collect();
                if !c.relation.allows(&t) {
                    return false;
                }
            }
        }
        true
    }

    /// Forward checking from `var`: prune values of single-unassigned
    /// neighbors; records (var, value) prunings on the trail.
    /// Returns false on wipe-out.
    fn forward_check(&mut self, var: usize, trail: &mut Vec<(usize, Value)>) -> bool {
        for ci_idx in 0..self.by_var[var].len() {
            let ci = self.by_var[var][ci_idx];
            let c = &self.inst.constraints[ci];
            // Exactly one unassigned scope variable?
            let mut unassigned_var = None;
            let mut multiple = false;
            for &v in &c.scope {
                if self.assigned[v].is_none() {
                    match unassigned_var {
                        None => unassigned_var = Some(v),
                        Some(u) if u == v => {}
                        Some(_) => {
                            multiple = true;
                            break;
                        }
                    }
                }
            }
            let Some(u) = unassigned_var else { continue };
            if multiple {
                continue;
            }
            // Prune values of u not extendable to an allowed tuple.
            for d in 0..self.inst.domain_size as Value {
                if !self.domains[u][d as usize] {
                    continue;
                }
                let t: Vec<Value> = c
                    .scope
                    .iter()
                    .map(|&v| self.assigned[v].unwrap_or(d))
                    .collect();
                if !c.relation.allows(&t) {
                    self.domains[u][d as usize] = false;
                    self.domain_count[u] -= 1;
                    self.stats.prunings += 1;
                    trail.push((u, d));
                }
            }
            if self.domain_count[u] == 0 {
                return false;
            }
        }
        true
    }

    fn undo(&mut self, trail: &[(usize, Value)]) {
        for &(v, d) in trail {
            debug_assert!(!self.domains[v][d as usize]);
            self.domains[v][d as usize] = true;
            self.domain_count[v] += 1;
        }
    }

    /// Full search. `visit` is called on each solution; returning `true`
    /// stops the search. Returns whether the search was stopped early.
    fn search<F: FnMut(&[Value]) -> bool>(&mut self, visit: &mut F) -> bool {
        let var = match self.pick_var() {
            Some(v) => v,
            None => {
                let solution: Assignment = self
                    .assigned
                    .iter()
                    // lb-lint: allow(no-panic) -- invariant: a complete solution assigns every variable
                    .map(|a| a.expect("all assigned"))
                    .collect();
                debug_assert!(self.inst.eval(&solution));
                return visit(&solution);
            }
        };
        for d in 0..self.inst.domain_size as Value {
            if !self.domains[var][d as usize] {
                continue;
            }
            self.stats.nodes += 1;
            self.assigned[var] = Some(d);
            let mut trail: Vec<(usize, Value)> = Vec::new();
            let mut ok = self.consistent_after(var);
            if ok && self.config.forward_checking {
                ok = self.forward_check(var, &mut trail);
            }
            if ok && self.search(visit) {
                // Leave state as-is; caller is unwinding.
                return true;
            }
            self.undo(&trail);
            self.assigned[var] = None;
        }
        false
    }
}

/// Finds one solution; returns it with search statistics.
pub fn solve(inst: &CspInstance, config: BacktrackConfig) -> (Option<Assignment>, BacktrackStats) {
    if inst.domain_size == 0 && inst.num_vars > 0 {
        return (None, BacktrackStats::default());
    }
    let mut s = Searcher::new(inst, config);
    let mut found: Option<Assignment> = None;
    s.search(&mut |a| {
        found = Some(a.to_vec());
        true
    });
    (found, s.stats)
}

/// Counts all solutions.
pub fn count(inst: &CspInstance, config: BacktrackConfig) -> (u64, BacktrackStats) {
    if inst.domain_size == 0 && inst.num_vars > 0 {
        return (0, BacktrackStats::default());
    }
    let mut s = Searcher::new(inst, config);
    let mut n = 0u64;
    s.search(&mut |_| {
        n += 1;
        false
    });
    (n, s.stats)
}

/// Enumerates all solutions through a callback; returning `true` stops.
pub fn enumerate_until<F: FnMut(&[Value]) -> bool>(
    inst: &CspInstance,
    config: BacktrackConfig,
    mut visit: F,
) -> BacktrackStats {
    if inst.domain_size == 0 && inst.num_vars > 0 {
        return BacktrackStats::default();
    }
    let mut s = Searcher::new(inst, config);
    s.search(&mut visit);
    s.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::instance::{Constraint, Relation};
    use crate::solver::bruteforce;
    use std::sync::Arc;

    fn all_configs() -> Vec<BacktrackConfig> {
        let mut out = Vec::new();
        for mrv in [false, true] {
            for fc in [false, true] {
                out.push(BacktrackConfig {
                    mrv,
                    forward_checking: fc,
                });
            }
        }
        out
    }

    #[test]
    fn coloring_triangle() {
        let mut inst = CspInstance::new(3, 3);
        let neq = Arc::new(Relation::disequality(3));
        inst.add_constraint(Constraint::new(vec![0, 1], neq.clone()));
        inst.add_constraint(Constraint::new(vec![1, 2], neq.clone()));
        inst.add_constraint(Constraint::new(vec![0, 2], neq));
        for cfg in all_configs() {
            let (sol, _) = solve(&inst, cfg);
            assert!(inst.eval(&sol.unwrap()));
            let (cnt, _) = count(&inst, cfg);
            assert_eq!(cnt, 6); // 3! proper 3-colorings of K3
        }
    }

    #[test]
    fn agrees_with_bruteforce_on_random_instances() {
        for seed in 0..15u64 {
            let g = lb_graph::generators::gnp(6, 0.5, seed);
            let inst = generators::random_binary_csp(&g, 3, 0.4, seed);
            let expect = bruteforce::count(&inst);
            for cfg in all_configs() {
                let (cnt, _) = count(&inst, cfg);
                assert_eq!(cnt, expect, "seed {seed}, cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn ternary_constraints() {
        // x + y + z ≡ 0 (mod 2) over D = {0,1}: 4 solutions.
        let mut inst = CspInstance::new(3, 2);
        inst.add_constraint(Constraint::new(
            vec![0, 1, 2],
            Arc::new(Relation::from_fn(3, 2, |t| (t[0] + t[1] + t[2]) % 2 == 0)),
        ));
        for cfg in all_configs() {
            assert_eq!(count(&inst, cfg).0, 4);
        }
    }

    #[test]
    fn forward_checking_prunes() {
        // A chain of equalities pinned at one end: FC collapses domains.
        let d = 5;
        let mut inst = CspInstance::new(6, d);
        let eq = Arc::new(Relation::equality(d));
        for i in 0..5 {
            inst.add_constraint(Constraint::new(vec![i, i + 1], eq.clone()));
        }
        inst.add_constraint(Constraint::new(
            vec![0],
            Arc::new(Relation::new(1, vec![vec![3]])),
        ));
        let (sol, stats_fc) = solve(
            &inst,
            BacktrackConfig {
                mrv: true,
                forward_checking: true,
            },
        );
        assert_eq!(sol.unwrap(), vec![3; 6]);
        assert!(stats_fc.prunings > 0);
    }

    #[test]
    fn empty_relation_unsat() {
        let mut inst = CspInstance::new(2, 3);
        inst.add_constraint(Constraint::new(vec![0, 1], Arc::new(Relation::empty(2))));
        for cfg in all_configs() {
            assert!(solve(&inst, cfg).0.is_none());
        }
    }

    #[test]
    fn repeated_variable_in_scope() {
        // (x, x) ∈ disequality is unsatisfiable.
        let mut inst = CspInstance::new(1, 4);
        inst.add_constraint(Constraint::new(
            vec![0, 0],
            Arc::new(Relation::disequality(4)),
        ));
        for cfg in all_configs() {
            assert!(solve(&inst, cfg).0.is_none(), "cfg {cfg:?}");
        }
    }

    #[test]
    fn zero_domain() {
        let inst = CspInstance::new(2, 0);
        for cfg in all_configs() {
            assert!(solve(&inst, cfg).0.is_none());
            assert_eq!(count(&inst, cfg).0, 0);
        }
    }

    #[test]
    fn enumerate_early_stop() {
        let inst = CspInstance::new(2, 3);
        let mut seen = 0;
        enumerate_until(&inst, BacktrackConfig::default(), |_| {
            seen += 1;
            seen == 4
        });
        assert_eq!(seen, 4);
    }
}
