//! Backtracking CSP search with MRV and forward checking.
//!
//! The workhorse solver: still worst-case exponential (as the ETH demands,
//! Theorem 6.4), but with the two classic refinements — minimum-remaining-
//! values variable ordering and forward checking — each independently
//! toggleable for the E7 ablation.
//!
//! Engine mapping: assignments tried are [`RunStats::nodes`] ticks, domain
//! values pruned by forward checking are [`RunStats::backtracks`].
//!
//! # Preemption safety
//!
//! The search runs on an explicit frame stack structured as a micro-step
//! machine: every counted operation applies its effect and advances the
//! phase *before* spending the tick, so [`solve_resumable`] and
//! [`count_resumable`] can suspend at any failed charge into a
//! [`Checkpoint`] and later continue with the next operation — same
//! verdict, same summed [`RunStats`] as one uninterrupted run.
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::backtracks`]: lb_engine::RunStats::backtracks
//! [`RunStats`]: lb_engine::RunStats

use crate::instance::{Assignment, CspInstance, Value};
use lb_engine::checkpoint::{
    Checkpoint, CheckpointError, Digest, PayloadReader, PayloadWriter, ResumableOutcome,
    SolverFamily,
};
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// Payload version of backtracking-CSP checkpoints; bumped whenever the
/// frontier encoding below changes.
pub const CHECKPOINT_PAYLOAD_VERSION: u16 = 1;

/// Feature toggles for ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BacktrackConfig {
    /// Pick the unassigned variable with the fewest remaining values
    /// (otherwise: lowest index first).
    pub mrv: bool,
    /// After each assignment, prune the domains of not-yet-assigned
    /// variables through constraints with exactly one unassigned variable.
    pub forward_checking: bool,
}

impl Default for BacktrackConfig {
    fn default() -> Self {
        BacktrackConfig {
            mrv: true,
            forward_checking: true,
        }
    }
}

/// What a resumable entry point does with solutions; serialized into the
/// checkpoint so a `count` frontier cannot silently resume as `solve`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Solve,
    Count,
}

/// Immutable search context: the instance, the configuration, and the
/// constraint-by-variable index (recomputed, never serialized).
struct Ctx<'a> {
    inst: &'a CspInstance,
    config: BacktrackConfig,
    by_var: Vec<Vec<usize>>,
}

impl<'a> Ctx<'a> {
    fn new(inst: &'a CspInstance, config: BacktrackConfig) -> Self {
        let mut by_var = vec![Vec::new(); inst.num_vars];
        // lb-lint: allow(unbudgeted-loop) -- one-time index construction, linear in total scope size
        for (ci, c) in inst.constraints.iter().enumerate() {
            let mut seen = c.scope.clone();
            seen.sort_unstable();
            seen.dedup();
            // lb-lint: allow(unbudgeted-loop) -- one-time index construction, linear in total scope size
            for v in seen {
                // lb-lint: allow(unbounded-growth) -- one-time index construction, linear in total scope size
                by_var[v].push(ci); // lb-lint: allow(no-unchecked-index, panic-reachability) -- scope variables are < num_vars, validated by CspInstance::add_constraint
            }
        }
        Ctx {
            inst,
            config,
            by_var,
        }
    }

    fn pick_var(&self, assigned: &[Option<Value>], domain_count: &[usize]) -> Option<usize> {
        // lb-lint: allow(no-unchecked-index, panic-reachability) -- var/v index per-variable vectors sized num_vars
        let unassigned = (0..self.inst.num_vars).filter(|&v| assigned[v].is_none());
        if self.config.mrv {
            unassigned.min_by_key(|&v| domain_count[v]) // lb-lint: allow(no-unchecked-index, panic-reachability) -- var/v index per-variable vectors sized num_vars
        } else {
            let mut it = unassigned;
            it.next()
        }
    }

    /// Checks constraints that are fully assigned and involve `var`.
    fn consistent_after(&self, assigned: &[Option<Value>], var: usize) -> bool {
        // lb-lint: allow(no-unchecked-index, unbudgeted-loop, panic-reachability) -- var/v index per-variable vectors sized num_vars; loop: bounded by the constraints on one variable; the caller charges per node
        for &ci in &self.by_var[var] {
            let c = &self.inst.constraints[ci]; // lb-lint: allow(no-unchecked-index, panic-reachability) -- by_var holds constraint indices from enumerate()
                                                // lb-lint: allow(no-unchecked-index, panic-reachability) -- scope variables are < num_vars, validated by CspInstance::add_constraint
            if c.scope.iter().all(|&v| assigned[v].is_some()) {
                let t: Vec<Value> = c
                    .scope
                    .iter()
                    // lb-lint: allow(no-panic, no-unchecked-index, panic-reachability) -- the solver projects only scope variables (< num_vars) it has already assigned
                    .map(|&v| assigned[v].expect("checked"))
                    .collect();
                if !c.relation.allows(&t) {
                    return false;
                }
            }
        }
        true
    }
}

/// Where the machine resumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Pick the next variable (or recognize a complete solution).
    Select,
    /// Try values `>= d` for `var`.
    NextValue { var: usize, d: Value },
    /// The top frame's value was just assigned: check full constraints.
    Consist,
    /// Forward checking on the top frame's variable, resuming at constraint
    /// `ci_idx` (within `by_var[var]`) and candidate value `d`.
    ForwardCheck { ci_idx: usize, d: Value },
    /// The current value failed (or its subtree is exhausted): undo and
    /// advance.
    Unwind,
}

/// One active assignment: variable, value tried, and the forward-checking
/// prunes made on its behalf.
#[derive(Clone, Debug)]
struct Frame {
    var: usize,
    d: Value,
    trail: Vec<(usize, Value)>,
}

/// The explicit-stack backtracking state. `domain_count` is derived from
/// `domains` (and recomputed on decode).
#[derive(Clone, Debug)]
struct Machine {
    /// `domains[v][d]` = still possible.
    domains: Vec<Vec<bool>>,
    domain_count: Vec<usize>,
    assigned: Vec<Option<Value>>,
    frames: Vec<Frame>,
    phase: Phase,
}

impl Machine {
    fn fresh(inst: &CspInstance) -> Machine {
        Machine {
            domains: vec![vec![true; inst.domain_size]; inst.num_vars],
            domain_count: vec![inst.domain_size; inst.num_vars],
            assigned: vec![None; inst.num_vars],
            frames: Vec::new(),
            phase: Phase::Select,
        }
    }

    /// Runs micro-steps until the next solution (`Ok(Some(..))`, machine
    /// positioned to continue past it), exhaustion of the search space
    /// (`Ok(None)`), or a failed charge (`Err`, machine resumable).
    fn run(
        &mut self,
        ctx: &Ctx<'_>,
        ticker: &mut Ticker,
    ) -> Result<Option<Assignment>, ExhaustReason> {
        loop {
            match self.phase {
                Phase::Select => {
                    match ctx.pick_var(&self.assigned, &self.domain_count) {
                        None => {
                            let solution: Assignment = self
                                .assigned
                                .iter()
                                // lb-lint: allow(no-panic, panic-reachability) -- invariant: a complete solution assigns every variable
                                .map(|a| a.expect("all assigned"))
                                .collect();
                            debug_assert!(ctx.inst.eval(&solution));
                            self.phase = Phase::Unwind;
                            return Ok(Some(solution));
                        }
                        Some(var) => self.phase = Phase::NextValue { var, d: 0 },
                    }
                }
                Phase::NextValue { var, d } => {
                    let mut d = d;
                    let mut open = None;
                    // lb-lint: allow(unbudgeted-loop) -- scans at most domain_size values for the next open value; selection charges a node
                    while (d as usize) < ctx.inst.domain_size {
                        // lb-lint: allow(no-unchecked-index, panic-reachability) -- var < num_vars; d < domain_size by the loop bound
                        if self.domains[var][d as usize] {
                            open = Some(d);
                            break;
                        }
                        d += 1;
                    }
                    match open {
                        None => self.phase = Phase::Unwind,
                        Some(d) => {
                            self.frames.push(Frame {
                                var,
                                d,
                                trail: Vec::new(),
                            });
                            ticker.record_intermediate(self.frames.len() as u64);
                            self.assigned[var] = Some(d); // lb-lint: allow(no-unchecked-index, panic-reachability) -- var/v index per-variable vectors sized num_vars
                            self.phase = Phase::Consist;
                            ticker.node()?;
                        }
                    }
                }
                Phase::Consist => {
                    let Some(frame) = self.frames.last() else {
                        // Unreachable from valid transitions; recover by
                        // unwinding rather than panicking.
                        self.phase = Phase::Unwind;
                        continue;
                    };
                    let var = frame.var;
                    self.phase = if !ctx.consistent_after(&self.assigned, var) {
                        Phase::Unwind
                    } else if ctx.config.forward_checking {
                        Phase::ForwardCheck { ci_idx: 0, d: 0 }
                    } else {
                        Phase::Select
                    };
                }
                Phase::ForwardCheck { ci_idx, d } => {
                    let Some(frame) = self.frames.last() else {
                        self.phase = Phase::Unwind;
                        continue;
                    };
                    let var = frame.var;
                    let mut ci_idx = ci_idx;
                    let mut d = d;
                    loop {
                        // lb-lint: allow(no-unchecked-index, panic-reachability) -- var/v index per-variable vectors sized num_vars
                        let Some(&ci) = ctx.by_var[var].get(ci_idx) else {
                            self.phase = Phase::Select;
                            break;
                        };
                        let c = &ctx.inst.constraints[ci]; // lb-lint: allow(no-unchecked-index, panic-reachability) -- by_var holds constraint indices from enumerate()
                                                           // Exactly one unassigned scope variable?
                        let mut unassigned_var = None;
                        let mut multiple = false;
                        // lb-lint: allow(unbudgeted-loop) -- scans one constraint scope; bounded by arity
                        for &v in &c.scope {
                            // lb-lint: allow(no-unchecked-index, panic-reachability) -- scope variables are < num_vars, validated by CspInstance::add_constraint
                            if self.assigned[v].is_none() {
                                match unassigned_var {
                                    None => unassigned_var = Some(v),
                                    Some(u) if u == v => {}
                                    Some(_) => {
                                        multiple = true;
                                        break;
                                    }
                                }
                            }
                        }
                        let (Some(u), false) = (unassigned_var, multiple) else {
                            ci_idx += 1;
                            d = 0;
                            continue;
                        };
                        // Prune values of u not extendable to an allowed tuple.
                        while (d as usize) < ctx.inst.domain_size {
                            // lb-lint: allow(no-unchecked-index, panic-reachability) -- u < num_vars; d ranges over 0..domain_size = the row length
                            if self.domains[u][d as usize] {
                                let t: Vec<Value> = c
                                    .scope
                                    .iter()
                                    .map(|&v| self.assigned[v].unwrap_or(d)) // lb-lint: allow(no-unchecked-index, panic-reachability) -- scope variables are < num_vars, validated by CspInstance::add_constraint
                                    .collect();
                                if !c.relation.allows(&t) {
                                    // lb-lint: allow(no-unchecked-index, panic-reachability) -- u < num_vars; d < domain_size by the loop bound
                                    self.domains[u][d as usize] = false;
                                    self.domain_count[u] -= 1; // lb-lint: allow(no-unchecked-index, panic-reachability) -- var/v index per-variable vectors sized num_vars
                                    if let Some(top) = self.frames.last_mut() {
                                        top.trail.push((u, d));
                                        ticker.record_intermediate(top.trail.len() as u64);
                                    }
                                    d += 1;
                                    self.phase = Phase::ForwardCheck { ci_idx, d };
                                    ticker.backtrack()?;
                                    continue;
                                }
                            }
                            d += 1;
                        }
                        // lb-lint: allow(no-unchecked-index, panic-reachability) -- var/v index per-variable vectors sized num_vars
                        if self.domain_count[u] == 0 {
                            self.phase = Phase::Unwind;
                            break;
                        }
                        ci_idx += 1;
                        d = 0;
                    }
                }
                Phase::Unwind => match self.frames.pop() {
                    None => return Ok(None),
                    Some(frame) => {
                        // lb-lint: allow(unbudgeted-loop) -- undoes one frame's trail; entries were charged when pruned
                        for &(v, dv) in &frame.trail {
                            // Restore idempotently: a hostile (but
                            // checksummed) trail must not corrupt counts.
                            // lb-lint: allow(no-unchecked-index, panic-reachability) -- trail entries were in range when pushed and are bounds-checked on decode
                            if !self.domains[v][dv as usize] {
                                self.domains[v][dv as usize] = true; // lb-lint: allow(no-unchecked-index, panic-reachability) -- trail entries were in range when pushed and are bounds-checked on decode
                                self.domain_count[v] += 1; // lb-lint: allow(no-unchecked-index, panic-reachability) -- trail entries were in range when pushed and are bounds-checked on decode
                            }
                        }
                        self.assigned[frame.var] = None; // lb-lint: allow(no-unchecked-index, panic-reachability) -- var/v index per-variable vectors sized num_vars
                        self.phase = Phase::NextValue {
                            var: frame.var,
                            d: frame.d + 1,
                        };
                    }
                },
            }
        }
    }

    fn encode(&self, digest: u64, mode: Mode, count: u64) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.u64(digest)
            .u8(match mode {
                Mode::Solve => 0,
                Mode::Count => 1,
            })
            .u64(count)
            .usize(self.domains.len());
        // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
        for row in &self.domains {
            w.usize(row.len());
            // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
            for &b in row {
                w.bool(b);
            }
        }
        // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
        for a in &self.assigned {
            w.u64(match a {
                None => 0,
                Some(v) => u64::from(*v) + 1,
            });
        }
        w.usize(self.frames.len());
        // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
        for frame in &self.frames {
            w.usize(frame.var).u32(frame.d).usize(frame.trail.len());
            // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
            for &(v, d) in &frame.trail {
                w.usize(v).u32(d);
            }
        }
        match self.phase {
            Phase::Select => {
                w.u8(0);
            }
            Phase::NextValue { var, d } => {
                w.u8(1).usize(var).u32(d);
            }
            Phase::Consist => {
                w.u8(2);
            }
            Phase::ForwardCheck { ci_idx, d } => {
                w.u8(3).usize(ci_idx).u32(d);
            }
            Phase::Unwind => {
                w.u8(4);
            }
        }
        w.finish()
    }

    /// Decodes and validates a frontier against `ctx`. Returns the machine
    /// plus the running solution count recorded by `count_resumable`.
    fn decode(
        ctx: &Ctx<'_>,
        digest: u64,
        mode: Mode,
        ck: &Checkpoint,
    ) -> Result<(Machine, u64), CheckpointError> {
        ck.verify(SolverFamily::CspBacktracking, CHECKPOINT_PAYLOAD_VERSION)?;
        let fam = SolverFamily::CspBacktracking;
        let mut r = PayloadReader::new(ck.payload());
        let found = r.u64()?;
        if found != digest {
            return Err(CheckpointError::InstanceMismatch {
                family: fam,
                expected: digest,
                found,
            });
        }
        let mode_at = r.offset();
        let stored_mode = match r.u8()? {
            0 => Mode::Solve,
            1 => Mode::Count,
            b => {
                return Err(CheckpointError::Malformed {
                    what: format!("invalid mode byte {b}"),
                    offset: mode_at,
                })
            }
        };
        if stored_mode != mode {
            return Err(CheckpointError::Malformed {
                what: format!(
                    "checkpoint was taken by a {} run, cannot resume as {}",
                    if stored_mode == Mode::Solve {
                        "solve"
                    } else {
                        "count"
                    },
                    if mode == Mode::Solve {
                        "solve"
                    } else {
                        "count"
                    },
                ),
                offset: mode_at,
            });
        }
        let count = r.u64()?;
        let n = ctx.inst.num_vars;
        let ds = ctx.inst.domain_size;
        let stored_n = r.usize()?;
        if stored_n != n {
            return Err(CheckpointError::Malformed {
                what: format!("checkpoint has {stored_n} variables, instance has {n}"),
                offset: r.offset(),
            });
        }
        let mut domains = Vec::with_capacity(n);
        let mut domain_count = Vec::with_capacity(n);
        // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
        for _ in 0..n {
            let row_at = r.offset();
            let row_len = r.usize()?;
            if row_len != ds {
                return Err(CheckpointError::Malformed {
                    what: format!("domain row of {row_len} values, instance domain size is {ds}"),
                    offset: row_at,
                });
            }
            let mut row = Vec::with_capacity(ds);
            // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
            for _ in 0..ds {
                row.push(r.bool()?); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
            }
            domain_count.push(row.iter().filter(|&&b| b).count()); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
            domains.push(row); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
        }
        let mut assigned = Vec::with_capacity(n);
        // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
        for _ in 0..n {
            let at = r.offset();
            let v = r.u64()?;
            if v == 0 {
                assigned.push(None); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
            } else if v - 1 < ds as u64 {
                assigned.push(Some((v - 1) as Value)); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
            } else {
                return Err(CheckpointError::Malformed {
                    what: format!("assigned value {} out of domain (< {ds} required)", v - 1),
                    offset: at,
                });
            }
        }
        let read_value = |r: &mut PayloadReader<'_>| -> Result<Value, CheckpointError> {
            let at = r.offset();
            let d = r.u32()?;
            if (d as usize) < ds {
                Ok(d)
            } else {
                Err(CheckpointError::Malformed {
                    what: format!("domain value {d} out of range (< {ds} required)"),
                    offset: at,
                })
            }
        };
        let frame_count = r.seq_len(20, "frame stack")?;
        let mut frames = Vec::with_capacity(frame_count);
        // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
        for _ in 0..frame_count {
            let var = r.usize_below(n, "frame var")?;
            let d = read_value(&mut r)?;
            let trail_len = r.seq_len(12, "prune trail")?;
            let mut trail = Vec::with_capacity(trail_len);
            // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
            for _ in 0..trail_len {
                let v = r.usize_below(n, "trail var")?;
                let dv = read_value(&mut r)?;
                trail.push((v, dv)); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
            }
            frames.push(Frame { var, d, trail }); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
        }
        let tag_at = r.offset();
        let phase = match r.u8()? {
            0 => Phase::Select,
            1 => {
                let var = r.usize_below(n, "next-value var")?;
                let at = r.offset();
                let d = r.u32()?;
                if (d as usize) > ds {
                    return Err(CheckpointError::Malformed {
                        what: format!("next-value cursor {d} out of range (<= {ds} required)"),
                        offset: at,
                    });
                }
                Phase::NextValue { var, d }
            }
            2 => Phase::Consist,
            3 => {
                let top_var =
                    frames
                        .last()
                        .map(|f| f.var)
                        .ok_or_else(|| CheckpointError::Malformed {
                            what: "forward-check phase with an empty frame stack".into(),
                            offset: tag_at,
                        })?;
                // lb-lint: allow(no-unchecked-index, panic-reachability) -- top_var came from a decoded frame validated < num_vars
                let ci_idx = r.usize_at_most(ctx.by_var[top_var].len(), "constraint cursor")?;
                let at = r.offset();
                let d = r.u32()?;
                if (d as usize) > ds {
                    return Err(CheckpointError::Malformed {
                        what: format!("forward-check cursor {d} out of range (<= {ds} required)"),
                        offset: at,
                    });
                }
                Phase::ForwardCheck { ci_idx, d }
            }
            4 => Phase::Unwind,
            b => {
                return Err(CheckpointError::Malformed {
                    what: format!("invalid phase tag {b}"),
                    offset: tag_at,
                })
            }
        };
        if matches!(phase, Phase::Consist) && frames.is_empty() {
            return Err(CheckpointError::Malformed {
                what: "consistency phase with an empty frame stack".into(),
                offset: tag_at,
            });
        }
        r.finish()?;
        Ok((
            Machine {
                domains,
                domain_count,
                assigned,
                frames,
                phase,
            },
            count,
        ))
    }
}

/// FNV digest binding a checkpoint to (instance, configuration).
fn instance_digest(inst: &CspInstance, config: BacktrackConfig) -> u64 {
    let mut d = Digest::new();
    d.str("csp-backtracking")
        .usize(inst.num_vars)
        .usize(inst.domain_size)
        .usize(inst.constraints.len());
    // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in instance size; runs once per resume
    for c in &inst.constraints {
        d.usize(c.scope.len());
        // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in instance size; runs once per resume
        for &v in &c.scope {
            d.usize(v);
        }
        d.usize(c.relation.arity()).usize(c.relation.tuples().len());
        // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in instance size; runs once per resume
        for t in c.relation.tuples() {
            // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in instance size; runs once per resume
            for &v in t {
                d.u64(u64::from(v));
            }
        }
    }
    d.u64(u64::from(config.mrv))
        .u64(u64::from(config.forward_checking));
    d.finish()
}

/// Finds one solution under `budget`: `Sat(assignment)`, `Unsat`, or
/// `Exhausted`, plus run counters.
pub fn solve(
    inst: &CspInstance,
    config: BacktrackConfig,
    budget: &Budget,
) -> (Outcome<Assignment>, RunStats) {
    if inst.domain_size == 0 && inst.num_vars > 0 {
        return (Outcome::Unsat, RunStats::default());
    }
    let ctx = Ctx::new(inst, config);
    let mut m = Machine::fresh(inst);
    let mut ticker = Ticker::new(budget);
    let result = m.run(&ctx, &mut ticker);
    ticker.finish(result)
}

/// Counts all solutions under `budget`: `Sat(count)` (zero counts as
/// completed) or `Exhausted`.
pub fn count(
    inst: &CspInstance,
    config: BacktrackConfig,
    budget: &Budget,
) -> (Outcome<u64>, RunStats) {
    if inst.domain_size == 0 && inst.num_vars > 0 {
        return (Outcome::Sat(0), RunStats::default());
    }
    let ctx = Ctx::new(inst, config);
    let mut m = Machine::fresh(inst);
    let mut ticker = Ticker::new(budget);
    let mut n = 0u64;
    let result = loop {
        match m.run(&ctx, &mut ticker) {
            Ok(Some(_)) => n += 1,
            Ok(None) => break Ok(Some(n)),
            Err(reason) => break Err(reason),
        }
    };
    ticker.finish(result)
}

/// Enumerates all solutions through a callback; returning `true` stops.
/// `Sat(true)` means the visitor stopped the search, `Sat(false)` that the
/// space was exhausted normally; `Exhausted` that the budget ran out.
pub fn enumerate_until<F: FnMut(&[Value]) -> bool>(
    inst: &CspInstance,
    config: BacktrackConfig,
    budget: &Budget,
    mut visit: F,
) -> (Outcome<bool>, RunStats) {
    if inst.domain_size == 0 && inst.num_vars > 0 {
        return (Outcome::Sat(false), RunStats::default());
    }
    let ctx = Ctx::new(inst, config);
    let mut m = Machine::fresh(inst);
    let mut ticker = Ticker::new(budget);
    let result = loop {
        match m.run(&ctx, &mut ticker) {
            Ok(Some(solution)) => {
                if visit(&solution) {
                    break Ok(Some(true));
                }
            }
            Ok(None) => break Ok(Some(false)),
            Err(reason) => break Err(reason),
        }
    };
    ticker.finish(result)
}

/// Like [`solve`], but exhaustion is a *pause*: a
/// [`ResumableOutcome::Suspended`] carries a [`Checkpoint`] which, passed
/// back as `from`, continues exactly where the run stopped.
#[must_use = "a resumable run's outcome carries the checkpoint needed to continue"]
pub fn solve_resumable(
    inst: &CspInstance,
    config: BacktrackConfig,
    budget: &Budget,
    from: Option<&Checkpoint>,
) -> Result<(ResumableOutcome<Assignment>, RunStats), CheckpointError> {
    if inst.domain_size == 0 && inst.num_vars > 0 {
        return Ok((ResumableOutcome::Unsat, RunStats::default()));
    }
    let ctx = Ctx::new(inst, config);
    let digest = instance_digest(inst, config);
    let mut m = match from {
        Some(ck) => Machine::decode(&ctx, digest, Mode::Solve, ck)?.0,
        None => Machine::fresh(inst),
    };
    let mut ticker = Ticker::new(budget);
    let outcome = match m.run(&ctx, &mut ticker) {
        Ok(Some(solution)) => ResumableOutcome::Sat(solution),
        Ok(None) => ResumableOutcome::Unsat,
        Err(reason) => ResumableOutcome::Suspended {
            reason,
            checkpoint: Checkpoint::new(
                SolverFamily::CspBacktracking,
                CHECKPOINT_PAYLOAD_VERSION,
                m.encode(digest, Mode::Solve, 0),
            ),
        },
    };
    Ok((outcome, ticker.stats()))
}

/// Like [`count`], but exhaustion is a *pause*: the running solution count
/// is part of the checkpoint, so chained resumes sum to the one-shot count.
#[must_use = "a resumable run's outcome carries the checkpoint needed to continue"]
pub fn count_resumable(
    inst: &CspInstance,
    config: BacktrackConfig,
    budget: &Budget,
    from: Option<&Checkpoint>,
) -> Result<(ResumableOutcome<u64>, RunStats), CheckpointError> {
    if inst.domain_size == 0 && inst.num_vars > 0 {
        return Ok((ResumableOutcome::Sat(0), RunStats::default()));
    }
    let ctx = Ctx::new(inst, config);
    let digest = instance_digest(inst, config);
    let (mut m, mut n) = match from {
        Some(ck) => Machine::decode(&ctx, digest, Mode::Count, ck)?,
        None => (Machine::fresh(inst), 0),
    };
    let mut ticker = Ticker::new(budget);
    let outcome = loop {
        match m.run(&ctx, &mut ticker) {
            Ok(Some(_)) => n += 1,
            Ok(None) => break ResumableOutcome::Sat(n),
            Err(reason) => {
                break ResumableOutcome::Suspended {
                    reason,
                    checkpoint: Checkpoint::new(
                        SolverFamily::CspBacktracking,
                        CHECKPOINT_PAYLOAD_VERSION,
                        m.encode(digest, Mode::Count, n),
                    ),
                }
            }
        }
    };
    Ok((outcome, ticker.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::instance::{Constraint, Relation};
    use crate::solver::bruteforce;
    use std::sync::Arc;

    fn all_configs() -> Vec<BacktrackConfig> {
        let mut out = Vec::new();
        for mrv in [false, true] {
            for fc in [false, true] {
                out.push(BacktrackConfig {
                    mrv,
                    forward_checking: fc,
                });
            }
        }
        out
    }

    #[test]
    fn coloring_triangle() {
        let mut inst = CspInstance::new(3, 3);
        let neq = Arc::new(Relation::disequality(3));
        inst.add_constraint(Constraint::new(vec![0, 1], neq.clone()));
        inst.add_constraint(Constraint::new(vec![1, 2], neq.clone()));
        inst.add_constraint(Constraint::new(vec![0, 2], neq));
        for cfg in all_configs() {
            let (sol, _) = solve(&inst, cfg, &Budget::unlimited());
            assert!(inst.eval(&sol.unwrap_sat()));
            let (cnt, _) = count(&inst, cfg, &Budget::unlimited());
            assert_eq!(cnt.unwrap_sat(), 6); // 3! proper 3-colorings of K3
        }
    }

    #[test]
    fn agrees_with_bruteforce_on_random_instances() {
        for seed in 0..15u64 {
            let g = lb_graph::generators::gnp(6, 0.5, seed);
            let inst = generators::random_binary_csp(&g, 3, 0.4, seed);
            let expect = bruteforce::count(&inst, &Budget::unlimited())
                .0
                .unwrap_sat();
            for cfg in all_configs() {
                let (cnt, _) = count(&inst, cfg, &Budget::unlimited());
                assert_eq!(cnt.unwrap_sat(), expect, "seed {seed}, cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn ternary_constraints() {
        // x + y + z ≡ 0 (mod 2) over D = {0,1}: 4 solutions.
        let mut inst = CspInstance::new(3, 2);
        inst.add_constraint(Constraint::new(
            vec![0, 1, 2],
            Arc::new(Relation::from_fn(3, 2, |t| (t[0] + t[1] + t[2]) % 2 == 0)),
        ));
        for cfg in all_configs() {
            assert_eq!(count(&inst, cfg, &Budget::unlimited()).0.unwrap_sat(), 4);
        }
    }

    #[test]
    fn forward_checking_prunes() {
        // A chain of equalities pinned at one end: FC collapses domains.
        let d = 5;
        let mut inst = CspInstance::new(6, d);
        let eq = Arc::new(Relation::equality(d));
        for i in 0..5 {
            inst.add_constraint(Constraint::new(vec![i, i + 1], eq.clone()));
        }
        inst.add_constraint(Constraint::new(
            vec![0],
            Arc::new(Relation::new(1, vec![vec![3]])),
        ));
        let (sol, stats_fc) = solve(
            &inst,
            BacktrackConfig {
                mrv: true,
                forward_checking: true,
            },
            &Budget::unlimited(),
        );
        assert_eq!(sol.unwrap_sat(), vec![3; 6]);
        assert!(stats_fc.backtracks > 0);
    }

    #[test]
    fn empty_relation_unsat() {
        let mut inst = CspInstance::new(2, 3);
        inst.add_constraint(Constraint::new(vec![0, 1], Arc::new(Relation::empty(2))));
        for cfg in all_configs() {
            assert!(solve(&inst, cfg, &Budget::unlimited()).0.is_unsat());
        }
    }

    #[test]
    fn repeated_variable_in_scope() {
        // (x, x) ∈ disequality is unsatisfiable.
        let mut inst = CspInstance::new(1, 4);
        inst.add_constraint(Constraint::new(
            vec![0, 0],
            Arc::new(Relation::disequality(4)),
        ));
        for cfg in all_configs() {
            assert!(
                solve(&inst, cfg, &Budget::unlimited()).0.is_unsat(),
                "cfg {cfg:?}"
            );
        }
    }

    #[test]
    fn zero_domain() {
        let inst = CspInstance::new(2, 0);
        for cfg in all_configs() {
            assert!(solve(&inst, cfg, &Budget::unlimited()).0.is_unsat());
            assert_eq!(count(&inst, cfg, &Budget::unlimited()).0.unwrap_sat(), 0);
            let (out, _) = count_resumable(&inst, cfg, &Budget::unlimited(), None).unwrap();
            assert_eq!(out, ResumableOutcome::Sat(0));
        }
    }

    #[test]
    fn enumerate_early_stop() {
        let inst = CspInstance::new(2, 3);
        let mut seen = 0;
        let (out, _) = enumerate_until(
            &inst,
            BacktrackConfig::default(),
            &Budget::unlimited(),
            |_| {
                seen += 1;
                seen == 4
            },
        );
        assert_eq!(seen, 4);
        assert!(out.unwrap_sat());
    }

    #[test]
    fn tiny_budget_exhausts_and_counters_are_monotone() {
        let g = lb_graph::generators::gnp(7, 0.5, 5);
        let inst = generators::random_binary_csp(&g, 3, 0.4, 5);
        let (out, small) = count(&inst, BacktrackConfig::default(), &Budget::ticks(3));
        assert!(out.is_exhausted());
        let (full, big) = count(&inst, BacktrackConfig::default(), &Budget::unlimited());
        assert!(full.is_sat());
        assert!(small.le(&big));
    }

    #[test]
    fn sliced_resume_matches_one_shot_count() {
        for seed in 0..6u64 {
            let g = lb_graph::generators::gnp(6, 0.5, seed);
            let inst = generators::random_binary_csp(&g, 3, 0.4, seed);
            for cfg in all_configs() {
                let (one_shot, full) = count(&inst, cfg, &Budget::unlimited());
                let mut from: Option<Checkpoint> = None;
                let mut summed = RunStats::default();
                let sliced = loop {
                    let (out, stats) =
                        count_resumable(&inst, cfg, &Budget::ticks(5), from.as_ref())
                            .expect("clean resume");
                    summed.absorb(&stats);
                    match out {
                        ResumableOutcome::Suspended { checkpoint, .. } => {
                            let bytes = checkpoint.to_bytes();
                            from = Some(Checkpoint::from_bytes(&bytes).expect("round trip"));
                        }
                        done => break done.into_outcome(),
                    }
                };
                assert_eq!(sliced, one_shot, "seed {seed}, cfg {cfg:?}");
                assert_eq!(summed, full, "seed {seed}, cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn mode_confusion_is_rejected() {
        let g = lb_graph::generators::gnp(6, 0.5, 2);
        let inst = generators::random_binary_csp(&g, 3, 0.4, 2);
        let cfg = BacktrackConfig::default();
        let (out, _) = count_resumable(&inst, cfg, &Budget::ticks(2), None).unwrap();
        let ck = out.checkpoint().expect("suspended").clone();
        let err = solve_resumable(&inst, cfg, &Budget::unlimited(), Some(&ck)).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }), "{err}");
    }

    #[test]
    fn config_change_is_rejected() {
        let g = lb_graph::generators::gnp(6, 0.5, 3);
        let inst = generators::random_binary_csp(&g, 3, 0.4, 3);
        let (out, _) =
            solve_resumable(&inst, BacktrackConfig::default(), &Budget::ticks(2), None).unwrap();
        let ck = out.checkpoint().expect("suspended").clone();
        let other = BacktrackConfig {
            mrv: false,
            forward_checking: false,
        };
        let err = solve_resumable(&inst, other, &Budget::unlimited(), Some(&ck)).unwrap_err();
        assert!(matches!(err, CheckpointError::InstanceMismatch { .. }));
    }
}
