//! Freuder's algorithm (paper Theorem 4.2): dynamic programming over a tree
//! decomposition of the primal graph.
//!
//! Given a width-k nice decomposition, the tables have at most |D|^{k+1}
//! entries per node and the whole run costs O(|V| · |D|^{k+1}) up to
//! logarithmic factors — the bound whose exponent Theorems 6.5–6.7 (ETH)
//! and 7.2 (SETH) prove essentially optimal.
//!
//! Correctness requires every constraint scope to be contained in some bag;
//! scopes are cliques of the primal graph, so any valid tree decomposition
//! of the primal graph guarantees this. Constraints are checked at
//! *introduce* nodes whose bag contains the whole scope (each constraint is
//! checked whenever possible; re-checking is harmless and keeps the
//! bookkeeping simple).

use crate::instance::{Assignment, CspInstance, Value};
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};
use lb_graph::treewidth::{NiceDecomposition, NiceNode};
use lb_graph::TreeDecomposition;
use std::collections::HashMap;

/// A DP table: bag assignment (values in sorted-bag order) → solution count
/// (saturating at `u64::MAX`).
type Table = HashMap<Vec<Value>, u64>;

/// Result of a treewidth DP run.
#[derive(Clone, Debug)]
pub struct TreewidthDpResult {
    /// Number of solutions (saturating).
    pub count: u64,
    /// One solution, if any exist.
    pub solution: Option<Assignment>,
}

/// Solves `inst` under `budget` using the given tree decomposition of its
/// primal graph: `Sat(result)` on completion (a count of zero is still
/// `Sat`) or `Exhausted`.
///
/// # Panics
/// Panics if the decomposition is invalid for the primal graph.
pub fn solve_with_decomposition(
    inst: &CspInstance,
    td: &TreeDecomposition,
    budget: &Budget,
) -> (Outcome<TreewidthDpResult>, RunStats) {
    let primal = inst.primal_graph();
    td.validate(&primal)
        // lb-lint: allow(no-panic, panic-reachability) -- invariant: the decomposition was built from this instance's primal graph above
        .expect("tree decomposition invalid for the instance's primal graph");
    let nice = td.to_nice(inst.num_vars);
    solve_with_nice(inst, &nice, budget)
}

/// Solves `inst` with a decomposition produced by the min-fill heuristic.
pub fn solve_auto(inst: &CspInstance, budget: &Budget) -> (Outcome<TreewidthDpResult>, RunStats) {
    let primal = inst.primal_graph();
    let order = lb_graph::treewidth::min_fill_order(&primal);
    let td = lb_graph::treewidth::from_elimination_order(&primal, &order);
    solve_with_decomposition(inst, &td, budget)
}

/// Core DP over a nice decomposition. One [`RunStats::nodes`] tick per nice
/// node processed, one [`RunStats::tuples`] tick per DP table entry
/// materialized; the largest table is the [`RunStats::max_intermediate`]
/// high-water mark.
///
/// [`RunStats::nodes`]: lb_engine::RunStats::nodes
/// [`RunStats::tuples`]: lb_engine::RunStats::tuples
/// [`RunStats::max_intermediate`]: lb_engine::RunStats::max_intermediate
pub fn solve_with_nice(
    inst: &CspInstance,
    nice: &NiceDecomposition,
    budget: &Budget,
) -> (Outcome<TreewidthDpResult>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = dp_inner(inst, nice, &mut ticker).map(Some);
    ticker.finish(result)
}

/// The DP proper, with exhaustion propagated as `Err`.
#[allow(clippy::needless_range_loop)] // index used across several arrays
fn dp_inner(
    inst: &CspInstance,
    nice: &NiceDecomposition,
    ticker: &mut Ticker,
) -> Result<TreewidthDpResult, ExhaustReason> {
    debug_assert!(nice.validate().is_ok());
    let d = inst.domain_size as Value;
    let num_nodes = nice.num_nodes();

    // For each node, the constraints to check there: at an introduce node of
    // `var`, all constraints whose scope contains `var` and fits in the bag.
    let check_at: Vec<Vec<usize>> = (0..num_nodes)
        .map(|i| match nice.kinds[i] {
            NiceNode::Introduce { var, .. } => {
                let bag = &nice.bags[i];
                inst.constraints
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| {
                        c.scope.contains(&var)
                            && c.scope.iter().all(|v| bag.binary_search(v).is_ok())
                    })
                    .map(|(ci, _)| ci)
                    .collect()
            }
            _ => Vec::new(),
        })
        .collect();

    // Bottom-up tables. Kept for the top-down solution extraction.
    let mut tables: Vec<Table> = Vec::with_capacity(num_nodes);
    for i in 0..num_nodes {
        ticker.node()?;
        let table = match nice.kinds[i] {
            NiceNode::Leaf => {
                let mut t = Table::new();
                t.insert(Vec::new(), 1);
                t
            }
            NiceNode::Introduce { child, var } => {
                let pos = nice.bags[i]
                    .binary_search(&var)
                    // lb-lint: allow(no-panic, panic-reachability) -- invariant: niceness puts the introduced variable in the node's bag
                    .expect("introduced var in bag");
                let mut t = Table::new();
                // Each (child assignment, value) pair yields a distinct
                // extended key, so plain inserts are exact.
                for (assign, &cnt) in &tables[child] {
                    for val in 0..d {
                        let mut a = assign.clone();
                        a.insert(pos, val);
                        if constraints_ok(inst, &check_at[i], &nice.bags[i], &a) {
                            ticker.tuple()?;
                            t.insert(a, cnt);
                        }
                    }
                }
                t
            }
            NiceNode::Forget { child, var } => {
                let pos = nice.bags[child]
                    .binary_search(&var)
                    // lb-lint: allow(no-panic, panic-reachability) -- invariant: niceness puts the forgotten variable in the child's bag
                    .expect("forgotten var in child bag");
                let mut t = Table::new();
                for (assign, &cnt) in &tables[child] {
                    ticker.tuple()?;
                    let mut a = assign.clone();
                    a.remove(pos);
                    let entry = t.entry(a).or_insert(0);
                    *entry = entry.saturating_add(cnt);
                }
                t
            }
            NiceNode::Join { left, right } => {
                let (small, large) = if tables[left].len() <= tables[right].len() {
                    (left, right)
                } else {
                    (right, left)
                };
                let mut t = Table::new();
                for (assign, &cnt) in &tables[small] {
                    if let Some(&other) = tables[large].get(assign) {
                        ticker.tuple()?;
                        t.insert(assign.clone(), cnt.saturating_mul(other));
                    }
                }
                t
            }
        };
        ticker.record_intermediate(table.len() as u64);
        tables.push(table);
    }

    let count = tables[nice.root].get(&Vec::new()).copied().unwrap_or(0);
    let solution = (count > 0).then(|| extract_solution(inst, nice, &tables));
    Ok(TreewidthDpResult { count, solution })
}

fn constraints_ok(
    inst: &CspInstance,
    constraint_ids: &[usize],
    bag: &[usize],
    bag_assign: &[Value],
) -> bool {
    // lb-lint: allow(unbudgeted-loop) -- checks the constraints of one bag; bounded by bag size
    for &ci in constraint_ids {
        let c = &inst.constraints[ci];
        let tuple: Vec<Value> = c
            .scope
            .iter()
            .map(|v| {
                // lb-lint: allow(no-panic, panic-reachability) -- invariant: constraint scopes are subsets of their assigned node's bag
                let pos = bag.binary_search(v).expect("scope inside bag");
                bag_assign[pos]
            })
            .collect();
        if !c.relation.allows(&tuple) {
            return false;
        }
    }
    true
}

/// Top-down extraction of one solution from the stored tables.
fn extract_solution(inst: &CspInstance, nice: &NiceDecomposition, tables: &[Table]) -> Assignment {
    let mut solution: Vec<Option<Value>> = vec![None; inst.num_vars];
    // Stack of (node, chosen bag assignment).
    let mut stack: Vec<(usize, Vec<Value>)> = vec![(nice.root, Vec::new())];
    // lb-lint: allow(unbudgeted-loop) -- walks the decomposition once to read off a solution; DP work was already charged
    while let Some((node, assign)) = stack.pop() {
        debug_assert!(tables[node].contains_key(&assign));
        match nice.kinds[node] {
            NiceNode::Leaf => {}
            NiceNode::Introduce { child, var } => {
                // lb-lint: allow(no-panic, panic-reachability) -- invariant: niceness puts the introduced variable in the node's bag
                let pos = nice.bags[node].binary_search(&var).expect("var in bag");
                let val = assign[pos];
                match solution[var] {
                    None => solution[var] = Some(val),
                    Some(prev) => debug_assert_eq!(
                        prev, val,
                        "inconsistent value for variable {var} across branches"
                    ),
                }
                let mut child_assign = assign;
                child_assign.remove(pos);
                stack.push((child, child_assign)); // lb-lint: allow(unbounded-growth) -- solution-extraction stack: at most one entry per decomposition node
            }
            NiceNode::Forget { child, var } => {
                let pos = nice.bags[child]
                    .binary_search(&var)
                    // lb-lint: allow(no-panic, panic-reachability) -- invariant: niceness puts the forgotten variable in the child's bag
                    .expect("var in child bag");
                // Find any child value with a positive count.
                let d = inst.domain_size as Value;
                let mut found = None;
                // lb-lint: allow(unbudgeted-loop) -- walks the decomposition once to read off a solution; DP work was already charged
                for val in 0..d {
                    let mut a = assign.clone();
                    a.insert(pos, val);
                    if tables[child].get(&a).copied().unwrap_or(0) > 0 {
                        found = Some(a);
                        break;
                    }
                }
                // lb-lint: allow(unbounded-growth) -- solution-extraction stack: at most one entry per decomposition node
                stack.push((
                    child,
                    // lb-lint: allow(no-panic, panic-reachability) -- invariant: a positive forget sum implies some child entry is positive
                    found.expect("forget sum positive ⇒ some child entry positive"),
                ));
            }
            NiceNode::Join { left, right } => {
                stack.push((left, assign.clone())); // lb-lint: allow(unbounded-growth) -- solution-extraction stack: at most one entry per decomposition node
                stack.push((right, assign)); // lb-lint: allow(unbounded-growth) -- solution-extraction stack: at most one entry per decomposition node
            }
        }
    }
    let out: Assignment = solution
        .into_iter()
        // lb-lint: allow(no-panic, panic-reachability) -- invariant: a tree decomposition covers every variable in some bag
        .map(|v| v.expect("every variable appears in some bag"))
        .collect();
    debug_assert!(
        inst.eval(&out),
        "extracted assignment must satisfy the instance"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::instance::{Constraint, Relation};
    use crate::solver::bruteforce;
    use std::sync::Arc;

    fn solve_auto_unlimited(inst: &CspInstance) -> TreewidthDpResult {
        solve_auto(inst, &Budget::unlimited()).0.unwrap_sat()
    }

    fn brute_count(inst: &CspInstance) -> u64 {
        bruteforce::count(inst, &Budget::unlimited()).0.unwrap_sat()
    }

    #[test]
    fn path_coloring_count() {
        // Proper 3-colorings of a path on 5 vertices: 3·2^4 = 48.
        let mut inst = CspInstance::new(5, 3);
        let neq = Arc::new(Relation::disequality(3));
        for i in 0..4 {
            inst.add_constraint(Constraint::new(vec![i, i + 1], neq.clone()));
        }
        let r = solve_auto_unlimited(&inst);
        assert_eq!(r.count, 48);
        assert!(inst.eval(&r.solution.unwrap()));
    }

    #[test]
    fn triangle_with_two_colors_unsat() {
        let mut inst = CspInstance::new(3, 2);
        let neq = Arc::new(Relation::disequality(2));
        inst.add_constraint(Constraint::new(vec![0, 1], neq.clone()));
        inst.add_constraint(Constraint::new(vec![1, 2], neq.clone()));
        inst.add_constraint(Constraint::new(vec![0, 2], neq));
        let r = solve_auto_unlimited(&inst);
        assert_eq!(r.count, 0);
        assert!(r.solution.is_none());
    }

    #[test]
    fn agrees_with_bruteforce_on_random_ktree_csps() {
        for seed in 0..10u64 {
            let g = lb_graph::generators::k_tree(2, 8, seed);
            let inst = generators::random_binary_csp(&g, 3, 0.35, seed);
            let expect = brute_count(&inst);
            let got = solve_auto_unlimited(&inst);
            assert_eq!(got.count, expect, "seed {seed}");
            if expect > 0 {
                assert!(inst.eval(&got.solution.unwrap()), "seed {seed}");
            }
        }
    }

    #[test]
    fn agrees_on_sparse_random_graphs() {
        for seed in 0..10u64 {
            let g = lb_graph::generators::gnp(7, 0.4, seed);
            let inst = generators::random_binary_csp(&g, 2, 0.5, seed + 100);
            assert_eq!(
                solve_auto_unlimited(&inst).count,
                brute_count(&inst),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn ternary_constraints_inside_bags() {
        // Parity constraint chain: x_i ⊕ x_{i+1} ⊕ x_{i+2} = 1.
        let mut inst = CspInstance::new(6, 2);
        let odd = Arc::new(Relation::from_fn(3, 2, |t| (t[0] + t[1] + t[2]) % 2 == 1));
        for i in 0..4 {
            inst.add_constraint(Constraint::new(vec![i, i + 1, i + 2], odd.clone()));
        }
        assert_eq!(solve_auto_unlimited(&inst).count, brute_count(&inst));
    }

    #[test]
    fn unconstrained_variables_counted() {
        // 3 variables, one binary constraint, D = 2: the free variable
        // multiplies the count by 2.
        let mut inst = CspInstance::new(3, 2);
        inst.add_constraint(Constraint::new(vec![0, 1], Arc::new(Relation::equality(2))));
        let r = solve_auto_unlimited(&inst);
        assert_eq!(r.count, 2 * 2);
    }

    #[test]
    fn explicit_decomposition() {
        let mut inst = CspInstance::new(4, 2);
        let neq = Arc::new(Relation::disequality(2));
        for i in 0..3 {
            inst.add_constraint(Constraint::new(vec![i, i + 1], neq.clone()));
        }
        let td = TreeDecomposition::new(
            vec![vec![0, 1], vec![1, 2], vec![2, 3]],
            vec![(0, 1), (1, 2)],
        );
        let (out, stats) = solve_with_decomposition(&inst, &td, &Budget::unlimited());
        let r = out.unwrap_sat();
        assert_eq!(r.count, 2); // 0101 and 1010
        assert!(stats.nodes > 0 && stats.tuples > 0);
        assert!(stats.max_intermediate >= 2);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn bad_decomposition_rejected() {
        let mut inst = CspInstance::new(3, 2);
        inst.add_constraint(Constraint::new(vec![0, 2], Arc::new(Relation::equality(2))));
        // Decomposition missing the {0,2} edge.
        let td = TreeDecomposition::new(vec![vec![0, 1], vec![1, 2]], vec![(0, 1)]);
        let _ = solve_with_decomposition(&inst, &td, &Budget::unlimited());
    }

    #[test]
    fn zero_domain_instance() {
        let mut inst = CspInstance::new(2, 0);
        inst.constraints.clear();
        let r = solve_auto_unlimited(&inst);
        assert_eq!(r.count, 0);
    }

    #[test]
    fn tiny_budget_exhausts_dp() {
        let g = lb_graph::generators::k_tree(2, 8, 3);
        let inst = generators::random_binary_csp(&g, 3, 0.35, 3);
        let (out, small) = solve_auto(&inst, &Budget::ticks(2));
        assert!(out.is_exhausted());
        let (full, big) = solve_auto(&inst, &Budget::unlimited());
        assert!(full.is_sat());
        assert!(small.le(&big));
    }
}
