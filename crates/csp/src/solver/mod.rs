//! CSP solvers: brute force, backtracking, treewidth DP, special.
//!
//! Every solver exposes the same three operations — decide/find one
//! (`solve`-style free functions), count, and enumerate — and they
//! are cross-checked against each other in tests. Their *scaling* differs,
//! which is exactly what the paper's lower bounds are about.

pub mod backtracking;
pub mod bruteforce;
pub mod special;
pub mod treewidth_dp;

pub use backtracking::BacktrackConfig;

use crate::instance::{Assignment, CspInstance};
use lb_engine::{Budget, Outcome, RunStats};

/// Convenience dispatch: solve with backtracking under default settings.
pub fn solve(inst: &CspInstance, budget: &Budget) -> (Outcome<Assignment>, RunStats) {
    backtracking::solve(inst, BacktrackConfig::default(), budget)
}

/// Convenience dispatch: count solutions with backtracking.
pub fn count(inst: &CspInstance, budget: &Budget) -> (Outcome<u64>, RunStats) {
    backtracking::count(inst, BacktrackConfig::default(), budget)
}
