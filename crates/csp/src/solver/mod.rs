//! CSP solvers: brute force, backtracking, treewidth DP, special.
//!
//! Every solver exposes the same three operations — decide/find one
//! (`solve`-style free functions), count, and enumerate — and they
//! are cross-checked against each other in tests. Their *scaling* differs,
//! which is exactly what the paper's lower bounds are about.

pub mod backtracking;
pub mod bruteforce;
pub mod special;
pub mod treewidth_dp;

pub use backtracking::{BacktrackConfig, BacktrackStats};

use crate::instance::{Assignment, CspInstance};

/// Convenience dispatch: solve with backtracking under default settings.
pub fn solve(inst: &CspInstance) -> Option<Assignment> {
    backtracking::solve(inst, BacktrackConfig::default()).0
}

/// Convenience dispatch: count solutions with backtracking.
pub fn count(inst: &CspInstance) -> u64 {
    backtracking::count(inst, BacktrackConfig::default()).0
}
