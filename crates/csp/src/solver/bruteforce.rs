//! Brute-force CSP solving: all |D|^|V| assignments.
//!
//! The baseline of Theorem 6.4: assuming the ETH, no algorithm solves binary
//! CSP in f(|V|) · |D|^{o(|V|)} time, i.e. the exponent of this loop is
//! essentially optimal in general. Used as the testing oracle for every
//! other solver.

use crate::instance::{Assignment, CspInstance, Value};

/// Guard against astronomically large enumerations in tests.
fn check_feasible(inst: &CspInstance) {
    let total = (inst.domain_size as f64).powi(inst.num_vars as i32);
    assert!(
        total <= 1e9,
        "brute force would enumerate {total:.2e} assignments; use another solver"
    );
}

/// Finds one solution by exhaustive enumeration.
pub fn solve(inst: &CspInstance) -> Option<Assignment> {
    check_feasible(inst);
    let mut found = None;
    enumerate_until(inst, |a| {
        found = Some(a.to_vec());
        true
    });
    found
}

/// Counts all solutions.
pub fn count(inst: &CspInstance) -> u64 {
    check_feasible(inst);
    let mut n = 0u64;
    enumerate_until(inst, |_| {
        n += 1;
        false
    });
    n
}

/// Enumerates all solutions into a vector (sorted lexicographically by
/// construction).
pub fn enumerate(inst: &CspInstance) -> Vec<Assignment> {
    check_feasible(inst);
    let mut out = Vec::new();
    enumerate_until(inst, |a| {
        out.push(a.to_vec());
        false
    });
    out
}

/// Core enumeration: calls `visit` on each solution in lexicographic order;
/// stops early if `visit` returns `true`.
pub fn enumerate_until<F: FnMut(&[Value]) -> bool>(inst: &CspInstance, mut visit: F) {
    let n = inst.num_vars;
    let d = inst.domain_size as Value;
    if d == 0 && n > 0 {
        return; // empty domain, no assignments
    }
    let mut a: Assignment = vec![0; n];
    loop {
        if inst.eval(&a) && visit(&a) {
            return;
        }
        // Odometer increment (most significant digit first for lex order).
        let mut i = n;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            a[i] += 1;
            if a[i] < d {
                break;
            }
            a[i] = 0;
            if i == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Constraint, Relation};
    use std::sync::Arc;

    fn neq_chain(n: usize, d: usize) -> CspInstance {
        let mut inst = CspInstance::new(n, d);
        let neq = Arc::new(Relation::disequality(d));
        for i in 0..n - 1 {
            inst.add_constraint(Constraint::new(vec![i, i + 1], neq.clone()));
        }
        inst
    }

    #[test]
    fn counts_proper_colorings_of_path() {
        // Path with k colors: k·(k−1)^(n−1) proper colorings.
        let inst = neq_chain(4, 3);
        assert_eq!(count(&inst), 3 * 2 * 2 * 2);
    }

    #[test]
    fn unsat_when_domain_too_small() {
        // Triangle of disequalities with 2 colors.
        let mut inst = CspInstance::new(3, 2);
        let neq = Arc::new(Relation::disequality(2));
        inst.add_constraint(Constraint::new(vec![0, 1], neq.clone()));
        inst.add_constraint(Constraint::new(vec![1, 2], neq.clone()));
        inst.add_constraint(Constraint::new(vec![0, 2], neq));
        assert!(solve(&inst).is_none());
        assert_eq!(count(&inst), 0);
    }

    #[test]
    fn enumerate_is_sorted_and_complete() {
        let inst = neq_chain(3, 2);
        let sols = enumerate(&inst);
        assert_eq!(sols.len(), 2); // 010 and 101
        assert!(sols.windows(2).all(|w| w[0] < w[1]));
        for s in &sols {
            assert!(inst.eval(s));
        }
    }

    #[test]
    fn no_constraints_counts_all() {
        let inst = CspInstance::new(3, 4);
        assert_eq!(count(&inst), 64);
    }

    #[test]
    fn zero_vars_one_empty_solution() {
        let inst = CspInstance::new(0, 5);
        assert_eq!(count(&inst), 1);
        assert_eq!(solve(&inst), Some(vec![]));
    }

    #[test]
    fn early_exit_on_first() {
        let inst = CspInstance::new(2, 10);
        let mut seen = 0;
        enumerate_until(&inst, |_| {
            seen += 1;
            true
        });
        assert_eq!(seen, 1);
    }
}
