//! Brute-force CSP solving: all |D|^|V| assignments.
//!
//! The baseline of Theorem 6.4: assuming the ETH, no algorithm solves binary
//! CSP in f(|V|) · |D|^{o(|V|)} time, i.e. the exponent of this loop is
//! essentially optimal in general. Used as the testing oracle for every
//! other solver.
//!
//! Engine mapping: each assignment evaluated is one [`RunStats::nodes`]
//! tick.
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes

use crate::instance::{Assignment, CspInstance, Value};
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// Guard against astronomically large enumerations in tests.
fn check_feasible(inst: &CspInstance) {
    let total = (inst.domain_size as f64).powi(inst.num_vars as i32);
    assert!(
        total <= 1e9,
        "brute force would enumerate {total:.2e} assignments; use another solver"
    );
}

/// Finds one solution by exhaustive enumeration.
pub fn solve(inst: &CspInstance, budget: &Budget) -> (Outcome<Assignment>, RunStats) {
    check_feasible(inst);
    let mut found = None;
    let (out, stats) = enumerate_until(inst, budget, |a| {
        found = Some(a.to_vec());
        true
    });
    let out = match (out, found) {
        (Outcome::Exhausted(r), _) => Outcome::Exhausted(r),
        (_, Some(a)) => Outcome::Sat(a),
        (_, None) => Outcome::Unsat,
    };
    (out, stats)
}

/// Counts all solutions: `Sat(count)` or `Exhausted`.
pub fn count(inst: &CspInstance, budget: &Budget) -> (Outcome<u64>, RunStats) {
    check_feasible(inst);
    let mut n = 0u64;
    let (out, stats) = enumerate_until(inst, budget, |_| {
        n += 1;
        false
    });
    (out.map(|_| n), stats)
}

/// Enumerates all solutions into a vector (sorted lexicographically by
/// construction): `Sat(solutions)` or `Exhausted`.
pub fn enumerate(inst: &CspInstance, budget: &Budget) -> (Outcome<Vec<Assignment>>, RunStats) {
    check_feasible(inst);
    let mut out_vec = Vec::new();
    let (out, stats) = enumerate_until(inst, budget, |a| {
        out_vec.push(a.to_vec());
        false
    });
    (out.map(|_| out_vec), stats)
}

/// Core enumeration: calls `visit` on each solution in lexicographic order;
/// stops early if `visit` returns `true`. `Sat(true)` means the visitor
/// stopped the scan, `Sat(false)` that it ran to the end.
pub fn enumerate_until<F: FnMut(&[Value]) -> bool>(
    inst: &CspInstance,
    budget: &Budget,
    mut visit: F,
) -> (Outcome<bool>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = enumerate_inner(inst, &mut ticker, &mut visit).map(Some);
    ticker.finish(result)
}

fn enumerate_inner<F: FnMut(&[Value]) -> bool>(
    inst: &CspInstance,
    ticker: &mut Ticker,
    visit: &mut F,
) -> Result<bool, ExhaustReason> {
    let n = inst.num_vars;
    let d = inst.domain_size as Value;
    if d == 0 && n > 0 {
        return Ok(false); // empty domain, no assignments
    }
    let mut a: Assignment = vec![0; n];
    loop {
        ticker.node()?;
        if inst.eval(&a) && visit(&a) {
            return Ok(true);
        }
        // Odometer increment (most significant digit first for lex order).
        let mut i = n;
        // lb-lint: allow(unbudgeted-loop) -- odometer increment, bounded by num_vars per charged assignment
        loop {
            if i == 0 {
                return Ok(false);
            }
            i -= 1;
            a[i] += 1;
            if a[i] < d {
                break;
            }
            a[i] = 0;
            if i == 0 {
                return Ok(false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Constraint, Relation};
    use std::sync::Arc;

    fn neq_chain(n: usize, d: usize) -> CspInstance {
        let mut inst = CspInstance::new(n, d);
        let neq = Arc::new(Relation::disequality(d));
        for i in 0..n - 1 {
            inst.add_constraint(Constraint::new(vec![i, i + 1], neq.clone()));
        }
        inst
    }

    fn count_unlimited(inst: &CspInstance) -> u64 {
        count(inst, &Budget::unlimited()).0.unwrap_sat()
    }

    #[test]
    fn counts_proper_colorings_of_path() {
        // Path with k colors: k·(k−1)^(n−1) proper colorings.
        let inst = neq_chain(4, 3);
        assert_eq!(count_unlimited(&inst), 3 * 2 * 2 * 2);
    }

    #[test]
    fn unsat_when_domain_too_small() {
        // Triangle of disequalities with 2 colors.
        let mut inst = CspInstance::new(3, 2);
        let neq = Arc::new(Relation::disequality(2));
        inst.add_constraint(Constraint::new(vec![0, 1], neq.clone()));
        inst.add_constraint(Constraint::new(vec![1, 2], neq.clone()));
        inst.add_constraint(Constraint::new(vec![0, 2], neq));
        assert!(solve(&inst, &Budget::unlimited()).0.is_unsat());
        assert_eq!(count_unlimited(&inst), 0);
    }

    #[test]
    fn enumerate_is_sorted_and_complete() {
        let inst = neq_chain(3, 2);
        let sols = enumerate(&inst, &Budget::unlimited()).0.unwrap_sat();
        assert_eq!(sols.len(), 2); // 010 and 101
        assert!(sols.windows(2).all(|w| w[0] < w[1]));
        for s in &sols {
            assert!(inst.eval(s));
        }
    }

    #[test]
    fn no_constraints_counts_all() {
        let inst = CspInstance::new(3, 4);
        assert_eq!(count_unlimited(&inst), 64);
    }

    #[test]
    fn zero_vars_one_empty_solution() {
        let inst = CspInstance::new(0, 5);
        assert_eq!(count_unlimited(&inst), 1);
        assert_eq!(solve(&inst, &Budget::unlimited()).0.sat(), Some(vec![]));
    }

    #[test]
    fn early_exit_on_first() {
        let inst = CspInstance::new(2, 10);
        let mut seen = 0;
        let (out, _) = enumerate_until(&inst, &Budget::unlimited(), |_| {
            seen += 1;
            true
        });
        assert_eq!(seen, 1);
        assert!(out.unwrap_sat());
    }

    #[test]
    fn budget_exhausts_enumeration() {
        let inst = CspInstance::new(3, 4);
        let (out, stats) = count(&inst, &Budget::ticks(10));
        assert!(out.is_exhausted());
        assert_eq!(stats.nodes, 11); // the crossing op is still recorded
    }
}
