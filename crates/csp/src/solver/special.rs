//! Quasipolynomial solver for "special" CSP instances (Definition 4.3).
//!
//! A special instance has a primal graph that is a k-clique plus a disjoint
//! path on 2^k vertices. The path forces the input size n ≥ 2^k, hence
//! k ≤ log₂ n, so brute-forcing the clique part costs |D|^k ≤ |D|^{log n} =
//! n^{O(log n)} while the path part is solved by a linear dynamic program.
//! The paper argues this n^{O(log n)} running time is essentially optimal
//! under the ETH (§6), making SPECIAL CSP a natural NP-intermediate
//! candidate — experiment E5 measures this solver's quasipolynomial curve.

use crate::instance::{Assignment, Constraint, CspInstance, Value};
use crate::solver::bruteforce;
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};
use lb_graph::special::{recognize_special, SpecialGraph};

/// Result of a special-CSP solve.
#[derive(Clone, Debug)]
pub struct SpecialResult {
    /// Number of solutions (saturating).
    pub count: u64,
    /// One solution, if any.
    pub solution: Option<Assignment>,
}

/// Error: the instance's primal graph is not special.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NotSpecial;

impl std::fmt::Display for NotSpecial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "primal graph is not special (Definition 4.3)")
    }
}

impl std::error::Error for NotSpecial {}

/// Solves a special CSP instance in n^{O(log n)} time under `budget`:
/// `Sat(result)` on completion (a count of zero is still `Sat`) or
/// `Exhausted`. The clique part delegates to the budgeted brute force and
/// folds its counters in; the path DP ticks one [`RunStats::tuples`] per DP
/// cell.
///
/// Returns `Err(NotSpecial)` if the primal graph is not a k-clique plus a
/// 2^k-vertex path.
///
/// [`RunStats::tuples`]: lb_engine::RunStats::tuples
#[must_use = "the result carries both the solution and the reason the instance is not special"]
pub fn solve_special(
    inst: &CspInstance,
    budget: &Budget,
) -> Result<(Outcome<SpecialResult>, RunStats), NotSpecial> {
    let primal = inst.primal_graph();
    let SpecialGraph { clique, path, .. } = recognize_special(&primal).ok_or(NotSpecial)?;
    let mut ticker = Ticker::new(budget);

    // Constraint scopes are cliques of the primal graph, so each constraint
    // lives entirely inside one component.
    let clique_sub = induced_subinstance(inst, &clique);
    let path_sub = induced_subinstance(inst, &path);

    // Clique part: brute force over |D|^k assignments (k ≤ log₂ n).
    let (clique_count_out, sub_stats) =
        bruteforce::count(&clique_sub.instance, &ticker.remaining_budget());
    ticker.absorb(&sub_stats);
    let clique_count = match clique_count_out {
        Outcome::Sat(c) => c,
        Outcome::Unsat => 0,
        Outcome::Exhausted(reason) => return Ok(ticker.finish(Err(reason))),
    };
    let (clique_solution_out, sub_stats) =
        bruteforce::solve(&clique_sub.instance, &ticker.remaining_budget());
    ticker.absorb(&sub_stats);
    let clique_solution = match clique_solution_out {
        Outcome::Sat(s) => Some(s),
        Outcome::Unsat => None,
        Outcome::Exhausted(reason) => return Ok(ticker.finish(Err(reason))),
    };

    // Path part: linear DP.
    let (path_count, path_solution) = match path_dp(&path_sub.instance, &mut ticker) {
        Ok(r) => r,
        Err(reason) => return Ok(ticker.finish(Err(reason))),
    };

    let count = clique_count.saturating_mul(path_count);
    let solution = match (clique_solution, path_solution) {
        (Some(cs), Some(ps)) => {
            let mut full: Assignment = vec![0; inst.num_vars];
            // lb-lint: allow(unbudgeted-loop) -- copies one solution through the variable map; linear in vars
            for (local, &global) in clique_sub.vars.iter().enumerate() {
                full[global] = cs[local];
            }
            // lb-lint: allow(unbudgeted-loop) -- copies one solution through the variable map; linear in vars
            for (local, &global) in path_sub.vars.iter().enumerate() {
                full[global] = ps[local];
            }
            debug_assert!(inst.eval(&full));
            Some(full)
        }
        _ => None,
    };
    Ok(ticker.finish(Ok(Some(SpecialResult { count, solution }))))
}

struct SubInstance {
    instance: CspInstance,
    /// `vars[local]` = global variable id. Local order follows `vars`.
    vars: Vec<usize>,
}

/// The sub-instance induced on `vars` (local ids follow the order of
/// `vars`), taking every constraint whose scope lies inside `vars`.
fn induced_subinstance(inst: &CspInstance, vars: &[usize]) -> SubInstance {
    let mut local_of = vec![usize::MAX; inst.num_vars];
    // lb-lint: allow(unbudgeted-loop) -- builds the induced subinstance; linear in instance size
    for (l, &g) in vars.iter().enumerate() {
        local_of[g] = l;
    }
    let mut sub = CspInstance::new(vars.len(), inst.domain_size);
    // lb-lint: allow(unbudgeted-loop) -- builds the induced subinstance; linear in instance size
    for c in &inst.constraints {
        if c.scope.iter().all(|&v| local_of[v] != usize::MAX) {
            let scope: Vec<usize> = c.scope.iter().map(|&v| local_of[v]).collect();
            sub.add_constraint(Constraint::new(scope, c.relation.clone()));
        }
    }
    SubInstance {
        instance: sub,
        vars: vars.to_vec(),
    }
}

/// Counting DP along a path instance whose variables are `0..len` in path
/// order: constraints are unary or between consecutive variables.
/// Returns (count, one solution).
#[allow(clippy::needless_range_loop)] // index used across several arrays
fn path_dp(
    inst: &CspInstance,
    ticker: &mut Ticker,
) -> Result<(u64, Option<Assignment>), ExhaustReason> {
    let len = inst.num_vars;
    let d = inst.domain_size;
    if len == 0 {
        return Ok((1, Some(vec![])));
    }
    if d == 0 {
        return Ok((0, None));
    }
    // Collect, per position, the unary predicates; per consecutive pair, the
    // binary predicates (normalized to (i, i+1) direction).
    let allowed_unary = |i: usize, v: Value| -> bool {
        inst.constraints.iter().all(|c| {
            if c.scope.iter().all(|&s| s == i) {
                let t: Vec<Value> = c.scope.iter().map(|_| v).collect();
                c.relation.allows(&t)
            } else {
                true
            }
        })
    };
    let allowed_pair = |i: usize, a: Value, b: Value| -> bool {
        // Constraints whose scope is exactly {i, i+1} (any order/repeats of
        // both vars).
        inst.constraints.iter().all(|c| {
            let uses_both = c.scope.contains(&i) && c.scope.contains(&(i + 1));
            if !uses_both {
                return true;
            }
            let t: Vec<Value> = c
                .scope
                .iter()
                .map(|&s| if s == i { a } else { b })
                .collect();
            c.relation.allows(&t)
        })
    };

    let mut f = vec![0u64; d];
    // lb-lint: allow(unbudgeted-loop) -- path DP is a fixed O(len*d^2) pass, bounded by instance size
    for (v, slot) in f.iter_mut().enumerate() {
        *slot = allowed_unary(0, v as Value) as u64;
    }
    // Parent pointers for solution extraction: choice[i][v] = some value of
    // position i−1 compatible with v at i.
    let mut choice: Vec<Vec<Option<Value>>> = Vec::with_capacity(len);
    choice.push(vec![None; d]);
    for i in 1..len {
        let mut g = vec![0u64; d];
        let mut ch = vec![None; d];
        for b in 0..d {
            ticker.tuple()?;
            if !allowed_unary(i, b as Value) {
                continue;
            }
            // lb-lint: allow(unbudgeted-loop) -- path DP is a fixed O(len*d^2) pass, bounded by instance size
            for a in 0..d {
                if f[a] > 0 && allowed_pair(i - 1, a as Value, b as Value) {
                    g[b] = g[b].saturating_add(f[a]);
                    if ch[b].is_none() {
                        ch[b] = Some(a as Value);
                    }
                }
            }
        }
        f = g;
        choice.push(ch); // lb-lint: allow(unbounded-growth) -- parent-pointer table of the path DP: exactly len rows, bounded by instance size
    }
    let count: u64 = f.iter().fold(0u64, |acc, &x| acc.saturating_add(x));
    if count == 0 {
        return Ok((0, None));
    }
    // Trace one solution backwards.
    let mut sol = vec![0 as Value; len];
    // lb-lint: allow(no-panic, panic-reachability) -- invariant: count > 0 here, so some frequency entry is positive
    let last = f.iter().position(|&x| x > 0).expect("count > 0");
    sol[len - 1] = last as Value;
    // lb-lint: allow(unbudgeted-loop) -- path DP is a fixed O(len*d^2) pass, bounded by instance size
    for i in (1..len).rev() {
        // lb-lint: allow(no-panic, panic-reachability) -- invariant: the DP backtrace only visits reachable states, which record a parent
        sol[i - 1] = choice[i][sol[i] as usize].expect("reachable state has a parent");
    }
    Ok((count, Some(sol)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::instance::Relation;
    use crate::solver::bruteforce;
    use std::sync::Arc;

    #[test]
    fn random_special_instances_match_bruteforce() {
        for seed in 0..8u64 {
            // k = 3 → path of 8, total 11 variables; D = 2 keeps brute
            // force at 2^11.
            let inst = generators::random_special_csp(3, 2, 0.3, seed);
            let (out, _) = solve_special(&inst, &Budget::unlimited()).unwrap();
            let got = out.unwrap_sat();
            let expect = bruteforce::count(&inst, &Budget::unlimited())
                .0
                .unwrap_sat();
            assert_eq!(got.count, expect, "seed {seed}");
            if expect > 0 {
                assert!(inst.eval(&got.solution.unwrap()));
            }
        }
    }

    #[test]
    fn non_special_rejected() {
        let g = lb_graph::generators::cycle(5);
        let inst = generators::random_binary_csp(&g, 2, 0.2, 1);
        assert_eq!(
            solve_special(&inst, &Budget::unlimited()).unwrap_err(),
            NotSpecial
        );
    }

    #[test]
    fn unsat_clique_part() {
        // k = 2 clique with disequality over domain of 1: unsatisfiable;
        // path of 4 with no constraints.
        let mut inst = generators::special_csp_skeleton(2, 1);
        inst.add_constraint(crate::instance::Constraint::new(
            vec![0, 1],
            Arc::new(Relation::disequality(1)),
        ));
        let got = solve_special(&inst, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat();
        assert_eq!(got.count, 0);
        assert!(got.solution.is_none());
    }

    #[test]
    fn path_dp_counts_colorings() {
        // Stand-alone path DP check through the public API: a special
        // instance with an unconstrained clique and disequality path.
        let k = 2; // path length 4
        let mut inst = generators::special_csp_skeleton(k, 3);
        let neq = Arc::new(Relation::disequality(3));
        // Path vertices are k..k+4 in order.
        for i in 0..3 {
            inst.add_constraint(crate::instance::Constraint::new(
                vec![k + i, k + i + 1],
                neq.clone(),
            ));
        }
        let got = solve_special(&inst, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat();
        // Clique part: skeleton uses full relations: 3^2 = 9 assignments;
        // path: 3·2·2·2 = 24 colorings.
        assert_eq!(got.count, 9 * 24);
    }

    #[test]
    fn tiny_budget_exhausts_special() {
        let inst = generators::random_special_csp(3, 2, 0.3, 0);
        let (out, _) = solve_special(&inst, &Budget::ticks(1)).unwrap();
        assert!(out.is_exhausted());
    }
}
