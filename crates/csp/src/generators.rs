//! Random CSP instance generators for the experiments.
//!
//! Each generator takes a seed; the experiment harness sweeps sizes with
//! fixed seeds so runs are reproducible.

use crate::instance::{Constraint, CspInstance, Relation, Value};
use lb_graph::special::special_graph;
use lb_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A random binary CSP whose primal graph is exactly `g`: one constraint
/// per edge, each pair of values forbidden independently with probability
/// `tightness`.
pub fn random_binary_csp(g: &Graph, domain_size: usize, tightness: f64, seed: u64) -> CspInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = CspInstance::new(g.num_vertices(), domain_size);
    for (u, v) in g.edges() {
        let rel = random_binary_relation(&mut rng, domain_size, tightness);
        inst.add_constraint(Constraint::new(vec![u, v], Arc::new(rel)));
    }
    inst
}

/// A random binary CSP on a random k-tree primal graph: treewidth exactly
/// k, the workload of experiment E3 (Freuder's algorithm).
pub fn random_ktree_csp(
    k: usize,
    num_vars: usize,
    domain_size: usize,
    tightness: f64,
    seed: u64,
) -> CspInstance {
    let g = lb_graph::generators::k_tree(k, num_vars, seed);
    random_binary_csp(&g, domain_size, tightness, seed.wrapping_add(1))
}

/// The skeleton of a special CSP instance (Definition 4.3): clique part on
/// variables `0..k` with *full* binary relations, path part on
/// `k..k + 2^k` with full binary relations. Callers overwrite/add
/// constraints to make it interesting; the primal graph is special by
/// construction.
pub fn special_csp_skeleton(k: usize, domain_size: usize) -> CspInstance {
    let g = special_graph(k);
    let mut inst = CspInstance::new(g.num_vertices(), domain_size);
    let full = Arc::new(Relation::full(2, domain_size));
    for (u, v) in g.edges() {
        inst.add_constraint(Constraint::new(vec![u, v], full.clone()));
    }
    inst
}

/// A random special CSP instance: random relations on the clique edges,
/// random relations on the path edges.
pub fn random_special_csp(k: usize, domain_size: usize, tightness: f64, seed: u64) -> CspInstance {
    let g = special_graph(k);
    random_binary_csp(&g, domain_size, tightness, seed)
}

fn random_binary_relation(rng: &mut StdRng, domain_size: usize, tightness: f64) -> Relation {
    let mut tuples = Vec::new();
    for a in 0..domain_size as Value {
        for b in 0..domain_size as Value {
            if rng.gen::<f64>() >= tightness {
                tuples.push(vec![a, b]);
            }
        }
    }
    Relation::new(2, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primal_graph_matches_generator_graph() {
        let g = lb_graph::generators::cycle(6);
        let inst = random_binary_csp(&g, 3, 0.0, 4);
        // tightness 0 → all relations full → primal graph = g.
        assert_eq!(inst.primal_graph().edges(), g.edges());
    }

    #[test]
    fn tight_relations_forbid_everything() {
        let g = lb_graph::generators::path(3);
        let inst = random_binary_csp(&g, 2, 1.0, 4);
        assert!(inst.constraints.iter().all(|c| c.relation.is_empty()));
    }

    #[test]
    fn seeded_determinism() {
        let g = lb_graph::generators::gnp(8, 0.5, 1);
        let a = random_binary_csp(&g, 3, 0.3, 7);
        let b = random_binary_csp(&g, 3, 0.3, 7);
        assert_eq!(a.constraints.len(), b.constraints.len());
        for (ca, cb) in a.constraints.iter().zip(&b.constraints) {
            assert_eq!(ca.scope, cb.scope);
            assert_eq!(ca.relation.tuples(), cb.relation.tuples());
        }
    }

    #[test]
    fn ktree_csp_has_treewidth_k() {
        let inst = random_ktree_csp(2, 9, 2, 0.0, 3);
        let g = inst.primal_graph();
        assert_eq!(lb_graph::treewidth::treewidth_exact(&g), 2);
    }

    #[test]
    fn special_skeleton_is_special() {
        let inst = special_csp_skeleton(3, 2);
        let g = inst.primal_graph();
        assert!(lb_graph::special::recognize_special(&g).is_some());
        assert_eq!(inst.num_vars, 3 + 8);
    }
}
