//! Local consistency: AC-3 arc consistency (with a generalized-arc variant
//! for non-binary constraints).
//!
//! Consistency propagation is the polynomial-time workhorse underneath
//! every CSP algorithm the paper discusses: Freuder's theorem originally
//! combined tree decompositions with consistency, and the tractable
//! Schaefer classes all admit consistency-style solvers. AC-3 removes
//! values with no *support* — a value d of variable x is supported by a
//! constraint c if some allowed tuple of c assigns d to x and only
//! still-possible values elsewhere. Enforcing it is sound (no solution is
//! lost) and often shrinks the search exponentially; on trees it decides
//! satisfiability outright.

use crate::instance::{CspInstance, Value};

/// The result of enforcing arc consistency.
#[derive(Clone, Debug)]
pub struct AcResult {
    /// `domains[v][d]` — whether value d of variable v survived.
    pub domains: Vec<Vec<bool>>,
    /// Total values removed.
    pub removed: usize,
    /// True iff some variable's domain was wiped out (no solution exists).
    pub wiped_out: bool,
}

impl AcResult {
    /// Remaining domain of `v` as a value list.
    pub fn domain(&self, v: usize) -> Vec<Value> {
        self.domains[v]
            .iter()
            .enumerate()
            .filter(|(_, &ok)| ok)
            .map(|(d, _)| d as Value)
            .collect()
    }

    /// True iff every variable has exactly one value left (the instance is
    /// solved by propagation alone).
    pub fn is_singleton(&self) -> bool {
        self.domains
            .iter()
            .all(|dom| dom.iter().filter(|&&ok| ok).count() == 1)
    }
}

/// Enforces (generalized) arc consistency with an AC-3-style worklist.
///
/// Every solution of the instance survives: a removed value appears in no
/// solution. If `wiped_out` is true the instance is unsatisfiable.
pub fn enforce_arc_consistency(inst: &CspInstance) -> AcResult {
    let n = inst.num_vars;
    let d = inst.domain_size;
    let mut domains = vec![vec![true; d]; n];
    let mut removed = 0usize;

    // Constraint index per variable.
    let mut by_var: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, c) in inst.constraints.iter().enumerate() {
        let mut scope = c.scope.clone();
        scope.sort_unstable();
        scope.dedup();
        for v in scope {
            by_var[v].push(ci);
        }
    }

    // Worklist of (constraint, variable-position-in-scope) pairs to revise.
    let mut queue: Vec<(usize, usize)> = Vec::new();
    for (ci, c) in inst.constraints.iter().enumerate() {
        for pos in 0..c.scope.len() {
            queue.push((ci, pos));
        }
    }
    let mut queued: Vec<Vec<bool>> = inst
        .constraints
        .iter()
        .map(|c| vec![true; c.scope.len()])
        .collect();

    while let Some((ci, pos)) = queue.pop() {
        queued[ci][pos] = false;
        let c = &inst.constraints[ci];
        let x = c.scope[pos];
        let mut changed = false;
        for val in 0..d as Value {
            if !domains[x][val as usize] {
                continue;
            }
            // Support: an allowed tuple with `val` at `pos` whose other
            // coordinates are all still in their domains. (If x repeats in
            // the scope, every occurrence must carry `val`.)
            let supported = c.relation.tuples().iter().any(|t| {
                t[pos] == val
                    && c.scope
                        .iter()
                        .zip(t)
                        .all(|(&v, &tv)| domains[v][tv as usize] && (v != x || tv == val))
            });
            if !supported {
                domains[x][val as usize] = false;
                removed += 1;
                changed = true;
            }
        }
        if changed {
            if domains[x].iter().all(|&ok| !ok) {
                return AcResult {
                    domains,
                    removed,
                    wiped_out: true,
                };
            }
            // Requeue every (constraint, position) that watches x.
            for &cj in &by_var[x] {
                let cc = &inst.constraints[cj];
                for (p, &v) in cc.scope.iter().enumerate() {
                    if !(cj == ci && p == pos) && v != x && !queued[cj][p] {
                        queued[cj][p] = true;
                        queue.push((cj, p));
                    }
                }
            }
        }
    }

    AcResult {
        domains,
        removed,
        wiped_out: false,
    }
}

/// Restricts the instance to the surviving domains: values are renumbered
/// densely per the global (shared) domain. Returns the filtered instance
/// (same variables, same domain indices — relations just lose tuples).
pub fn restrict_to(inst: &CspInstance, ac: &AcResult) -> CspInstance {
    use crate::instance::{Constraint, Relation};
    use std::sync::Arc;
    let mut out = CspInstance::new(inst.num_vars, inst.domain_size);
    for c in &inst.constraints {
        let tuples: Vec<Vec<Value>> = c
            .relation
            .tuples()
            .iter()
            .filter(|t| {
                c.scope
                    .iter()
                    .zip(t.iter())
                    .all(|(&v, &tv)| ac.domains[v][tv as usize])
            })
            .cloned()
            .collect();
        out.add_constraint(Constraint::new(
            c.scope.clone(),
            Arc::new(Relation::new(c.scope.len(), tuples)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Constraint, Relation};
    use crate::solver::bruteforce;
    use lb_engine::Budget;
    use std::sync::Arc;

    #[test]
    fn equality_chain_propagates_singleton() {
        // x0 = 3 pinned; x0 = x1 = x2 = x3 → all domains collapse to {3}.
        let mut inst = CspInstance::new(4, 5);
        inst.add_constraint(Constraint::new(
            vec![0],
            Arc::new(Relation::new(1, vec![vec![3]])),
        ));
        let eq = Arc::new(Relation::equality(5));
        for i in 0..3 {
            inst.add_constraint(Constraint::new(vec![i, i + 1], eq.clone()));
        }
        let ac = enforce_arc_consistency(&inst);
        assert!(!ac.wiped_out);
        assert!(ac.is_singleton());
        for v in 0..4 {
            assert_eq!(ac.domain(v), vec![3]);
        }
        assert_eq!(ac.removed, 4 * 4);
    }

    #[test]
    fn wipeout_detects_unsat() {
        // x = 1 and x = 2 simultaneously.
        let mut inst = CspInstance::new(1, 3);
        inst.add_constraint(Constraint::new(
            vec![0],
            Arc::new(Relation::new(1, vec![vec![1]])),
        ));
        inst.add_constraint(Constraint::new(
            vec![0],
            Arc::new(Relation::new(1, vec![vec![2]])),
        ));
        let ac = enforce_arc_consistency(&inst);
        assert!(ac.wiped_out);
    }

    #[test]
    fn never_removes_solution_values() {
        for seed in 0..15u64 {
            let g = lb_graph::generators::gnp(6, 0.5, seed);
            let inst = crate::generators::random_binary_csp(&g, 3, 0.4, seed);
            let ac = enforce_arc_consistency(&inst);
            let solutions = bruteforce::enumerate(&inst, &Budget::unlimited())
                .0
                .unwrap_sat();
            if ac.wiped_out {
                assert!(solutions.is_empty(), "seed {seed}");
                continue;
            }
            for s in &solutions {
                for (v, &val) in s.iter().enumerate() {
                    assert!(
                        ac.domains[v][val as usize],
                        "seed {seed}: AC removed a solution value"
                    );
                }
            }
            // Restriction preserves the solution set exactly.
            let restricted = restrict_to(&inst, &ac);
            assert_eq!(
                bruteforce::enumerate(&restricted, &Budget::unlimited())
                    .0
                    .unwrap_sat(),
                solutions,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn tree_instances_decided_by_ac() {
        // On trees (and forests), non-wipeout AC implies satisfiability.
        for seed in 0..10u64 {
            let g = lb_graph::generators::k_tree(1, 8, seed); // a tree
            let inst = crate::generators::random_binary_csp(&g, 3, 0.5, seed);
            let ac = enforce_arc_consistency(&inst);
            let sat = bruteforce::solve(&inst, &Budget::unlimited()).0.is_sat();
            assert_eq!(!ac.wiped_out, sat, "seed {seed}");
        }
    }

    #[test]
    fn ternary_constraints_supported() {
        // x + y + z = 2 over D = {0,1,2}, x pinned to 2 → y + z = 0 →
        // y = z = 0.
        let mut inst = CspInstance::new(3, 3);
        inst.add_constraint(Constraint::new(
            vec![0],
            Arc::new(Relation::new(1, vec![vec![2]])),
        ));
        inst.add_constraint(Constraint::new(
            vec![0, 1, 2],
            Arc::new(Relation::from_fn(3, 3, |t| t[0] + t[1] + t[2] == 2)),
        ));
        let ac = enforce_arc_consistency(&inst);
        assert!(ac.is_singleton());
        assert_eq!(ac.domain(1), vec![0]);
        assert_eq!(ac.domain(2), vec![0]);
    }

    #[test]
    fn repeated_scope_variable() {
        // (x, x) ∈ {(0,1)} is unsupported everywhere → wipeout.
        let mut inst = CspInstance::new(1, 2);
        inst.add_constraint(Constraint::new(
            vec![0, 0],
            Arc::new(Relation::new(2, vec![vec![0, 1]])),
        ));
        let ac = enforce_arc_consistency(&inst);
        assert!(ac.wiped_out);
    }
}
