//! Checked conversions between floats and integers.
//!
//! Bound arithmetic (`lb-lp`, `lb-join::agm`) must never lose precision
//! silently: a lossy `f64 as u64` can corrupt an AGM witness size, and a
//! large `u64 as f64` rounds above 2^53. The `lb-lint` rule `no-lossy-cast`
//! bans raw float↔int `as` casts in those modules; this module is the one
//! sanctioned home for such casts, each annotated with the runtime check that
//! makes it sound.

/// Exact `u64 → f64`: `Some` iff the value round-trips without rounding
/// (always true below 2^53, and for larger values that happen to be
/// representable).
#[must_use = "the checked conversion result must be inspected; a None means the value is not exactly representable"]
pub fn u64_to_f64_exact(n: u64) -> Option<f64> {
    const TWO_POW_64: f64 = 18_446_744_073_709_551_616.0;
    let f = n as f64; // lb-lint: allow(no-lossy-cast) -- round-trip checked below
    if f >= TWO_POW_64 {
        // n rounded up to 2^64; the saturating back-cast would mask it.
        return None;
    }
    let back = f as u64; // lb-lint: allow(no-lossy-cast) -- f < 2^64 checked above, round-trip checked below
    (back == n).then_some(f)
}

/// `u64 → f64` rounding to nearest — for display and plotting only, where a
/// relative error of 2^-53 is irrelevant. Total (never fails).
#[must_use = "conversion for display should be used, not dropped"]
pub fn u64_to_f64_lossy(n: u64) -> f64 {
    n as f64 // lb-lint: allow(no-lossy-cast) -- documented lossy display conversion, error ≤ 2^-53 relative
}

/// Checked `f64 → u64` by flooring: `Some(⌊x⌋)` iff `x` is finite,
/// non-negative, and its floor fits in `u64`.
#[must_use = "the checked conversion result must be inspected; a None means the float was out of range"]
pub fn f64_floor_to_u64(x: f64) -> Option<u64> {
    // 2^64 as the first f64 strictly above u64::MAX (u64::MAX itself is not
    // representable; the nearest f64 above it is exactly 2^64).
    const TWO_POW_64: f64 = 18_446_744_073_709_551_616.0;
    if !x.is_finite() || !(0.0..TWO_POW_64).contains(&x) {
        return None;
    }
    Some(x.floor() as u64) // lb-lint: allow(no-lossy-cast) -- range-checked above; floor of an in-range f64 is exact
}

/// Exact `i128 → f64`: `Some` iff the value round-trips without rounding.
#[must_use = "the checked conversion result must be inspected; a None means the value is not exactly representable"]
pub fn i128_to_f64_exact(n: i128) -> Option<f64> {
    const TWO_POW_127: f64 = 170_141_183_460_469_231_731_687_303_715_884_105_728.0;
    let f = n as f64; // lb-lint: allow(no-lossy-cast) -- round-trip checked below
    if f >= TWO_POW_127 {
        // n rounded up to 2^127; the saturating back-cast would mask it.
        return None;
    }
    let back = f as i128; // lb-lint: allow(no-lossy-cast) -- |f| ≤ 2^127 checked/representable, round-trip checked below
    (back == n).then_some(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips() {
        assert_eq!(u64_to_f64_exact(0), Some(0.0));
        assert_eq!(u64_to_f64_exact(1 << 53), Some(9007199254740992.0));
        // 2^53 + 1 is the first unrepresentable integer.
        assert_eq!(u64_to_f64_exact((1 << 53) + 1), None);
        // 2^60 is representable (power of two), 2^60 + 1 is not.
        assert_eq!(u64_to_f64_exact(1 << 60), Some((1u64 << 60) as f64));
        assert_eq!(u64_to_f64_exact((1 << 60) + 1), None);
        assert_eq!(u64_to_f64_exact(u64::MAX), None);
    }

    #[test]
    fn floor_conversion_bounds() {
        assert_eq!(f64_floor_to_u64(3.7), Some(3));
        assert_eq!(f64_floor_to_u64(0.0), Some(0));
        assert_eq!(f64_floor_to_u64(-0.5), None);
        assert_eq!(f64_floor_to_u64(f64::NAN), None);
        assert_eq!(f64_floor_to_u64(f64::INFINITY), None);
        // 2^64 is out of range; the largest representable f64 below it fits.
        assert_eq!(f64_floor_to_u64(18_446_744_073_709_551_616.0), None);
        let just_below = 18_446_744_073_709_549_568.0; // 2^64 − 2048
        assert_eq!(
            f64_floor_to_u64(just_below),
            Some(18_446_744_073_709_549_568)
        );
    }

    #[test]
    fn i128_round_trips() {
        assert_eq!(i128_to_f64_exact(-42), Some(-42.0));
        assert_eq!(i128_to_f64_exact((1 << 53) + 1), None);
        assert_eq!(i128_to_f64_exact(i128::MAX), None);
    }

    #[test]
    fn lossy_display_conversion_is_close() {
        let n = u64::MAX;
        let f = u64_to_f64_lossy(n);
        assert!((f - 1.844_674_407_370_955_2e19).abs() / f < 1e-12);
    }
}
