//! Exact primal simplex for packing LPs.
//!
//! Solves `max { c·x : Ax ≤ b, x ≥ 0 }` with `b ≥ 0`. Since `b ≥ 0`, the
//! slack basis is feasible and no phase-one is needed; Bland's rule makes
//! termination unconditional. Alongside the primal optimum the solver
//! returns the optimal **dual** solution `y` (read off the reduced costs of
//! the slack columns), which by strong duality is the optimal solution of
//! `min { b·y : Aᵀy ≥ c, y ≥ 0 }`. The covering LPs of [`crate::covers`]
//! (fractional edge cover ρ*, fractional vertex cover τ*) are obtained this
//! way from their packing duals in a single simplex run.

use crate::rational::Rational;

/// Result of a packing LP solve: both the primal and the dual optimum.
#[derive(Clone, Debug)]
pub struct PackingSolution {
    /// Optimal objective value (shared by primal and dual — strong duality).
    pub value: Rational,
    /// Optimal primal solution `x` (length = number of variables).
    pub primal: Vec<Rational>,
    /// Optimal dual solution `y` (length = number of constraints).
    pub dual: Vec<Rational>,
}

/// Errors from the simplex solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// The objective is unbounded above over the feasible region.
    Unbounded,
    /// Malformed input (dimension mismatch or negative right-hand side).
    BadInput(String),
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Unbounded => write!(f, "LP is unbounded"),
            LpError::BadInput(msg) => write!(f, "bad LP input: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

/// Solves `max { c·x : Ax ≤ b, x ≥ 0 }` exactly. Requires `b ≥ 0`.
///
/// `a` is row-major: `a[i]` is the i-th constraint row (length = `c.len()`).
#[allow(clippy::needless_range_loop)] // index used across several arrays
#[must_use = "dropping the result discards the LP optimum or the failure"]
pub fn solve_packing(
    a: &[Vec<Rational>],
    b: &[Rational],
    c: &[Rational],
) -> Result<PackingSolution, LpError> {
    let m = a.len();
    let n = c.len();
    if b.len() != m {
        return Err(LpError::BadInput(format!(
            "b has length {} but A has {} rows",
            b.len(),
            m
        )));
    }
    for (i, row) in a.iter().enumerate() {
        if row.len() != n {
            return Err(LpError::BadInput(format!(
                "row {i} has length {} but c has length {n}",
                row.len()
            )));
        }
    }
    if let Some(i) = b.iter().position(|v| v.is_negative()) {
        return Err(LpError::BadInput(format!(
            "b[{i}] is negative; packing form needs b ≥ 0"
        )));
    }

    // Tableau: m rows × (n + m + 1) columns. Columns 0..n are original
    // variables, n..n+m slacks, last column the RHS. Objective row stores
    // reduced costs (we maximize, so we start with -c and pivot until no
    // negative entries remain).
    let cols = n + m + 1;
    let mut t: Vec<Vec<Rational>> = Vec::with_capacity(m + 1);
    for i in 0..m {
        let mut row = vec![Rational::ZERO; cols];
        row[..n].copy_from_slice(&a[i]);
        row[n + i] = Rational::ONE;
        row[cols - 1] = b[i];
        t.push(row);
    }
    let mut obj = vec![Rational::ZERO; cols];
    for j in 0..n {
        obj[j] = -c[j];
    }
    t.push(obj);

    // basis[i] = variable index basic in row i. Start with slacks.
    let mut basis: Vec<usize> = (n..n + m).collect();

    // Bland's rule: entering variable = lowest index with negative
    // reduced cost; stop at optimality (no negative reduced cost).
    while let Some(enter) = (0..n + m).find(|&j| t[m][j].is_negative()) {
        // Ratio test; ties broken by smallest basis variable (Bland).
        let mut leave: Option<usize> = None;
        let mut best_ratio = Rational::ZERO;
        for i in 0..m {
            if t[i][enter].is_positive() {
                let ratio = t[i][cols - 1] / t[i][enter];
                let better = match leave {
                    None => true,
                    Some(cur) => {
                        ratio < best_ratio || (ratio == best_ratio && basis[i] < basis[cur])
                    }
                };
                if better {
                    leave = Some(i);
                    best_ratio = ratio;
                }
            }
        }
        let leave = leave.ok_or(LpError::Unbounded)?;

        // Pivot on (leave, enter).
        let pivot = t[leave][enter];
        let inv = pivot.recip();
        for v in t[leave].iter_mut() {
            *v = *v * inv;
        }
        for i in 0..=m {
            if i == leave || t[i][enter].is_zero() {
                continue;
            }
            let factor = t[i][enter];
            for j in 0..cols {
                let delta = factor * t[leave][j];
                t[i][j] -= delta;
            }
        }
        basis[leave] = enter;
    }

    let mut primal = vec![Rational::ZERO; n];
    for i in 0..m {
        if basis[i] < n {
            primal[basis[i]] = t[i][cols - 1];
        }
    }
    // Dual values are the reduced costs of the slack columns.
    let dual: Vec<Rational> = (0..m).map(|i| t[m][n + i]).collect();
    let value = t[m][cols - 1];
    Ok(PackingSolution {
        value,
        primal,
        dual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }
    fn ri(n: i64) -> Rational {
        Rational::from_int(n)
    }

    /// Checks primal feasibility, dual feasibility, and matching objectives.
    fn check_certificates(
        a: &[Vec<Rational>],
        b: &[Rational],
        c: &[Rational],
        sol: &PackingSolution,
    ) {
        // Primal feasible: Ax ≤ b, x ≥ 0.
        for x in &sol.primal {
            assert!(!x.is_negative());
        }
        for (row, &bi) in a.iter().zip(b) {
            let lhs = row
                .iter()
                .zip(&sol.primal)
                .fold(Rational::ZERO, |acc, (&aij, &xj)| acc + aij * xj);
            assert!(lhs <= bi, "primal infeasible: {lhs} > {bi}");
        }
        // Dual feasible: Aᵀy ≥ c, y ≥ 0.
        for y in &sol.dual {
            assert!(!y.is_negative());
        }
        for j in 0..c.len() {
            let lhs = (0..a.len()).fold(Rational::ZERO, |acc, i| acc + a[i][j] * sol.dual[i]);
            assert!(lhs >= c[j], "dual infeasible at column {j}");
        }
        // Objectives match (strong duality).
        let pv = c
            .iter()
            .zip(&sol.primal)
            .fold(Rational::ZERO, |acc, (&cj, &xj)| acc + cj * xj);
        let dv = b
            .iter()
            .zip(&sol.dual)
            .fold(Rational::ZERO, |acc, (&bi, &yi)| acc + bi * yi);
        assert_eq!(pv, sol.value);
        assert_eq!(dv, sol.value);
    }

    #[test]
    fn textbook_2d() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → optimum 36.
        let a = vec![vec![ri(1), ri(0)], vec![ri(0), ri(2)], vec![ri(3), ri(2)]];
        let b = vec![ri(4), ri(12), ri(18)];
        let c = vec![ri(3), ri(5)];
        let sol = solve_packing(&a, &b, &c).unwrap();
        assert_eq!(sol.value, ri(36));
        assert_eq!(sol.primal, vec![ri(2), ri(6)]);
        check_certificates(&a, &b, &c, &sol);
    }

    #[test]
    fn triangle_packing_is_three_halves() {
        // Fractional vertex packing of the triangle hypergraph:
        // max y0+y1+y2 s.t. y0+y1 ≤ 1, y0+y2 ≤ 1, y1+y2 ≤ 1.
        let a = vec![
            vec![ri(1), ri(1), ri(0)],
            vec![ri(1), ri(0), ri(1)],
            vec![ri(0), ri(1), ri(1)],
        ];
        let b = vec![ri(1); 3];
        let c = vec![ri(1); 3];
        let sol = solve_packing(&a, &b, &c).unwrap();
        assert_eq!(sol.value, r(3, 2));
        assert_eq!(sol.primal, vec![r(1, 2); 3]);
        // Dual = fractional edge cover of the triangle: all weights 1/2.
        assert_eq!(sol.dual, vec![r(1, 2); 3]);
        check_certificates(&a, &b, &c, &sol);
    }

    #[test]
    fn unbounded_detected() {
        // max x with no constraint touching x.
        let a = vec![vec![ri(0)]];
        let b = vec![ri(5)];
        let c = vec![ri(1)];
        assert_eq!(solve_packing(&a, &b, &c).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn zero_objective() {
        let a = vec![vec![ri(1)]];
        let b = vec![ri(1)];
        let c = vec![ri(0)];
        let sol = solve_packing(&a, &b, &c).unwrap();
        assert_eq!(sol.value, ri(0));
    }

    #[test]
    fn negative_rhs_rejected() {
        let a = vec![vec![ri(1)]];
        let b = vec![ri(-1)];
        let c = vec![ri(1)];
        assert!(matches!(
            solve_packing(&a, &b, &c),
            Err(LpError::BadInput(_))
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = vec![vec![ri(1), ri(2)]];
        let b = vec![ri(1)];
        let c = vec![ri(1)];
        assert!(matches!(
            solve_packing(&a, &b, &c),
            Err(LpError::BadInput(_))
        ));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classic degenerate instance; Bland's rule must not cycle.
        let a = vec![
            vec![r(1, 4), ri(-8), ri(-1), ri(9)],
            vec![r(1, 2), ri(-12), r(-1, 2), ri(3)],
            vec![ri(0), ri(0), ri(1), ri(0)],
        ];
        let b = vec![ri(0), ri(0), ri(1)];
        let c = vec![r(3, 4), ri(-20), r(1, 2), ri(-6)];
        let sol = solve_packing(&a, &b, &c).unwrap();
        assert_eq!(sol.value, r(5, 4));
        check_certificates(&a, &b, &c, &sol);
    }

    #[test]
    fn many_variable_lp() {
        // max Σ x_i s.t. x_i + x_{i+1} ≤ 1 (path packing), n = 9 vertices,
        // 8 constraints. Optimum: 5 (alternate endpoints).
        let n = 9;
        let m = 8;
        let mut a = vec![vec![ri(0); n]; m];
        for i in 0..m {
            a[i][i] = ri(1);
            a[i][i + 1] = ri(1);
        }
        let b = vec![ri(1); m];
        let c = vec![ri(1); n];
        let sol = solve_packing(&a, &b, &c).unwrap();
        assert_eq!(sol.value, ri(5));
        check_certificates(&a, &b, &c, &sol);
    }
}
