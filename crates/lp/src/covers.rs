//! Fractional covers and packings of hypergraphs (paper §3).
//!
//! For a hypergraph H:
//!
//! * **fractional edge cover** ρ*(H): min Σ_e f(e) with Σ_{e ∋ v} f(e) ≥ 1
//!   for every vertex v — the AGM exponent of Theorems 3.1–3.3;
//! * **fractional vertex packing** (its LP dual): max Σ_v y(v) with
//!   Σ_{v ∈ e} y(v) ≤ 1 for every edge e — by strong duality the optimum is
//!   again ρ*(H), and the optimal y builds the worst-case database of
//!   Theorem 3.2 (attribute v gets a domain of size N^{y(v)});
//! * **fractional vertex cover** τ*(H) and **fractional matching** ν*(H) —
//!   the other dual pair, included for completeness of the toolkit.
//!
//! All four are computed exactly with one simplex call each on the packing
//! side; the covering optimum is read off the dual certificate.

use crate::rational::Rational;
use crate::simplex::{solve_packing, LpError};
use lb_graph::Hypergraph;

/// An optimal fractional cover/packing: the optimum and the weight vector
/// (indexed by edges for edge quantities, by vertices for vertex quantities).
#[derive(Clone, Debug)]
pub struct CoverSolution {
    /// The LP optimum (e.g. ρ* or τ*).
    pub value: Rational,
    /// Optimal weights.
    pub weights: Vec<Rational>,
}

/// Errors from cover computations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoverError {
    /// Some vertex lies in no hyperedge, so no edge cover exists.
    UncoveredVertex(usize),
    /// Internal LP failure (should not happen for well-formed hypergraphs).
    Lp(String),
}

impl std::fmt::Display for CoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverError::UncoveredVertex(v) => {
                write!(
                    f,
                    "vertex {v} lies in no hyperedge; edge cover LP is infeasible"
                )
            }
            CoverError::Lp(m) => write!(f, "LP failure: {m}"),
        }
    }
}

impl std::error::Error for CoverError {}

fn first_uncovered(h: &Hypergraph) -> Option<usize> {
    let mut seen = vec![false; h.num_vertices()];
    for e in h.edges() {
        for &v in e {
            seen[v] = true;
        }
    }
    seen.iter().position(|&s| !s)
}

/// Incidence matrix rows = edges, columns = vertices.
fn edge_by_vertex(h: &Hypergraph) -> Vec<Vec<Rational>> {
    let n = h.num_vertices();
    h.edges()
        .iter()
        .map(|e| {
            let mut row = vec![Rational::ZERO; n];
            for &v in e {
                row[v] = Rational::ONE;
            }
            row
        })
        .collect()
}

/// Incidence matrix rows = vertices, columns = edges.
fn vertex_by_edge(h: &Hypergraph) -> Vec<Vec<Rational>> {
    let n = h.num_vertices();
    let m = h.num_edges();
    let mut a = vec![vec![Rational::ZERO; m]; n];
    for (j, e) in h.edges().iter().enumerate() {
        for &v in e {
            a[v][j] = Rational::ONE;
        }
    }
    a
}

/// The fractional edge cover number ρ*(H) with optimal edge weights.
///
/// This is the exponent of the AGM bound: the answer to a join query with
/// hypergraph H over relations of size ≤ N has at most N^{ρ*} tuples.
#[must_use = "dropping the result discards the LP optimum or the failure"]
pub fn fractional_edge_cover(h: &Hypergraph) -> Result<CoverSolution, CoverError> {
    if let Some(v) = first_uncovered(h) {
        return Err(CoverError::UncoveredVertex(v));
    }
    // Solve the packing dual: max 1·y s.t. (edge×vertex) y ≤ 1, y ≥ 0.
    let a = edge_by_vertex(h);
    let b = vec![Rational::ONE; h.num_edges()];
    let c = vec![Rational::ONE; h.num_vertices()];
    let sol = solve_packing(&a, &b, &c).map_err(map_lp_err)?;
    Ok(CoverSolution {
        value: sol.value,
        weights: sol.dual,
    })
}

/// The fractional vertex packing optimum (equal to ρ* by duality) with
/// optimal vertex weights — the construction vector of Theorem 3.2.
#[must_use = "dropping the result discards the LP optimum or the failure"]
pub fn fractional_vertex_packing(h: &Hypergraph) -> Result<CoverSolution, CoverError> {
    if let Some(v) = first_uncovered(h) {
        return Err(CoverError::UncoveredVertex(v));
    }
    let a = edge_by_vertex(h);
    let b = vec![Rational::ONE; h.num_edges()];
    let c = vec![Rational::ONE; h.num_vertices()];
    let sol = solve_packing(&a, &b, &c).map_err(map_lp_err)?;
    Ok(CoverSolution {
        value: sol.value,
        weights: sol.primal,
    })
}

/// The fractional matching number ν*(H) with optimal edge weights.
#[must_use = "dropping the result discards the LP optimum or the failure"]
pub fn fractional_matching(h: &Hypergraph) -> Result<CoverSolution, CoverError> {
    let a = vertex_by_edge(h);
    let b = vec![Rational::ONE; h.num_vertices()];
    let c = vec![Rational::ONE; h.num_edges()];
    let sol = solve_packing(&a, &b, &c).map_err(map_lp_err)?;
    Ok(CoverSolution {
        value: sol.value,
        weights: sol.primal,
    })
}

/// The fractional vertex cover number τ*(H) with optimal vertex weights.
#[must_use = "dropping the result discards the LP optimum or the failure"]
pub fn fractional_vertex_cover(h: &Hypergraph) -> Result<CoverSolution, CoverError> {
    let a = vertex_by_edge(h);
    let b = vec![Rational::ONE; h.num_vertices()];
    let c = vec![Rational::ONE; h.num_edges()];
    let sol = solve_packing(&a, &b, &c).map_err(map_lp_err)?;
    Ok(CoverSolution {
        value: sol.value,
        weights: sol.dual,
    })
}

fn map_lp_err(e: LpError) -> CoverError {
    CoverError::Lp(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::Hypergraph;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    /// Sanity: cover weights really cover, packing weights really pack, and
    /// objectives match.
    fn check_duality(h: &Hypergraph) {
        let cover = fractional_edge_cover(h).unwrap();
        let pack = fractional_vertex_packing(h).unwrap();
        assert_eq!(cover.value, pack.value, "strong duality");
        // Cover feasibility: each vertex covered with total ≥ 1.
        for v in 0..h.num_vertices() {
            let total = h
                .edges_containing(v)
                .into_iter()
                .fold(Rational::ZERO, |acc, e| acc + cover.weights[e]);
            assert!(total >= Rational::ONE, "vertex {v} undercovered");
        }
        // Packing feasibility: each edge total ≤ 1.
        for e in h.edges() {
            let total = e
                .iter()
                .fold(Rational::ZERO, |acc, &v| acc + pack.weights[v]);
            assert!(total <= Rational::ONE);
        }
        // Objectives are the weight sums.
        let csum = cover.weights.iter().fold(Rational::ZERO, |acc, &w| acc + w);
        assert_eq!(csum, cover.value);
    }

    #[test]
    fn triangle_rho_star_is_three_halves() {
        let h = Hypergraph::triangle();
        let sol = fractional_edge_cover(&h).unwrap();
        assert_eq!(sol.value, r(3, 2));
        check_duality(&h);
    }

    #[test]
    fn loomis_whitney_rho_star() {
        // ρ*(LW(n)) = n / (n−1).
        for n in 3..=5 {
            let h = Hypergraph::loomis_whitney(n);
            let sol = fractional_edge_cover(&h).unwrap();
            assert_eq!(sol.value, r(n as i128, n as i128 - 1), "n = {n}");
            check_duality(&h);
        }
    }

    #[test]
    fn star_rho_star_is_k() {
        // Star query with k binary edges {0,i}: each leaf needs its own
        // edge at weight 1, so ρ* = k.
        for k in 1..=4 {
            let h = Hypergraph::star(k);
            let sol = fractional_edge_cover(&h).unwrap();
            assert_eq!(sol.value, Rational::from_int(k as i64), "k = {k}");
        }
    }

    #[test]
    fn cycle_rho_star_is_half_length() {
        // Even cycle C_{2t}: perfect matching gives ρ* = t; odd cycle
        // C_{2t+1}: ρ* = (2t+1)/2.
        let sol4 = fractional_edge_cover(&Hypergraph::cycle(4)).unwrap();
        assert_eq!(sol4.value, Rational::from_int(2));
        let sol5 = fractional_edge_cover(&Hypergraph::cycle(5)).unwrap();
        assert_eq!(sol5.value, r(5, 2));
        check_duality(&Hypergraph::cycle(5));
    }

    #[test]
    fn single_edge_covers_everything() {
        let h = Hypergraph::from_edges(3, &[vec![0, 1, 2]]);
        let sol = fractional_edge_cover(&h).unwrap();
        assert_eq!(sol.value, Rational::ONE);
        assert_eq!(sol.weights, vec![Rational::ONE]);
    }

    #[test]
    fn uncovered_vertex_error() {
        let h = Hypergraph::from_edges(3, &[vec![0, 1]]);
        assert_eq!(
            fractional_edge_cover(&h).unwrap_err(),
            CoverError::UncoveredVertex(2)
        );
    }

    #[test]
    fn matching_vs_vertex_cover_duality() {
        let h = Hypergraph::cycle(5);
        let m = fractional_matching(&h).unwrap();
        let vc = fractional_vertex_cover(&h).unwrap();
        assert_eq!(m.value, vc.value);
        assert_eq!(m.value, r(5, 2));
    }

    #[test]
    fn clique_hypergraph_rho_star() {
        // K_k with binary edges: ρ* = k/2 (each vertex needs total 1, each
        // edge covers 2 vertices).
        let h = Hypergraph::clique(6);
        let sol = fractional_edge_cover(&h).unwrap();
        assert_eq!(sol.value, Rational::from_int(3));
        let h5 = Hypergraph::clique(5);
        let sol5 = fractional_edge_cover(&h5).unwrap();
        assert_eq!(sol5.value, r(5, 2));
    }

    #[test]
    fn packing_weights_build_agm_witness() {
        // Triangle: the optimal packing puts 1/2 on every attribute, which
        // is the construction of Theorem 3.2 (domains of size N^{1/2}).
        let h = Hypergraph::triangle();
        let pack = fractional_vertex_packing(&h).unwrap();
        assert_eq!(pack.weights, vec![r(1, 2); 3]);
    }
}
