//! Exact linear programming for fractional covers.
//!
//! The AGM bound (paper Theorems 3.1–3.3) is `N^{ρ*(H)}` where `ρ*(H)` is
//! the *fractional edge cover number* of the query hypergraph — the optimum
//! of a small linear program. Because ρ* appears in an exponent, a floating
//! point solver is not acceptable: this crate implements a primal simplex
//! over **exact rational arithmetic** (packing LPs have a feasible slack
//! basis, so no phase one is needed) with Bland's rule to rule out cycling.
//!
//! * [`rational`] — exact rationals over `i128` (plenty for the tiny LPs of
//!   query hypergraphs; overflow panics rather than corrupting an exponent).
//! * [`simplex`] — `max { c·x : Ax ≤ b, x ≥ 0 }` with `b ≥ 0`, returning the
//!   optimal value, a primal solution, and the complementary dual solution.
//! * [`covers`] — the four fractional quantities of hypergraph combinatorics:
//!   edge cover ρ*, vertex packing (its LP dual, used to build the AGM
//!   worst-case database), vertex cover τ*, and matching ν*.
//! * [`intpow`] — exact `⌊N^{p/q}⌋` and exact power comparisons, so witness
//!   domain sizes never depend on `f64` rounding.
//! * [`convert`] — checked float↔int conversions, the only sanctioned home
//!   for float casts in bound arithmetic (see the `no-lossy-cast` lint rule).

#![forbid(unsafe_code)]

pub mod convert;
pub mod covers;
pub mod intpow;
pub mod rational;
pub mod simplex;

pub use covers::{
    fractional_edge_cover, fractional_matching, fractional_vertex_cover, fractional_vertex_packing,
    CoverSolution,
};
pub use intpow::{cmp_pow, floor_rational_pow, PowError};
pub use rational::Rational;
pub use simplex::{solve_packing, PackingSolution};
