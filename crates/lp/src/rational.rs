//! Exact rational numbers over `i128`.
//!
//! Always stored in lowest terms with a positive denominator. All arithmetic
//! reduces eagerly, so the magnitudes stay tiny for the cover LPs this crate
//! solves; a genuine overflow panics loudly instead of silently producing a
//! wrong exponent for the AGM bound.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact rational `num / den` in lowest terms, `den > 0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num / den` in lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "zero denominator");
        if num == 0 {
            return Rational::ZERO;
        }
        let sign = if (num < 0) != (den < 0) { -1 } else { 1 };
        let g = gcd(num, den);
        Rational {
            num: sign * (num.abs() / g),
            den: den.abs() / g,
        }
    }

    /// The integer `n` as a rational.
    pub fn from_int(n: i64) -> Self {
        Rational {
            num: n as i128,
            den: 1,
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Lossy conversion to `f64`, for **display only**. Bound decisions must
    /// go through the exact integer paths (`crate::intpow::floor_rational_pow`
    /// and `crate::intpow::cmp_pow`) instead.
    pub fn to_f64(&self) -> f64 {
        // lb-lint: allow(no-lossy-cast) -- display-only: documented lossy; never feeds a bound decision
        self.num as f64 / self.den as f64
    }

    /// True iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// True iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// The reciprocal.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    fn checked(num: Option<i128>, den: Option<i128>) -> Rational {
        // lb-lint: allow(no-panic) -- documented panic: i128 overflow in rational ops is a bug, not bad input; operator impls cannot return Result
        let num = num.expect("rational arithmetic overflow (numerator)");
        // lb-lint: allow(no-panic) -- documented panic: i128 overflow in rational ops is a bug, not bad input; operator impls cannot return Result
        let den = den.expect("rational arithmetic overflow (denominator)");
        Rational::new(num, den)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // a/b + c/d = (a·(l/b) + c·(l/d)) / l with l = lcm(b, d).
        let g = gcd(self.den, rhs.den);
        let lb = self.den / g;
        let ld = rhs.den / g;
        let l = self.den.checked_mul(ld);
        let num = self
            .num
            .checked_mul(ld)
            .and_then(|x| rhs.num.checked_mul(lb).and_then(|y| x.checked_add(y)));
        Rational::checked(num, l)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2);
        let den = (self.den / g2).checked_mul(rhs.den / g1);
        Rational::checked(num, den)
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiplication by the reciprocal
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // a/b vs c/d  ⇔  a·d vs c·b (b, d > 0).
        let lhs = self
            .num
            .checked_mul(other.den)
            // lb-lint: allow(no-panic, panic-reachability) -- documented panic: Ord cannot return Result; cross-multiplication past i128 is unsupported
            .expect("rational comparison overflow");
        let rhs = other
            .num
            .checked_mul(self.den)
            // lb-lint: allow(no-panic, panic-reachability) -- documented panic: Ord cannot return Result; cross-multiplication past i128 is unsupported
            .expect("rational comparison overflow");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::ZERO);
        assert_eq!(r(3, 1).to_string(), "3");
        assert_eq!(r(3, 2).to_string(), "3/2");
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(3, 4), r(2, 3));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 2) < r(2, 3));
        assert!(r(-1, 2) < Rational::ZERO);
        assert!(r(3, 2) > Rational::ONE);
        assert_eq!(r(4, 8).cmp(&r(1, 2)), Ordering::Equal);
    }

    #[test]
    fn predicates() {
        assert!(r(3, 1).is_integer());
        assert!(!r(3, 2).is_integer());
        assert!(r(1, 5).is_positive());
        assert!(r(-1, 5).is_negative());
        assert!(Rational::ZERO.is_zero());
        assert_eq!(r(-3, 4).abs(), r(3, 4));
        assert_eq!(r(2, 3).recip(), r(3, 2));
    }

    #[test]
    fn to_f64_close() {
        assert!((r(3, 2).to_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn zero_reciprocal_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn sum_of_many_halves() {
        let mut acc = Rational::ZERO;
        for _ in 0..1000 {
            acc += r(1, 2);
        }
        assert_eq!(acc, Rational::from_int(500));
    }
}
