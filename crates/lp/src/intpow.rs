//! Exact integer powers with rational exponents — the arithmetic behind the
//! AGM worst-case witness (`⌊N^{y(v)}⌋` for LP weights `y(v) = p/q`).
//!
//! Everything here is exact: comparisons of `a^ea` vs `b^eb` go through a
//! minimal little-endian big-unsigned (`u64` limbs, schoolbook multiply) with
//! a checked-`u128` fast path, so no result ever depends on `f64` rounding or
//! an epsilon fudge. The big-integer type stays private; the public surface
//! is the comparison and the floor-power function.

use crate::rational::Rational;
use std::cmp::Ordering;

/// Errors from exact power computations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PowError {
    /// The exponent was negative (never produced by a cover/packing LP).
    NegativeExponent(Rational),
    /// The exact result exceeds `u64::MAX`.
    Overflow {
        /// The base `N`.
        base: u64,
        /// The exponent `p/q`.
        exp: Rational,
    },
}

impl std::fmt::Display for PowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowError::NegativeExponent(e) => write!(f, "negative exponent {e} in integer power"),
            PowError::Overflow { base, exp } => {
                write!(f, "{base}^{exp} exceeds u64::MAX")
            }
        }
    }
}

impl std::error::Error for PowError {}

/// Minimal big-unsigned: little-endian `u64` limbs, no leading zero limbs.
/// Only what exact power comparison needs — construction, multiply, compare.
#[derive(Clone, Debug, PartialEq, Eq)]
struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    fn from_u128(x: u128) -> Self {
        let lo = x as u64; // lb-lint: allow(no-lossy-cast) -- limb split: low 64 bits, exact by construction
        let hi = (x >> 64) as u64; // lb-lint: allow(no-lossy-cast) -- limb split: high 64 bits, exact by construction
        let mut limbs = vec![lo, hi];
        while limbs.len() > 1 && limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    fn mul_u64(&self, m: u64) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u128 = 0;
        for &l in &self.limbs {
            let prod = u128::from(l) * u128::from(m) + carry;
            out.push(prod as u64); // lb-lint: allow(no-lossy-cast) -- limb split: low word of the product
            carry = prod >> 64;
        }
        while carry > 0 {
            out.push(carry as u64); // lb-lint: allow(no-lossy-cast) -- limb split: carry low word
            carry >>= 64;
        }
        while out.len() > 1 && out.last() == Some(&0) {
            out.pop();
        }
        BigUint { limbs: out }
    }

    /// `base^exp` by repeated limb multiplication (`exp` is small: an LP
    /// weight denominator, bounded by the hypergraph size).
    fn pow(base: u64, exp: u32) -> Self {
        let mut acc = BigUint { limbs: vec![1] };
        for _ in 0..exp {
            acc = acc.mul_u64(base);
        }
        acc
    }

    /// `2^bits` — used for the `u64::MAX` overflow threshold `2^(64·q)`.
    fn pow2(bits: u32) -> Self {
        let words = (bits / 64) as usize;
        let rem = bits % 64;
        let mut limbs = vec![0; words];
        limbs.push(1u64 << rem);
        BigUint { limbs }
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => self.limbs.iter().rev().cmp(other.limbs.iter().rev()),
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn checked_pow_u128(base: u128, exp: u32) -> Option<u128> {
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc = acc.checked_mul(base)?;
    }
    Some(acc)
}

/// Compares `a^ea` with `b^eb` exactly.
///
/// Fast path in checked `u128`; falls back to exact big-integer arithmetic
/// when either side overflows 128 bits.
pub fn cmp_pow(a: u128, ea: u32, b: u128, eb: u32) -> Ordering {
    if let (Some(x), Some(y)) = (checked_pow_u128(a, ea), checked_pow_u128(b, eb)) {
        return x.cmp(&y);
    }
    big_pow_u128(a, ea).cmp(&big_pow_u128(b, eb))
}

fn big_pow_u128(base: u128, exp: u32) -> BigUint {
    let mut acc = BigUint { limbs: vec![1] };
    let b = BigUint::from_u128(base);
    for _ in 0..exp {
        // Multiply by each limb with shifts: acc · base.
        let mut sum = BigUint { limbs: vec![0] };
        for (i, &l) in b.limbs.iter().enumerate() {
            let mut part = acc.mul_u64(l);
            // Shift left by i limbs.
            let mut shifted = vec![0; i];
            shifted.extend_from_slice(&part.limbs);
            part.limbs = shifted;
            sum = add(&sum, &part);
        }
        acc = sum;
    }
    acc
}

fn add(a: &BigUint, b: &BigUint) -> BigUint {
    let n = a.limbs.len().max(b.limbs.len());
    let mut out = Vec::with_capacity(n + 1);
    let mut carry: u128 = 0;
    for i in 0..n {
        let x = u128::from(*a.limbs.get(i).unwrap_or(&0));
        let y = u128::from(*b.limbs.get(i).unwrap_or(&0));
        let s = x + y + carry;
        out.push(s as u64); // lb-lint: allow(no-lossy-cast) -- limb split: low word of the sum
        carry = s >> 64;
    }
    if carry > 0 {
        out.push(carry as u64); // lb-lint: allow(no-lossy-cast) -- limb carry, < 2^64 by construction
    }
    while out.len() > 1 && out.last() == Some(&0) {
        out.pop();
    }
    BigUint { limbs: out }
}

/// `⌊base^{p/q}⌋` computed exactly, for a non-negative rational exponent.
///
/// The answer is the unique `s` with `s^q ≤ base^p < (s+1)^q`, found by
/// binary search with exact power comparisons — no floating point anywhere.
///
/// # Errors
/// [`PowError::NegativeExponent`] if `exp < 0`; [`PowError::Overflow`] if the
/// exact result exceeds `u64::MAX` (only possible when `exp > 1`).
#[must_use = "the result carries the only exact value; ignoring it defeats the checked arithmetic"]
pub fn floor_rational_pow(base: u64, exp: &Rational) -> Result<u64, PowError> {
    if exp.is_negative() {
        return Err(PowError::NegativeExponent(*exp));
    }
    if exp.is_zero() {
        return Ok(1);
    }
    if base <= 1 {
        return Ok(base);
    }
    let p = u32::try_from(exp.numer()).map_err(|_| PowError::Overflow { base, exp: *exp })?;
    let q = u32::try_from(exp.denom()).map_err(|_| PowError::Overflow { base, exp: *exp })?;
    // Overflow iff base^p ≥ 2^(64·q)  ⇔  base^{p/q} ≥ 2^64.
    let threshold = BigUint::pow2(64u32.saturating_mul(q));
    if BigUint::pow(base, p) >= threshold {
        return Err(PowError::Overflow { base, exp: *exp });
    }
    // Binary search the floor root: largest s with s^q ≤ base^p.
    let (mut lo, mut hi) = (1u64, u64::MAX);
    // Tighten hi when exp ≤ 1: the result is at most base.
    if *exp <= Rational::ONE {
        hi = base;
    }
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        match cmp_pow(u128::from(mid), q, u128::from(base), p) {
            Ordering::Greater => hi = mid - 1,
            _ => lo = mid,
        }
    }
    Ok(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn integer_exponents() {
        assert_eq!(floor_rational_pow(7, &r(2, 1)), Ok(49));
        assert_eq!(floor_rational_pow(2, &r(10, 1)), Ok(1024));
        assert_eq!(floor_rational_pow(10, &r(0, 1)), Ok(1));
        assert_eq!(floor_rational_pow(0, &r(3, 1)), Ok(0));
        assert_eq!(floor_rational_pow(1, &r(1_000_000, 1)), Ok(1));
    }

    #[test]
    fn square_roots() {
        assert_eq!(floor_rational_pow(16, &r(1, 2)), Ok(4));
        assert_eq!(floor_rational_pow(17, &r(1, 2)), Ok(4));
        assert_eq!(floor_rational_pow(24, &r(1, 2)), Ok(4));
        assert_eq!(floor_rational_pow(25, &r(1, 2)), Ok(5));
        assert_eq!(floor_rational_pow(u64::MAX, &r(1, 2)), Ok(4_294_967_295));
    }

    #[test]
    fn general_rational_exponents() {
        // 64^{2/3} = 16 exactly.
        assert_eq!(floor_rational_pow(64, &r(2, 3)), Ok(16));
        // 100^{3/2} = 1000 exactly.
        assert_eq!(floor_rational_pow(100, &r(3, 2)), Ok(1000));
        // 10^{2/3} = 4.64…
        assert_eq!(floor_rational_pow(10, &r(2, 3)), Ok(4));
        // Near-miss rounding that e-9 fudges get wrong at scale: (10^9)^{1/3}.
        assert_eq!(floor_rational_pow(1_000_000_000, &r(1, 3)), Ok(1000));
    }

    #[test]
    fn no_epsilon_dependence_at_scale() {
        // (10^18)^{1/2} = 10^9 exactly; f64 powf gives 999999999.9999999…
        assert_eq!(
            floor_rational_pow(1_000_000_000_000_000_000, &r(1, 2)),
            Ok(1_000_000_000)
        );
        // (k^3)^{1/3} = k exactly for k where k^3 fits u64.
        for k in [3u64, 10, 1_000, 2_642_245] {
            assert_eq!(floor_rational_pow(k * k * k, &r(1, 3)), Ok(k), "k = {k}");
        }
        // And one below the cube: (k^3 − 1)^{1/3} = k − 1.
        assert_eq!(floor_rational_pow(27 - 1, &r(1, 3)), Ok(2));
    }

    #[test]
    fn overflow_is_reported() {
        let err = floor_rational_pow(u64::MAX, &r(2, 1)).unwrap_err();
        assert!(matches!(err, PowError::Overflow { .. }));
        assert!(floor_rational_pow(2, &r(64, 1)).is_err());
        assert_eq!(floor_rational_pow(2, &r(63, 1)), Ok(1 << 63));
    }

    #[test]
    fn negative_exponent_is_reported() {
        let err = floor_rational_pow(5, &r(-1, 2)).unwrap_err();
        assert!(matches!(err, PowError::NegativeExponent(_)));
    }

    #[test]
    fn cmp_pow_agrees_with_u128_reference() {
        // Small enough for the u128 path on both sides.
        for (a, ea, b, eb) in [(3u128, 4u32, 9u128, 2u32), (2, 10, 3, 6), (5, 3, 126, 1)] {
            let lhs = a.pow(ea);
            let rhs = b.pow(eb);
            assert_eq!(cmp_pow(a, ea, b, eb), lhs.cmp(&rhs));
        }
    }

    #[test]
    fn cmp_pow_big_path() {
        // u64::MAX^3 overflows u128 on both sides; exact compare must still
        // order (MAX)^3 < (MAX)^4 and tie (MAX^2)^2 = (MAX)^4.
        let m = u128::from(u64::MAX);
        assert_eq!(cmp_pow(m, 3, m, 4), Ordering::Less);
        assert_eq!(cmp_pow(m * m, 2, m, 4), Ordering::Equal);
        assert_eq!(cmp_pow(m, 4, m, 3), Ordering::Greater);
        // 2^130 vs (2^65)^2: equal, both beyond u128.
        assert_eq!(cmp_pow(2, 130, 1 << 65, 2), Ordering::Equal);
    }

    #[test]
    fn big_uint_ordering() {
        let a = BigUint::pow(u64::MAX, 5);
        let b = BigUint::pow(u64::MAX, 6);
        assert!(a < b);
        assert_eq!(BigUint::pow(10, 3).limbs, vec![1000]);
        assert_eq!(BigUint::pow2(64).limbs, vec![0, 1]);
        assert_eq!(BigUint::pow2(1).limbs, vec![2]);
    }
}
