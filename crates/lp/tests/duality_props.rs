//! Property tests for the exact LP layer: strong duality and feasibility on
//! random hypergraphs, and rational arithmetic laws.

use lb_graph::generators::random_uniform_hypergraph;
use lb_lp::covers::{
    fractional_edge_cover, fractional_matching, fractional_vertex_cover, fractional_vertex_packing,
};
use lb_lp::Rational;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Strong duality: ρ* computed via the cover equals the packing optimum,
    /// and both certificates are feasible.
    #[test]
    fn cover_packing_duality(n in 3usize..8, d in 2usize..4, seed in 0u64..10_000) {
        let mut h = random_uniform_hypergraph(n, d, 0.6, seed);
        // Ensure coverage: add singleton-fixing edge over all vertices if needed.
        if !h.covers_all_vertices() {
            h.add_edge((0..n).collect());
        }
        let cover = fractional_edge_cover(&h).unwrap();
        let pack = fractional_vertex_packing(&h).unwrap();
        prop_assert_eq!(cover.value, pack.value);
        // Cover feasibility.
        for v in 0..n {
            let total = h.edges_containing(v).into_iter()
                .fold(Rational::ZERO, |acc, e| acc + cover.weights[e]);
            prop_assert!(total >= Rational::ONE);
        }
        // Packing feasibility.
        for e in h.edges() {
            let total = e.iter().fold(Rational::ZERO, |acc, &v| acc + pack.weights[v]);
            prop_assert!(total <= Rational::ONE);
        }
        // ρ* is between 1 (one edge could cover everything) and n.
        prop_assert!(cover.value >= Rational::ONE);
        prop_assert!(cover.value <= Rational::from_int(n as i64));
    }

    /// Matching/vertex-cover duality, plus ν* ≤ τ* trivially as equality.
    #[test]
    fn matching_cover_duality(n in 3usize..8, seed in 0u64..10_000) {
        let h = random_uniform_hypergraph(n, 2, 0.5, seed);
        if h.num_edges() == 0 {
            return Ok(());
        }
        let m = fractional_matching(&h).unwrap();
        let vc = fractional_vertex_cover(&h).unwrap();
        prop_assert_eq!(m.value, vc.value);
        prop_assert!(!m.value.is_negative());
    }

    /// Rational arithmetic: field laws on random small fractions.
    #[test]
    fn rational_field_laws(a in -50i64..50, b in 1i64..50, c in -50i64..50, d in 1i64..50) {
        let x = Rational::new(a as i128, b as i128);
        let y = Rational::new(c as i128, d as i128);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
        prop_assert_eq!((x + y) - y, x);
        if !y.is_zero() {
            prop_assert_eq!((x / y) * y, x);
        }
        prop_assert_eq!(x * (y + Rational::ONE), x * y + x);
    }

    /// Ordering is total and consistent with subtraction sign.
    #[test]
    fn rational_order(a in -50i64..50, b in 1i64..50, c in -50i64..50, d in 1i64..50) {
        let x = Rational::new(a as i128, b as i128);
        let y = Rational::new(c as i128, d as i128);
        prop_assert_eq!(x < y, (x - y).is_negative());
        prop_assert_eq!(x == y, (x - y).is_zero());
    }
}
