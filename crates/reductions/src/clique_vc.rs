//! Clique ↔ Vertex Cover via graph complement (paper §5's FPT / W\[1\]
//! contrast made concrete).
//!
//! G has a k-clique iff its complement has a vertex cover of size n − k —
//! a *polynomial-time* reduction, but **not** a parameterized one: the new
//! parameter n − k is not bounded by any f(k) (Definition 5.1 (3) fails).
//! This is precisely why Vertex Cover being FPT does not make Clique FPT,
//! the asymmetry at the heart of §5. The tests demonstrate both the
//! correctness of the reduction and the parameter blow-up.

use lb_engine::{Budget, Outcome, RunStats};
use lb_graph::Graph;

/// Clique(G, k) → VertexCover(Ḡ, n − k).
///
/// Returns the complement graph and the cover budget.
pub fn clique_to_vertex_cover(g: &Graph, k: usize) -> (Graph, usize) {
    let n = g.num_vertices();
    assert!(k <= n);
    (g.complement(), n - k)
}

/// Maps a vertex cover of Ḡ of size ≤ n − k back to a clique of size ≥ k
/// in G: the complement of the cover is an independent set of Ḡ = clique
/// of G.
pub fn cover_to_clique(g: &Graph, cover: &[usize]) -> Vec<usize> {
    let n = g.num_vertices();
    let mut in_cover = vec![false; n];
    for &v in cover {
        in_cover[v] = true;
    }
    let clique: Vec<usize> = (0..n).filter(|&v| !in_cover[v]).collect();
    debug_assert!(g.is_clique(&clique));
    clique
}

/// Decides k-Clique through the FPT vertex cover solver on the complement.
/// Correct, but the "parameter" handed to the FPT algorithm is n − k — so
/// the running time is 2^{n−k}, exponential in n: no free lunch.
/// `Sat(clique)`, `Unsat`, or `Exhausted` with the cover search's counters.
pub fn has_clique_via_vertex_cover(
    g: &Graph,
    k: usize,
    budget: &Budget,
) -> (Outcome<Vec<usize>>, RunStats) {
    let (gc, cover_size) = clique_to_vertex_cover(g, k);
    let (out, stats) = lb_graphalg::vertexcover::vertex_cover_fpt(&gc, cover_size, budget);
    // The clique has ≥ k vertices; trim to exactly k.
    let out = out.map(|cover| cover_to_clique(g, &cover).into_iter().take(k).collect());
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;
    use lb_graphalg::clique::find_clique;

    fn via_vc_u(g: &Graph, k: usize) -> Option<Vec<usize>> {
        has_clique_via_vertex_cover(g, k, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    #[test]
    fn agrees_with_direct_clique_search() {
        for seed in 0..12u64 {
            let g = generators::gnp(10, 0.5, seed);
            for k in 2..=5 {
                let direct = find_clique(&g, k, &Budget::unlimited()).0.is_sat();
                let via = via_vc_u(&g, k);
                assert_eq!(via.is_some(), direct, "seed {seed}, k {k}");
                if let Some(c) = via {
                    assert_eq!(c.len(), k);
                    assert!(g.is_clique(&c), "seed {seed}, k {k}");
                }
            }
        }
    }

    #[test]
    fn parameter_blowup_is_visible() {
        // k = 3 on a 50-vertex graph: the cover budget is 47 — the
        // reduction is polynomial but *not* parameterized.
        let g = generators::gnp(50, 0.2, 1);
        let (_, budget) = clique_to_vertex_cover(&g, 3);
        assert_eq!(budget, 47);
    }

    #[test]
    fn complement_roundtrip() {
        let g = generators::clique(5);
        let (gc, budget) = clique_to_vertex_cover(&g, 5);
        assert_eq!(gc.num_edges(), 0);
        assert_eq!(budget, 0);
        let clique = cover_to_clique(&g, &[]);
        assert_eq!(clique.len(), 5);
    }

    #[test]
    fn turan_has_no_large_clique() {
        let g = generators::turan(12, 3);
        assert!(via_vc_u(&g, 4).is_none());
        assert!(via_vc_u(&g, 3).is_some());
    }

    #[test]
    fn tiny_budget_exhausts() {
        let g = generators::gnp(10, 0.5, 0);
        let b = Budget::ticks(0); // the very first cover-solver op exhausts
        assert!(has_clique_via_vertex_cover(&g, 3, &b).0.is_exhausted());
    }
}
