//! k-Clique → SPECIAL CSP (paper §5 and Definition 4.3).
//!
//! The paper's parameterized reduction showing SPECIAL CSP is W\[1\]-hard:
//! take the k-variable clique CSP of [`crate::clique_to_csp`] and append
//! 2^k dummy variables chained by full binary constraints, so the primal
//! graph becomes a k-clique plus a path on 2^k vertices — special. The
//! parameter grows to k + 2^k = f(k), which Definition 5.1 allows. Combined
//! with Theorem 6.3 this pins SPECIAL CSP's complexity at n^{Θ(log n)}:
//! the quasipolynomial solver (`lb-csp::solver::special`) is essentially
//! optimal under the ETH.

use lb_csp::{Constraint, CspInstance, Relation, Value};
use lb_engine::{Budget, Outcome, RunStats};
use lb_graph::Graph;
use std::sync::Arc;

/// Largest k for which the 2^k dummy path is materialized.
pub const MAX_K: usize = 20;

/// Builds the special CSP: variables 0..k are the clique variables,
/// k..k+2^k the dummy path (full binary relations over the same domain).
///
/// # Panics
/// Panics if `k < 2` (the primal graph must contain the k-clique component;
/// k ≥ 2 keeps the components separated) or `k > MAX_K`.
pub fn reduce(g: &Graph, k: usize) -> CspInstance {
    assert!(k >= 2, "need k ≥ 2 so the clique component is nontrivial");
    assert!(k <= MAX_K, "2^k dummy variables would be enormous");
    let n = g.num_vertices().max(1);
    let path_len = 1usize << k;
    let mut inst = CspInstance::new(k + path_len, n);
    // Clique part: ascending adjacency constraints, as in clique_to_csp.
    let adjacent_lt = Arc::new(Relation::from_fn(2, n, |t| {
        t[0] < t[1] && g.has_edge(t[0] as usize, t[1] as usize)
    }));
    for i in 0..k {
        for j in (i + 1)..k {
            inst.add_constraint(Constraint::new(vec![i, j], adjacent_lt.clone()));
        }
    }
    // Dummy path: full relations (every pair allowed) — they only shape the
    // primal graph.
    let full = Arc::new(Relation::full(2, n));
    for i in 0..path_len - 1 {
        inst.add_constraint(Constraint::new(vec![k + i, k + i + 1], full.clone()));
    }
    inst
}

/// Maps a special-CSP solution back to the clique vertices.
pub fn solution_back(k: usize, solution: &[Value]) -> Vec<usize> {
    solution[..k].iter().map(|&v| v as usize).collect()
}

/// Decides k-Clique through the special-CSP route, using the
/// quasipolynomial special solver: `Sat(clique)`, `Unsat`, or `Exhausted`
/// with the special solver's counters.
pub fn has_clique_via_special(
    g: &Graph,
    k: usize,
    budget: &Budget,
) -> (Outcome<Vec<usize>>, RunStats) {
    let inst = reduce(g, k);
    let (out, stats) = lb_csp::solver::special::solve_special(&inst, budget)
        // lb-lint: allow(no-panic) -- invariant: the reduction constructs a special primal graph by design
        .expect("reduction output must have a special primal graph");
    let out = match out {
        Outcome::Sat(result) => match result.solution {
            Some(s) => Outcome::Sat(solution_back(k, &s)),
            None => Outcome::Unsat,
        },
        Outcome::Unsat => Outcome::Unsat,
        Outcome::Exhausted(r) => Outcome::Exhausted(r),
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;
    use lb_graph::special::recognize_special;
    use lb_graphalg::clique;

    #[test]
    fn output_is_special() {
        let g = generators::gnp(8, 0.5, 1);
        for k in 2..=4 {
            let inst = reduce(&g, k);
            let primal = inst.primal_graph();
            let s = recognize_special(&primal).expect("must be special");
            assert_eq!(s.k, k);
            assert_eq!(s.path.len(), 1 << k);
        }
    }

    fn via_special_u(g: &lb_graph::Graph, k: usize) -> Option<Vec<usize>> {
        has_clique_via_special(g, k, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    #[test]
    fn matches_direct_clique_search() {
        for seed in 0..10u64 {
            let g = generators::gnp(9, 0.5, seed);
            for k in 2..=4 {
                let direct = clique::find_clique(&g, k, &Budget::unlimited()).0.is_sat();
                let via = via_special_u(&g, k);
                assert_eq!(via.is_some(), direct, "seed {seed}, k {k}");
                if let Some(c) = via {
                    assert!(g.is_clique(&c), "seed {seed}, k {k}");
                }
            }
        }
    }

    #[test]
    fn tiny_budget_exhausts() {
        let g = generators::gnp(9, 0.5, 0);
        let b = Budget::ticks(0); // the very first solver op exhausts
        assert!(has_clique_via_special(&g, 3, &b).0.is_exhausted());
    }

    #[test]
    fn parameter_growth_is_f_of_k() {
        // |V'| = k + 2^k — allowed by Definition 5.1 (3).
        let g = generators::clique(5);
        let inst = reduce(&g, 4);
        assert_eq!(inst.num_vars, 4 + 16);
    }

    #[test]
    fn planted_clique_found_through_special_route() {
        let (g, _) = generators::planted_clique(12, 4, 0.2, 7);
        let c = via_special_u(&g, 4).expect("planted clique present");
        assert!(g.is_clique(&c));
    }

    #[test]
    #[should_panic(expected = "k ≥ 2")]
    fn k1_rejected() {
        let g = generators::clique(3);
        let _ = reduce(&g, 1);
    }
}
