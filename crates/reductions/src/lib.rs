//! Executable reductions: the paper's lower-bound proofs as code.
//!
//! A conditional lower bound is a *reduction*: "if problem P had a fast
//! algorithm, so would the hard problem Q". This crate implements every
//! reduction the paper states or sketches as an instance-level transformer
//! with a solution mapping in both directions, so that the correctness of
//! each proof — YES-instances map to YES-instances and back — is
//! machine-checked by the test suite:
//!
//! * [`sat_to_csp`] — 3SAT as a CSP with |D| = 2 and arity ≤ 3
//!   (Corollary 6.1);
//! * [`sat_to_coloring`] — the textbook linear-size 3SAT → 3-Coloring
//!   gadget reduction, and 3-Coloring as a binary CSP with |D| = 3
//!   (Corollary 6.2);
//! * [`clique_to_csp`] — k-Clique as a binary CSP with k variables and
//!   domain V(G) (§5, Theorems 6.3 → 6.4);
//! * [`clique_to_special`] — k-Clique → SPECIAL CSP on k + 2^k variables
//!   (§5), the W\[1\]-hardness of the paper's NP-intermediate candidate;
//! * [`domset_to_csp`] — t-Dominating-Set → CSP whose primal graph is
//!   complete bipartite, including the g-fold variable-grouping that proves
//!   Theorem 7.2 (SETH-tightness of treewidth |D|^{k} algorithms);
//! * [`sat_to_ov`] — CNF-SAT → Orthogonal Vectors by the split-and-encode
//!   construction (§7, fine-grained complexity);
//! * [`fourdomains`] — the §2 translations: join query ⇄ CSP ⇄ partitioned
//!   subgraph isomorphism ⇄ relational-structure homomorphism.

#![forbid(unsafe_code)]

pub mod clique_to_csp;
pub mod clique_to_special;
pub mod clique_vc;
pub mod domset_to_csp;
pub mod fourdomains;
pub mod sat_to_clique;
pub mod sat_to_coloring;
pub mod sat_to_csp;
pub mod sat_to_ov;
