//! t-Dominating-Set → CSP of treewidth ≤ t, with variable grouping
//! (paper Theorem 7.2).
//!
//! The generic reduction: variables s₁…s_t (the chosen vertices, domain
//! V(G) = \[n\]) and x₁…x_n (for each graph vertex j, *which* sᵢ dominates
//! it, domain \[t\]); for every pair (i, j) the constraint
//!
//! ```text
//! R_{i,j} = {(a, b) : b ≠ i} ∪ {(a, b) : b = i, a ∈ N\[j\]}
//! ```
//!
//! forces s_{x_j} ∈ N\[j\]. The primal graph is complete bipartite
//! K_{t,n}, of treewidth ≤ t — so an O(|V|^c · |D|^{t−ε}) CSP algorithm
//! would give an O(n^{t−ε}) dominating-set algorithm, refuting the SETH by
//! Theorem 7.1.
//!
//! The paper's grouping trick is implemented too: pack the t selector
//! variables into t/g groups of g each over domain [n^g], pushing the
//! treewidth down to t/g while keeping equivalence — this is what turns
//! "no |D|^{t−ε}" into "no |D|^{k−ε} at every fixed treewidth k".

use lb_csp::{Constraint, CspInstance, Relation, Value};
use lb_engine::{Budget, Outcome, RunStats};
use lb_graph::Graph;
use std::sync::Arc;

/// The ungrouped Theorem 7.2 instance. Variables: `0..t` are s₁…s_t,
/// `t..t+n` are x₁…x_n. Domain: `max(n, t)`.
pub fn reduce(g: &Graph, t: usize) -> CspInstance {
    let n = g.num_vertices();
    assert!(t >= 1 && n >= 1);
    let domain = n.max(t);
    let mut inst = CspInstance::new(t + n, domain);
    for i in 0..t {
        for j in 0..n {
            let closed = g.closed_neighborhood(j);
            let rel = Relation::from_fn(2, domain, |tu| {
                let (a, b) = (tu[0] as usize, tu[1] as usize);
                if a >= n || b >= t {
                    return false;
                }
                b != i || closed.contains(a)
            });
            inst.add_constraint(Constraint::new(vec![i, t + j], Arc::new(rel)));
        }
    }
    inst
}

/// Maps a solution of the ungrouped instance back to the dominating set.
pub fn solution_back(t: usize, solution: &[Value]) -> Vec<usize> {
    let mut s: Vec<usize> = solution[..t].iter().map(|&v| v as usize).collect();
    s.sort_unstable();
    s.dedup();
    s
}

/// The grouped instance: the `t` selector variables are packed into
/// `t/group_size` groups over domain `n^group_size` (the x_j variables keep
/// their meaning, re-encoded over the larger domain). Treewidth of the
/// primal graph drops to `t/group_size`.
///
/// # Panics
/// Panics unless `group_size` divides `t`, and if `n^group_size` exceeds
/// 10⁶ (the relations are materialized).
pub fn reduce_grouped(g: &Graph, t: usize, group_size: usize) -> CspInstance {
    let n = g.num_vertices();
    assert!(
        group_size >= 1 && t.is_multiple_of(group_size),
        "group size must divide t"
    );
    let k = t / group_size;
    let domain = (n as u64)
        .checked_pow(group_size as u32)
        // lb-lint: allow(no-panic) -- documented panic: domain sizes beyond usize are unsupported on this platform
        .expect("domain overflow") as usize;
    assert!(
        domain <= 1_000_000,
        "grouped domain too large to materialize"
    );
    let domain = domain.max(t);
    let mut inst = CspInstance::new(k + n, domain);

    // Group variable gi encodes (s_{gi·g+1}, …, s_{gi·g+g}) in base n.
    for gi in 0..k {
        for j in 0..n {
            let closed = g.closed_neighborhood(j);
            let npow = |e: usize| (n as u64).pow(e as u32);
            let rel = Relation::from_fn(2, domain, |tu| {
                let (a, b) = (tu[0] as u64, tu[1] as usize);
                if a >= npow(group_size) || b >= t {
                    return false;
                }
                // Which group does index b fall into?
                if b / group_size != gi {
                    return true;
                }
                // Decode the (b mod g)-th digit of a (base n).
                let digit = (a / npow(b % group_size)) % n as u64;
                closed.contains(digit as usize)
            });
            inst.add_constraint(Constraint::new(vec![gi, k + j], Arc::new(rel)));
        }
    }
    inst
}

/// Maps a grouped solution back to the dominating set.
#[allow(clippy::needless_range_loop)] // index used across several arrays
pub fn solution_back_grouped(
    g: &Graph,
    t: usize,
    group_size: usize,
    solution: &[Value],
) -> Vec<usize> {
    let n = g.num_vertices() as u64;
    let k = t / group_size;
    let mut out = Vec::with_capacity(t);
    for gi in 0..k {
        let mut a = solution[gi] as u64;
        for _ in 0..group_size {
            out.push((a % n) as usize);
            a /= n;
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Decides t-Dominating-Set through the (ungrouped) CSP: `Sat(set)`,
/// `Unsat`, or `Exhausted` with the CSP solver's counters.
pub fn has_dominating_set_via_csp(
    g: &Graph,
    t: usize,
    budget: &Budget,
) -> (Outcome<Vec<usize>>, RunStats) {
    let inst = reduce(g, t);
    let (out, stats) = lb_csp::solver::solve(&inst, budget);
    (out.map(|s| solution_back(t, &s)), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;
    use lb_graphalg::domset;

    #[test]
    fn primal_graph_is_complete_bipartite_with_treewidth_t() {
        let g = generators::cycle(6);
        let t = 2;
        let inst = reduce(&g, t);
        let primal = inst.primal_graph();
        // K_{2,6}: every s-var adjacent to every x-var, no edges within.
        assert_eq!(primal.num_edges(), t * 6);
        assert_eq!(lb_graph::treewidth::treewidth_exact(&primal), t);
    }

    fn solve_u(inst: &CspInstance) -> Option<Vec<Value>> {
        lb_csp::solver::solve(inst, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    fn branching_sat(g: &Graph, t: usize) -> bool {
        domset::find_dominating_set_branching(g, t, &Budget::unlimited())
            .0
            .is_sat()
    }

    #[test]
    fn matches_direct_dominating_set() {
        for seed in 0..10u64 {
            let g = generators::gnp(7, 0.3, seed);
            for t in 1..=3 {
                let direct = branching_sat(&g, t);
                let via = has_dominating_set_via_csp(&g, t, &Budget::unlimited())
                    .0
                    .unwrap_decided();
                assert_eq!(via.is_some(), direct, "seed {seed}, t {t}");
                if let Some(s) = via {
                    assert!(g.is_dominating_set(&s), "seed {seed}, t {t}");
                    assert!(s.len() <= t);
                }
            }
        }
    }

    #[test]
    fn grouped_instance_equivalent() {
        for seed in 0..8u64 {
            let g = generators::gnp(6, 0.35, seed);
            let t = 2;
            let direct = branching_sat(&g, t);
            let inst = reduce_grouped(&g, t, 2);
            let sol = solve_u(&inst);
            assert_eq!(sol.is_some(), direct, "seed {seed}");
            if let Some(s) = sol {
                let ds = solution_back_grouped(&g, t, 2, &s);
                assert!(g.is_dominating_set(&ds), "seed {seed}");
                assert!(ds.len() <= t);
            }
        }
    }

    #[test]
    fn group_size_one_equals_ungrouped() {
        // With g = 1 the grouped construction must coincide with the plain
        // one up to domain padding: same satisfiability on every instance.
        for seed in 0..6u64 {
            let g = generators::gnp(5, 0.4, seed);
            let t = 2;
            let plain = reduce(&g, t);
            let grouped = reduce_grouped(&g, t, 1);
            assert_eq!(
                solve_u(&plain).is_some(),
                solve_u(&grouped).is_some(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn grouped_treewidth_drops() {
        let g = generators::cycle(5);
        let t = 2;
        // group_size = 2 → one selector variable → primal graph is a star
        // K_{1,5} of treewidth 1.
        let inst = reduce_grouped(&g, t, 2);
        let primal = inst.primal_graph();
        assert_eq!(lb_graph::treewidth::treewidth_exact(&primal), 1);
    }

    #[test]
    fn star_dominated_by_center_via_csp() {
        let g = generators::star(5);
        let s = has_dominating_set_via_csp(&g, 1, &Budget::unlimited())
            .0
            .unwrap_sat();
        assert_eq!(s, vec![0]);
    }

    #[test]
    fn treewidth_solver_handles_the_reduction() {
        // The point of Theorem 7.2: Freuder's algorithm runs in
        // |D|^{tw+1} on these instances. Check it returns the right answer.
        let g = generators::gnp(6, 0.4, 3);
        let t = 2;
        let inst = reduce(&g, t);
        let result = lb_csp::solver::treewidth_dp::solve_auto(&inst, &Budget::unlimited())
            .0
            .unwrap_sat();
        let direct = branching_sat(&g, t);
        assert_eq!(result.solution.is_some(), direct);
        if let Some(s) = result.solution {
            assert!(g.is_dominating_set(&solution_back(t, &s)));
        }
    }

    #[test]
    fn tiny_budget_exhausts() {
        let g = generators::gnp(7, 0.3, 0);
        let b = Budget::ticks(0); // the very first solver op exhausts
        assert!(has_dominating_set_via_csp(&g, 2, &b).0.is_exhausted());
    }
}
