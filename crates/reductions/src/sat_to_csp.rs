//! 3SAT → CSP with |D| = 2 and arity ≤ 3 (paper Corollary 6.1).
//!
//! The translation is direct: variables map to variables, each clause
//! becomes one constraint whose relation contains the satisfying tuples.
//! Together with Hypothesis 1 it yields: assuming ETH, CSP cannot be solved
//! in 2^{o(|V|)}·n^{O(1)} even with |D| = 2 and arity ≤ 3.

use lb_csp::{Assignment, Constraint, CspInstance, Relation, Value};
use lb_sat::CnfFormula;
use std::sync::Arc;

/// Reduces a k-SAT formula to a CSP instance over domain {0, 1}.
///
/// Satisfying assignments correspond bijectively to CSP solutions
/// (0 = false, 1 = true).
pub fn reduce(f: &CnfFormula) -> CspInstance {
    let mut inst = CspInstance::new(f.num_vars(), 2);
    for clause in f.clauses() {
        let scope: Vec<usize> = clause.iter().map(|l| l.var()).collect();
        let signs: Vec<bool> = clause.iter().map(|l| l.is_positive()).collect();
        let relation = Relation::from_fn(scope.len(), 2, |t| {
            t.iter().zip(&signs).any(|(&v, &pos)| (v == 1) == pos)
        });
        inst.add_constraint(Constraint::new(scope, Arc::new(relation)));
    }
    inst
}

/// Maps a CSP solution back to a SAT assignment.
pub fn solution_back(solution: &[Value]) -> Vec<bool> {
    solution.iter().map(|&v| v == 1).collect()
}

/// Maps a SAT assignment forward to a CSP assignment.
pub fn solution_forward(assignment: &[bool]) -> Assignment {
    assignment.iter().map(|&b| b as Value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_engine::Budget;
    use lb_sat::generators;
    use lb_sat::{brute, DpllSolver};

    #[test]
    fn equisatisfiable_on_random_3sat() {
        for seed in 0..20u64 {
            let f = generators::random_ksat(8, 34, 3, seed);
            let inst = reduce(&f);
            assert_eq!(inst.domain_size, 2);
            assert!(inst.arity() <= 3);
            let sat = brute::solve(&f, &Budget::unlimited()).0.is_sat();
            let csp = lb_csp::solver::solve(&inst, &Budget::unlimited())
                .0
                .unwrap_decided();
            assert_eq!(csp.is_some(), sat, "seed {seed}");
            if let Some(s) = csp {
                assert!(f.eval(&solution_back(&s)), "seed {seed}");
            }
        }
    }

    #[test]
    fn model_counts_match() {
        for seed in 0..10u64 {
            let f = generators::random_ksat(7, 20, 3, seed);
            let inst = reduce(&f);
            assert_eq!(
                lb_csp::solver::count(&inst, &Budget::unlimited())
                    .0
                    .unwrap_sat(),
                brute::count(&f, &Budget::unlimited()).0.unwrap_sat(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn forward_mapping_preserves_satisfaction() {
        let (f, plant) = generators::planted_ksat(10, 40, 3, 3);
        let inst = reduce(&f);
        assert!(inst.eval(&solution_forward(&plant)));
    }

    #[test]
    fn dpll_and_csp_agree() {
        for seed in 20..30u64 {
            let f = generators::random_ksat(9, 38, 3, seed);
            let inst = reduce(&f);
            let (m, _) = DpllSolver::default().solve(&f, &Budget::unlimited());
            assert_eq!(
                lb_csp::solver::solve(&inst, &Budget::unlimited())
                    .0
                    .is_sat(),
                m.is_sat(),
                "seed {seed}"
            );
        }
    }
}
