//! CNF-SAT → Orthogonal Vectors (paper §7, fine-grained complexity).
//!
//! The split-and-encode reduction behind the OV conjecture: split the n
//! variables into halves, enumerate the 2^{n/2} assignments of each half,
//! and encode each half-assignment as an m-bit vector with a 1 in
//! coordinate c iff the half-assignment does **not** satisfy clause c.
//! A pair of vectors is orthogonal iff every clause is satisfied by one of
//! the halves — i.e. iff the combined assignment satisfies the formula.
//! An O(N^{2−ε}) OV algorithm would therefore solve SAT in
//! (2^{n/2})^{2−ε} = 2^{(1−ε/2)n}, refuting the SETH.

use lb_engine::{Budget, Outcome, RunStats};
use lb_graphalg::ov::{find_orthogonal_pair, VectorSet};
use lb_sat::CnfFormula;

/// The reduction output: two vector sets of dimension m, plus the
/// bookkeeping to map an orthogonal pair back to an assignment.
#[derive(Clone, Debug)]
pub struct OvInstance {
    /// Vectors of the first half's assignments.
    pub left: VectorSet,
    /// Vectors of the second half's assignments.
    pub right: VectorSet,
    /// Number of variables in the first half.
    pub split: usize,
    /// Total number of variables.
    pub num_vars: usize,
}

/// Largest variable count accepted (2^{n/2} vectors are materialized).
pub const MAX_VARS: usize = 40;

/// Builds the OV instance of a CNF formula.
///
/// # Panics
/// Panics if the formula has more than [`MAX_VARS`] variables.
pub fn reduce(f: &CnfFormula) -> OvInstance {
    let n = f.num_vars();
    assert!(n <= MAX_VARS, "2^(n/2) blowup too large");
    let split = n / 2;
    let m = f.num_clauses();

    let encode = |vars: std::ops::Range<usize>| -> VectorSet {
        let count = vars.len();
        let mut set = VectorSet::new(m);
        for bits in 0u64..(1u64 << count) {
            // Coordinate c = 1 iff this half-assignment leaves clause c
            // unsatisfied.
            let vec: Vec<bool> = f
                .clauses()
                .iter()
                .map(|clause| {
                    !clause.iter().any(|l| {
                        let v = l.var();
                        vars.contains(&v) && {
                            let value = bits >> (v - vars.start) & 1 == 1;
                            value == l.is_positive()
                        }
                    })
                })
                .collect();
            set.push_bools(&vec);
        }
        set
    };

    OvInstance {
        left: encode(0..split),
        right: encode(split..n),
        split,
        num_vars: n,
    }
}

/// Maps an orthogonal pair (indices into left/right) back to a satisfying
/// assignment.
pub fn solution_back(inst: &OvInstance, pair: (usize, usize)) -> Vec<bool> {
    let (i, j) = pair;
    let mut a = Vec::with_capacity(inst.num_vars);
    for b in 0..inst.split {
        a.push(i >> b & 1 == 1);
    }
    for b in 0..inst.num_vars - inst.split {
        a.push(j >> b & 1 == 1);
    }
    a
}

/// Decides satisfiability through the OV instance: `Sat(assignment)`,
/// `Unsat`, or `Exhausted` with the pair-scan counters of the OV search.
pub fn decide_via_ov(f: &CnfFormula, budget: &Budget) -> (Outcome<Vec<bool>>, RunStats) {
    let inst = reduce(f);
    let (out, stats) = find_orthogonal_pair(&inst.left, &inst.right, budget);
    (out.map(|p| solution_back(&inst, p)), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_sat::{brute, generators};

    fn decide_u(f: &CnfFormula) -> Option<Vec<bool>> {
        decide_via_ov(f, &Budget::unlimited()).0.unwrap_decided()
    }

    fn brute_sat(f: &CnfFormula) -> bool {
        brute::solve(f, &Budget::unlimited()).0.is_sat()
    }

    #[test]
    fn equisatisfiable_on_random_formulas() {
        for seed in 0..20u64 {
            let f = generators::random_ksat(10, 35, 3, seed);
            let expect = brute_sat(&f);
            let got = decide_u(&f);
            assert_eq!(got.is_some(), expect, "seed {seed}");
            if let Some(a) = got {
                assert!(f.eval(&a), "seed {seed}");
            }
        }
    }

    #[test]
    fn wide_clause_sat() {
        // OV handles unbounded clause width (unlike the 3SAT reductions).
        let f = generators::random_ksat(10, 12, 7, 3);
        assert_eq!(decide_u(&f).is_some(), brute_sat(&f));
    }

    #[test]
    fn vector_set_sizes() {
        let f = generators::random_ksat(9, 20, 3, 1);
        let inst = reduce(&f);
        assert_eq!(inst.left.len(), 1 << 4);
        assert_eq!(inst.right.len(), 1 << 5);
        assert_eq!(inst.left.dim(), 20);
    }

    #[test]
    fn unsat_has_no_orthogonal_pair() {
        use lb_sat::Lit;
        let f = CnfFormula::from_clauses(
            2,
            vec![vec![Lit::pos(0)], vec![Lit::neg(0)], vec![Lit::pos(1)]],
        );
        assert!(decide_u(&f).is_none());
    }

    #[test]
    fn odd_variable_count_split() {
        let (f, _) = generators::planted_ksat(7, 25, 3, 5);
        let a = decide_u(&f).expect("planted satisfiable");
        assert!(f.eval(&a));
    }

    #[test]
    fn tiny_budget_exhausts() {
        let f = generators::random_ksat(10, 35, 3, 0);
        let b = Budget::ticks(0); // the very first pair test exhausts
        assert!(decide_via_ov(&f, &b).0.is_exhausted());
    }
}
