//! k-Clique → binary CSP with k variables (paper §5, Theorem 6.4).
//!
//! The instance has k variables over domain V(G) and C(k, 2) adjacency
//! constraints; solutions are exactly the (ordered) k-cliques of G. The
//! reduction is a *parameterized* reduction (k' = k), so W\[1\]-hardness of
//! CSP parameterized by |V| follows from W\[1\]-hardness of Clique, and
//! Theorem 6.3 (ETH) transfers to Theorem 6.4: no f(|V|)·|D|^{o(|V|)}
//! algorithm.

use lb_csp::{Constraint, CspInstance, Relation, Value};
use lb_engine::{Budget, Outcome, RunStats};
use lb_graph::Graph;
use std::sync::Arc;

/// Builds the CSP: k variables, domain V(G), adjacency constraints on every
/// variable pair. To avoid counting each clique k! times, the constraints
/// additionally enforce ascending vertex order (this also yields
/// injectivity for free).
pub fn reduce(g: &Graph, k: usize) -> CspInstance {
    let n = g.num_vertices();
    let mut inst = CspInstance::new(k, n);
    if k < 2 {
        return inst;
    }
    let adjacent_lt = Arc::new(Relation::from_fn(2, n, |t| {
        t[0] < t[1] && g.has_edge(t[0] as usize, t[1] as usize)
    }));
    for i in 0..k {
        for j in (i + 1)..k {
            inst.add_constraint(Constraint::new(vec![i, j], adjacent_lt.clone()));
        }
    }
    inst
}

/// Maps a CSP solution back to a clique (vertex list, ascending).
pub fn solution_back(solution: &[Value]) -> Vec<usize> {
    solution.iter().map(|&v| v as usize).collect()
}

/// Maps a clique (ascending vertices) forward to a CSP solution.
pub fn solution_forward(clique: &[usize]) -> Vec<Value> {
    clique.iter().map(|&v| v as Value).collect()
}

/// Decides k-Clique through the CSP route (for the correctness tests and
/// experiment E7): `Sat(clique)`, `Unsat`, or `Exhausted` with the CSP
/// solver's counters.
pub fn has_clique_via_csp(g: &Graph, k: usize, budget: &Budget) -> (Outcome<Vec<usize>>, RunStats) {
    let inst = reduce(g, k);
    let (out, stats) = lb_csp::solver::solve(&inst, budget);
    (out.map(|s| solution_back(&s)), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;
    use lb_graphalg::clique;

    #[test]
    fn matches_direct_clique_search() {
        for seed in 0..12u64 {
            let g = generators::gnp(10, 0.5, seed);
            for k in 2..=4 {
                let direct = clique::find_clique(&g, k, &Budget::unlimited()).0;
                let via_csp = has_clique_via_csp(&g, k, &Budget::unlimited())
                    .0
                    .unwrap_decided();
                assert_eq!(direct.is_sat(), via_csp.is_some(), "seed {seed}, k {k}");
                if let Some(c) = via_csp {
                    assert!(g.is_clique(&c), "seed {seed}, k {k}");
                    assert_eq!(c.len(), k);
                }
            }
        }
    }

    #[test]
    fn solution_counts_are_clique_counts() {
        for seed in 0..8u64 {
            let g = generators::gnp(9, 0.6, seed);
            for k in 2..=4 {
                let inst = reduce(&g, k);
                assert_eq!(
                    lb_csp::solver::count(&inst, &Budget::unlimited())
                        .0
                        .unwrap_sat(),
                    clique::count_cliques(&g, k, &Budget::unlimited())
                        .0
                        .unwrap_sat(),
                    "seed {seed}, k {k}"
                );
            }
        }
    }

    #[test]
    fn tiny_budget_exhausts() {
        let g = generators::gnp(10, 0.5, 0);
        let b = Budget::ticks(0); // the very first solver op exhausts
        assert!(has_clique_via_csp(&g, 3, &b).0.is_exhausted());
    }

    #[test]
    fn primal_graph_is_clique() {
        let g = generators::gnp(8, 0.5, 1);
        let inst = reduce(&g, 4);
        let primal = inst.primal_graph();
        assert!(primal.is_clique(&[0, 1, 2, 3]));
        // Treewidth of K_k is k−1 — the quantity in Theorem 6.5.
        assert_eq!(lb_graph::treewidth::treewidth_exact(&primal), 3);
    }

    #[test]
    fn forward_mapping() {
        let (g, planted) = generators::planted_clique(15, 4, 0.2, 2);
        let inst = reduce(&g, 4);
        assert!(inst.eval(&solution_forward(&planted)));
    }

    #[test]
    fn parameter_is_preserved() {
        // The parameterized reduction keeps k' = k (Definition 5.1(3)).
        let g = generators::gnp(20, 0.3, 5);
        let inst = reduce(&g, 6);
        assert_eq!(inst.num_vars, 6);
        assert_eq!(inst.domain_size, 20);
        assert_eq!(inst.constraints.len(), 15);
    }
}
