//! The four-domain translations of paper §2: join queries ⇄ CSP ⇄
//! partitioned subgraph isomorphism ⇄ relational structures.
//!
//! These are the semantic bridges that let results proved in one language
//! (e.g. CSP lower bounds) speak about another (e.g. Boolean join queries).
//! Each translation preserves the solution set exactly, which the tests
//! verify by counting solutions on both sides.

use lb_csp::{Constraint, CspInstance, Relation, Value};
use lb_graph::Graph;
use lb_join::{Atom, Database, JoinQuery, Table};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Join query + database → CSP (paper §2.2): attributes become variables,
/// the active domain becomes the CSP domain (densely remapped), each atom
/// becomes one constraint whose relation is the table.
///
/// Returns the instance plus the value decoding table (`values[d]` = the
/// original database value of CSP value `d`), so solutions map back to
/// answer tuples.
#[must_use = "dropping the result discards the reduced instance or the failure"]
pub fn join_to_csp(q: &JoinQuery, db: &Database) -> Result<(CspInstance, Vec<u64>), String> {
    db.validate_for(q)?;
    let attrs = q.attributes();
    // Active domain.
    let mut value_id: BTreeMap<u64, Value> = BTreeMap::new();
    for atom in &q.atoms {
        // lb-lint: allow(no-panic) -- invariant: join_to_csp validated the database against the query up front
        for row in db.table(&atom.relation).expect("validated").rows() {
            for &v in row {
                let next = value_id.len() as Value;
                value_id.entry(v).or_insert(next);
            }
        }
    }
    let values: Vec<u64> = {
        let mut v: Vec<(u64, Value)> = value_id.iter().map(|(&k, &i)| (k, i)).collect();
        v.sort_by_key(|&(_, i)| i);
        v.into_iter().map(|(k, _)| k).collect()
    };
    let domain = values.len().max(1);

    let mut inst = CspInstance::new(attrs.len(), domain);
    for atom in &q.atoms {
        let scope: Vec<usize> = atom
            .attrs
            .iter()
            // lb-lint: allow(no-panic) -- invariant: atom attributes are drawn from the collected attribute set
            .map(|a| attrs.binary_search(a).expect("attribute known"))
            .collect();
        let tuples: Vec<Vec<Value>> = db
            .table(&atom.relation)
            // lb-lint: allow(no-panic) -- invariant: join_to_csp validated the database against the query up front
            .expect("validated")
            .rows()
            .iter()
            .map(|row| row.iter().map(|v| value_id[v]).collect())
            .collect();
        inst.add_constraint(Constraint::new(
            scope,
            Arc::new(Relation::new(atom.attrs.len(), tuples)),
        ));
    }
    Ok((inst, values))
}

/// Decodes a CSP solution back into an answer tuple (attribute order =
/// [`JoinQuery::attributes`]).
pub fn csp_solution_to_answer(values: &[u64], solution: &[Value]) -> Vec<u64> {
    solution.iter().map(|&d| values[d as usize]).collect()
}

/// CSP → join query + database (paper §2.2, reverse direction): variable i
/// becomes attribute `x{i}`, constraint j becomes relation `C{j}` whose
/// table is the constraint relation.
pub fn csp_to_join(inst: &CspInstance) -> (JoinQuery, Database) {
    let mut atoms = Vec::with_capacity(inst.constraints.len());
    let mut db = Database::new();
    for (j, c) in inst.constraints.iter().enumerate() {
        let name = format!("C{j}");
        let attr_names: Vec<String> = c.scope.iter().map(|&v| format!("x{v:04}")).collect();
        atoms.push(Atom {
            relation: name.clone(),
            attrs: attr_names,
        });
        let rows: Vec<Vec<u64>> = c
            .relation
            .tuples()
            .iter()
            .map(|t| t.iter().map(|&x| x as u64).collect())
            .collect();
        db.insert(&name, Table::from_rows(c.scope.len(), rows));
    }
    (JoinQuery::new(atoms), db)
}

/// Binary CSP → partitioned subgraph isomorphism (paper §2.3): the host
/// graph has a vertex w_{v,d} per (variable, value), edges follow the
/// allowed pairs of each constraint, classes partition by variable, and the
/// pattern is the primal graph.
///
/// Returns `(pattern, host, classes)`; a partitioned subgraph isomorphic to
/// the pattern corresponds exactly to a CSP solution.
///
/// # Panics
/// Panics unless the instance is binary with no repeated scope variables.
#[allow(clippy::needless_range_loop)] // index used across several arrays
pub fn binary_csp_to_partitioned_subiso(inst: &CspInstance) -> (Graph, Graph, Vec<Vec<usize>>) {
    assert!(inst.is_binary(), "translation needs a binary CSP");
    assert!(
        inst.constraints.iter().all(|c| c.scope[0] != c.scope[1]),
        "repeated scope variables not supported"
    );
    let nv = inst.num_vars;
    let d = inst.domain_size;
    let host_vertex = |v: usize, val: usize| v * d + val;
    let mut host = Graph::new(nv * d);
    // Merge allowed pairs per variable pair (multiple constraints on the
    // same pair intersect).
    let mut allowed: BTreeMap<(usize, usize), Vec<Vec<bool>>> = BTreeMap::new();
    for c in &inst.constraints {
        let (u, v) = (c.scope[0], c.scope[1]);
        let (u, v, flip) = if u < v { (u, v, false) } else { (v, u, true) };
        let entry = allowed
            .entry((u, v))
            .or_insert_with(|| vec![vec![true; d]; d]);
        for a in 0..d {
            let row = &mut entry[a];
            for (b, slot) in row.iter_mut().enumerate() {
                let t = if flip {
                    [b as Value, a as Value]
                } else {
                    [a as Value, b as Value]
                };
                if !c.relation.allows(&t) {
                    *slot = false;
                }
            }
        }
    }
    for (&(u, v), grid) in &allowed {
        for a in 0..d {
            for b in 0..d {
                if grid[a][b] {
                    host.add_edge(host_vertex(u, a), host_vertex(v, b));
                }
            }
        }
    }
    let pattern = inst.primal_graph();
    let classes: Vec<Vec<usize>> = (0..nv)
        .map(|v| (0..d).map(|val| host_vertex(v, val)).collect())
        .collect();
    (pattern, host, classes)
}

/// Decodes a partitioned-subgraph mapping back to a CSP assignment.
pub fn subiso_solution_to_assignment(domain_size: usize, f: &[usize]) -> Vec<Value> {
    f.iter().map(|&w| (w % domain_size) as Value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_csp::solver::bruteforce;
    use lb_engine::Budget;
    use lb_graphalg::subiso::partitioned_subgraph_iso;
    use lb_join::{generators as jgen, wcoj};

    fn csp_count(inst: &CspInstance) -> u64 {
        bruteforce::count(inst, &Budget::unlimited()).0.unwrap_sat()
    }

    fn join_count(q: &JoinQuery, db: &Database) -> u64 {
        wcoj::count(q, db, None, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat()
    }

    #[test]
    fn join_to_csp_counts_match() {
        for seed in 0..8u64 {
            let q = JoinQuery::triangle();
            let db = jgen::random_binary_database(&q, 25, 7, seed);
            let (inst, _) = join_to_csp(&q, &db).unwrap();
            assert_eq!(csp_count(&inst), join_count(&q, &db), "seed {seed}");
        }
    }

    #[test]
    fn join_to_csp_solution_decodes_to_answer() {
        let q = JoinQuery::triangle();
        let db = jgen::planted_triangle_database(12, 50, 4);
        let (inst, values) = join_to_csp(&q, &db).unwrap();
        let sol = lb_csp::solver::solve(&inst, &Budget::unlimited())
            .0
            .unwrap_decided()
            .expect("planted");
        let answer = csp_solution_to_answer(&values, &sol);
        let all = wcoj::join(&q, &db, None, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat();
        assert!(all.contains(&answer));
    }

    #[test]
    fn csp_to_join_roundtrip_counts() {
        for seed in 0..6u64 {
            let g = lb_graph::generators::gnp(5, 0.5, seed);
            let inst = lb_csp::generators::random_binary_csp(&g, 3, 0.3, seed);
            if inst.constraints.is_empty() {
                continue;
            }
            let (q, db) = csp_to_join(&inst);
            // Variables not in any constraint vanish from the query; only
            // compare when all variables are constrained.
            let attrs = q.attributes();
            if attrs.len() != inst.num_vars {
                continue;
            }
            assert_eq!(join_count(&q, &db), csp_count(&inst), "seed {seed}");
        }
    }

    #[test]
    fn binary_csp_to_subiso_preserves_satisfiability() {
        for seed in 0..10u64 {
            let g = lb_graph::generators::gnp(5, 0.6, seed);
            let inst = lb_csp::generators::random_binary_csp(&g, 3, 0.4, seed);
            if inst.constraints.is_empty() {
                continue;
            }
            let (pattern, host, classes) = binary_csp_to_partitioned_subiso(&inst);
            let direct = lb_csp::solver::solve(&inst, &Budget::unlimited()).0;
            let via = partitioned_subgraph_iso(&pattern, &host, &classes, &Budget::unlimited())
                .0
                .unwrap_decided();
            assert_eq!(via.is_some(), direct.is_sat(), "seed {seed}");
            if let Some(f) = via {
                let assignment = subiso_solution_to_assignment(inst.domain_size, &f);
                assert!(inst.eval(&assignment), "seed {seed}");
            }
        }
    }

    #[test]
    fn four_way_roundtrip_triangle() {
        // query → CSP → structures → CSP: solution counts agree everywhere.
        let q = JoinQuery::triangle();
        let db = jgen::random_binary_database(&q, 20, 6, 11);
        let (inst, _) = join_to_csp(&q, &db).unwrap();
        let (_, a, b) = lb_structure::convert::csp_to_structures(&inst);
        let hom_count = lb_structure::hom::count_homomorphisms(&a, &b, &Budget::unlimited())
            .0
            .unwrap_sat();
        let back = lb_structure::convert::structures_to_csp(&a, &b);
        assert_eq!(hom_count, csp_count(&inst));
        assert_eq!(csp_count(&back), csp_count(&inst));
        assert_eq!(join_count(&q, &db), hom_count);
    }
}
