//! 3SAT → 3-Coloring → binary CSP with |D| = 3 (paper Corollary 6.2).
//!
//! The textbook gadget reduction with O(n + m) vertices and edges:
//!
//! * a palette triangle {T, F, B};
//! * per variable x, a triangle {vₓ, v¬ₓ, B}, so the two literal vertices
//!   take colors {T, F} in complementary fashion;
//! * per clause (l₁ ∨ l₂ ∨ l₃), two chained OR-gadgets (each a triangle
//!   with inputs wired to the literal vertices) whose output is adjacent to
//!   both F and B, forcing it to color T — achievable iff some literal is
//!   colored T.
//!
//! Because the blowup is linear, Hypothesis 2 (ETH + Sparsification) rules
//! out 2^{o(|V| + |C|)} algorithms for binary CSP with |D| = 3.

use lb_csp::{Constraint, CspInstance, Relation, Value};
use lb_engine::{Budget, Outcome, RunStats};
use lb_graph::Graph;
use lb_sat::{CnfFormula, Lit};
use std::sync::Arc;

/// The output of the reduction: the graph plus the bookkeeping needed to
/// map colorings back to assignments.
#[derive(Clone, Debug)]
pub struct ColoringInstance {
    /// The gadget graph.
    pub graph: Graph,
    /// Palette vertices (true, false, base).
    pub palette: (usize, usize, usize),
    /// `literal_vertex[v]` = (positive-literal vertex, negative-literal
    /// vertex) of SAT variable v.
    pub literal_vertex: Vec<(usize, usize)>,
}

/// Reduces a CNF formula with clauses of width ≤ 3 to 3-Coloring.
///
/// # Panics
/// Panics if some clause has more than 3 literals.
pub fn reduce(f: &CnfFormula) -> ColoringInstance {
    assert!(f.is_ksat(3), "reduction requires width ≤ 3");
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut next = 0usize;
    let mut fresh = || {
        next += 1;
        next - 1
    };

    // Palette triangle.
    let t = fresh();
    let fv = fresh();
    let b = fresh();
    edges.push((t, fv));
    edges.push((t, b));
    edges.push((fv, b));

    // Variable gadgets.
    let mut literal_vertex = Vec::with_capacity(f.num_vars());
    for _ in 0..f.num_vars() {
        let pos = fresh();
        let neg = fresh();
        edges.push((pos, neg));
        edges.push((pos, b));
        edges.push((neg, b));
        literal_vertex.push((pos, neg));
    }
    let lit_vertex = |l: Lit| -> usize {
        let (p, n) = literal_vertex[l.var()];
        if l.is_positive() {
            p
        } else {
            n
        }
    };

    // Clause gadgets: out = OR(OR(l1, l2), l3); out adjacent to F and B.
    for clause in f.clauses() {
        let lits: Vec<usize> = clause.iter().map(|&l| lit_vertex(l)).collect();
        // Pad to 3 inputs by repeating the last literal (OR is idempotent).
        let l1 = lits[0];
        let l2 = *lits.get(1).unwrap_or(&lits[0]);
        let l3 = *lits.get(2).unwrap_or(&lits[lits.len() - 1]);

        let mut or_gadget = |a: usize, bb: usize, edges: &mut Vec<(usize, usize)>| -> usize {
            let i1 = fresh();
            let i2 = fresh();
            let c = fresh();
            edges.push((i1, a));
            edges.push((i2, bb));
            edges.push((i1, i2));
            edges.push((i1, c));
            edges.push((i2, c));
            c
        };
        let c1 = or_gadget(l1, l2, &mut edges);
        let out = or_gadget(c1, l3, &mut edges);
        edges.push((out, fv));
        edges.push((out, b));
    }

    let graph = Graph::from_edges(next, &edges);
    ColoringInstance {
        graph,
        palette: (t, fv, b),
        literal_vertex,
    }
}

/// Maps a proper 3-coloring of the gadget graph back to a satisfying
/// assignment of the formula.
pub fn coloring_to_assignment(inst: &ColoringInstance, coloring: &[usize]) -> Vec<bool> {
    let t_color = coloring[inst.palette.0];
    inst.literal_vertex
        .iter()
        .map(|&(pos, _)| coloring[pos] == t_color)
        .collect()
}

/// Maps a satisfying assignment to a proper 3-coloring of the gadget graph
/// (the constructive direction of the reduction proof).
pub fn assignment_to_coloring(
    inst: &ColoringInstance,
    f: &CnfFormula,
    assignment: &[bool],
) -> Option<Vec<usize>> {
    if !f.eval(assignment) {
        return None;
    }
    // Solve the coloring CSP with palette and literal vertices pinned;
    // OR-gadget internals are filled in by search (linear-size instance,
    // each gadget has constant search space).
    let g = &inst.graph;
    let mut csp = three_coloring_to_csp(g);
    let pin = |csp: &mut CspInstance, v: usize, c: Value| {
        csp.add_constraint(Constraint::new(
            vec![v],
            Arc::new(Relation::new(1, vec![vec![c]])),
        ));
    };
    let (t, fv, b) = inst.palette;
    pin(&mut csp, t, 0);
    pin(&mut csp, fv, 1);
    pin(&mut csp, b, 2);
    for (v, &(pos, neg)) in inst.literal_vertex.iter().enumerate() {
        let (cp, cn) = if assignment[v] { (0, 1) } else { (1, 0) };
        pin(&mut csp, pos, cp);
        pin(&mut csp, neg, cn);
    }
    lb_csp::solver::treewidth_dp::solve_auto(&csp, &Budget::unlimited())
        .0
        .unwrap_sat()
        .solution
        .map(|s| s.into_iter().map(|v| v as usize).collect())
}

/// 3-Coloring as a binary CSP with |D| = 3: one disequality constraint per
/// edge (the final step of Corollary 6.2).
pub fn three_coloring_to_csp(g: &Graph) -> CspInstance {
    let mut inst = CspInstance::new(g.num_vertices(), 3);
    let neq = Arc::new(Relation::disequality(3));
    for (u, v) in g.edges() {
        inst.add_constraint(Constraint::new(vec![u, v], neq.clone()));
    }
    inst
}

/// The coloring CSP of a gadget graph with the palette colors pinned to
/// (T, F, B) = (0, 1, 2). Pinning is sound — colorability is invariant
/// under permuting colors — and breaks the 6-fold symmetry that otherwise
/// makes backtracking search on the gadget graph explode.
pub fn gadget_csp_pinned(inst: &ColoringInstance) -> CspInstance {
    let mut csp = three_coloring_to_csp(&inst.graph);
    let (t, fv, b) = inst.palette;
    for (v, c) in [(t, 0), (fv, 1), (b, 2)] {
        csp.add_constraint(Constraint::new(
            vec![v],
            Arc::new(Relation::new(1, vec![vec![c]])),
        ));
    }
    csp
}

/// End-to-end: is the formula satisfiable, decided via the coloring CSP?
/// `Sat(satisfiable)` on completion, or `Exhausted` with the DP's counters.
///
/// The gadget graph has small treewidth (the palette vertices are
/// near-universal, everything else is a chain of triangles), so the
/// instance is solved with Freuder's dynamic program rather than
/// backtracking — chronological backtracking thrashes across the many
/// loosely-coupled OR gadgets.
pub fn decide_via_coloring(f: &CnfFormula, budget: &Budget) -> (Outcome<bool>, RunStats) {
    let inst = reduce(f);
    let csp = gadget_csp_pinned(&inst);
    let (out, stats) = lb_csp::solver::treewidth_dp::solve_auto(&csp, budget);
    (out.map(|r| r.solution.is_some()), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_sat::{brute, generators};

    fn decide_u(f: &CnfFormula) -> bool {
        decide_via_coloring(f, &Budget::unlimited()).0.unwrap_sat()
    }

    #[test]
    fn linear_size() {
        let f = generators::random_ksat(20, 60, 3, 1);
        let inst = reduce(&f);
        // 3 palette + 2n literals + 6 per clause.
        assert_eq!(inst.graph.num_vertices(), 3 + 2 * 20 + 6 * 60);
        // 3 + 3n + (10 + 2) per clause.
        assert_eq!(inst.graph.num_edges(), 3 + 3 * 20 + 12 * 60);
    }

    #[test]
    fn equisatisfiable_on_random_formulas() {
        for seed in 0..12u64 {
            let f = generators::random_ksat(5, 18, 3, seed);
            let expect = brute::solve(&f, &Budget::unlimited()).0.is_sat();
            assert_eq!(decide_u(&f), expect, "seed {seed}");
        }
    }

    #[test]
    fn coloring_maps_back_to_satisfying_assignment() {
        for seed in 0..8u64 {
            let (f, _) = generators::planted_ksat(5, 15, 3, seed);
            let inst = reduce(&f);
            let csp = gadget_csp_pinned(&inst);
            let coloring: Vec<usize> =
                lb_csp::solver::treewidth_dp::solve_auto(&csp, &Budget::unlimited())
                    .0
                    .unwrap_sat()
                    .solution
                    .expect("satisfiable formula ⇒ colorable gadget")
                    .into_iter()
                    .map(|v| v as usize)
                    .collect();
            assert!(inst.graph.is_proper_coloring(&coloring));
            let a = coloring_to_assignment(&inst, &coloring);
            assert!(f.eval(&a), "seed {seed}");
        }
    }

    #[test]
    fn assignment_maps_forward_to_coloring() {
        for seed in 0..8u64 {
            let (f, plant) = generators::planted_ksat(6, 20, 3, seed);
            let inst = reduce(&f);
            let coloring = assignment_to_coloring(&inst, &f, &plant)
                .expect("satisfying assignment must extend to a coloring");
            assert!(inst.graph.is_proper_coloring(&coloring), "seed {seed}");
        }
    }

    #[test]
    fn unsat_formula_not_colorable() {
        // x ∧ ¬x via width-1 clauses.
        let f = CnfFormula::from_clauses(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        assert!(!decide_u(&f));
    }

    #[test]
    fn short_clauses_padded() {
        // Width-2 and width-1 clauses exercise the padding path.
        let f =
            CnfFormula::from_clauses(2, vec![vec![Lit::pos(0), Lit::pos(1)], vec![Lit::neg(0)]]);
        assert!(decide_u(&f));
        let g = CnfFormula::from_clauses(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        assert!(!decide_u(&g));
    }

    #[test]
    fn tiny_budget_exhausts() {
        let f = generators::random_ksat(5, 18, 3, 0);
        let b = Budget::ticks(0); // the very first DP op exhausts
        assert!(decide_via_coloring(&f, &b).0.is_exhausted());
    }
}
